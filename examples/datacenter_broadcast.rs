//! Data-center control-plane broadcast — the motivating scenario from the
//! paper's introduction: announcing a failure / policy change to every host
//! of a leaf–spine data center that combines a wired local fabric with a
//! capacity-limited global side channel.
//!
//! The example broadcasts `k` control messages and aggregates `k` health
//! counters, comparing the universal algorithms (Theorems 1 and 2) with the
//! `Õ(√k)` baseline, and prints the per-phase round trace of the universal
//! run so the cluster-tree structure of Figure 2 is visible.
//!
//! ```text
//! cargo run --release --example datacenter_broadcast
//! ```

use std::sync::Arc;

use hybrid::core::dissemination::place_tokens;
use hybrid::prelude::*;

fn main() {
    // 4 spines, 16 leaves, 40 hosts per leaf = 660 nodes.
    let graph = Arc::new(generators::fat_tree(4, 16, 40).expect("fat tree"));
    let oracle = NqOracle::new(&graph);
    let n = graph.n();
    println!(
        "leaf–spine fabric: n = {}, m = {}, diameter = {}",
        n,
        graph.m(),
        hybrid::graph::properties::diameter(&graph)
    );

    // 1. Broadcast 500 control messages originating at the spines.
    let k = 500u64;
    let spines: Vec<u32> = (0..4).collect();
    let tokens = place_tokens(&spines, k);
    println!(
        "\nbroadcasting k = {k} control messages:  NQ_k = {}  vs  sqrt(k) = {}",
        oracle.nq(k),
        (k as f64).sqrt().ceil() as u64
    );

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let universal = k_dissemination(&mut net, &oracle, &tokens);
    println!(
        "universal broadcast (Theorem 1): {} rounds",
        universal.rounds
    );
    println!("  phase trace:");
    for phase in net.meter().trace().iter().take(12) {
        println!("    {:<42} {:>5} rounds", phase.label, phase.rounds);
    }

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let baseline = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);
    println!(
        "baseline broadcast (Õ(sqrt k)) : {} rounds",
        baseline.rounds
    );

    // 2. Aggregate 8 per-host health counters (max over the fleet).
    let counters: Vec<Vec<u64>> = (0..n as u64)
        .map(|v| (0..8).map(|c| (v * 7 + c * 13) % 1000).collect())
        .collect();
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let agg = k_aggregation(&mut net, &oracle, &counters, |a, b| a.max(b));
    println!(
        "\naggregating 8 fleet-wide health counters (Theorem 2): {} rounds",
        agg.rounds
    );
    println!("  fleet maxima: {:?}", agg.results);

    println!(
        "\nspeed-up of the universal broadcast on this fabric: {:.2}x",
        baseline.rounds as f64 / universal.rounds.max(1) as f64
    );
}
