//! Quickstart: broadcast `k` messages through a HYBRID network and compare
//! the universally optimal algorithm (Theorem 1) against the existentially
//! optimal `Õ(√k)` baseline of prior work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hybrid::core::dissemination::place_tokens;
use hybrid::core::lower_bounds::dissemination_lower_bound;
use hybrid::prelude::*;

fn main() {
    // The local communication network: a 24x24 grid (e.g. a sensor mesh).
    let graph = Arc::new(generators::grid(&[24, 24]).expect("grid"));
    let oracle = NqOracle::new(&graph);

    // 200 messages, initially scattered over the first 64 nodes.
    let k = 200u64;
    let holders: Vec<u32> = (0..64).collect();
    let tokens = place_tokens(&holders, k);

    println!(
        "HYBRID network: n = {}, m = {}, D = {}",
        graph.n(),
        graph.m(),
        { hybrid::graph::properties::diameter(&graph) }
    );
    println!(
        "workload k = {k}:  NQ_k = {}   (worst-case bound sqrt(k) = {})",
        oracle.nq(k),
        (k as f64).sqrt().ceil() as u64
    );

    // Universal algorithm (Theorem 1).
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let universal = k_dissemination(&mut net, &oracle, &tokens);

    // Existential baseline (AHK+20-style, radius sqrt(k)).
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let baseline = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);

    // Universal lower bound (Theorem 4) for this very graph.
    let params = ModelParams::hybrid0(graph.n());
    let bound = dissemination_lower_bound(&oracle, &params, k, 0.99);

    assert_eq!(
        universal.tokens, baseline.tokens,
        "both deliver every message"
    );
    println!();
    println!("universal  (Theorem 1) : {:>6} rounds", universal.rounds);
    println!("baseline   (Õ(sqrt k)) : {:>6} rounds", baseline.rounds);
    println!("lower bound (Theorem 4): {:>9.2} rounds", bound.rounds);
    println!();
    println!(
        "speed-up over the existentially optimal algorithm: {:.2}x",
        baseline.rounds as f64 / universal.rounds.max(1) as f64
    );
}
