//! How large is the universal-vs-existential gap on *your* topology?
//!
//! This example sweeps the paper's graph families, measures the neighborhood
//! quality `NQ_k`, runs the universal and the existential dissemination
//! algorithms plus the Theorem 4 lower-bound witness, and prints where the
//! measured rounds fall between the two — the core claim of the paper in one
//! table.
//!
//! ```text
//! cargo run --release --example universal_vs_existential
//! ```

use std::sync::Arc;

use hybrid::core::dissemination::place_tokens;
use hybrid::core::lower_bounds::dissemination_lower_bound;
use hybrid::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let k = 256u64;
    let cases: Vec<(&str, Graph)> = vec![
        ("path (worst case)", generators::path(1024).unwrap()),
        ("cycle", generators::cycle(1024).unwrap()),
        ("grid 32x32", generators::grid(&[32, 32]).unwrap()),
        ("grid 10x10x10", generators::grid(&[10, 10, 10]).unwrap()),
        ("binary tree", generators::tree_with_n(2, 1024).unwrap()),
        (
            "Erdős–Rényi",
            generators::erdos_renyi(1024, 6.0 / 1024.0, &mut rng).unwrap(),
        ),
        ("fat tree", generators::fat_tree(4, 16, 62).unwrap()),
    ];

    println!(
        "{:<20}{:>6}{:>8}{:>10}{:>12}{:>12}{:>12}{:>10}",
        "family", "n", "NQ_k", "sqrt(k)", "universal", "baseline", "lower-bnd", "speedup"
    );
    for (name, graph) in cases {
        let graph = Arc::new(graph);
        let oracle = NqOracle::new(&graph);
        let holders: Vec<u32> = (0..graph.n().min(k as usize) as u32).collect();
        let tokens = place_tokens(&holders, k);

        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let uni = k_dissemination(&mut net, &oracle, &tokens);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let base = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);
        let bound = dissemination_lower_bound(&oracle, &ModelParams::hybrid0(graph.n()), k, 0.99);

        println!(
            "{:<20}{:>6}{:>8}{:>10}{:>12}{:>12}{:>12.2}{:>9.2}x",
            name,
            graph.n(),
            oracle.nq(k),
            (k as f64).sqrt().ceil() as u64,
            uni.rounds,
            base.rounds,
            bound.rounds,
            base.rounds as f64 / uni.rounds.max(1) as f64
        );
    }
    println!(
        "\nThe universal algorithm tracks NQ_k; the existential baseline tracks sqrt(k).\n\
         On the path they coincide (Theorem 15); everywhere else the universal algorithm wins."
    );
}
