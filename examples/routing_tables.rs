//! Building (approximate) routing tables — the paper's second motivating
//! application: every node of a wireless-style mesh learns its distance to a
//! set of landmark gateways, which is exactly the `(k, ℓ)`-SP problem
//! (Theorem 5) built on k-SSP (Theorem 14) and `(k, ℓ)`-routing (Theorem 3).
//!
//! ```text
//! cargo run --release --example routing_tables
//! ```

use std::sync::Arc;

use hybrid::core::klsp::{klsp, KlspScenario};
use hybrid::core::prob::{sample_distinct, sample_with_probability};
use hybrid::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    // A random geometric graph models short-range wireless links; random
    // edge weights model link latencies.
    let base = generators::random_geometric(500, 0.09, &mut rng).expect("mesh");
    let graph = Arc::new(generators::with_random_weights(&base, 16, &mut rng).expect("weights"));
    let oracle = NqOracle::new(&graph);
    println!(
        "wireless mesh: n = {}, m = {}, diameter = {}",
        graph.n(),
        graph.m(),
        hybrid::graph::properties::diameter(&graph)
    );

    // 40 landmark gateways (arbitrary positions), and every node that opted
    // into the routing service as a target.
    let gateways = sample_distinct(graph.n(), 40, &mut rng);
    let nq = oracle.nq(gateways.len() as u64);
    let mut subscribers =
        sample_with_probability(graph.n(), nq as f64 / graph.n() as f64, &mut rng);
    if subscribers.is_empty() {
        subscribers.push(0);
    }
    println!(
        "k = {} gateways, ℓ = {} subscribers, NQ_k = {nq}",
        gateways.len(),
        subscribers.len()
    );

    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let tables = klsp(
        &mut net,
        &oracle,
        &gateways,
        &subscribers,
        0.1,
        KlspScenario::ArbitrarySourcesRandomTargets,
        &mut rng,
    );
    let worst = tables.verify_stretch(&graph).expect("stretch guarantee");
    println!(
        "\n(k, ℓ)-SP with stretch 1.1 (Theorem 5): {} rounds, worst observed stretch {:.4}",
        tables.rounds, worst
    );

    // Print the routing table of the first subscriber: nearest 5 gateways.
    let t = subscribers[0];
    let mut entries: Vec<(u64, u32)> = tables.dist[0]
        .iter()
        .zip(&tables.sources)
        .map(|(&d, &g)| (d, g))
        .collect();
    entries.sort_unstable();
    println!("\nrouting table of node {t} (5 closest gateways):");
    for (d, g) in entries.into_iter().take(5) {
        println!("  gateway {:>4}   approx. latency {:>6}", g, d);
    }
}
