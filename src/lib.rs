//! # hybrid
//!
//! Facade crate for the reproduction of *"Universally Optimal Information
//! Dissemination and Shortest Paths in the HYBRID Distributed Model"*
//! (Chang, Hecht, Leitersdorf, Schneider — PODC 2024).
//!
//! It re-exports the three layers of the workspace:
//!
//! * [`graph`] ([`hybrid_graph`]) — the graph substrate: CSR graphs,
//!   generators for the paper's graph families, distance oracles and ball
//!   queries;
//! * [`sim`] ([`hybrid_sim`]) — the round-synchronous simulator of the
//!   `HYBRID(λ, γ)` model (phase engine + per-node message-passing engine);
//! * [`core`] ([`hybrid_core`]) — the paper's algorithms: the neighborhood
//!   quality parameter `NQ_k`, universally optimal `k`-dissemination /
//!   `k`-aggregation / `(k, ℓ)`-routing, universally optimal shortest paths
//!   (APSP, `(k, ℓ)`-SP, cuts), existentially optimal SSSP / k-SSP, the
//!   existential baselines of prior work, and the universal lower-bound
//!   witnesses.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use hybrid::prelude::*;
//!
//! // A 16x16 grid: neighbourhoods grow quadratically, so NQ_k ≪ √k.
//! let graph = Arc::new(hybrid::graph::generators::grid(&[16, 16]).unwrap());
//! let oracle = NqOracle::new(&graph);
//!
//! // Broadcast k = 100 messages with the universal algorithm (Theorem 1) …
//! let tokens = hybrid::core::dissemination::place_tokens(&[0], 100);
//! let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
//! let universal = k_dissemination(&mut net, &oracle, &tokens);
//!
//! // … and with the existentially optimal Õ(√k) baseline of prior work.
//! let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
//! let baseline = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);
//!
//! assert_eq!(universal.tokens, baseline.tokens);   // same result …
//! assert!(universal.rounds <= baseline.rounds);    // … fewer rounds.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hybrid_core as core;
pub use hybrid_graph as graph;
pub use hybrid_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use hybrid_core::apsp::{apsp_unweighted, apsp_weighted_spanner, ApspOutput};
    pub use hybrid_core::dissemination::{
        baseline_sqrt_k_dissemination, k_aggregation, k_dissemination, DisseminationOutput,
    };
    pub use hybrid_core::kssp::{kssp, KsspVariant};
    pub use hybrid_core::lower_bounds::dissemination_lower_bound;
    pub use hybrid_core::nq::NqOracle;
    pub use hybrid_core::routing::{kl_routing, RoutingScenario};
    pub use hybrid_core::sssp::{baseline_sssp, sssp_approx, SsspBaseline};
    pub use hybrid_graph::{generators, Graph, GraphBuilder};
    pub use hybrid_sim::{HybridNetwork, ModelParams};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_reexports_work_together() {
        let graph = Arc::new(generators::cycle(32).unwrap());
        let oracle = NqOracle::new(&graph);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let tokens = hybrid_core::dissemination::place_tokens(&[0, 5], 8);
        let out = k_dissemination(&mut net, &oracle, &tokens);
        assert_eq!(out.tokens.len(), 8);
    }
}
