//! Chunk-parallel streaming generators for the large-`n` scale tier.
//!
//! The legacy [`crate::generators`] build every family through a sequential
//! `add_edge` loop with per-edge `HashSet` deduplication, and the three random
//! families draw from one interleaved RNG stream over all `Θ(n²)` node pairs —
//! both walls at `n ∈ {10⁵, 10⁶}`.  This module re-implements all sweep
//! families as **streaming** generators: edges are emitted into fixed-size
//! index chunks in parallel (rayon), stitched in chunk order, and assembled
//! through the pre-sized [`GraphBuilder`] fast path with no per-edge hashing.
//!
//! # Determinism contract
//!
//! * Chunk boundaries are a fixed constant (`CHUNK`), never derived from the
//!   worker count, and the vendored rayon stitches mapped chunks in index
//!   order — so every generator here is bit-identical across
//!   `RAYON_NUM_THREADS` and across repeated runs with the same seed.
//! * The **deterministic** families (path, cycle, grids, trees, fat-tree,
//!   ring-of-cliques, barbell) emit edges in exactly the legacy order, so
//!   their output is bit-identical to [`crate::generators`] at every size —
//!   pinned by the tests below.
//! * The **random** families (Erdős–Rényi, random-geometric, Chung–Lu)
//!   *cannot* reproduce the legacy streams without re-scanning all `Θ(n²)`
//!   pairs, so they define a new canonical stream: every chunk seeds its own
//!   `ChaCha8` from a SplitMix64-mixed `(seed, salt, chunk index)` triple and
//!   draws independently of all other chunks.  Small-`n` experiments keep
//!   calling the legacy generators, which is why the recorded small-`n`
//!   artifacts are unchanged by this module.
//!
//! The random families replace the legacy all-pairs Bernoulli scans with
//! sub-quadratic samplers: geometric skip sampling for `G(n, p)`, the
//! Miller–Hagberg weight-skipping walk for Chung–Lu, and radius-cell
//! bucketing for the random geometric graph.

use rand::{Rng, RngCore, SeedableRng, SplitMix64};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::csr::{Graph, NodeId, Weight};
use crate::error::GraphError;
use crate::unionfind::UnionFind;
use crate::{GraphBuilder, Result};

/// Fixed chunk length for parallel emission.  A constant (rather than
/// anything derived from the worker count) is what keeps streamed graphs
/// bit-identical across `RAYON_NUM_THREADS`.
const CHUNK: usize = 1 << 14;

type Edge = (NodeId, NodeId, Weight);

/// Mixes `(seed, salt, chunk)` through a SplitMix64 step into an independent
/// `ChaCha8` stream seed.  `salt` separates the draw phases of one generator
/// (e.g. backbone parents vs. extra edges), `chunk` the parallel chunks.
fn chunk_rng(seed: u64, salt: u64, chunk: u64) -> ChaCha8Rng {
    let mut mix = SplitMix64::new(seed ^ (salt << 32) ^ chunk);
    ChaCha8Rng::seed_from_u64(mix.next_u64())
}

/// Runs `emit` over fixed-size index chunks of `0..total` in parallel and
/// returns the per-chunk edge vectors in chunk order.
fn emit_chunked(
    total: usize,
    emit: impl Fn(usize, std::ops::Range<usize>, &mut Vec<Edge>) + Sync,
) -> Vec<Vec<Edge>> {
    let chunks = total.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(total);
            let mut out = Vec::new();
            emit(c, lo..hi, &mut out);
            out
        })
        .collect()
}

/// Stitches chunked edge sections into a pre-sized builder (exact edge count,
/// no per-edge hashing) and finalises with the usual connectivity check.
fn assemble(n: usize, sections: Vec<Vec<Edge>>) -> Result<Graph> {
    let m: usize = sections.iter().map(Vec::len).sum();
    let mut b = GraphBuilder::streaming(n, m)?;
    for chunk in sections {
        for (u, v, w) in chunk {
            b.push_normalized_edge(u, v, w);
        }
    }
    b.build()
}

/// Streaming path graph `P_n`; bit-identical to [`crate::generators::path`].
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    assemble(
        n,
        emit_chunked(n - 1, |_, range, out| {
            for i in range {
                out.push((i as NodeId, (i + 1) as NodeId, 1));
            }
        }),
    )
}

/// Streaming cycle `C_n`; bit-identical to [`crate::generators::cycle`].
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    assemble(
        n,
        emit_chunked(n, |_, range, out| {
            for i in range {
                if i + 1 < n {
                    out.push((i as NodeId, (i + 1) as NodeId, 1));
                } else {
                    out.push((0, (n - 1) as NodeId, 1));
                }
            }
        }),
    )
}

/// Streaming `d`-dimensional grid; bit-identical to [`crate::generators::grid`].
pub fn grid(dims: &[usize]) -> Result<Graph> {
    if dims.is_empty() || dims.contains(&0) {
        return Err(GraphError::InvalidParameter {
            reason: "grid dimensions must be non-empty and positive".into(),
        });
    }
    let n: usize = dims.iter().product();
    let mut strides = vec![1usize; dims.len()];
    for i in 1..dims.len() {
        strides[i] = strides[i - 1] * dims[i - 1];
    }
    assemble(
        n,
        emit_chunked(n, |_, range, out| {
            let mut coords = vec![0usize; dims.len()];
            for flat in range {
                let mut rest = flat;
                for (i, &d) in dims.iter().enumerate() {
                    coords[i] = rest % d;
                    rest /= d;
                }
                for (axis, &d) in dims.iter().enumerate() {
                    if coords[axis] + 1 < d {
                        out.push((flat as NodeId, (flat + strides[axis]) as NodeId, 1));
                    }
                }
            }
        }),
    )
}

/// Streaming truncated `arity`-ary tree with exactly `n` nodes; bit-identical
/// to [`crate::generators::tree_with_n`].
pub fn tree_with_n(arity: usize, n: usize) -> Result<Graph> {
    if arity == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "tree arity must be positive".into(),
        });
    }
    if n == 0 {
        return Err(GraphError::Empty);
    }
    assemble(
        n,
        emit_chunked(n - 1, |_, range, out| {
            for i in range {
                let v = i + 1;
                out.push((((v - 1) / arity) as NodeId, v as NodeId, 1));
            }
        }),
    )
}

/// Streaming leaf–spine fat tree; bit-identical to
/// [`crate::generators::fat_tree`].
pub fn fat_tree(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Result<Graph> {
    if spines == 0 || leaves == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "fat_tree requires at least one spine and one leaf".into(),
        });
    }
    let n = spines + leaves + leaves * hosts_per_leaf;
    assemble(
        n,
        emit_chunked(leaves, |_, range, out| {
            for l in range {
                let leaf = spines + l;
                for s in 0..spines {
                    out.push((s as NodeId, leaf as NodeId, 1));
                }
                for h in 0..hosts_per_leaf {
                    let host = spines + leaves + l * hosts_per_leaf + h;
                    out.push((leaf as NodeId, host as NodeId, 1));
                }
            }
        }),
    )
}

/// Streaming ring of cliques; bit-identical to
/// [`crate::generators::ring_of_cliques`].
pub fn ring_of_cliques(cliques: usize, clique_size: usize, bridges: usize) -> Result<Graph> {
    if cliques < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("ring_of_cliques requires >= 3 cliques, got {cliques}"),
        });
    }
    if clique_size == 0 {
        return Err(GraphError::Empty);
    }
    if bridges == 0 || bridges > clique_size {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "ring_of_cliques requires 1 <= bridges <= clique_size, got {bridges} bridges for clique size {clique_size}"
            ),
        });
    }
    let n = cliques * clique_size;
    assemble(
        n,
        emit_chunked(cliques, |_, range, out| {
            for c in range {
                let base = c * clique_size;
                for u in 0..clique_size {
                    for v in (u + 1)..clique_size {
                        out.push(((base + u) as NodeId, (base + v) as NodeId, 1));
                    }
                }
                let next_base = ((c + 1) % cliques) * clique_size;
                for i in 0..bridges {
                    let (a, b) = (base + i, next_base + i);
                    out.push((a.min(b) as NodeId, a.max(b) as NodeId, 1));
                }
            }
        }),
    )
}

/// Streaming barbell graph; bit-identical to [`crate::generators::barbell`].
pub fn barbell(clique: usize, path_len: usize) -> Result<Graph> {
    if clique == 0 {
        return Err(GraphError::Empty);
    }
    let n = 2 * clique + path_len;
    let clique_rows = |base: usize| {
        emit_chunked(clique, move |_, range, out| {
            for u in range {
                for v in (u + 1)..clique {
                    out.push(((base + u) as NodeId, (base + v) as NodeId, 1));
                }
            }
        })
    };
    let mut sections = clique_rows(0);
    sections.extend(clique_rows(clique + path_len));
    sections.extend(emit_chunked(path_len + 1, |_, range, out| {
        for i in range {
            // i = 0 attaches the path to the last node of clique A; the final
            // index attaches it to the first node of clique B.
            let (a, b) = if i == 0 {
                (clique - 1, clique)
            } else {
                (clique + i - 1, clique + i)
            };
            out.push((a as NodeId, b as NodeId, 1));
        }
    }));
    assemble(n, sections)
}

/// Streaming connected Erdős–Rényi graph `G(n, p)`.
///
/// The canonical stream differs from [`crate::generators::erdos_renyi`]:
/// connectivity comes from a random-parent backbone (`parent(v)` uniform in
/// `0..v`, drawn per chunk under salt 0), and the remaining pairs are sampled
/// row-by-row with geometric skips (salt 1) instead of an `Θ(n²)` Bernoulli
/// scan — expected `O(n + m)` draws in total.  A pair already used by the
/// backbone is skipped, keeping the graph simple.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must be in [0,1], got {p}"),
        });
    }
    // Salt 0: backbone parents, parent(v) uniform in 0..v for v in 1..n.
    let parent_chunks: Vec<Vec<NodeId>> = (0..n.saturating_sub(1).div_ceil(CHUNK).max(1))
        .into_par_iter()
        .map(|c| {
            let lo = 1 + c * CHUNK;
            let hi = (lo + CHUNK).min(n);
            let mut rng = chunk_rng(seed, 0, c as u64);
            (lo..hi.max(lo))
                .map(|v| rng.gen_range(0..v) as NodeId)
                .collect()
        })
        .collect();
    let mut parents: Vec<NodeId> = Vec::with_capacity(n);
    parents.push(0); // node 0 has no parent; the sentinel is never read as one
    for chunk in parent_chunks {
        parents.extend(chunk);
    }
    let backbone = emit_chunked(n.saturating_sub(1), |_, range, out| {
        for i in range {
            let v = (i + 1) as NodeId;
            out.push((parents[v as usize], v, 1));
        }
    });

    // Salt 1: extra edges via geometric skip sampling over each row u.
    let parents_ref = &parents;
    let mut sections = backbone;
    if p > 0.0 && n > 1 {
        sections.extend(emit_chunked(n - 1, |c, range, out| {
            let mut rng = chunk_rng(seed, 1, c as u64);
            let ln_q = (1.0 - p).ln(); // -inf when p == 1: skips collapse to 0
            for u in range {
                let mut v = u + 1;
                loop {
                    if p < 1.0 {
                        let r: f64 = rng.gen();
                        v = v.saturating_add(((1.0 - r).ln() / ln_q) as usize);
                    }
                    if v >= n {
                        break;
                    }
                    if parents_ref[v] as usize != u {
                        out.push((u as NodeId, v as NodeId, 1));
                    }
                    v += 1;
                }
            }
        }));
    }
    assemble(n, sections)
}

/// Streaming random geometric graph on the unit square.
///
/// The canonical stream differs from [`crate::generators::random_geometric`]:
/// points are drawn per chunk (salt 0) and pairs are found through a uniform
/// cell grid of side `>= radius` — each node only compares against the 9
/// neighbouring cells, so the expected work is `O(n + m)` instead of `Θ(n²)`.
/// Stray components are stitched to their nearest foreign node (expanding
/// cell-ring search, smallest index on distance ties), mimicking the legacy
/// relay semantics deterministically.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if radius <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: "radius must be positive".into(),
        });
    }
    // Salt 0: points, drawn (x, y) per node in chunk order.
    let point_chunks: Vec<Vec<(f64, f64)>> = (0..n.div_ceil(CHUNK))
        .into_par_iter()
        .map(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(n);
            let mut rng = chunk_rng(seed, 0, c as u64);
            (lo..hi)
                .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
                .collect()
        })
        .collect();
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(n);
    for chunk in point_chunks {
        points.extend(chunk);
    }

    // Cell grid with side >= radius (capped so the grid stays O(n) cells).
    let cap = (n as f64).sqrt().ceil() as usize + 1;
    let cps = ((1.0 / radius).floor() as usize).clamp(1, cap);
    let cell_of = |x: f64| -> usize { ((x * cps as f64) as usize).min(cps - 1) };
    let cell_id: Vec<usize> = points
        .iter()
        .map(|&(x, y)| cell_of(y) * cps + cell_of(x))
        .collect();
    // Counting-sort nodes by cell; nodes stay in index order within a cell.
    let mut counts = vec![0u32; cps * cps + 1];
    for &c in &cell_id {
        counts[c + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut members = vec![0 as NodeId; n];
    let mut cursor = counts.clone();
    for (v, &c) in cell_id.iter().enumerate() {
        members[cursor[c] as usize] = v as NodeId;
        cursor[c] += 1;
    }
    let cell_range = |c: usize| counts[c] as usize..counts[c + 1] as usize;

    let r2 = radius * radius;
    let dist2 = |u: usize, v: usize| -> f64 {
        let dx = points[u].0 - points[v].0;
        let dy = points[u].1 - points[v].1;
        dx * dx + dy * dy
    };
    let mut sections = emit_chunked(n, |_, range, out| {
        let mut candidates: Vec<NodeId> = Vec::new();
        for u in range {
            candidates.clear();
            let (cx, cy) = (cell_of(points[u].0), cell_of(points[u].1));
            for dy in -1i64..=1 {
                let ny = cy as i64 + dy;
                if ny < 0 || ny >= cps as i64 {
                    continue;
                }
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    if nx < 0 || nx >= cps as i64 {
                        continue;
                    }
                    for &v in &members[cell_range(ny as usize * cps + nx as usize)] {
                        if (v as usize) > u && dist2(u, v as usize) <= r2 {
                            candidates.push(v);
                        }
                    }
                }
            }
            candidates.sort_unstable();
            for &v in &candidates {
                out.push((u as NodeId, v, 1));
            }
        }
    });

    // Stitch stray components to their nearest foreign node.
    let mut uf = UnionFind::new(n);
    for chunk in &sections {
        for &(u, v, _) in chunk {
            uf.union(u as usize, v as usize);
        }
    }
    let mut stitches: Vec<Edge> = Vec::new();
    while uf.count_sets() > 1 {
        // Lowest-index node not connected to node 0 anchors the next stitch.
        let u = (1..n)
            .find(|&v| !uf.connected(0, v))
            .expect("more than one component implies a node outside 0's set");
        let (cx, cy) = (cell_of(points[u].0), cell_of(points[u].1));
        let mut best: Option<(f64, usize)> = None;
        let mut ring = 0usize;
        loop {
            let mut scanned_any = false;
            for dy in -(ring as i64)..=(ring as i64) {
                let ny = cy as i64 + dy;
                if ny < 0 || ny >= cps as i64 {
                    continue;
                }
                for dx in -(ring as i64)..=(ring as i64) {
                    if dx.unsigned_abs() as usize != ring && dy.unsigned_abs() as usize != ring {
                        continue; // interior cells were scanned by smaller rings
                    }
                    let nx = cx as i64 + dx;
                    if nx < 0 || nx >= cps as i64 {
                        continue;
                    }
                    scanned_any = true;
                    for &v in &members[cell_range(ny as usize * cps + nx as usize)] {
                        if uf.connected(u, v as usize) {
                            continue;
                        }
                        let d = dist2(u, v as usize);
                        let better = match best {
                            None => true,
                            Some((bd, bv)) => d < bd || (d == bd && (v as usize) < bv),
                        };
                        if better {
                            best = Some((d, v as usize));
                        }
                    }
                }
            }
            // One extra ring after the first hit: the closest point of a
            // farther ring can still beat a corner hit of this ring.
            if best.is_some() && ring > 0 {
                break;
            }
            if !scanned_any && ring > 2 * cps {
                break;
            }
            ring += 1;
        }
        let (_, v) = best.expect("a foreign node exists while components remain");
        uf.union(u, v);
        stitches.push((u.min(v) as NodeId, u.max(v) as NodeId, 1));
    }
    sections.push(stitches);
    assemble(n, sections)
}

/// Streaming Chung–Lu power-law graph.
///
/// Weights and stray-component hub attachment match
/// [`crate::generators::chung_lu`] exactly; the pair sampling is the
/// Miller–Hagberg skipping walk (weights are sorted decreasing, so each row
/// walks `v` with geometric skips under the current upper-bound probability
/// and thins lazily to the true `min(1, w_u·w_v / Σw)`), drawn per row chunk
/// under a SplitMix-derived `ChaCha8` stream — expected `O(n + m)` draws.
pub fn chung_lu(n: usize, exponent: f64, avg_degree: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if exponent <= 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chung_lu requires a tail exponent > 1, got {exponent}"),
        });
    }
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chung_lu requires a positive average degree, got {avg_degree}"),
        });
    }
    let alpha = 1.0 / (exponent - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let raw_sum: f64 = raw.iter().sum();
    let scale = n as f64 * avg_degree / raw_sum;
    let w: Vec<f64> = raw.iter().map(|r| r * scale).collect();
    let total: f64 = n as f64 * avg_degree;

    let w_ref = &w;
    let mut sections = if n > 1 {
        emit_chunked(n - 1, |c, range, out| {
            let mut rng = chunk_rng(seed, 0, c as u64);
            for u in range {
                let wu = w_ref[u];
                let mut v = u + 1;
                let mut p = (wu * w_ref[v] / total).min(1.0);
                while v < n && p > 0.0 {
                    if p < 1.0 {
                        let r: f64 = rng.gen();
                        v = v.saturating_add(((1.0 - r).ln() / (1.0 - p).ln()) as usize);
                        if v >= n {
                            break;
                        }
                    }
                    let q = (wu * w_ref[v] / total).min(1.0);
                    if rng.gen::<f64>() < q / p {
                        out.push((u as NodeId, v as NodeId, 1));
                    }
                    p = q;
                    v += 1;
                }
            }
        })
    } else {
        Vec::new()
    };

    // Attach every stray component to the hub (node 0) through its
    // lowest-index node — the same rule as the legacy generator.
    if n > 1 {
        let mut uf = UnionFind::new(n);
        for chunk in &sections {
            for &(u, v, _) in chunk {
                uf.union(u as usize, v as usize);
            }
        }
        let mut stitches: Vec<Edge> = Vec::new();
        for v in 1..n {
            if !uf.connected(0, v) {
                uf.union(0, v);
                stitches.push((0, v as NodeId, 1));
            }
        }
        sections.push(stitches);
    }
    assemble(n, sections)
}

/// Streaming re-weighting: replaces every edge weight by an independent
/// uniform draw in `[1, max_weight]`, one SplitMix-derived `ChaCha8` stream
/// per edge chunk.  The canonical stream differs from
/// [`crate::generators::with_random_weights`] (which draws sequentially), but
/// is seed- and thread-deterministic at any size.
pub fn with_random_weights(graph: &Graph, max_weight: Weight, seed: u64) -> Result<Graph> {
    if max_weight == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "max_weight must be >= 1".into(),
        });
    }
    let edges = graph.edges();
    let sections = emit_chunked(edges.len(), |c, range, out| {
        let mut rng = chunk_rng(seed, 0, c as u64);
        for i in range {
            let (u, v, _) = edges[i];
            out.push((u, v, rng.gen_range(1..=max_weight)));
        }
    });
    assemble(graph.n(), sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::connected_components;

    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn deterministic_families_match_legacy_bit_for_bit() {
        for n in [1usize, 2, 3, 17, 64, 1000, 40_000] {
            assert_same(&path(n).unwrap(), &generators::path(n).unwrap());
            if n >= 3 {
                assert_same(&cycle(n).unwrap(), &generators::cycle(n).unwrap());
            }
            assert_same(
                &tree_with_n(2, n).unwrap(),
                &generators::tree_with_n(2, n).unwrap(),
            );
        }
        for dims in [vec![7, 9], vec![40, 40], vec![5, 6, 7], vec![13, 13, 13]] {
            assert_same(&grid(&dims).unwrap(), &generators::grid(&dims).unwrap());
        }
        assert_same(
            &fat_tree(4, 8, 123).unwrap(),
            &generators::fat_tree(4, 8, 123).unwrap(),
        );
        assert_same(
            &ring_of_cliques(300, 8, 2).unwrap(),
            &generators::ring_of_cliques(300, 8, 2).unwrap(),
        );
        for (clique, tail) in [(1, 0), (4, 0), (5, 3), (300, 500)] {
            assert_same(
                &barbell(clique, tail).unwrap(),
                &generators::barbell(clique, tail).unwrap(),
            );
        }
    }

    #[test]
    fn random_families_are_seed_deterministic_and_connected() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let n = 5000;
            let er1 = erdos_renyi(n, 6.0 / n as f64, seed).unwrap();
            let er2 = erdos_renyi(n, 6.0 / n as f64, seed).unwrap();
            assert_same(&er1, &er2);
            let (_, c) = connected_components(&er1);
            assert_eq!(c, 1, "ER not connected");

            let rgg1 = random_geometric(n, (8.0 / n as f64).sqrt(), seed).unwrap();
            let rgg2 = random_geometric(n, (8.0 / n as f64).sqrt(), seed).unwrap();
            assert_same(&rgg1, &rgg2);
            let (_, c) = connected_components(&rgg1);
            assert_eq!(c, 1, "RGG not connected");

            let cl1 = chung_lu(n, 2.5, 6.0, seed).unwrap();
            let cl2 = chung_lu(n, 2.5, 6.0, seed).unwrap();
            assert_same(&cl1, &cl2);
            let (_, c) = connected_components(&cl1);
            assert_eq!(c, 1, "Chung-Lu not connected");
        }
    }

    #[test]
    fn random_families_land_in_the_expected_density_regime() {
        let n = 20_000;
        let er = erdos_renyi(n, 6.0 / n as f64, 42).unwrap();
        let avg = 2.0 * er.m() as f64 / n as f64;
        assert!((4.0..=10.0).contains(&avg), "ER average degree {avg:.2}");

        let rgg = random_geometric(n, (8.0 / n as f64).sqrt(), 42).unwrap();
        let avg = 2.0 * rgg.m() as f64 / n as f64;
        // Expected degree ≈ π·r²·n = 8π ≈ 25 (minus boundary effects).
        assert!((10.0..=40.0).contains(&avg), "RGG average degree {avg:.2}");

        let cl = chung_lu(n, 2.5, 6.0, 42).unwrap();
        let avg = 2.0 * cl.m() as f64 / n as f64;
        assert!(
            (2.0..=12.0).contains(&avg),
            "Chung-Lu average degree {avg:.2}"
        );
        // Heavy tail: the hub (node 0, maximum weight) dwarfs the average.
        let max_deg = cl.nodes().map(|v| cl.degree(v)).max().unwrap();
        assert!(max_deg as f64 >= 4.0 * avg, "no hub: {max_deg} vs {avg:.1}");
    }

    #[test]
    fn er_p_one_is_complete() {
        let g = erdos_renyi(40, 1.0, 3).unwrap();
        assert_eq!(g.m(), 40 * 39 / 2);
    }

    #[test]
    fn streamed_reweighting_is_deterministic_and_in_range() {
        let base = grid(&[50, 50]).unwrap();
        let w1 = with_random_weights(&base, 32, 9).unwrap();
        let w2 = with_random_weights(&base, 32, 9).unwrap();
        assert_same(&w1, &w2);
        assert_eq!(w1.m(), base.m());
        for (&(u, v, w), &(bu, bv, _)) in w1.edges().iter().zip(base.edges()) {
            assert_eq!((u, v), (bu, bv));
            assert!((1..=32).contains(&w));
        }
        assert!(with_random_weights(&base, 0, 9).is_err());
    }

    #[test]
    fn validation_errors_match_legacy() {
        assert!(path(0).is_err());
        assert!(cycle(2).is_err());
        assert!(grid(&[]).is_err());
        assert!(grid(&[0, 3]).is_err());
        assert!(tree_with_n(0, 5).is_err());
        assert!(tree_with_n(2, 0).is_err());
        assert!(fat_tree(0, 3, 2).is_err());
        assert!(ring_of_cliques(2, 4, 1).is_err());
        assert!(ring_of_cliques(4, 3, 0).is_err());
        assert!(barbell(0, 3).is_err());
        assert!(erdos_renyi(10, 1.5, 0).is_err());
        assert!(erdos_renyi(0, 0.5, 0).is_err());
        assert!(random_geometric(10, 0.0, 0).is_err());
        assert!(chung_lu(10, 1.0, 6.0, 0).is_err());
        assert!(chung_lu(10, 2.5, 0.0, 0).is_err());
    }
}
