//! Ball queries `B_t(v)` — the primitive underlying the neighborhood quality
//! parameter `NQ_k` (Definition 3.1 of the paper).
//!
//! `B_t(v)` is the set of nodes within hop distance `t` of `v`, including `v`
//! itself.  The paper repeatedly needs, for a node `v`, the *sizes* of all
//! balls `|B_1(v)|, |B_2(v)|, …` up to some radius; [`ball_size_profile`]
//! returns exactly that, and [`BallOracle`] caches the profiles for repeated
//! `NQ_k` queries with different `k` (as the benchmarks sweep `k`).

use std::collections::VecDeque;

use rayon::prelude::*;

use crate::csr::{Graph, NodeId};
use crate::dijkstra::DijkstraWorkspace;

/// Members of the ball `B_t(v)` (unsorted).
pub fn ball_members(graph: &Graph, v: NodeId, t: u64) -> Vec<NodeId> {
    let r = crate::traversal::bfs_bounded(graph, v, t);
    r.order
}

/// Size of the ball `B_t(v)`.
pub fn ball_size(graph: &Graph, v: NodeId, t: u64) -> usize {
    ball_members(graph, v, t).len()
}

/// Sizes `|B_0(v)|, |B_1(v)|, …, |B_r(v)|` for the largest needed radius `r`.
///
/// The profile stops early once the ball covers the whole graph (further
/// entries would all equal `n`); the returned vector therefore has length
/// `min(max_radius, ecc(v)) + 1`.
pub fn ball_size_profile(graph: &Graph, v: NodeId, max_radius: u64) -> Vec<usize> {
    let n = graph.n();
    let mut dist = vec![u64::MAX; n];
    let mut queue = VecDeque::new();
    dist[v as usize] = 0;
    queue.push_back(v);
    let mut counts_per_layer: Vec<usize> = vec![1];
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du >= max_radius {
            continue;
        }
        for a in graph.arcs(u) {
            let w = a.to as usize;
            if dist[w] == u64::MAX {
                dist[w] = du + 1;
                if counts_per_layer.len() <= (du + 1) as usize {
                    counts_per_layer.push(0);
                }
                counts_per_layer[(du + 1) as usize] += 1;
                queue.push_back(a.to);
            }
        }
    }
    // Prefix sums: |B_t(v)| = sum of layer sizes up to t.
    let mut profile = Vec::with_capacity(counts_per_layer.len());
    let mut acc = 0usize;
    for c in counts_per_layer {
        acc += c;
        profile.push(acc);
    }
    profile
}

/// Caches ball-size profiles for every node, supporting repeated
/// neighborhood-quality queries for different workloads `k`.
#[derive(Debug, Clone)]
pub struct BallOracle {
    profiles: Vec<Vec<usize>>,
    n: usize,
}

impl BallOracle {
    /// Precomputes profiles up to radius `max_radius` for every node.
    ///
    /// `max_radius` only needs to be an upper bound on the radii the caller
    /// will query (e.g. the diameter, or `√k_max` by Lemma 3.6).
    pub fn new(graph: &Graph, max_radius: u64) -> Self {
        // One bounded BFS per node, fanned out over all cores; the worker
        // workspace makes each profile an allocation-free sweep (the profile
        // itself is read off the workspace's settle order, which is sorted by
        // distance).
        let profiles = (0..graph.n() as NodeId)
            .into_par_iter()
            .map_init(DijkstraWorkspace::new, |ws, v| {
                ws.run_bfs_bounded(graph, v, max_radius);
                let dist = ws.dist();
                let reached = ws.reached();
                let max_d = reached.last().map(|&u| dist[u as usize]).unwrap_or(0);
                let mut profile = vec![0usize; max_d as usize + 1];
                for &u in reached {
                    profile[dist[u as usize] as usize] += 1;
                }
                let mut acc = 0usize;
                for slot in profile.iter_mut() {
                    acc += *slot;
                    *slot = acc;
                }
                profile
            })
            .with_min_len(1)
            .collect();
        BallOracle {
            profiles,
            n: graph.n(),
        }
    }

    /// Number of nodes of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `|B_t(v)|`.  Radii beyond the precomputed profile saturate at the last
    /// entry (the ball stopped growing, so this is exact whenever the profile
    /// was computed up to the node's eccentricity).
    pub fn ball_size(&self, v: NodeId, t: u64) -> usize {
        let profile = &self.profiles[v as usize];
        let idx = (t as usize).min(profile.len() - 1);
        profile[idx]
    }

    /// The full profile of node `v`.
    pub fn profile(&self, v: NodeId) -> &[usize] {
        &self.profiles[v as usize]
    }

    /// Eccentricity of `v`, provided the oracle was built with `max_radius`
    /// at least the graph's diameter: the profile stops growing exactly at
    /// the eccentricity, so its length encodes it for free.
    pub fn eccentricity(&self, v: NodeId) -> u64 {
        (self.profiles[v as usize].len() - 1) as u64
    }

    /// Maximum eccentricity over all nodes (the hop diameter, when built with
    /// an unbounded radius).
    pub fn max_eccentricity(&self) -> u64 {
        (0..self.n as NodeId)
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ball_sizes_on_path() {
        let g = generators::path(10).unwrap();
        assert_eq!(ball_size(&g, 0, 0), 1);
        assert_eq!(ball_size(&g, 0, 3), 4);
        assert_eq!(ball_size(&g, 5, 2), 5);
        assert_eq!(ball_size(&g, 5, 100), 10);
    }

    #[test]
    fn ball_members_contains_center() {
        let g = generators::cycle(8).unwrap();
        let members = ball_members(&g, 3, 2);
        assert!(members.contains(&3));
        assert_eq!(members.len(), 5);
    }

    #[test]
    fn profile_is_monotone_and_matches_ball_size() {
        let g = generators::grid(&[5, 5]).unwrap();
        for v in [0u32, 12, 24] {
            let profile = ball_size_profile(&g, v, 20);
            for w in profile.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for (t, &s) in profile.iter().enumerate() {
                assert_eq!(s, ball_size(&g, v, t as u64));
            }
            assert_eq!(*profile.last().unwrap(), 25);
        }
    }

    #[test]
    fn profile_truncates_at_max_radius() {
        let g = generators::path(20).unwrap();
        let profile = ball_size_profile(&g, 0, 5);
        assert_eq!(profile.len(), 6);
        assert_eq!(profile[5], 6);
    }

    #[test]
    fn oracle_saturates_beyond_profile() {
        let g = generators::grid(&[4, 4]).unwrap();
        let oracle = BallOracle::new(&g, 100);
        assert_eq!(oracle.n(), 16);
        assert_eq!(oracle.ball_size(0, 0), 1);
        assert_eq!(oracle.ball_size(0, 6), 16);
        assert_eq!(oracle.ball_size(0, 1000), 16);
        assert_eq!(oracle.profile(0)[0], 1);
    }
}
