//! Validating builder for [`Graph`].

use std::collections::HashSet;

use crate::csr::{Arc, EdgeId, Graph, NodeId, Weight};
use crate::error::GraphError;
use crate::unionfind::UnionFind;
use crate::Result;

/// Incrementally builds an undirected, simple, weighted graph and validates
/// the invariants the HYBRID model assumes (no self loops, no duplicate
/// edges, weights `>= 1`, connectedness on [`GraphBuilder::build`]).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
    seen: HashSet<(NodeId, NodeId)>,
}

/// Largest node count representable in the `u32` id space.
pub const MAX_NODES: usize = u32::MAX as usize;

/// Largest edge count whose arc array (`2 × edges`) still fits `u32` indices.
pub const MAX_EDGES: usize = (u32::MAX / 2) as usize;

/// Returns a clean error when `n` nodes or `edges` undirected edges would
/// overflow the `u32` id / arc index space of the CSR representation.
fn validate_counts(n: usize, edges: usize) -> Result<()> {
    if n > MAX_NODES {
        return Err(GraphError::TooManyNodes { n });
    }
    if edges > MAX_EDGES {
        return Err(GraphError::TooManyArcs { arcs: edges * 2 });
    }
    Ok(())
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Creates a builder pre-sized for exactly `m` edges on `n` nodes, so the
    /// edge list and the duplicate-detection set never reallocate while a
    /// generator streams edges in.  Generators know their exact edge counts
    /// (`n − 1` for a path, `Σ (sideᵢ − 1)·Πⱼ≠ᵢ sideⱼ` for a grid, …), which
    /// makes this the large-`n` fast path.
    ///
    /// # Errors
    /// [`GraphError::TooManyNodes`] / [`GraphError::TooManyArcs`] when the
    /// requested counts would overflow the `u32` id or arc index space —
    /// checked *before* any allocation is attempted.
    pub fn with_capacity(n: usize, m: usize) -> Result<Self> {
        validate_counts(n, m)?;
        Ok(GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            seen: HashSet::with_capacity(m),
        })
    }

    /// Streaming-generator constructor: pre-sizes the edge list for exactly
    /// `m` edges but leaves the duplicate-detection set empty — the streaming
    /// generators guarantee simplicity by construction and feed edges through
    /// [`Self::push_normalized_edge`], so paying a `HashSet` per edge at
    /// `n = 10⁶` would be pure overhead.
    pub(crate) fn streaming(n: usize, m: usize) -> Result<Self> {
        validate_counts(n, m)?;
        Ok(GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            seen: HashSet::new(),
        })
    }

    /// Appends an edge the caller guarantees is normalized (`u < v`), in
    /// range, simple and positively weighted.  Only the streaming generators
    /// use this; the invariants are checked in debug builds.
    pub(crate) fn push_normalized_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        debug_assert!(u < v, "streamed edge must be normalized: ({u}, {v})");
        debug_assert!((v as usize) < self.n, "streamed endpoint {v} out of range");
        debug_assert!(w >= 1, "streamed edge ({u}, {v}) has zero weight");
        self.edges.push((u, v, w));
    }

    /// Number of nodes of the graph being built.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    /// Returns an error on out-of-range endpoints, self loops, zero weights
    /// or duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<&mut Self> {
        if u as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                n: self.n as u32,
            });
        }
        if v as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                n: self.n as u32,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        if self.edges.len() >= MAX_EDGES {
            return Err(GraphError::TooManyArcs {
                arcs: (self.edges.len() + 1) * 2,
            });
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push((key.0, key.1, w));
        Ok(self)
    }

    /// Adds an unweighted (weight-1) edge.
    pub fn add_unweighted_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self> {
        self.add_edge(u, v, 1)
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Finalises the graph, requiring it to be non-empty and **connected**
    /// (the paper's standing assumption, Section 1.2).
    ///
    /// # Errors
    /// [`GraphError::Empty`] for `n == 0`, [`GraphError::Disconnected`] if the
    /// supplied edges do not connect all nodes.
    pub fn build(self) -> Result<Graph> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        validate_counts(self.n, self.edges.len())?;
        let mut uf = UnionFind::new(self.n);
        for &(u, v, _) in &self.edges {
            uf.union(u as usize, v as usize);
        }
        let components = uf.count_sets();
        if components != 1 {
            return Err(GraphError::Disconnected { components });
        }
        Ok(self.assemble())
    }

    /// Finalises the graph without the connectivity check (used for spanners,
    /// sparsifiers and other derived subgraphs which may legitimately be
    /// disconnected).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn build_unchecked_connectivity(self) -> Graph {
        assert!(self.n > 0, "graph must have at least one node");
        self.assemble()
    }

    fn assemble(self) -> Graph {
        let n = self.n;
        let weighted = self.edges.iter().any(|&(_, _, w)| w != 1);
        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut arcs = vec![
            Arc {
                to: 0,
                weight: 0,
                edge: 0
            };
            2 * self.edges.len()
        ];
        for (idx, &(u, v, w)) in self.edges.iter().enumerate() {
            let e = idx as EdgeId;
            arcs[cursor[u as usize] as usize] = Arc {
                to: v,
                weight: w,
                edge: e,
            };
            cursor[u as usize] += 1;
            arcs[cursor[v as usize] as usize] = Arc {
                to: u,
                weight: w,
                edge: e,
            };
            cursor[v as usize] += 1;
        }
        Graph::from_parts(offsets, arcs, self.edges, weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3, 1).unwrap_err(),
            GraphError::NodeOutOfRange { node: 3, n: 3 }
        );
        assert_eq!(
            b.add_edge(5, 1, 1).unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 3 }
        );
    }

    #[test]
    fn rejects_self_loop_zero_weight_and_duplicates() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(1, 1, 1).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
        assert_eq!(
            b.add_edge(0, 1, 0).unwrap_err(),
            GraphError::ZeroWeight { u: 0, v: 1 }
        );
        b.add_edge(0, 1, 2).unwrap();
        assert_eq!(
            b.add_edge(1, 0, 9).unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
    }

    #[test]
    fn build_requires_connectivity() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::Disconnected { components: 2 }
        );
    }

    #[test]
    fn build_empty_rejected() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn unchecked_build_allows_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        let g = b.build_unchecked_connectivity();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn count_validation_at_the_u32_boundaries() {
        // Exactly representable counts pass …
        assert!(validate_counts(MAX_NODES, MAX_EDGES).is_ok());
        // … one past either boundary fails with the matching error.
        assert_eq!(
            validate_counts(MAX_NODES + 1, 0).unwrap_err(),
            GraphError::TooManyNodes { n: MAX_NODES + 1 }
        );
        assert_eq!(
            validate_counts(4, MAX_EDGES + 1).unwrap_err(),
            GraphError::TooManyArcs {
                arcs: (MAX_EDGES + 1) * 2,
            }
        );
    }

    #[test]
    fn with_capacity_rejects_overflow_before_allocating() {
        assert_eq!(
            GraphBuilder::with_capacity(MAX_NODES + 1, 0).unwrap_err(),
            GraphError::TooManyNodes { n: MAX_NODES + 1 }
        );
        assert_eq!(
            GraphBuilder::with_capacity(4, MAX_EDGES + 1).unwrap_err(),
            GraphError::TooManyArcs {
                arcs: (MAX_EDGES + 1) * 2,
            }
        );
        let b = GraphBuilder::with_capacity(4, 3).unwrap();
        assert_eq!(b.n(), 4);
        assert_eq!(b.m(), 0);
    }

    #[test]
    fn build_rejects_node_count_past_u32() {
        let b = GraphBuilder::new(MAX_NODES + 1);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::TooManyNodes { n: MAX_NODES + 1 }
        );
    }

    #[test]
    fn contains_edge_is_orientation_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }
}
