//! Disjoint-set union structure used by connectivity checks, spanning-forest
//! decompositions and spanner construction.

/// Union–find with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.  Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn count_sets(&self) -> usize {
        self.sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.count_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn path_compression_preserves_roots() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.count_sets(), 1);
    }
}
