//! Breadth-first search based oracles: hop distances, BFS trees, multi-source
//! BFS and connected components.
//!
//! Hop distances `hop(v, w)` are what the paper's neighborhood-quality
//! parameter, clusterings and lower bounds are defined over (Section 1.2).

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId, Weight, INFINITY};

/// Result of a single-source BFS.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Hop distance from the source to every node (`INFINITY` if unreachable).
    pub dist: Vec<Weight>,
    /// BFS-tree parent of every node (`None` for the source / unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in the order they were settled (non-decreasing distance).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Maximum finite distance reached (the eccentricity of the source if the
    /// graph is connected).
    pub fn eccentricity(&self) -> Weight {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != INFINITY)
            .max()
            .unwrap_or(0)
    }

    /// Reconstructs the hop-shortest path from the source to `t`, inclusive of
    /// both endpoints.  Returns `None` if `t` is unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t as usize] == INFINITY {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Single-source BFS from `source`.
pub fn bfs(graph: &Graph, source: NodeId) -> BfsResult {
    bfs_bounded(graph, source, u64::MAX)
}

/// BFS from `source` exploring only nodes within `max_depth` hops.
pub fn bfs_bounded(graph: &Graph, source: NodeId, max_depth: u64) -> BfsResult {
    let n = graph.n();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v as usize];
        if dv >= max_depth {
            continue;
        }
        for a in graph.arcs(v) {
            let u = a.to as usize;
            if dist[u] == INFINITY {
                dist[u] = dv + 1;
                parent[u] = Some(v);
                queue.push_back(a.to);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        order,
    }
}

/// Multi-source BFS: hop distance from the *closest* source, plus which
/// source is closest (ties broken by smaller source id, matching the
/// tie-breaking used by the paper's clustering, Lemma 3.5).
#[derive(Debug, Clone)]
pub struct MultiSourceBfs {
    /// Hop distance to the closest source.
    pub dist: Vec<Weight>,
    /// Closest source for every node (`None` if unreachable).
    pub closest: Vec<Option<NodeId>>,
}

/// Runs a multi-source BFS from `sources`.
///
/// Tie-breaking: when two sources are equidistant from a node, the one with
/// the smaller node id wins (deterministic, as required by Lemma 3.5).
pub fn multi_source_bfs(graph: &Graph, sources: &[NodeId]) -> MultiSourceBfs {
    let n = graph.n();
    let mut dist = vec![INFINITY; n];
    let mut closest: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &s in &sorted {
        dist[s as usize] = 0;
        closest[s as usize] = Some(s);
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        let cv = closest[v as usize];
        for a in graph.arcs(v) {
            let u = a.to as usize;
            if dist[u] == INFINITY {
                dist[u] = dv + 1;
                closest[u] = cv;
                queue.push_back(a.to);
            } else if dist[u] == dv + 1 {
                // Deterministic tie-break by smaller source id.
                if let (Some(old), Some(new)) = (closest[u], cv) {
                    if new < old {
                        // Re-relaxation with equal distance cannot change
                        // distances further away incorrectly because the BFS
                        // layer structure is unchanged; we simply fix the label.
                        closest[u] = Some(new);
                    }
                }
            }
        }
    }
    // A second sweep in BFS order guarantees the tie-break is globally
    // consistent (a node's closest source is the minimum over the closest
    // sources of its predecessors on shortest hop paths).
    let order = bfs_layers_order(graph, &sorted);
    for &v in &order {
        let dv = dist[v as usize];
        if dv == 0 || dv == INFINITY {
            continue;
        }
        let mut best = closest[v as usize];
        for a in graph.arcs(v) {
            let u = a.to as usize;
            if dist[u] + 1 == dv {
                match (best, closest[u]) {
                    (Some(b), Some(c)) if c < b => best = Some(c),
                    (None, Some(c)) => best = Some(c),
                    _ => {}
                }
            }
        }
        closest[v as usize] = best;
    }
    MultiSourceBfs { dist, closest }
}

/// Nodes ordered by hop distance from the source set (stable within a layer).
fn bfs_layers_order(graph: &Graph, sources: &[NodeId]) -> Vec<NodeId> {
    let n = graph.n();
    let mut dist = vec![INFINITY; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == INFINITY {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for a in graph.arcs(v) {
            let u = a.to as usize;
            if dist[u] == INFINITY {
                dist[u] = dist[v as usize] + 1;
                queue.push_back(a.to);
            }
        }
    }
    order
}

/// Connected components of the graph.  Returns `(component_id_per_node,
/// number_of_components)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s] = count;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for a in graph.arcs(v) {
                let u = a.to as usize;
                if comp[u] == usize::MAX {
                    comp[u] = count;
                    queue.push_back(a.to);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = generators::path(6).unwrap();
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.eccentricity(), 5);
        assert_eq!(r.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_bounded_limits_exploration() {
        let g = generators::path(10).unwrap();
        let r = bfs_bounded(&g, 0, 3);
        assert_eq!(r.dist[3], 3);
        assert_eq!(r.dist[4], INFINITY);
    }

    #[test]
    fn bfs_order_is_sorted_by_distance() {
        let g = generators::grid(&[4, 4]).unwrap();
        let r = bfs(&g, 0);
        for w in r.order.windows(2) {
            assert!(r.dist[w[0] as usize] <= r.dist[w[1] as usize]);
        }
    }

    #[test]
    fn multi_source_bfs_assigns_closest_source() {
        let g = generators::path(9).unwrap();
        let r = multi_source_bfs(&g, &[0, 8]);
        assert_eq!(r.dist[4], 4);
        assert_eq!(r.closest[1], Some(0));
        assert_eq!(r.closest[7], Some(8));
        // Equidistant node 4: tie broken towards smaller id.
        assert_eq!(r.closest[4], Some(0));
    }

    #[test]
    fn multi_source_bfs_dedups_sources() {
        let g = generators::cycle(5).unwrap();
        let r = multi_source_bfs(&g, &[2, 2, 2]);
        assert_eq!(r.dist[2], 0);
        assert!(r.dist.iter().all(|&d| d <= 2));
    }

    #[test]
    fn connected_components_counts() {
        let g = generators::path(4).unwrap();
        let (comp, c) = connected_components(&g);
        assert_eq!(c, 1);
        assert!(comp.iter().all(|&x| x == 0));
        let sub = g.edge_subgraph(|e| e != 1);
        let (_, c) = connected_components(&sub);
        assert_eq!(c, 2);
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = generators::path(4).unwrap();
        let sub = g.edge_subgraph(|e| e != 1);
        let r = bfs(&sub, 0);
        assert!(r.path_to(3).is_none());
    }
}
