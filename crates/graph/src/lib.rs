//! # hybrid-graph
//!
//! Graph substrate for the reproduction of *"Universally Optimal Information
//! Dissemination and Shortest Paths in the HYBRID Distributed Model"*
//! (Chang, Hecht, Leitersdorf, Schneider — PODC 2024).
//!
//! The crate provides everything the distributed algorithms and the HYBRID
//! simulator need from "the graph" itself:
//!
//! * an immutable, cache-friendly CSR representation ([`Graph`]) of the local
//!   communication network `G = (V, E, ω)`;
//! * a validating [`GraphBuilder`];
//! * deterministic, seedable **generators** for the graph families the paper
//!   analyses (paths, cycles, `d`-dimensional grids and tori, balanced trees,
//!   stars, caterpillars, Erdős–Rényi graphs, random geometric graphs and a
//!   fat-tree-like data-center topology) — see [`generators`];
//! * centralized **distance oracles** used as ground truth and as building
//!   blocks: BFS, multi-source BFS, Dijkstra, hop-limited Dijkstra
//!   ([`traversal`], [`dijkstra`]);
//! * **ball queries** `B_t(v)` which underlie the neighborhood-quality
//!   parameter `NQ_k` ([`balls`]);
//! * structural **properties** (connectivity, eccentricities, diameter) and
//!   **cut evaluation** used by the cut-sparsifier experiments.
//!
//! All randomised constructions take an explicit [`rand::Rng`] so that every
//! experiment in the repository is reproducible from a seed.

// The default build carries no unsafe code at all; the `simd` feature opts
// into one audited `#[allow(unsafe_code)]` module of AVX2 intrinsics (the
// Dial bucket-occupancy scan in [`dijkstra::bucket_scan`]) and keeps
// everything else denied.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod balls;
pub mod builder;
pub mod csr;
pub mod cuts;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod properties;
pub mod streaming;
pub mod traversal;
pub mod unionfind;

pub use builder::GraphBuilder;
pub use csr::{EdgeId, Graph, NodeId, Weight, INFINITY};
pub use error::GraphError;

/// Convenient result alias for fallible graph construction.
pub type Result<T> = std::result::Result<T, GraphError>;
