//! Error types for graph construction and queries.

use std::fmt;

/// Errors produced while building or querying a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node id that is out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph being built.
        n: u32,
    },
    /// A self-loop `{v, v}` was supplied; the HYBRID model graphs are simple.
    SelfLoop {
        /// The node with the self-loop.
        node: u32,
    },
    /// An edge weight of zero was supplied; the paper assumes weights in `[1, poly(n)]`.
    ZeroWeight {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// The same undirected edge was supplied more than once (with any weights).
    DuplicateEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// The graph is required to be connected but is not.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// An empty graph (zero nodes) was requested where at least one node is required.
    Empty,
    /// A generator was asked for parameters it cannot satisfy.
    InvalidParameter {
        /// Human readable description of the parameter problem.
        reason: String,
    },
    /// The requested node count does not fit the `u32` id space.
    TooManyNodes {
        /// The requested number of nodes.
        n: usize,
    },
    /// The requested edge count would overflow the `u32` arc index space
    /// (every undirected edge stores two arcs).
    TooManyArcs {
        /// The number of arcs (`2 × edges`) that was requested.
        arcs: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::ZeroWeight { u, v } => {
                write!(f, "edge {{{u}, {v}}} has weight 0; weights must be >= 1")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} supplied more than once")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is not connected ({components} components)")
            }
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            GraphError::TooManyNodes { n } => {
                write!(
                    f,
                    "{n} nodes do not fit the u32 id space (max {})",
                    u32::MAX
                )
            }
            GraphError::TooManyArcs { arcs } => {
                write!(
                    f,
                    "{arcs} arcs (2 x edges) overflow the u32 arc index space (max {})",
                    u32::MAX
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = GraphError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::ZeroWeight { u: 1, v: 2 };
        assert!(e.to_string().contains("weight 0"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("more than once"));
        let e = GraphError::Disconnected { components: 4 };
        assert!(e.to_string().contains('4'));
        let e = GraphError::Empty;
        assert!(e.to_string().contains("at least one"));
        let e = GraphError::InvalidParameter {
            reason: "d must be positive".into(),
        };
        assert!(e.to_string().contains("d must be positive"));
        let e = GraphError::TooManyNodes { n: 1 << 33 };
        assert!(e.to_string().contains("u32 id space"));
        let e = GraphError::TooManyArcs { arcs: 1 << 33 };
        assert!(e.to_string().contains("arc index space"));
    }
}
