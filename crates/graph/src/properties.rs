//! Structural graph properties: eccentricities, diameter, radius, arboricity
//! upper bounds, and degeneracy ordering.
//!
//! The diameter `D` appears throughout the paper: `NQ_k ≤ D` (Lemma 3.6) and
//! every global problem is trivially solvable in `D` rounds using only the
//! local network.

use rayon::prelude::*;

use crate::csr::{Graph, NodeId, Weight};
use crate::dijkstra::DijkstraWorkspace;
use crate::traversal::bfs;

/// Hop eccentricity of `v`: `max_w hop(v, w)`.
pub fn eccentricity(graph: &Graph, v: NodeId) -> Weight {
    bfs(graph, v).eccentricity()
}

/// Hop eccentricities of every node (`n` BFS traversals, fanned out over all
/// cores with one reusable workspace per worker).
pub fn eccentricities(graph: &Graph) -> Vec<Weight> {
    (0..graph.n() as NodeId)
        .into_par_iter()
        .map_init(DijkstraWorkspace::new, |ws, v| {
            ws.run_bfs(graph, v);
            // Every reached node has a finite distance; BFS settles in
            // non-decreasing order, so the last reached node is farthest.
            ws.reached()
                .last()
                .map(|&u| ws.dist()[u as usize])
                .unwrap_or(0)
        })
        .with_min_len(1)
        .collect()
}

/// Exact hop diameter `D = max_{v,w} hop(v, w)` (runs `n` BFS traversals).
pub fn diameter(graph: &Graph) -> Weight {
    eccentricities(graph).into_iter().max().unwrap_or(0)
}

/// Exact hop radius `min_v max_w hop(v, w)`.
pub fn radius(graph: &Graph) -> Weight {
    eccentricities(graph).into_iter().min().unwrap_or(0)
}

/// A fast 2-approximation of the diameter from a double BFS sweep:
/// returns `ecc(u)` for `u` the farthest node from an arbitrary start.
/// Guaranteed to lie in `[D/2, D]`.
pub fn diameter_double_sweep(graph: &Graph) -> Weight {
    if graph.n() == 0 {
        return 0;
    }
    let first = bfs(graph, 0);
    let far = first
        .dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != crate::INFINITY)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as NodeId)
        .unwrap_or(0);
    eccentricity(graph, far)
}

/// Degeneracy ordering: repeatedly removes a minimum-degree node.  Returns
/// `(order, degeneracy)`.  The degeneracy upper-bounds the arboricity within
/// a factor 2 and is used by the Eulerian-orientation / forest-decomposition
/// machinery (Section 8.2 of the paper, `[BE10]`).
pub fn degeneracy_ordering(graph: &Graph) -> (Vec<NodeId>, usize) {
    let n = graph.n();
    let mut degree: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in graph.nodes() {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket starting from `cursor` (which can
        // only have decreased by one since the last removal).
        cursor = cursor.saturating_sub(1);
        loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let Some(&candidate) = buckets.get(cursor).and_then(|b| b.last()) else {
                break;
            };
            if removed[candidate as usize] || degree[candidate as usize] != cursor {
                buckets[cursor].pop();
                continue;
            }
            break;
        }
        if cursor > max_deg {
            break;
        }
        let v = buckets[cursor].pop().expect("non-empty bucket");
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for a in graph.arcs(v) {
            let u = a.to as usize;
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(a.to);
            }
        }
    }
    (order, degeneracy)
}

/// Number of edges with both endpoints in `set` plus edges leaving `set`,
/// i.e. a sanity helper for sparsity arguments.
pub fn induced_edge_count(graph: &Graph, set: &[NodeId]) -> usize {
    let mut in_set = vec![false; graph.n()];
    for &v in set {
        in_set[v as usize] = true;
    }
    graph
        .edges()
        .iter()
        .filter(|&&(u, v, _)| in_set[u as usize] && in_set[v as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&generators::path(10).unwrap()), 9);
        assert_eq!(diameter(&generators::cycle(10).unwrap()), 5);
        assert_eq!(diameter(&generators::cycle(11).unwrap()), 5);
    }

    #[test]
    fn radius_le_diameter_le_twice_radius() {
        for g in [
            generators::grid(&[4, 5]).unwrap(),
            generators::tree_balanced(3, 3).unwrap(),
            generators::star(20).unwrap(),
        ] {
            let d = diameter(&g);
            let r = radius(&g);
            assert!(r <= d);
            assert!(d <= 2 * r);
        }
    }

    #[test]
    fn double_sweep_within_factor_two() {
        for g in [
            generators::path(30).unwrap(),
            generators::grid(&[6, 6]).unwrap(),
            generators::cycle(25).unwrap(),
        ] {
            let d = diameter(&g);
            let est = diameter_double_sweep(&g);
            assert!(est <= d);
            assert!(2 * est >= d);
        }
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = generators::tree_balanced(2, 4).unwrap();
        let (order, deg) = degeneracy_ordering(&g);
        assert_eq!(deg, 1);
        assert_eq!(order.len(), g.n());
    }

    #[test]
    fn degeneracy_of_cycle_is_two() {
        let g = generators::cycle(12).unwrap();
        let (_, deg) = degeneracy_ordering(&g);
        assert_eq!(deg, 2);
    }

    #[test]
    fn degeneracy_of_grid_at_most_two() {
        let g = generators::grid(&[5, 5]).unwrap();
        let (order, deg) = degeneracy_ordering(&g);
        assert!(deg <= 2);
        assert_eq!(order.len(), 25);
    }

    #[test]
    fn induced_edge_count_on_grid_block() {
        let g = generators::grid(&[3, 3]).unwrap();
        // Whole graph: 12 edges.
        let all: Vec<u32> = g.nodes().collect();
        assert_eq!(induced_edge_count(&g, &all), 12);
        // A single row of 3 nodes induces 2 edges.
        assert_eq!(induced_edge_count(&g, &[0, 1, 2]), 2);
    }
}
