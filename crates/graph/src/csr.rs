//! Compressed-sparse-row representation of the local communication graph.
//!
//! The paper's graphs (Section 1.2) are undirected, connected, simple graphs
//! `G = (V, E, ω)` with integer weights polynomial in `n` (`ω ≡ 1` in the
//! unweighted case).  [`Graph`] stores both orientations of every undirected
//! edge so that neighbourhood scans are a single contiguous slice walk.

use serde::{Deserialize, Serialize};

/// Identifier of a node, `0 ..= n-1`.
pub type NodeId = u32;

/// Identifier of an undirected edge, `0 ..= m-1` (in insertion order).
pub type EdgeId = u32;

/// Edge weight / distance value.  Distances use `u64` to avoid overflow when
/// summing `poly(n)` weights along paths.
pub type Weight = u64;

/// Sentinel distance meaning "unreachable" (hop or weighted).
pub const INFINITY: Weight = u64::MAX;

/// A directed arc stored in the CSR adjacency (each undirected edge appears
/// twice, once per direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arc {
    /// Head of the arc (the neighbour reached by following it).
    pub to: NodeId,
    /// Weight of the underlying undirected edge.
    pub weight: Weight,
    /// Id of the underlying undirected edge.
    pub edge: EdgeId,
}

/// Immutable CSR graph.  Construct through [`crate::GraphBuilder`] or the
/// generators in [`crate::generators`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<u32>,
    arcs: Vec<Arc>,
    /// Undirected edge list `(u, v, w)` with `u < v`, indexed by [`EdgeId`].
    edges: Vec<(NodeId, NodeId, Weight)>,
    weighted: bool,
    /// Cached maximum edge weight — the distance oracles select between BFS,
    /// bucket-queue and heap Dijkstra by weight range on every call, so this
    /// must not cost an `O(m)` scan each time.
    max_weight: Weight,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        arcs: Vec<Arc>,
        edges: Vec<(NodeId, NodeId, Weight)>,
        weighted: bool,
    ) -> Self {
        let max_weight = edges.iter().map(|&(_, _, w)| w).max().unwrap_or(0);
        Graph {
            offsets,
            arcs,
            edges,
            weighted,
            max_weight,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Whether any edge weight differs from 1.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n() as NodeId
    }

    /// The undirected edge list `(u, v, w)` with `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId, Weight)] {
        &self.edges
    }

    /// Endpoints and weight of an undirected edge.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, Weight) {
        self.edges[e as usize]
    }

    /// CSR offset range of `v`'s adjacency (indices into the arc array).
    #[inline(always)]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Adjacency slice of `v`: one [`Arc`] per incident undirected edge.
    #[inline(always)]
    pub fn arcs(&self, v: NodeId) -> &[Arc] {
        &self.arcs[self.arc_range(v)]
    }

    /// Degree of `v` in the local communication graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.arcs(v).len()
    }

    /// Maximum degree `Δ(G)`.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterator over the neighbours of `v` (without weights).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.arcs(v).iter().map(|a| a.to)
    }

    /// Whether `{u, v}` is an edge of the graph.  `O(deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.arcs(u).iter().any(|a| a.to == v)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Maximum edge weight `W` (cached at construction).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Returns the subgraph induced by keeping only the edges for which
    /// `keep(edge_id)` returns `true`.  Node ids are preserved; the result may
    /// be disconnected.
    pub fn edge_subgraph(&self, mut keep: impl FnMut(EdgeId) -> bool) -> Graph {
        let mut builder = crate::GraphBuilder::new(self.n());
        for (idx, &(u, v, w)) in self.edges.iter().enumerate() {
            if keep(idx as EdgeId) {
                builder
                    .add_edge(u, v, w)
                    .expect("edges of a valid graph remain valid");
            }
        }
        builder.build_unchecked_connectivity()
    }

    /// Bytes held by the CSR arrays (offsets, arcs, undirected edge list).
    /// The scale tier reports this next to the distance-row footprint so the
    /// `O(|S|·n)` memory claim is measured rather than asserted.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u32>()
            + self.arcs.len() * std::mem::size_of::<Arc>()
            + self.edges.len() * std::mem::size_of::<(NodeId, NodeId, Weight)>()) as u64
    }

    /// `⌈log2(n)⌉`, at least 1 — the paper's message-size / global-capacity
    /// unit `O(log n)` uses this.
    pub fn log2_n(&self) -> usize {
        let n = self.n().max(2);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn csr_basic_accessors() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 5).unwrap();
        b.add_edge(2, 3, 2).unwrap();
        b.add_edge(3, 0, 7).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert!(g.is_weighted());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.total_weight(), 15);
        assert_eq!(g.max_weight(), 7);
        let mut nbrs: Vec<_> = g.neighbors(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn arcs_carry_edge_ids_and_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10).unwrap();
        b.add_edge(1, 2, 20).unwrap();
        let g = b.build().unwrap();
        for v in g.nodes() {
            for a in g.arcs(v) {
                let (u, w, weight) = g.edge(a.edge);
                assert_eq!(weight, a.weight);
                assert!(u == v || w == v);
                assert!(u == a.to || w == a.to);
            }
        }
    }

    #[test]
    fn unweighted_graph_reports_unweighted() {
        let g = generators::path(5).unwrap();
        assert!(!g.is_weighted());
        assert_eq!(g.max_weight(), 1);
    }

    #[test]
    fn edge_subgraph_keeps_selected_edges() {
        let g = generators::cycle(6).unwrap();
        let sub = g.edge_subgraph(|e| e % 2 == 0);
        assert_eq!(sub.n(), 6);
        assert_eq!(sub.m(), 3);
    }

    #[test]
    fn memory_bytes_counts_all_three_arrays() {
        let g = generators::path(5).unwrap();
        // offsets: 6 × 4 B, arcs: 8 × 16 B, edges: 4 × 16 B.
        assert_eq!(g.memory_bytes(), 6 * 4 + 8 * 16 + 4 * 16);
    }

    #[test]
    fn log2_n_is_ceil_log() {
        let g = generators::path(2).unwrap();
        assert_eq!(g.log2_n(), 1);
        let g = generators::path(8).unwrap();
        assert_eq!(g.log2_n(), 3);
        let g = generators::path(9).unwrap();
        assert_eq!(g.log2_n(), 4);
    }
}
