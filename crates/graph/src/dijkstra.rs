//! Weighted distance oracles: Dijkstra, hop-limited Dijkstra and exact APSP.
//!
//! These are *centralized* oracles used (a) as ground truth when checking the
//! stretch of the distributed approximation algorithms and (b) as the local
//! computation performed inside clusters / skeleton nodes, which the HYBRID
//! model allows for free (nodes are computationally unbounded).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::{Graph, NodeId, Weight, INFINITY};

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// Weighted distance from the source (`INFINITY` if unreachable).
    pub dist: Vec<Weight>,
    /// Shortest-path-tree parent (`None` for the source / unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
}

impl DijkstraResult {
    /// Reconstructs a shortest path from the source to `t` (inclusive), or
    /// `None` if `t` is unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t as usize] == INFINITY {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Single-source Dijkstra from `source` over the edge weights of `graph`.
pub fn dijkstra(graph: &Graph, source: NodeId) -> DijkstraResult {
    let n = graph.n();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Weight, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for a in graph.arcs(v) {
            let nd = d + a.weight;
            if nd < dist[a.to as usize] {
                dist[a.to as usize] = nd;
                parent[a.to as usize] = Some(v);
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    DijkstraResult { dist, parent }
}

/// `h`-hop-limited distances `d^h(source, ·)` (Definition in Section 1.2 and
/// Definition 6.2 of the paper): the weight of a shortest path among paths
/// with at most `h` edges; `INFINITY` if no such path exists.
///
/// Implemented as `h` rounds of Bellman–Ford relaxation, which is exactly the
/// computation a node can perform after `h` rounds of local flooding.
pub fn hop_limited_distances(graph: &Graph, source: NodeId, h: usize) -> Vec<Weight> {
    let n = graph.n();
    let mut dist = vec![INFINITY; n];
    dist[source as usize] = 0;
    let mut frontier: Vec<NodeId> = vec![source];
    for _ in 0..h {
        let mut next_frontier: Vec<NodeId> = Vec::new();
        let mut updated = vec![false; n];
        let mut new_dist = dist.clone();
        for &v in &frontier {
            let dv = dist[v as usize];
            if dv == INFINITY {
                continue;
            }
            for a in graph.arcs(v) {
                let nd = dv + a.weight;
                if nd < new_dist[a.to as usize] {
                    new_dist[a.to as usize] = nd;
                    if !updated[a.to as usize] {
                        updated[a.to as usize] = true;
                        next_frontier.push(a.to);
                    }
                }
            }
        }
        if next_frontier.is_empty() {
            dist = new_dist;
            break;
        }
        dist = new_dist;
        // Nodes improved this round must be re-relaxed next round, together
        // with nothing else: a standard frontier Bellman-Ford.
        frontier = next_frontier;
    }
    dist
}

/// Exact weighted all-pairs shortest paths (one Dijkstra per node).
/// Quadratic memory — intended for ground-truth checks on small graphs.
pub fn apsp_exact(graph: &Graph) -> Vec<Vec<Weight>> {
    graph.nodes().map(|v| dijkstra(graph, v).dist).collect()
}

/// Exact unweighted (hop) all-pairs shortest paths.
pub fn apsp_hops_exact(graph: &Graph) -> Vec<Vec<Weight>> {
    graph
        .nodes()
        .map(|v| crate::traversal::bfs(graph, v).dist)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    fn weighted_diamond() -> Graph {
        // 0 -1- 1 -1- 3,   0 -5- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 1).unwrap();
        b.add_edge(0, 2, 5).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = weighted_diamond();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 3, 2]);
        assert_eq!(r.path_to(3).unwrap(), vec![0, 1, 3]);
        assert_eq!(r.path_to(2).unwrap(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn hop_limited_matches_definition() {
        let g = weighted_diamond();
        // With at most 1 hop, node 3 is unreachable from 0; node 2 costs 5.
        let d1 = hop_limited_distances(&g, 0, 1);
        assert_eq!(d1[1], 1);
        assert_eq!(d1[2], 5);
        assert_eq!(d1[3], INFINITY);
        // With 2 hops the best 2-hop path to 2 is 0-1-3? no, that's 3 hops to 2.
        let d2 = hop_limited_distances(&g, 0, 2);
        assert_eq!(d2[3], 2);
        assert_eq!(d2[2], 5);
        // With enough hops we recover true distances.
        let d3 = hop_limited_distances(&g, 0, 3);
        assert_eq!(d3, dijkstra(&g, 0).dist);
    }

    #[test]
    fn hop_limited_zero_hops_only_source() {
        let g = generators::path(4).unwrap();
        let d = hop_limited_distances(&g, 2, 0);
        assert_eq!(d[2], 0);
        assert!(d.iter().enumerate().all(|(i, &x)| i == 2 || x == INFINITY));
    }

    #[test]
    fn dijkstra_equals_bfs_on_unweighted() {
        let g = generators::grid(&[5, 4]).unwrap();
        for s in [0u32, 7, 19] {
            let d = dijkstra(&g, s).dist;
            let b = crate::traversal::bfs(&g, s).dist;
            assert_eq!(d, b);
        }
    }

    #[test]
    fn apsp_exact_is_symmetric_and_triangle() {
        let g = generators::cycle(7).unwrap();
        let d = apsp_exact(&g);
        for u in 0..7 {
            assert_eq!(d[u][u], 0);
            for v in 0..7 {
                assert_eq!(d[u][v], d[v][u]);
                for w in 0..7 {
                    assert!(d[u][v] <= d[u][w] + d[w][v]);
                }
            }
        }
    }

    #[test]
    fn apsp_hops_matches_weighted_on_unweighted_graph() {
        let g = generators::tree_balanced(2, 3).unwrap();
        assert_eq!(apsp_exact(&g), apsp_hops_exact(&g));
    }
}
