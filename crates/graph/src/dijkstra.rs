//! Weighted distance oracles: Dijkstra (binary-heap and Dial bucket-queue
//! variants), hop-limited Dijkstra and exact APSP.
//!
//! These are *centralized* oracles used (a) as ground truth when checking the
//! stretch of the distributed approximation algorithms and (b) as the local
//! computation performed inside clusters / skeleton nodes, which the HYBRID
//! model allows for free (nodes are computationally unbounded).
//!
//! # Performance architecture
//!
//! The experiment sweeps run these oracles thousands of times per table, so
//! the hot paths are engineered to be allocation-lean and to pick the
//! cheapest correct algorithm for the input:
//!
//! * [`DijkstraWorkspace`] owns every buffer a run needs (distances, parents,
//!   heap, bucket ring, visited bitset) and resets them *sparsely* — only the
//!   entries touched by the previous run are cleared, so repeated
//!   single-source calls on the same graph never reallocate and never pay
//!   `O(n)` per call on small explored regions.
//! * [`sssp_auto`] / [`DijkstraWorkspace::run`] select the oracle by weight
//!   range: BFS for unweighted graphs, a Dial bucket queue (`O(m + D·W)`,
//!   no comparison heap) for the small integer weights the generators emit
//!   (`W ≤ `[`DIAL_MAX_WEIGHT`]), and the binary heap otherwise.  All three
//!   produce identical distance arrays; the property tests assert this.
//! * The heap variant keeps a **visited bitset** so settled nodes are neither
//!   re-expanded nor re-pushed — the classic lazy-deletion heap without the
//!   stale-entry churn.
//! * [`apsp_exact`] / [`apsp_hops_exact`] fan the per-source runs out over
//!   all cores (deterministic order; one workspace per worker chunk).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use rayon::prelude::*;

use crate::csr::{Graph, NodeId, Weight, INFINITY};

/// Maximum edge weight for which the Dial bucket queue is selected
/// automatically.  The ring then has at most `DIAL_MAX_WEIGHT + 1` buckets,
/// which comfortably fits in cache; the generators' weighted families use
/// weights in `[1, 32]`.
pub const DIAL_MAX_WEIGHT: Weight = 64;

/// Upper bound on the bucket-ring size [`DijkstraWorkspace::run_dial`] will
/// allocate (2²⁶ slots ≈ 1.5 GiB of empty `Vec` headers is already far past
/// sensible).  A max weight at or beyond this bound makes the ring itself the
/// dominant cost — and `(c + 1).next_power_of_two()` can overflow `usize`
/// outright near `u64::MAX` — so `run_dial` falls back to the binary heap,
/// which produces identical output.
pub const DIAL_MAX_RING: usize = 1 << 26;

/// Bucket-occupancy scan for the Dial ring: find the next non-empty bucket
/// without walking the empty distance range one slot per iteration.
///
/// [`bucket_scan::first_nonzero`] dispatches to an explicit AVX2
/// implementation (8 × `u32` lanes per compare) when the `simd` cargo feature
/// is enabled and the CPU supports it; [`bucket_scan::first_nonzero_scalar`]
/// is always compiled and is the fallback everywhere else.  Both return the
/// index of the first non-zero entry, so they agree **bit for bit** on every
/// input — pinned by the workspace proptest
/// `dial_scan_simd_matches_scalar`.
pub mod bucket_scan {
    /// Index of the first non-zero bucket length, or `None` if all are zero.
    #[inline]
    pub fn first_nonzero(lens: &[u32]) -> Option<usize> {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked.
            #[allow(unsafe_code)]
            return unsafe { avx2::first_nonzero(lens) };
        }
        first_nonzero_scalar(lens)
    }

    /// Scalar reference for [`first_nonzero`]; always compiled.
    #[inline]
    pub fn first_nonzero_scalar(lens: &[u32]) -> Option<usize> {
        lens.iter().position(|&l| l != 0)
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    mod avx2 {
        use core::arch::x86_64::*;

        /// Vectorized [`super::first_nonzero_scalar`]: compare 8 lengths per
        /// step against zero, the movemask names the first non-zero lane.
        ///
        /// # Safety
        /// The caller must have verified AVX2 support.
        #[target_feature(enable = "avx2")]
        pub unsafe fn first_nonzero(lens: &[u32]) -> Option<usize> {
            let n = lens.len();
            let zero = _mm256_setzero_si256();
            let mut i = 0usize;
            while i + 8 <= n {
                let v = _mm256_loadu_si256(lens.as_ptr().add(i).cast::<__m256i>());
                let eq = _mm256_cmpeq_epi32(v, zero);
                let mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
                let nonzero = !mask & 0xFF;
                if nonzero != 0 {
                    return Some(i + nonzero.trailing_zeros() as usize);
                }
                i += 8;
            }
            super::first_nonzero_scalar(&lens[i..]).map(|off| i + off)
        }
    }
}

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// Weighted distance from the source (`INFINITY` if unreachable).
    pub dist: Vec<Weight>,
    /// Shortest-path-tree parent (`None` for the source / unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
}

impl DijkstraResult {
    /// Reconstructs a shortest path from the source to `t` (inclusive), or
    /// `None` if `t` is unreachable.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[t as usize] == INFINITY {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Which single-source oracle a run used (or should use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsspAlgorithm {
    /// Breadth-first search — unweighted graphs.
    Bfs,
    /// Dial bucket-queue Dijkstra — small integer weights.
    Dial,
    /// Binary-heap Dijkstra — arbitrary weights.
    Heap,
}

/// Selects the cheapest correct oracle for `graph` by weight range and
/// density.
///
/// * unweighted → BFS;
/// * small integer weights (`W ≤ `[`DIAL_MAX_WEIGHT`]) → Dial;
/// * larger weights → Dial only when the worst-case bucket ring scan is
///   provably dominated by the heap's work: the ring scan costs `O(max
///   distance) ⊆ O(W·(n−1))`, the heap costs `Ω(m·log n)`, so Dial is chosen
///   iff `W·(n−1) ≤ 4·m·⌈log₂ n⌉`.  This admits the near-complete skeleton
///   graphs of the k-SSP scheduling framework (huge `m`, tiny hop diameter)
///   while sending sparse large-weight graphs — whose true max distance can
///   genuinely approach `W·n` — to the heap;
/// * otherwise → binary heap.
///
/// The choice is a pure function of the graph, so repeated runs — and runs
/// split across worker threads — always agree.
#[inline]
pub fn select_sssp_algorithm(graph: &Graph) -> SsspAlgorithm {
    if !graph.is_weighted() {
        return SsspAlgorithm::Bfs;
    }
    let w = graph.max_weight();
    if w <= DIAL_MAX_WEIGHT {
        return SsspAlgorithm::Dial;
    }
    let scan_bound = w.saturating_mul(graph.n().saturating_sub(1) as Weight);
    let heap_bound = (graph.m() as Weight).saturating_mul(4 * graph.log2_n() as Weight);
    if scan_bound <= heap_bound {
        SsspAlgorithm::Dial
    } else {
        SsspAlgorithm::Heap
    }
}

/// Reusable buffers for repeated single-source runs.
///
/// All oracles ([`SsspAlgorithm`]) share the `dist` / `parent` / visited
/// buffers; the heap and bucket ring are lazily grown.  After a run the
/// workspace resets itself sparsely using the list of touched nodes, so a
/// sequence of runs on the same graph performs no allocation after the first.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    /// Node count of the most recent run (buffers may be larger).
    len: usize,
    dist: Vec<Weight>,
    parent: Vec<Option<NodeId>>,
    /// One bit per node: settled during the current run.
    visited: Vec<u64>,
    /// Nodes whose `dist`/`parent`/`visited` entries need resetting.
    touched: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
    /// Dial ring: `buckets[d % ring]` holds nodes with tentative distance `d`.
    buckets: Vec<Vec<NodeId>>,
    /// Entry count per ring slot (kept in lockstep with `buckets` so the
    /// next-occupied-bucket scan reads one flat `u32` array instead of
    /// chasing `Vec` headers).
    bucket_lens: Vec<u32>,
    queue: VecDeque<NodeId>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::new();
        ws.grow(n);
        ws
    }

    /// Distances computed by the most recent run.
    #[inline]
    pub fn dist(&self) -> &[Weight] {
        &self.dist[..self.len]
    }

    /// Parents computed by the most recent run.
    #[inline]
    pub fn parent(&self) -> &[Option<NodeId>] {
        &self.parent[..self.len]
    }

    /// Nodes reached by the most recent run, in discovery order (the source
    /// first).  For BFS runs this is the settle order.
    #[inline]
    pub fn reached(&self) -> &[NodeId] {
        &self.touched
    }

    /// Copies the most recent run out into an owned [`DijkstraResult`].
    pub fn to_result(&self) -> DijkstraResult {
        DijkstraResult {
            dist: self.dist().to_vec(),
            parent: self.parent().to_vec(),
        }
    }

    fn grow(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
            self.parent.resize(n, None);
            self.visited.resize(n.div_ceil(64), 0);
        }
    }

    /// Sparse-resets the entries touched by the previous run and prepares for
    /// a run on a graph with `n` nodes.
    fn reset(&mut self, n: usize) {
        self.grow(n);
        self.len = n;
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
            self.parent[v as usize] = None;
            self.visited[v as usize / 64] &= !(1u64 << (v % 64));
        }
        self.touched.clear();
        self.heap.clear();
        self.queue.clear();
        // Buckets are fully drained by the Dial loop itself.
    }

    #[inline]
    fn is_visited(&self, v: NodeId) -> bool {
        self.visited[v as usize / 64] >> (v % 64) & 1 == 1
    }

    #[inline]
    fn mark_visited(&mut self, v: NodeId) {
        self.visited[v as usize / 64] |= 1u64 << (v % 64);
    }

    /// Runs the oracle chosen by [`select_sssp_algorithm`]; afterwards
    /// [`Self::dist`] / [`Self::parent`] hold the result.
    pub fn run(&mut self, graph: &Graph, source: NodeId) {
        match select_sssp_algorithm(graph) {
            SsspAlgorithm::Bfs => self.run_bfs(graph, source),
            SsspAlgorithm::Dial => self.run_dial(graph, source),
            SsspAlgorithm::Heap => self.run_heap(graph, source),
        }
    }

    /// BFS oracle (unweighted graphs: hop distance = weighted distance).
    pub fn run_bfs(&mut self, graph: &Graph, source: NodeId) {
        self.reset(graph.n());
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queue.push_back(source);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            for a in graph.arcs(v) {
                let u = a.to as usize;
                if self.dist[u] == INFINITY {
                    self.dist[u] = dv + 1;
                    self.parent[u] = Some(v);
                    self.touched.push(a.to);
                    self.queue.push_back(a.to);
                }
            }
        }
    }

    /// Depth-bounded BFS oracle: hop distances within `max_depth`, `INFINITY`
    /// beyond.
    pub fn run_bfs_bounded(&mut self, graph: &Graph, source: NodeId, max_depth: u64) {
        self.reset(graph.n());
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queue.push_back(source);
        while let Some(v) = self.queue.pop_front() {
            let dv = self.dist[v as usize];
            if dv >= max_depth {
                continue;
            }
            for a in graph.arcs(v) {
                let u = a.to as usize;
                if self.dist[u] == INFINITY {
                    self.dist[u] = dv + 1;
                    self.parent[u] = Some(v);
                    self.touched.push(a.to);
                    self.queue.push_back(a.to);
                }
            }
        }
    }

    /// Binary-heap Dijkstra with a visited bitset: settled nodes are skipped
    /// on pop *and* never re-pushed, eliminating stale-entry churn.
    pub fn run_heap(&mut self, graph: &Graph, source: NodeId) {
        self.reset(graph.n());
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if self.is_visited(v) {
                continue;
            }
            self.mark_visited(v);
            for a in graph.arcs(v) {
                if self.is_visited(a.to) {
                    continue;
                }
                // Saturating: a near-`u64::MAX` path cannot wrap past zero
                // and masquerade as a short one — it pins at `u64::MAX`,
                // which is the `INFINITY` sentinel and never beats a real
                // tentative distance.
                let nd = d.saturating_add(a.weight);
                if nd < self.dist[a.to as usize] {
                    if self.dist[a.to as usize] == INFINITY {
                        self.touched.push(a.to);
                    }
                    self.dist[a.to as usize] = nd;
                    self.parent[a.to as usize] = Some(v);
                    self.heap.push(Reverse((nd, a.to)));
                }
            }
        }
    }

    /// Dial bucket-queue Dijkstra for integer weights `1..=c`: a circular
    /// array of `c + 1` buckets replaces the comparison heap, so each
    /// settle/relax is O(1).
    ///
    /// Between settle rounds the loop does **not** walk the (possibly long)
    /// run of empty distance values one at a time: a per-slot occupancy
    /// array (`bucket_lens`) is scanned with [`bucket_scan::first_nonzero`]
    /// to jump straight to the next occupied bucket.  The jump is exact —
    /// every pending entry has tentative distance in `[cur, cur + c]` and
    /// `c < ring`, so the circular scan starting just after the current slot
    /// meets the pending entries in increasing distance order and the settle
    /// order (hence `dist`/`parent`) is bit-identical to the slot-by-slot
    /// walk.
    ///
    /// Graphs whose maximum weight would demand a ring larger than
    /// [`DIAL_MAX_RING`] fall back to [`Self::run_heap`] (identical output);
    /// this also dodges the `usize` overflow in `next_power_of_two` that a
    /// near-`u64::MAX` weight would otherwise trigger.
    pub fn run_dial(&mut self, graph: &Graph, source: NodeId) {
        let c = graph.max_weight().max(1);
        // Compare in u128: `c + 1` itself can overflow u64 and the
        // subsequent `next_power_of_two` can overflow usize.
        if c as u128 + 1 > DIAL_MAX_RING as u128 {
            return self.run_heap(graph, source);
        }
        let c = c as usize;
        self.reset(graph.n());
        // Power-of-two ring ≥ c+1 so the slot index is a mask instead of a
        // hardware division in the relaxation loop.
        let ring = (c + 1).next_power_of_two();
        let mask = ring - 1;
        if self.buckets.len() < ring {
            self.buckets.resize_with(ring, Vec::new);
        }
        if self.bucket_lens.len() < ring {
            self.bucket_lens.resize(ring, 0);
        }
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.buckets[0].push(source);
        self.bucket_lens[0] = 1;
        let mut pending = 1usize;
        let mut cur: Weight = 0;
        loop {
            let slot = (cur as usize) & mask;
            // Settle every node whose tentative distance equals `cur`.
            while let Some(v) = self.buckets[slot].pop() {
                self.bucket_lens[slot] -= 1;
                pending -= 1;
                if self.is_visited(v) || self.dist[v as usize] != cur {
                    continue; // stale entry superseded by a better relaxation
                }
                self.mark_visited(v);
                for a in graph.arcs(v) {
                    if self.is_visited(a.to) {
                        continue;
                    }
                    let nd = cur + a.weight;
                    if nd < self.dist[a.to as usize] {
                        if self.dist[a.to as usize] == INFINITY {
                            self.touched.push(a.to);
                        }
                        self.dist[a.to as usize] = nd;
                        self.parent[a.to as usize] = Some(v);
                        let target = (nd as usize) & mask;
                        self.buckets[target].push(a.to);
                        self.bucket_lens[target] += 1;
                        pending += 1;
                    }
                }
            }
            if pending == 0 {
                break;
            }
            // Jump to the next occupied bucket.  `1 ≤ nd − cur ≤ c < ring`
            // for every push above, so no entry ever lands back in `slot`
            // while it drains and the closest pending entry is within one
            // lap of the ring.
            let from = (slot + 1) & mask;
            let next = match bucket_scan::first_nonzero(&self.bucket_lens[from..ring]) {
                Some(off) => from + off,
                None => bucket_scan::first_nonzero(&self.bucket_lens[..from])
                    .expect("pending > 0 implies an occupied bucket"),
            };
            let delta = if next > slot {
                next - slot
            } else {
                ring - slot + next
            };
            cur += delta as Weight;
        }
    }
}

/// Single-source Dijkstra from `source` over the edge weights of `graph`.
///
/// Convenience wrapper allocating a fresh [`DijkstraWorkspace`]; hot loops
/// should hold a workspace and call [`DijkstraWorkspace::run`] instead.
pub fn dijkstra(graph: &Graph, source: NodeId) -> DijkstraResult {
    let mut ws = DijkstraWorkspace::with_capacity(graph.n());
    ws.run(graph, source);
    DijkstraResult {
        dist: ws.dist,
        parent: ws.parent,
    }
}

/// Binary-heap Dijkstra (reference oracle; allocates).
pub fn dijkstra_heap(graph: &Graph, source: NodeId) -> DijkstraResult {
    let mut ws = DijkstraWorkspace::with_capacity(graph.n());
    ws.run_heap(graph, source);
    DijkstraResult {
        dist: ws.dist,
        parent: ws.parent,
    }
}

/// Dial bucket-queue Dijkstra (allocates; for arbitrary use prefer
/// [`DijkstraWorkspace::run`] which also checks the weight range).
pub fn dijkstra_dial(graph: &Graph, source: NodeId) -> DijkstraResult {
    let mut ws = DijkstraWorkspace::with_capacity(graph.n());
    ws.run_dial(graph, source);
    DijkstraResult {
        dist: ws.dist,
        parent: ws.parent,
    }
}

/// Single-source distances with automatic oracle selection (BFS / Dial /
/// heap).  Returns only the distance array.
pub fn sssp_auto(graph: &Graph, source: NodeId) -> Vec<Weight> {
    let mut ws = DijkstraWorkspace::with_capacity(graph.n());
    ws.run(graph, source);
    ws.dist
}

/// Reusable buffers for [`hop_limited_distances_with`].
#[derive(Debug, Default)]
pub struct HopLimitedWorkspace {
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    /// Round stamp per node: `stamp[v] == round` iff `v` already has a
    /// candidate improvement recorded this round.
    stamp: Vec<u32>,
    cand: Vec<Weight>,
}

impl HopLimitedWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `h`-hop-limited distances `d^h(source, ·)` (Definition in Section 1.2 and
/// Definition 6.2 of the paper): the weight of a shortest path among paths
/// with at most `h` edges; `INFINITY` if no such path exists.
///
/// Implemented as `h` rounds of frontier Bellman–Ford relaxation, which is
/// exactly the computation a node can perform after `h` rounds of local
/// flooding.
pub fn hop_limited_distances(graph: &Graph, source: NodeId, h: usize) -> Vec<Weight> {
    let mut ws = HopLimitedWorkspace::new();
    let mut dist = vec![INFINITY; graph.n()];
    hop_limited_distances_with(&mut ws, graph, source, h, &mut dist);
    dist
}

/// Allocation-lean hop-limited distances: writes into `dist` (fully
/// overwritten) and reuses the workspace's frontier/candidate buffers.
///
/// The synchronous Bellman–Ford semantics of the naive two-array
/// implementation are preserved exactly — relaxations within a round read the
/// distances from the *start* of the round — but instead of cloning the
/// distance array every round, improvements are buffered per round in a
/// candidate array gated by a round stamp and applied at the round boundary:
/// `O(frontier)` work per round instead of `O(n)`.
///
/// Returns `true` iff the relaxation reached its fixpoint within `h` rounds
/// (the frontier emptied, or `h ≥ n − 1` so the Bellman–Ford bound applies).
/// In that case `dist` holds the **exact** distances `d(source, ·)` — the
/// `h`-hop ball covers every shortest path — which callers such as the
/// skeleton machinery use to skip the metric-closure step entirely (see
/// `hybrid_core::skeleton`).  `false` means `dist` is only the upper bound
/// `d^h(source, ·)`.
pub fn hop_limited_distances_with(
    ws: &mut HopLimitedWorkspace,
    graph: &Graph,
    source: NodeId,
    h: usize,
    dist: &mut Vec<Weight>,
) -> bool {
    let n = graph.n();
    dist.clear();
    dist.resize(n, INFINITY);
    if ws.stamp.len() < n {
        ws.stamp.resize(n, u32::MAX);
        ws.cand.resize(n, INFINITY);
    }
    // A fresh stamp space per call: u32::MAX sentinel means "never".
    for s in ws.stamp.iter_mut() {
        *s = u32::MAX;
    }
    dist[source as usize] = 0;
    ws.frontier.clear();
    ws.next.clear();
    ws.frontier.push(source);
    // Bellman–Ford converges within n-1 rounds; clamping keeps the round
    // stamps in u32 territory without changing any distance.
    let rounds = h.min(n.saturating_sub(1)) as u32;
    let mut converged = h >= n.saturating_sub(1);
    for round in 0..rounds {
        ws.next.clear();
        for fi in 0..ws.frontier.len() {
            let v = ws.frontier[fi];
            let dv = dist[v as usize];
            if dv == INFINITY {
                continue;
            }
            for a in graph.arcs(v) {
                let u = a.to as usize;
                let nd = dv + a.weight;
                // Compare against the round-start distance (synchronous
                // semantics); candidates accumulate the round minimum.
                if nd < dist[u] {
                    if ws.stamp[u] != round {
                        ws.stamp[u] = round;
                        ws.cand[u] = nd;
                        ws.next.push(a.to);
                    } else if nd < ws.cand[u] {
                        ws.cand[u] = nd;
                    }
                }
            }
        }
        if ws.next.is_empty() {
            converged = true;
            break;
        }
        for &u in &ws.next {
            dist[u as usize] = ws.cand[u as usize];
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
    }
    converged
}

/// Exact weighted all-pairs shortest paths (one single-source run per node,
/// fanned out over all cores with automatic oracle selection).
/// Quadratic memory — intended for ground-truth checks on small graphs.
pub fn apsp_exact(graph: &Graph) -> Vec<Vec<Weight>> {
    (0..graph.n() as NodeId)
        .into_par_iter()
        .map_init(DijkstraWorkspace::new, |ws, v| {
            ws.run(graph, v);
            ws.dist().to_vec()
        })
        .with_min_len(1)
        .collect()
}

/// Exact unweighted (hop) all-pairs shortest paths (parallel BFS fan-out).
pub fn apsp_hops_exact(graph: &Graph) -> Vec<Vec<Weight>> {
    (0..graph.n() as NodeId)
        .into_par_iter()
        .map_init(DijkstraWorkspace::new, |ws, v| {
            ws.run_bfs(graph, v);
            ws.dist().to_vec()
        })
        .with_min_len(1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    fn weighted_diamond() -> Graph {
        // 0 -1- 1 -1- 3,   0 -5- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 1).unwrap();
        b.add_edge(0, 2, 5).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = weighted_diamond();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 3, 2]);
        assert_eq!(r.path_to(3).unwrap(), vec![0, 1, 3]);
        assert_eq!(r.path_to(2).unwrap(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn heap_dial_and_auto_agree() {
        let g = weighted_diamond();
        let heap = dijkstra_heap(&g, 0);
        let dial = dijkstra_dial(&g, 0);
        assert_eq!(heap.dist, dial.dist);
        assert_eq!(heap.dist, sssp_auto(&g, 0));
        assert_eq!(select_sssp_algorithm(&g), SsspAlgorithm::Dial);
    }

    #[test]
    fn oracle_selection_by_weight_range() {
        let unweighted = generators::path(5).unwrap();
        assert_eq!(select_sssp_algorithm(&unweighted), SsspAlgorithm::Bfs);
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, DIAL_MAX_WEIGHT + 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let heavy = b.build().unwrap();
        assert_eq!(select_sssp_algorithm(&heavy), SsspAlgorithm::Heap);
        let heap = dijkstra_heap(&heavy, 0).dist;
        assert_eq!(heap, sssp_auto(&heavy, 0));
        assert_eq!(heap, dijkstra_dial(&heavy, 0).dist);
    }

    #[test]
    fn workspace_reuse_across_sources_and_graphs() {
        let g = weighted_diamond();
        let mut ws = DijkstraWorkspace::new();
        for s in 0..4u32 {
            ws.run(&g, s);
            assert_eq!(ws.dist(), dijkstra_heap(&g, s).dist.as_slice());
        }
        // Switch to a different, larger graph with the same workspace.
        let p = generators::path(9).unwrap();
        ws.run(&p, 3);
        assert_eq!(ws.dist(), crate::traversal::bfs(&p, 3).dist.as_slice());
        // And back to the small one.
        ws.run(&g, 1);
        assert_eq!(ws.dist(), dijkstra_heap(&g, 1).dist.as_slice());
    }

    #[test]
    fn hop_limited_matches_definition() {
        let g = weighted_diamond();
        // With at most 1 hop, node 3 is unreachable from 0; node 2 costs 5.
        let d1 = hop_limited_distances(&g, 0, 1);
        assert_eq!(d1[1], 1);
        assert_eq!(d1[2], 5);
        assert_eq!(d1[3], INFINITY);
        // With 2 hops the best 2-hop path to 2 is 0-1-3? no, that's 3 hops to 2.
        let d2 = hop_limited_distances(&g, 0, 2);
        assert_eq!(d2[3], 2);
        assert_eq!(d2[2], 5);
        // With enough hops we recover true distances.
        let d3 = hop_limited_distances(&g, 0, 3);
        assert_eq!(d3, dijkstra(&g, 0).dist);
    }

    #[test]
    fn hop_limited_zero_hops_only_source() {
        let g = generators::path(4).unwrap();
        let d = hop_limited_distances(&g, 2, 0);
        assert_eq!(d[2], 0);
        assert!(d.iter().enumerate().all(|(i, &x)| i == 2 || x == INFINITY));
    }

    #[test]
    fn hop_limited_workspace_reuse_is_clean() {
        let g = weighted_diamond();
        let mut ws = HopLimitedWorkspace::new();
        let mut dist = Vec::new();
        hop_limited_distances_with(&mut ws, &g, 0, 1, &mut dist);
        assert_eq!(dist, hop_limited_distances(&g, 0, 1));
        hop_limited_distances_with(&mut ws, &g, 3, 2, &mut dist);
        assert_eq!(dist, hop_limited_distances(&g, 3, 2));
        let p = generators::path(7).unwrap();
        hop_limited_distances_with(&mut ws, &p, 0, 4, &mut dist);
        assert_eq!(dist, hop_limited_distances(&p, 0, 4));
    }

    #[test]
    fn dijkstra_equals_bfs_on_unweighted() {
        let g = generators::grid(&[5, 4]).unwrap();
        for s in [0u32, 7, 19] {
            let d = dijkstra(&g, s).dist;
            let b = crate::traversal::bfs(&g, s).dist;
            assert_eq!(d, b);
            assert_eq!(dijkstra_heap(&g, s).dist, b);
        }
    }

    #[test]
    fn apsp_exact_is_symmetric_and_triangle() {
        let g = generators::cycle(7).unwrap();
        let d = apsp_exact(&g);
        for u in 0..7 {
            assert_eq!(d[u][u], 0);
            for v in 0..7 {
                assert_eq!(d[u][v], d[v][u]);
                for w in 0..7 {
                    assert!(d[u][v] <= d[u][w] + d[w][v]);
                }
            }
        }
    }

    #[test]
    fn apsp_hops_matches_weighted_on_unweighted_graph() {
        let g = generators::tree_balanced(2, 3).unwrap();
        assert_eq!(apsp_exact(&g), apsp_hops_exact(&g));
    }

    /// Regression: a relaxation can leave a *stale* entry in a later bucket
    /// (node 2 first reached at distance 5 via 0-2, then improved to 2 via
    /// 0-1-2).  The skip-scan must still visit that trailing bucket to drain
    /// the stale entry — otherwise `pending` never reaches zero — and a
    /// subsequent run on the same workspace must start from clean occupancy
    /// counts.
    #[test]
    fn dial_drains_trailing_stale_entries() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 5).unwrap();
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build().unwrap();
        let mut ws = DijkstraWorkspace::new();
        ws.run_dial(&g, 0);
        assert_eq!(ws.dist(), &[0, 1, 2]);
        assert_eq!(ws.dist(), dijkstra_heap(&g, 0).dist.as_slice());
        assert!(ws.bucket_lens.iter().all(|&l| l == 0));
        assert!(ws.buckets.iter().all(Vec::is_empty));
        // Reuse: the ring state left behind must not poison the next run.
        ws.run_dial(&g, 2);
        assert_eq!(ws.dist(), &[2, 1, 0]);
    }

    /// Regression: near-`u64::MAX` weights used to overflow both the Dial
    /// ring computation (`(c + 1).next_power_of_two()` as `usize`) and the
    /// heap relaxation (`d + a.weight`).  Dial now falls back to the heap for
    /// rings beyond [`DIAL_MAX_RING`], and the heap saturates into the
    /// `INFINITY` sentinel instead of wrapping.
    #[test]
    fn dial_falls_back_to_heap_on_huge_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, u64::MAX - 1).unwrap();
        b.add_edge(1, 2, u64::MAX - 1).unwrap();
        let g = b.build().unwrap();
        let mut ws = DijkstraWorkspace::new();
        ws.run_dial(&g, 0);
        // Two near-MAX edges saturate: node 2 is indistinguishable from
        // unreachable under u64 weights, and must NOT wrap around to a tiny
        // finite distance.
        assert_eq!(ws.dist(), &[0, u64::MAX - 1, INFINITY]);
        assert_eq!(ws.dist(), dijkstra_heap(&g, 0).dist.as_slice());
        // No ring of astronomical size was allocated by the fallback.
        assert!(ws.buckets.len() <= DIAL_MAX_RING);
    }

    #[test]
    fn bucket_scan_finds_first_nonzero() {
        use super::bucket_scan::{first_nonzero, first_nonzero_scalar};
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![3],
            vec![0; 100],
            vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7],
            vec![1, 0, 0],
            (0..97).map(|i| u32::from(i == 96)).collect(),
        ];
        for lens in &cases {
            let expect = lens.iter().position(|&l| l != 0);
            assert_eq!(first_nonzero_scalar(lens), expect);
            assert_eq!(first_nonzero(lens), expect, "dispatch diverged on {lens:?}");
        }
    }
}
