//! Cut evaluation utilities used by the cut-sparsifier experiments
//! (Theorem 9 of the paper): evaluating `cut_G(S)` for a node set `S`, and a
//! simple randomized minimum-cut estimate for sanity checks.

use rand::Rng;

use crate::csr::{Graph, NodeId, Weight};

/// Total weight of edges crossing the cut `(S, V \ S)`.
pub fn cut_weight(graph: &Graph, s: &[NodeId]) -> Weight {
    let mut in_s = vec![false; graph.n()];
    for &v in s {
        in_s[v as usize] = true;
    }
    cut_weight_mask(graph, &in_s)
}

/// Total weight of edges crossing the cut described by a membership mask.
pub fn cut_weight_mask(graph: &Graph, in_s: &[bool]) -> Weight {
    graph
        .edges()
        .iter()
        .filter(|&&(u, v, _)| in_s[u as usize] != in_s[v as usize])
        .map(|&(_, _, w)| w)
        .sum()
}

/// Weight of the cut separating a single node from the rest (its weighted degree).
pub fn singleton_cut(graph: &Graph, v: NodeId) -> Weight {
    graph.arcs(v).iter().map(|a| a.weight).sum()
}

/// Samples `count` random non-trivial cuts (each node joins `S` with
/// probability 1/2; resampled if `S` is empty or everything).  Returns the
/// membership masks.  Used by the Theorem 9 benchmark to compare cut weights
/// between a graph and its sparsifier.
pub fn sample_random_cuts(graph: &Graph, count: usize, rng: &mut impl Rng) -> Vec<Vec<bool>> {
    let n = graph.n();
    let mut cuts = Vec::with_capacity(count);
    while cuts.len() < count {
        let mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let ones = mask.iter().filter(|&&b| b).count();
        if ones == 0 || ones == n {
            continue;
        }
        cuts.push(mask);
    }
    cuts
}

/// The minimum over all singleton cuts — a cheap upper bound on the minimum
/// cut, used to sanity-check sparsifier quality claims on test graphs.
pub fn min_singleton_cut(graph: &Graph) -> Weight {
    graph
        .nodes()
        .map(|v| singleton_cut(graph, v))
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    #[test]
    fn cut_weight_on_path() {
        let g = generators::path(6).unwrap();
        // Splitting a path in the middle cuts exactly one edge.
        assert_eq!(cut_weight(&g, &[0, 1, 2]), 1);
        assert_eq!(cut_weight(&g, &[0]), 1);
        assert_eq!(cut_weight(&g, &[1]), 2);
    }

    #[test]
    fn cut_weight_on_cycle_is_even() {
        let g = generators::cycle(8).unwrap();
        for s_len in 1..8 {
            let s: Vec<u32> = (0..s_len).collect();
            assert_eq!(cut_weight(&g, &s) % 2, 0);
        }
    }

    #[test]
    fn singleton_cut_equals_weighted_degree() {
        let g = generators::weighted_grid(&[3, 3], 7, &mut rand::rngs::StdRng::seed_from_u64(1))
            .unwrap();
        for v in g.nodes() {
            assert_eq!(
                singleton_cut(&g, v),
                g.arcs(v).iter().map(|a| a.weight).sum()
            );
        }
        assert!(min_singleton_cut(&g) >= 2);
    }

    #[test]
    fn random_cuts_are_nontrivial() {
        let g = generators::grid(&[4, 4]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let cuts = sample_random_cuts(&g, 20, &mut rng);
        assert_eq!(cuts.len(), 20);
        for mask in &cuts {
            let ones = mask.iter().filter(|&&b| b).count();
            assert!(ones > 0 && ones < 16);
            assert!(cut_weight_mask(&g, mask) > 0);
        }
    }
}
