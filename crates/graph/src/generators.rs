//! Deterministic and randomized graph-family generators.
//!
//! These cover the families analysed in the paper (paths, cycles and
//! `d`-dimensional grids — Theorems 15 & 16; polynomial-growth graphs —
//! Theorem 17), the worst-case-style topologies used by existential lower
//! bounds (long paths attached to dense cores, Section 3.3 discussion), and
//! realistic topologies for the example applications (data-center fat trees,
//! random geometric "wireless" graphs, Erdős–Rényi graphs).
//!
//! All randomized generators take an explicit [`Rng`] and are fully
//! deterministic given a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::{Graph, NodeId, Weight};
use crate::error::GraphError;
use crate::{GraphBuilder, Result};

/// Path graph `P_n` on `n` nodes.  `NQ_k ∈ Θ(min(√k, D))` (Theorem 15).
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_unweighted_edge((v - 1) as NodeId, v as NodeId)?;
    }
    b.build()
}

/// Cycle graph `C_n` on `n >= 3` nodes.
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_unweighted_edge((v - 1) as NodeId, v as NodeId)?;
    }
    b.add_unweighted_edge((n - 1) as NodeId, 0)?;
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_unweighted_edge(u as NodeId, v as NodeId)?;
        }
    }
    b.build()
}

/// Star graph on `n` nodes (node 0 is the hub).
pub fn star(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_unweighted_edge(0, v as NodeId)?;
    }
    b.build()
}

/// `d`-dimensional grid graph with side lengths `dims` (Definition 3.9 uses
/// equal sides; arbitrary sides are supported).  `NQ_k ∈ Θ(min(k^{1/(d+1)}, D))`
/// for constant `d` (Theorem 16).
pub fn grid(dims: &[usize]) -> Result<Graph> {
    lattice(dims, false)
}

/// `d`-dimensional torus (grid with wrap-around edges).
pub fn torus(dims: &[usize]) -> Result<Graph> {
    lattice(dims, true)
}

fn lattice(dims: &[usize], wrap: bool) -> Result<Graph> {
    if dims.is_empty() || dims.contains(&0) {
        return Err(GraphError::InvalidParameter {
            reason: "grid dimensions must be non-empty and positive".into(),
        });
    }
    if wrap && dims.iter().any(|&d| d < 3) {
        return Err(GraphError::InvalidParameter {
            reason: "torus requires every dimension >= 3".into(),
        });
    }
    let n: usize = dims.iter().product();
    let mut strides = vec![1usize; dims.len()];
    for i in 1..dims.len() {
        strides[i] = strides[i - 1] * dims[i - 1];
    }
    let index =
        |coords: &[usize]| -> usize { coords.iter().zip(&strides).map(|(c, s)| c * s).sum() };
    let mut b = GraphBuilder::new(n);
    let mut coords = vec![0usize; dims.len()];
    for flat in 0..n {
        // Decode coordinates of `flat`.
        let mut rest = flat;
        for (i, &d) in dims.iter().enumerate() {
            coords[i] = rest % d;
            rest /= d;
        }
        for (axis, &d) in dims.iter().enumerate() {
            if coords[axis] + 1 < d {
                let mut nb = coords.clone();
                nb[axis] += 1;
                b.add_unweighted_edge(flat as NodeId, index(&nb) as NodeId)?;
            } else if wrap && d >= 3 {
                let mut nb = coords.clone();
                nb[axis] = 0;
                b.add_unweighted_edge(flat as NodeId, index(&nb) as NodeId)?;
            }
        }
    }
    b.build()
}

/// Complete `arity`-ary tree of the given `depth` (depth 0 is a single root).
///
/// The node count is `1 + arity + … + arity^depth`, which can overshoot a
/// size target by up to `arity ×`; experiment sweeps that need a tree of a
/// *specific* size should use [`tree_with_n`] instead.
pub fn tree_balanced(arity: usize, depth: usize) -> Result<Graph> {
    if arity == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "tree arity must be positive".into(),
        });
    }
    // Number of nodes: 1 + arity + arity^2 + ... + arity^depth.
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.saturating_mul(arity);
        n = n.saturating_add(level);
    }
    tree_with_n(arity, n)
}

/// Truncated complete `arity`-ary tree with **exactly** `n` nodes: the tree
/// is filled level by level in BFS (heap) numbering — node `v`'s children are
/// `arity·v + 1 ..= arity·v + arity` — and simply stops at `n`, so every
/// level except possibly the last is full.  This keeps the depth at
/// `⌈log_arity n⌉` without the up-to-`arity ×` size overshoot of
/// [`tree_balanced`].
pub fn tree_with_n(arity: usize, n: usize) -> Result<Graph> {
    if arity == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "tree arity must be positive".into(),
        });
    }
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::new(n);
    // Parent of node v (BFS numbering): (v - 1) / arity.
    for v in 1..n {
        b.add_unweighted_edge(((v - 1) / arity) as NodeId, v as NodeId)?;
    }
    b.build()
}

/// Caterpillar graph: a spine path of `spine` nodes, each with `legs` pendant
/// leaves.  A sparse, large-diameter family with `NQ_k` strictly smaller than
/// `√k` for moderate `k`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph> {
    if spine == 0 {
        return Err(GraphError::Empty);
    }
    let n = spine * (legs + 1);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_unweighted_edge((s - 1) as NodeId, s as NodeId)?;
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            b.add_unweighted_edge(s as NodeId, leaf as NodeId)?;
        }
    }
    b.build()
}

/// Lollipop graph: a clique on `clique` nodes with a path of `tail` nodes
/// attached — the archetypal graph behind existential `Ω(√k)` lower bounds
/// ("graphs that feature an isolated long path", Section 3.2).
pub fn lollipop(clique: usize, tail: usize) -> Result<Graph> {
    if clique == 0 {
        return Err(GraphError::Empty);
    }
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b.add_unweighted_edge(u as NodeId, v as NodeId)?;
        }
    }
    for t in 0..tail {
        let prev = if t == 0 { clique - 1 } else { clique + t - 1 };
        b.add_unweighted_edge(prev as NodeId, (clique + t) as NodeId)?;
    }
    b.build()
}

/// Connected Erdős–Rényi graph `G(n, p)`: a uniform random spanning tree is
/// added first to guarantee connectivity, then every remaining pair is joined
/// independently with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must be in [0,1], got {p}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Random spanning tree via random attachment to an already-connected prefix
    // of a random permutation.
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_unweighted_edge(perm[i], perm[j])?;
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !b.contains_edge(u as NodeId, v as NodeId) && rng.gen_bool(p) {
                b.add_unweighted_edge(u as NodeId, v as NodeId)?;
            }
        }
    }
    b.build()
}

/// Random geometric graph on the unit square with connection radius `radius`;
/// models short-range wireless links.  Falls back to connecting each isolated
/// component to its nearest node (by Euclidean distance) to guarantee
/// connectivity, mimicking a deployment that adds relays where needed.
pub fn random_geometric(n: usize, radius: f64, rng: &mut impl Rng) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if radius <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: "radius must be positive".into(),
        });
    }
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut b = GraphBuilder::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_unweighted_edge(u as NodeId, v as NodeId)?;
            }
        }
    }
    // Stitch components together through nearest cross-component pairs.
    loop {
        let g = b.clone().build_unchecked_connectivity();
        let (comp, count) = crate::traversal::connected_components(&g);
        if count == 1 {
            break;
        }
        // Connect component 0 to its nearest node in another component.
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            if comp[u] != 0 {
                continue;
            }
            for v in 0..n {
                if comp[v] == 0 {
                    continue;
                }
                let dx = points[u].0 - points[v].0;
                let dy = points[u].1 - points[v].1;
                let d2 = dx * dx + dy * dy;
                if best.is_none_or(|(bd, _, _)| d2 < bd) {
                    best = Some((d2, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("at least two components have nodes");
        b.add_unweighted_edge(u as NodeId, v as NodeId)?;
    }
    b.build()
}

/// A simplified two-level fat-tree / leaf–spine data-center topology:
/// `spines` spine switches, `leaves` leaf switches (each connected to every
/// spine) and `hosts_per_leaf` hosts per leaf.  Small diameter, highly
/// non-uniform neighbourhood growth — the regime where universal optimality
/// pays off most.
pub fn fat_tree(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Result<Graph> {
    if spines == 0 || leaves == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "fat_tree requires at least one spine and one leaf".into(),
        });
    }
    let n = spines + leaves + leaves * hosts_per_leaf;
    let mut b = GraphBuilder::new(n);
    for l in 0..leaves {
        let leaf = spines + l;
        for s in 0..spines {
            b.add_unweighted_edge(s as NodeId, leaf as NodeId)?;
        }
        for h in 0..hosts_per_leaf {
            let host = spines + leaves + l * hosts_per_leaf + h;
            b.add_unweighted_edge(leaf as NodeId, host as NodeId)?;
        }
    }
    b.build()
}

/// Chung–Lu random graph with a power-law expected-degree sequence: node `i`
/// gets weight `w_i ∝ (i + 1)^{-1/(exponent - 1)}`, scaled so the average
/// expected degree is `avg_degree`, and each pair `{u, v}` is joined
/// independently with probability `min(1, w_u·w_v / Σw)`.  The resulting
/// degree distribution is heavy-tailed with tail exponent ≈ `exponent` —
/// high-degree hubs next to long low-degree fringes, the regime where the
/// per-node global capacity `γ` (not `√k`) governs HYBRID round complexity.
///
/// Connectivity is restored deterministically: every component not containing
/// node 0 (the maximum-weight hub) is attached to node 0 through its
/// lowest-index member, mimicking a scale-free network whose stragglers peer
/// with the dominant hub.
pub fn chung_lu(n: usize, exponent: f64, avg_degree: f64, rng: &mut impl Rng) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if exponent <= 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chung_lu requires a tail exponent > 1, got {exponent}"),
        });
    }
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chung_lu requires a positive average degree, got {avg_degree}"),
        });
    }
    let alpha = 1.0 / (exponent - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let raw_sum: f64 = raw.iter().sum();
    // Scale so Σw = n·avg_degree, making the expected degree of node u
    // approximately w_u (before the min(1, ·) clipping).
    let scale = n as f64 * avg_degree / raw_sum;
    let w: Vec<f64> = raw.iter().map(|r| r * scale).collect();
    let total: f64 = n as f64 * avg_degree;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.gen_bool(p) {
                b.add_unweighted_edge(u as NodeId, v as NodeId)?;
            }
        }
    }
    // Attach every stray component to the hub (node 0) through its
    // lowest-index node — deterministic given the edges drawn above.
    if n > 1 {
        let g = b.clone().build_unchecked_connectivity();
        let (comp, count) = crate::traversal::connected_components(&g);
        if count > 1 {
            let mut attached = vec![false; count];
            attached[comp[0]] = true;
            for v in 1..n {
                if !attached[comp[v]] {
                    attached[comp[v]] = true;
                    b.add_unweighted_edge(0, v as NodeId)?;
                }
            }
        }
    }
    b.build()
}

/// Ring of cliques: `cliques` cliques of `clique_size` nodes arranged in a
/// cycle, each adjacent pair joined by `bridges` parallel-free edges (bridge
/// `i` connects node `i` of one clique to node `i` of the next).  A clustered
/// small-world family with a tunable cut: locally dense (`NQ_k` small inside
/// a clique) but globally cycle-like, so dissemination must cross `bridges`
/// edges per cut — stressing the interplay of local flooding and the global
/// scheduler.  `bridges` must be at most `clique_size`.
pub fn ring_of_cliques(cliques: usize, clique_size: usize, bridges: usize) -> Result<Graph> {
    if cliques < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("ring_of_cliques requires >= 3 cliques, got {cliques}"),
        });
    }
    if clique_size == 0 {
        return Err(GraphError::Empty);
    }
    if bridges == 0 || bridges > clique_size {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "ring_of_cliques requires 1 <= bridges <= clique_size, got {bridges} bridges for clique size {clique_size}"
            ),
        });
    }
    let n = cliques * clique_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * clique_size;
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                b.add_unweighted_edge((base + u) as NodeId, (base + v) as NodeId)?;
            }
        }
        let next_base = ((c + 1) % cliques) * clique_size;
        for i in 0..bridges {
            b.add_unweighted_edge((base + i) as NodeId, (next_base + i) as NodeId)?;
        }
    }
    b.build()
}

/// Barbell graph: two cliques of `clique` nodes joined by a path of
/// `path_len` intermediate nodes.  The archetypal bottleneck topology — all
/// clique-to-clique traffic funnels through one path — which stresses the
/// γ-capacitated global scheduler exactly where the paper's universal lower
/// bound (the node communication problem across the narrow cut) is tight.
pub fn barbell(clique: usize, path_len: usize) -> Result<Graph> {
    if clique == 0 {
        return Err(GraphError::Empty);
    }
    let n = 2 * clique + path_len;
    let mut b = GraphBuilder::new(n);
    // Clique A: nodes [0, clique); path: [clique, clique + path_len);
    // clique B: [clique + path_len, n).
    for base in [0, clique + path_len] {
        for u in 0..clique {
            for v in (u + 1)..clique {
                b.add_unweighted_edge((base + u) as NodeId, (base + v) as NodeId)?;
            }
        }
    }
    let mut prev = clique - 1; // last node of clique A
    for p in 0..path_len {
        b.add_unweighted_edge(prev as NodeId, (clique + p) as NodeId)?;
        prev = clique + p;
    }
    b.add_unweighted_edge(prev as NodeId, (clique + path_len) as NodeId)?;
    b.build()
}

/// Replaces every edge weight by an independent uniform weight in `[1, max_weight]`.
pub fn with_random_weights(graph: &Graph, max_weight: Weight, rng: &mut impl Rng) -> Result<Graph> {
    if max_weight == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "max_weight must be >= 1".into(),
        });
    }
    let mut b = GraphBuilder::new(graph.n());
    for &(u, v, _) in graph.edges() {
        b.add_edge(u, v, rng.gen_range(1..=max_weight))?;
    }
    b.build()
}

/// Weighted grid convenience wrapper: [`grid`] followed by [`with_random_weights`].
pub fn weighted_grid(dims: &[usize], max_weight: Weight, rng: &mut impl Rng) -> Result<Graph> {
    with_random_weights(&grid(dims)?, max_weight, rng)
}

/// Weighted Erdős–Rényi convenience wrapper.
pub fn weighted_erdos_renyi(
    n: usize,
    p: f64,
    max_weight: Weight,
    rng: &mut impl Rng,
) -> Result<Graph> {
    with_random_weights(&erdos_renyi(n, p, rng)?, max_weight, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::diameter;
    use crate::traversal::connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn path_cycle_shapes() {
        let p = path(7).unwrap();
        assert_eq!((p.n(), p.m()), (7, 6));
        let c = cycle(7).unwrap();
        assert_eq!((c.n(), c.m()), (7, 7));
        assert!(cycle(2).is_err());
        assert!(path(0).is_err());
    }

    #[test]
    fn complete_and_star() {
        let k = complete(6).unwrap();
        assert_eq!(k.m(), 15);
        assert_eq!(diameter(&k), 1);
        let s = star(10).unwrap();
        assert_eq!(s.m(), 9);
        assert_eq!(diameter(&s), 2);
        assert_eq!(s.degree(0), 9);
    }

    #[test]
    fn grid_structure() {
        let g = grid(&[4, 5]).unwrap();
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5); // horizontal + vertical edges
        assert_eq!(diameter(&g), 3 + 4);
        let g3 = grid(&[3, 3, 3]).unwrap();
        assert_eq!(g3.n(), 27);
        assert_eq!(diameter(&g3), 6);
        assert!(grid(&[]).is_err());
        assert!(grid(&[0, 3]).is_err());
    }

    #[test]
    fn torus_is_regular_and_smaller_diameter() {
        let t = torus(&[4, 4]).unwrap();
        assert_eq!(t.n(), 16);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
        assert!(diameter(&t) <= diameter(&grid(&[4, 4]).unwrap()));
        assert!(torus(&[2, 4]).is_err());
    }

    #[test]
    fn balanced_tree_counts() {
        let t = tree_balanced(2, 3).unwrap();
        assert_eq!(t.n(), 15);
        assert_eq!(t.m(), 14);
        assert_eq!(diameter(&t), 6);
        let t = tree_balanced(3, 2).unwrap();
        assert_eq!(t.n(), 13);
        assert!(tree_balanced(0, 2).is_err());
    }

    #[test]
    fn tree_with_n_hits_size_exactly() {
        for arity in 1..=4usize {
            for n in 1..=40usize {
                let t = tree_with_n(arity, n).unwrap();
                assert_eq!(t.n(), n, "arity {arity}");
                assert_eq!(t.m(), n - 1, "a tree has n-1 edges");
                let (_, c) = connected_components(&t);
                assert_eq!(c, 1);
            }
        }
        assert!(tree_with_n(0, 5).is_err());
        assert!(tree_with_n(2, 0).is_err());
    }

    #[test]
    fn tree_with_n_matches_balanced_on_complete_sizes() {
        // On node counts that form complete trees the two constructions are
        // the same graph (identical BFS numbering).
        let full = tree_balanced(2, 3).unwrap();
        let trunc = tree_with_n(2, 15).unwrap();
        assert_eq!(full.edges(), trunc.edges());
        // Truncation keeps the depth logarithmic: 20 nodes, arity 2 ⇒ the
        // deepest node (19) sits at depth 4, so the diameter is at most 8.
        let t = tree_with_n(2, 20).unwrap();
        assert!(diameter(&t) <= 8, "diameter {}", diameter(&t));
    }

    #[test]
    fn caterpillar_and_lollipop() {
        let c = caterpillar(5, 3).unwrap();
        assert_eq!(c.n(), 20);
        assert_eq!(c.m(), 4 + 15);
        let l = lollipop(5, 10).unwrap();
        assert_eq!(l.n(), 15);
        assert_eq!(l.m(), 10 + 10);
        assert_eq!(diameter(&l), 11);
    }

    #[test]
    fn erdos_renyi_connected_and_seeded() {
        let g1 = erdos_renyi(60, 0.05, &mut rng(7)).unwrap();
        let g2 = erdos_renyi(60, 0.05, &mut rng(7)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
        let (_, c) = connected_components(&g1);
        assert_eq!(c, 1);
        assert!(erdos_renyi(10, 1.5, &mut rng(0)).is_err());
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = erdos_renyi(8, 1.0, &mut rng(3)).unwrap();
        assert_eq!(g.m(), 28);
    }

    #[test]
    fn random_geometric_connected() {
        let g = random_geometric(50, 0.18, &mut rng(11)).unwrap();
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
        assert!(random_geometric(10, 0.0, &mut rng(0)).is_err());
    }

    #[test]
    fn fat_tree_shape() {
        let g = fat_tree(4, 8, 10).unwrap();
        assert_eq!(g.n(), 4 + 8 + 80);
        assert_eq!(g.m(), 4 * 8 + 80);
        assert_eq!(diameter(&g), 4);
        assert!(fat_tree(0, 3, 2).is_err());
    }

    #[test]
    fn chung_lu_connected_seeded_and_heavy_tailed() {
        let g1 = chung_lu(300, 2.5, 6.0, &mut rng(42)).unwrap();
        let g2 = chung_lu(300, 2.5, 6.0, &mut rng(42)).unwrap();
        assert_eq!(g1.edges(), g2.edges(), "not seed-deterministic");
        assert_eq!(g1.n(), 300);
        let (_, c) = connected_components(&g1);
        assert_eq!(c, 1, "not connected");
        // Heavy tail: the hub degree dwarfs the average degree.
        let degrees: Vec<usize> = g1.nodes().map(|v| g1.degree(v)).collect();
        let max_deg = *degrees.iter().max().unwrap();
        let avg_deg = 2.0 * g1.m() as f64 / g1.n() as f64;
        assert!(
            max_deg as f64 >= 4.0 * avg_deg,
            "no hub: max degree {max_deg} vs average {avg_deg:.1}"
        );
        // The hub is node 0 (maximum weight).
        assert_eq!(g1.degree(0), max_deg);
        assert!(chung_lu(0, 2.5, 6.0, &mut rng(0)).is_err());
        assert!(chung_lu(10, 1.0, 6.0, &mut rng(0)).is_err());
        assert!(chung_lu(10, 2.5, 0.0, &mut rng(0)).is_err());
    }

    #[test]
    fn chung_lu_average_degree_in_the_right_regime() {
        let g = chung_lu(400, 2.5, 6.0, &mut rng(7)).unwrap();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        // min(1, ·) clipping and stitching shift the average a little; it must
        // stay in the same regime as the requested expected degree.
        assert!((2.0..=12.0).contains(&avg), "average degree {avg:.2}");
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(5, 4, 2).unwrap();
        assert_eq!(g.n(), 20);
        // 5 cliques of C(4,2)=6 edges plus 5 cuts of 2 bridges.
        assert_eq!(g.m(), 5 * 6 + 5 * 2);
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
        // Singleton cliques with one bridge degenerate to a cycle.
        let ring = ring_of_cliques(7, 1, 1).unwrap();
        let cyc = cycle(7).unwrap();
        assert_eq!(ring.m(), cyc.m());
        assert!(ring_of_cliques(2, 4, 1).is_err());
        assert!(ring_of_cliques(4, 3, 4).is_err());
        assert!(ring_of_cliques(4, 3, 0).is_err());
        assert!(ring_of_cliques(4, 0, 1).is_err());
    }

    #[test]
    fn ring_of_cliques_diameter_scales_with_ring() {
        // Crossing c cliques costs ≥ c hops, so the diameter grows with the
        // ring length while staying small within a clique.
        let short = ring_of_cliques(4, 6, 1).unwrap();
        let long = ring_of_cliques(12, 2, 1).unwrap();
        assert!(diameter(&long) > diameter(&short));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 3).unwrap();
        assert_eq!(g.n(), 13);
        // Two C(5,2)=10 cliques plus a 3-node path contributing 4 edges.
        assert_eq!(g.m(), 2 * 10 + 4);
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
        // Diameter: 1 (clique A) + 4 (path edges) + 1 (clique B).
        assert_eq!(diameter(&g), 6);
        // Degenerate cases still build connected graphs.
        let direct = barbell(4, 0).unwrap();
        assert_eq!(direct.n(), 8);
        assert_eq!(direct.m(), 2 * 6 + 1);
        let k2 = barbell(1, 0).unwrap();
        assert_eq!((k2.n(), k2.m()), (2, 1));
        assert!(barbell(0, 3).is_err());
    }

    #[test]
    fn random_weights_in_range() {
        let g = weighted_grid(&[5, 5], 100, &mut rng(5)).unwrap();
        assert!(g.is_weighted() || g.edges().iter().all(|&(_, _, w)| w == 1));
        for &(_, _, w) in g.edges() {
            assert!((1..=100).contains(&w));
        }
        assert!(with_random_weights(&path(3).unwrap(), 0, &mut rng(0)).is_err());
    }

    #[test]
    fn weighted_er_preserves_topology() {
        let mut r1 = rng(9);
        let base = erdos_renyi(30, 0.1, &mut r1).unwrap();
        let w = with_random_weights(&base, 50, &mut r1).unwrap();
        assert_eq!(base.m(), w.m());
        for (a, b) in base.edges().iter().zip(w.edges()) {
            assert_eq!((a.0, a.1), (b.0, b.1));
        }
    }
}
