//! Thread-count invariance of the table/figure pipelines.
//!
//! The reproduction's contract (README "Reproducibility", CONCURRENCY.md
//! "Determinism") is that every table row is a pure function of its seed:
//! the work-stealing executor may split and steal chunks differently on
//! every run, but the stitched output must be **bit-identical** to the
//! sequential execution for every pool width.  These tests run the actual
//! scenario pipelines — including the nested regions the executor now runs
//! in parallel (per-anchor skeleton SSSPs and `(min,+)` tiles under the
//! scenario fan-out) — on explicit pools of 1, 2, 4 and 8 threads and
//! compare the serialized rows byte for byte.

use hybrid_bench::faults_sweep::{fault_sweep_rows, FaultSweepConfig};
use hybrid_bench::scale::{scale_rows, ScaleConfig};
use hybrid_bench::scenarios::{figure1_rows, table1_rows, table2_rows, GraphFamily};
use hybrid_bench::sweep::{sweep_rows, SweepConfig};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Pool widths the determinism sweep covers (1 = the sequential reference).
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn on_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(f)
}

#[test]
fn table_pipelines_bit_identical_across_pool_sizes() {
    let run = || {
        let t1 = table1_rows(&[GraphFamily::Grid2D, GraphFamily::Path], 96, &[16, 32], 7);
        let t2 = table2_rows(&[GraphFamily::Grid2D, GraphFamily::BinaryTree], 81, 3);
        let mut blob = serde_json::to_string_pretty(&t1).unwrap();
        blob.push_str(&serde_json::to_string_pretty(&t2).unwrap());
        blob
    };
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(got, reference, "table rows diverged at {threads} threads");
    }
}

#[test]
fn figure1_pipeline_bit_identical_across_pool_sizes() {
    // Figure 1 exercises the deepest nesting: the per-β fan-out wraps the
    // Theorem 14 data level (skeleton sweeps, per-anchor coefficient rows,
    // the (min,+) kernel), all of which are parallel regions themselves.
    let run = || serde_json::to_string_pretty(&figure1_rows(128, &[0.25, 0.5, 0.75], 2)).unwrap();
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(got, reference, "figure1 rows diverged at {threads} threads");
    }
}

#[test]
fn sweep_quick_rows_bit_identical_across_pool_sizes() {
    // The exact `reproduce sweep --quick` grid (every family × 3 sizes ×
    // 3 (λ, γ) points): the per-(family, n) fan-out shares one graph and
    // oracle across grid points, so this also pins that the point loop stays
    // inside its cell's RNG streams at every pool width.
    let run = || {
        serde_json::to_string_pretty(&sweep_rows(GraphFamily::all(), &SweepConfig::quick()))
            .unwrap()
    };
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(got, reference, "sweep rows diverged at {threads} threads");
    }
}

#[test]
fn scale_rows_bit_identical_across_pool_sizes() {
    // The scale tier composes the streaming generators (parallel chunked
    // edge emission with canonical per-chunk streams), the parallel
    // `DistanceRows` fan-out and the sampled `NQ` oracle — every one of
    // which must be worker-schedule-invariant for `results/sweep_scale.json`
    // to survive the CI cross-thread diff.  A shrunk grid over the random
    // families (the only ones whose generators consume RNG streams) plus a
    // deterministic one keeps this fast.
    let run = || {
        let config = ScaleConfig {
            sizes: vec![512, 2048],
            families: vec![
                GraphFamily::Grid2D,
                GraphFamily::ErdosRenyi,
                GraphFamily::RandomGeometric,
                GraphFamily::ChungLu,
            ],
            sources: 8,
            nq_samples: 16,
            exact_crosscheck_max: 512,
            seed: 0x5CA1E,
        };
        serde_json::to_string_pretty(&scale_rows(&config)).unwrap()
    };
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(got, reference, "scale rows diverged at {threads} threads");
    }
}

#[test]
fn fault_sweep_rows_bit_identical_across_pool_sizes() {
    // The fault plane's decisions are pure hashes of a seeded key, so the
    // adversary itself must be thread-invariant: the same seed has to drop,
    // duplicate, delay and crash exactly the same messages whether the
    // per-cell fan-out runs on 1 worker or 8.  A shrunk grid (one size, the
    // failure-free reference plus a drop and the combined chaos profile)
    // keeps this fast while still exercising every fault class.
    let run = || {
        let config = FaultSweepConfig {
            sizes: vec![48],
            profiles: FaultSweepConfig::quick()
                .profiles
                .into_iter()
                .filter(|p| matches!(p.name, "none" | "drop-35" | "chaos"))
                .collect(),
            seed: 0xFA17,
            max_rounds: 50_000,
        };
        serde_json::to_string_pretty(&fault_sweep_rows(GraphFamily::core_families(), &config))
            .unwrap()
    };
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(
            got, reference,
            "fault sweep rows diverged at {threads} threads"
        );
    }
}

#[test]
fn skewed_chunk_costs_force_steals_without_changing_output() {
    // A synthetic nested pipeline with deliberately skewed per-item cost:
    // the first outer item does ~1000x the work of the rest, so its worker
    // stalls while thieves drain (and re-split) the tail — the shape that
    // maximizes steal traffic.  The stitched output must not care.
    let work = |i: u64, rounds: u64| (0..rounds).fold(i, |a, b| a.wrapping_add(a ^ b));
    let run = || {
        (0u64..64)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                let rounds = if i == 0 { 100_000 } else { 100 };
                // Nested region: an inner fan-out per outer item.
                let inner: Vec<u64> = (0u64..32)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|j| work(i * 32 + j, rounds))
                    .collect();
                inner.into_iter().fold(0u64, |a, b| a.wrapping_add(b))
            })
            .collect::<Vec<u64>>()
    };
    let reference = on_pool(1, run);
    for threads in &WIDTHS[1..] {
        let got = on_pool(*threads, run);
        assert_eq!(
            got, reference,
            "skewed fan-out diverged at {threads} threads"
        );
    }
}
