//! Criterion bench for the query-serving tier: throughput of batched
//! distance and path queries against a built `DistanceOracle`, plus the
//! one-off build cost.  The per-iteration batch size is fixed, so the
//! reported time per iteration divides into a queries-per-second figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybrid_bench::oracle_bench::OracleBenchConfig;
use hybrid_core::oracle::{DistanceOracle, OracleConfig};

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_queries");
    group.sample_size(10);

    let config = OracleBenchConfig::quick();
    let graph = config.build_graph();
    let oracle = DistanceOracle::build(
        &graph,
        OracleConfig {
            seed: config.seed,
            ..OracleConfig::default()
        },
    )
    .expect("oracle build");
    let batches = config.query_batches(graph.n());
    let batch = &batches[0];

    group.bench_function(format!("query_batch_{}", batch.len()), |b| {
        b.iter(|| black_box(oracle.query_batch(black_box(batch))))
    });
    group.bench_function(format!("query_paths_batch_{}", batch.len()), |b| {
        b.iter(|| black_box(oracle.query_paths_batch(black_box(batch))))
    });
    group.bench_function("build_grid576", |b| {
        b.iter(|| {
            DistanceOracle::build(
                black_box(&graph),
                OracleConfig {
                    seed: config.seed,
                    ..OracleConfig::default()
                },
            )
            .expect("oracle build")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
