//! Criterion bench for the Table 2 experiment (APSP): wall-clock time of the
//! Theorem 6 / Theorem 7 pipelines and the structured `√n` baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_core::apsp;
use hybrid_core::nq::NqOracle;
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_apsp");
    group.sample_size(10);

    let grid = Arc::new(generators::grid(&[12, 12]).unwrap());
    let grid_oracle = NqOracle::new(&grid);
    group.bench_function("theorem6_unweighted_grid144", |b| {
        b.iter(|| {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&grid));
            apsp::apsp_unweighted(&mut net, &grid_oracle, 0.5)
        })
    });
    group.bench_function("baseline_sqrt_n_grid144", |b| {
        b.iter(|| {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&grid));
            apsp::baseline_unweighted_apsp_sqrt_n(&mut net, &grid_oracle, 0.5)
        })
    });

    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let weighted = Arc::new(generators::weighted_grid(&[10, 10], 16, &mut rng).unwrap());
    let weighted_oracle = NqOracle::new(&weighted);
    group.bench_function("theorem7_weighted_spanner_grid100", |b| {
        b.iter(|| {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&weighted));
            apsp::apsp_weighted_spanner(&mut net, &weighted_oracle, 0.5)
        })
    });
    group.bench_function("theorem8_weighted_skeleton_grid100", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        b.iter(|| {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&weighted));
            apsp::apsp_weighted_skeleton(&mut net, &weighted_oracle, 1, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
