//! Criterion bench for the Figure 1 experiment (k-SSP landscape): wall-clock
//! time of the Theorem 14 skeleton scheduler for growing source counts.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_core::kssp::{kssp, KsspVariant};
use hybrid_core::prob::sample_distinct;
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_kssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_kssp");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = Arc::new(generators::erdos_renyi(400, 6.0 / 400.0, &mut rng).unwrap());
    for k in [8usize, 32, 128] {
        let sources = sample_distinct(graph.n(), k, &mut rng);
        group.bench_with_input(BenchmarkId::new("theorem14", k), &sources, |b, sources| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| {
                let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
                kssp(&mut net, sources, 1.0, KsspVariant::RandomSources, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kssp);
criterion_main!(benches);
