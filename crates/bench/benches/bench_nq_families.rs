//! Criterion bench for the Appendix B experiment: cost of computing the
//! neighborhood-quality parameter `NQ_k` (oracle construction + queries) and
//! of the Lemma 3.5 clustering on the special graph families.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_core::cluster::cluster_by_nq;
use hybrid_core::nq::NqOracle;
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;

fn bench_nq(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_b_nq");
    group.sample_size(10);
    for (name, graph) in [
        ("path-1024", generators::path(1024).unwrap()),
        ("grid-32x32", generators::grid(&[32, 32]).unwrap()),
        ("grid-10x10x10", generators::grid(&[10, 10, 10]).unwrap()),
    ] {
        let graph = Arc::new(graph);
        group.bench_with_input(BenchmarkId::new("nq_oracle_build", name), &graph, |b, g| {
            b.iter(|| NqOracle::new(g))
        });
        let oracle = NqOracle::new(&graph);
        group.bench_with_input(BenchmarkId::new("nq_query_sweep", name), &graph, |b, _| {
            b.iter(|| {
                (1..=10u64)
                    .map(|i| oracle.nq(i * i * 10))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("lemma35_clustering", name),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut net = HybridNetwork::hybrid0(Arc::clone(g));
                    cluster_by_nq(&mut net, &oracle, g.n() as u64 / 2)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nq);
criterion_main!(benches);
