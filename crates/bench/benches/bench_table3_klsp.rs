//! Criterion bench for the Table 3 experiment (`(k, ℓ)`-SP): wall-clock time
//! of Theorem 5 and of the `(k, ℓ)`-routing layer it relies on.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_core::klsp::{klsp, KlspScenario};
use hybrid_core::nq::NqOracle;
use hybrid_core::prob::sample_distinct;
use hybrid_core::routing::{kl_routing, RoutingScenario};
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_klsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_klsp");
    group.sample_size(10);
    let graph = Arc::new(generators::grid(&[12, 12]).unwrap());
    let oracle = NqOracle::new(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let sources = sample_distinct(graph.n(), 32, &mut rng);
    let targets = sample_distinct(graph.n(), 6, &mut rng);

    group.bench_function("theorem5_klsp_grid144_k32", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| {
            let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
            klsp(
                &mut net,
                &oracle,
                &sources,
                &targets,
                0.5,
                KlspScenario::ArbitrarySourcesRandomTargets,
                &mut rng,
            )
        })
    });
    group.bench_function("theorem3_routing_grid144_k32", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
            kl_routing(
                &mut net,
                &oracle,
                &sources,
                &targets,
                RoutingScenario::ArbitrarySourcesRandomTargets,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_klsp);
criterion_main!(benches);
