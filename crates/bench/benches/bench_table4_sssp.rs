//! Criterion bench for the Table 4 experiment (SSSP): wall-clock time of the
//! Theorem 13 SSSP and the prior-work baselines on graphs of growing size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_core::sssp::{baseline_sssp, sssp_approx, SsspBaseline};
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_sssp");
    group.sample_size(10);
    for side in [16usize, 32] {
        let mut rng = ChaCha8Rng::seed_from_u64(side as u64);
        let graph = Arc::new(generators::weighted_grid(&[side, side], 32, &mut rng).unwrap());
        group.bench_with_input(
            BenchmarkId::new("theorem13", side * side),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut net = HybridNetwork::hybrid0(Arc::clone(g));
                    sssp_approx(&mut net, 0, 0.25)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_ks20", side * side),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut net = HybridNetwork::hybrid0(Arc::clone(g));
                    baseline_sssp(&mut net, 0, SsspBaseline::Ks20SqrtN)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
