//! Criterion bench for the Table 1 experiment (information dissemination):
//! wall-clock time of the universal `k`-dissemination (Theorem 1) vs. the
//! existential `Õ(√k)` baseline on a 2-D grid and a path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_core::dissemination::{baseline_sqrt_k_dissemination, k_dissemination, place_tokens};
use hybrid_core::nq::NqOracle;
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_dissemination");
    group.sample_size(10);
    for (name, graph) in [
        ("grid-16x16", generators::grid(&[16, 16]).unwrap()),
        ("path-256", generators::path(256).unwrap()),
    ] {
        let graph = Arc::new(graph);
        let oracle = NqOracle::new(&graph);
        let tokens = place_tokens(&(0..graph.n() as u32).collect::<Vec<_>>(), 128);
        group.bench_with_input(
            BenchmarkId::new("universal_theorem1", name),
            &tokens,
            |b, tokens| {
                b.iter(|| {
                    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                    k_dissemination(&mut net, &oracle, tokens)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_sqrt_k", name),
            &tokens,
            |b, tokens| {
                b.iter(|| {
                    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                    baseline_sqrt_k_dissemination(&mut net, &oracle, tokens)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dissemination);
criterion_main!(benches);
