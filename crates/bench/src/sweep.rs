//! Scaling sweeps: the algorithm **shootout** — competitive-ratio curves for
//! every registered algorithm against the per-instance lower bound over a
//! `family × size × (λ, γ)` grid.
//!
//! The paper's headline claim is *universal* optimality — on **every**
//! topology the algorithms stay within polylog factors of that graph's own
//! lower bound.  The table reproductions check fixed-size rows; this module
//! measures the claim *at scale and against the competition*: every
//! [`GraphFamily`] is swept over a geometric ladder of sizes and a small grid
//! of `HYBRID(λ, γ)` parameter points, and each cell runs **every registered
//! implementation** ([`hybrid_core::algorithm`]) on the *same instance* —
//! same graph, same token placement, same sources — and records each one's
//! measured rounds **next to the same per-instance lower-bound witness**
//! (from `hybrid_core::lower_bounds` / `kssp_lower_bound_rounds`), plus the
//! resulting competitive ratio.  Plotting `ratio` against `n` per family and
//! per algorithm is the empirical universal-optimality curve: the paper's
//! pipelines predict a flat polylog envelope on every family, the
//! deterministic token-forwarding rival (`det-broadcast`, arXiv:2304.06317)
//! pays for its funnel on token-heavy cells, and the skeleton-free Schneider
//! baseline (`schneider`, arXiv:2306.05977) collapses on high-diameter
//! families where its deepening bill is `Θ(hop-diameter)`.
//!
//! ## Determinism
//!
//! Cells are independent experiments: each `(family, n)` pair derives its own
//! `ChaCha8` streams from the sweep seed and the cell coordinates, so the
//! rayon fan-out (one task per `(family, n)` pair, `(λ, γ)` points and
//! algorithms run in-cell to share the graph and its `NQ` oracle) is
//! bit-identical across `RAYON_NUM_THREADS` — pinned by
//! `crates/bench/tests/determinism.rs` and the CI cross-thread artifact diff.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::Serialize;

use hybrid_core::algorithm::{select_algorithms, RegistryError, ShootoutSelection};
use hybrid_core::dissemination::place_tokens;
use hybrid_core::kssp::kssp_lower_bound_rounds;
use hybrid_core::lower_bounds::{dissemination_lower_bound, shortest_paths_lower_bound};
use hybrid_core::nq::NqOracle;
use hybrid_core::prob::sample_distinct;
use hybrid_core::sssp::sssp_approx;
use hybrid_sim::{HybridNetwork, IdSpace, LocalBandwidth, ModelParams};

use crate::scenarios::GraphFamily;

/// One `(λ, γ)` point of the sweep grid, as a function of `n` (both
/// parameters are measured in the paper's `⌈log₂ n⌉` unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SweepPoint {
    /// Short name used in the JSON rows (`hybrid`, `scarce-global`, …).
    pub name: &'static str,
    /// `λ`: `None` is unlimited local bandwidth; `Some(c)` bounds every local
    /// edge to `c·⌈log₂ n⌉` bits per round (CONGEST-style local network).
    pub lambda_log_factor: Option<u64>,
    /// `γ` in messages per node per round: `max(1, num·⌈log₂ n⌉ / den)`.
    pub gamma_num: usize,
    /// Denominator of the `γ` scaling (see `gamma_num`).
    pub gamma_den: usize,
}

impl SweepPoint {
    /// The standard `HYBRID` point: `λ = ∞`, `γ = ⌈log₂ n⌉`.
    pub const HYBRID: SweepPoint = SweepPoint {
        name: "hybrid",
        lambda_log_factor: None,
        gamma_num: 1,
        gamma_den: 1,
    };
    /// Scarce global bandwidth: `λ = ∞`, `γ = max(1, ⌈log₂ n⌉ / 4)` — the
    /// regime where the `1/γ` factor of Lemma 7.1 bites hardest.
    pub const SCARCE_GLOBAL: SweepPoint = SweepPoint {
        name: "scarce-global",
        lambda_log_factor: None,
        gamma_num: 1,
        gamma_den: 4,
    };
    /// Rich global bandwidth: `λ = ∞`, `γ = 4·⌈log₂ n⌉`.
    pub const RICH_GLOBAL: SweepPoint = SweepPoint {
        name: "rich-global",
        lambda_log_factor: None,
        gamma_num: 4,
        gamma_den: 1,
    };
    /// CONGEST-style local edges (`λ = ⌈log₂ n⌉` bits) with the standard
    /// global capacity.  The phase simulation charges local phases by hop
    /// radius, so measured rounds coincide with [`SweepPoint::HYBRID`]; the
    /// point documents that λ does not enter the Lemma 7.1 witness either.
    pub const CONGEST_LOCAL: SweepPoint = SweepPoint {
        name: "congest-local",
        lambda_log_factor: Some(1),
        gamma_num: 1,
        gamma_den: 1,
    };

    /// `γ` in messages per node per round for an `n`-node instance.
    pub fn gamma_msgs(&self, n: usize) -> usize {
        (self.gamma_num * ModelParams::log_n(n) / self.gamma_den.max(1)).max(1)
    }

    /// Human-readable `λ` description for the JSON rows.
    pub fn lambda_label(&self) -> String {
        match self.lambda_log_factor {
            None => "inf".to_string(),
            Some(c) => format!("{c}*log(n) bits"),
        }
    }

    /// Model parameters for an `n`-node instance at this point.
    ///
    /// Identifiers are kept globally known (`Hybrid`-style) so the same grid
    /// point drives all three pipelines; the `Hybrid0` distinction is covered
    /// by the table reproductions.
    pub fn params(&self, n: usize) -> ModelParams {
        ModelParams {
            n,
            local: match self.lambda_log_factor {
                None => LocalBandwidth::Unlimited,
                Some(c) => LocalBandwidth::BoundedBits(c * ModelParams::log_n(n) as u64),
            },
            global_capacity_msgs: self.gamma_msgs(n),
            id_space: IdSpace::Contiguous,
        }
    }
}

/// Configuration of a scaling sweep: which sizes and `(λ, γ)` points to grid
/// over (families are passed separately so callers can restrict them).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Geometric ladder of target node counts.
    pub sizes: Vec<usize>,
    /// `(λ, γ)` grid points.
    pub points: Vec<SweepPoint>,
    /// Master seed; every cell derives its own streams from it.
    pub seed: u64,
}

impl SweepConfig {
    /// The CI-sized sweep: 3 sizes × 3 points (`reproduce sweep --quick`).
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![64, 128, 256],
            points: vec![
                SweepPoint::HYBRID,
                SweepPoint::SCARCE_GLOBAL,
                SweepPoint::RICH_GLOBAL,
            ],
            seed: 0x5CA1E,
        }
    }

    /// The full-depth sweep (nightly): 4 sizes × 4 points.
    pub fn full() -> Self {
        SweepConfig {
            sizes: vec![128, 256, 512, 1024],
            points: vec![
                SweepPoint::HYBRID,
                SweepPoint::SCARCE_GLOBAL,
                SweepPoint::RICH_GLOBAL,
                SweepPoint::CONGEST_LOCAL,
            ],
            seed: 0x5CA1E,
        }
    }
}

/// One dissemination contender's result on a cell — all contenders in a row
/// are measured against the same `dissemination_lower_bound` witness.
#[derive(Debug, Clone, Serialize)]
pub struct DissCell {
    /// Registry name of the implementation.
    pub algorithm: &'static str,
    /// The paper it reproduces.
    pub reference: &'static str,
    /// Whether the schedule draws random bits.
    pub deterministic: bool,
    /// Measured rounds on this instance.
    pub rounds: u64,
    /// `rounds / max(1, dissemination_lower_bound)` — same witness for every
    /// contender in the row.
    pub ratio: f64,
    /// `rounds / max(1, NQ_k)` — the `Ω̃(NQ_k)` form of the bound.
    pub nq_ratio: f64,
}

/// One shortest-paths contender's result on a cell — all contenders in a row
/// are measured against the same `kssp_lower_bound` witness.
#[derive(Debug, Clone, Serialize)]
pub struct KsspCell {
    /// Registry name of the implementation.
    pub algorithm: &'static str,
    /// The paper it reproduces.
    pub reference: &'static str,
    /// Stretch the run guarantees for its labels.
    pub stretch: f64,
    /// Measured rounds on this instance.
    pub rounds: u64,
    /// `rounds / max(1, kssp_lower_bound)` — same witness for every
    /// contender in the row.
    pub ratio: f64,
    /// Skeleton / landmark-set size the run used (0 = fast path).
    pub skeleton_size: usize,
}

/// One cell of the scaling sweep: a `(family, n, λ, γ)` coordinate with the
/// instance's lower-bound witnesses and, side by side, every registered
/// algorithm's measured rounds and competitive ratio against them.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Graph family.
    pub family: &'static str,
    /// Actual number of nodes of the built instance.
    pub n: usize,
    /// Name of the `(λ, γ)` grid point.
    pub point: &'static str,
    /// `λ` description (`inf` or `c*log(n) bits`).
    pub lambda: String,
    /// `γ` in messages per node per round.
    pub gamma_msgs: usize,
    /// Dissemination workload (number of tokens `k`).
    pub k: u64,
    /// Measured `NQ_k` of the instance.
    pub nq_k: u64,
    /// The instance's Theorem 4 lower-bound witness, in rounds — shared by
    /// every entry of `dissemination`.
    pub dissemination_lower_bound: f64,
    /// The dissemination shootout: every registered contender on this
    /// instance (Theorem 1, `det-broadcast`, `sqrt-k-baseline`, …).
    pub dissemination: Vec<DissCell>,
    /// Rounds of the Theorem 13 `(1+ε)`-SSSP (single source — not part of
    /// the k-source shootout, kept as the `Õ(1)` reference row).
    pub sssp_rounds: u64,
    /// Theorems 11/12 witness for a single source (trivially small — SSSP is
    /// `Õ(1)`, so the ratio column tracks the polylog envelope itself).
    pub sssp_lower_bound: f64,
    /// `sssp_rounds / max(1, lower bound)`.
    pub sssp_ratio: f64,
    /// Number of k-SSP sources.
    pub kssp_k: usize,
    /// The `Ω̃(√(k/γ))` k-SSP lower bound, in rounds — shared by every entry
    /// of `kssp`.
    pub kssp_lower_bound: u64,
    /// The shortest-paths shootout: every registered contender on this
    /// instance (Theorem 14, `theorem14-proxy`, `schneider`, …).
    pub kssp: Vec<KsspCell>,
}

impl SweepRow {
    /// The dissemination cell of a named contender, if it ran in this row.
    pub fn diss_cell(&self, algorithm: &str) -> Option<&DissCell> {
        self.dissemination.iter().find(|c| c.algorithm == algorithm)
    }

    /// The shortest-paths cell of a named contender, if it ran in this row.
    pub fn kssp_cell(&self, algorithm: &str) -> Option<&KsspCell> {
        self.kssp.iter().find(|c| c.algorithm == algorithm)
    }
}

/// Ratio of measured rounds to a lower-bound witness, with the witness
/// clamped to ≥ 1 round so trivial bounds don't divide by zero.
fn ratio(rounds: u64, lower_bound: f64) -> f64 {
    rounds as f64 / lower_bound.max(1.0)
}

/// Mixes the cell coordinates into the master seed (SplitMix64 finalizer, so
/// neighbouring cells get unrelated streams).  Shared with the scale tier
/// (`crate::scale`), which addresses its cells the same way.
pub fn cell_seed(seed: u64, family_idx: usize, n: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ (family_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (n as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the full sweep grid with every registered algorithm.
///
/// Convenience wrapper over [`sweep_rows_with`] with no `--algo` filter; the
/// full registry can never be empty, so this cannot fail.
pub fn sweep_rows(families: &[GraphFamily], config: &SweepConfig) -> Vec<SweepRow> {
    sweep_rows_with(families, config, None).expect("full registry is never empty")
}

/// Runs the sweep grid restricted to the algorithms named in `filter`
/// (`None` = everything registered).
///
/// The `(family, n)` pairs fan out in parallel (each builds its graph and
/// `NQ` oracle once and reuses them for every `(λ, γ)` point); within a cell
/// the selected algorithms run sequentially on identical instances — same
/// token placement, same sources, same per-cell seeds.  Row order is
/// family-major, then size, then grid point — identical to the sequential
/// sweep for every pool width.
pub fn sweep_rows_with(
    families: &[GraphFamily],
    config: &SweepConfig,
    filter: Option<&[String]>,
) -> Result<Vec<SweepRow>, RegistryError> {
    let selection: ShootoutSelection = select_algorithms(filter)?;
    let cells: Vec<(usize, GraphFamily, usize)> = families
        .iter()
        .enumerate()
        .flat_map(|(fi, &family)| config.sizes.iter().map(move |&n| (fi, family, n)))
        .collect();
    let per_cell: Vec<Vec<SweepRow>> = cells
        .par_iter()
        .with_min_len(1)
        .map(|&(fi, family, n_target)| {
            let graph_seed = cell_seed(config.seed, fi, n_target, 0);
            let graph = Arc::new(family.build(n_target, graph_seed));
            let weighted = Arc::new(family.reweight(&graph, graph_seed));
            // `NQ_k` is a hop-distance profile and `reweight` keeps the same
            // topology, so one oracle serves both.
            let oracle = NqOracle::new(&graph);
            let n = graph.n();

            // Workloads scale with the instance: an n-token load for
            // dissemination (large enough that `NQ_k ≥ 6` and the Lemma 7.2
            // reduction yields a non-trivial witness on path-like families),
            // `√n` sources for k-SSP.
            let k = n as u64;
            let nq_k = oracle.nq(k);
            let kssp_k = ((n as f64).sqrt().ceil() as usize).max(4).min(n);

            config
                .points
                .iter()
                .map(|point| {
                    let params = point.params(n);

                    // Dissemination shootout: k tokens on k distinct holders,
                    // the same placement for every contender.
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(cell_seed(config.seed, fi, n_target, 1));
                    let holders = sample_distinct(n, k as usize, &mut rng);
                    let tokens = place_tokens(&holders, k);
                    let diss_lb = dissemination_lower_bound(&oracle, &params, k, 0.99);
                    let dissemination: Vec<DissCell> = selection
                        .dissemination
                        .iter()
                        .map(|algo| {
                            let mut net = HybridNetwork::new(Arc::clone(&graph), params);
                            let out = algo.run(&mut net, &oracle, &tokens);
                            DissCell {
                                algorithm: algo.name(),
                                reference: algo.reference(),
                                deterministic: algo.deterministic(),
                                rounds: out.rounds,
                                ratio: ratio(out.rounds, diss_lb.rounds),
                                nq_ratio: ratio(out.rounds, nq_k.max(1) as f64),
                            }
                        })
                        .collect();

                    // SSSP from node 0 on the weighted instance (Theorem 13
                    // reference row, outside the shootout).
                    let mut net = HybridNetwork::new(Arc::clone(&weighted), params);
                    let sssp = sssp_approx(&mut net, 0, 0.25);
                    let sssp_lb = shortest_paths_lower_bound(&oracle, &params, 1, 0.99);

                    // k-SSP shootout: √n sources on the weighted instance,
                    // the same source set and seed for every contender.
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(cell_seed(config.seed, fi, n_target, 2));
                    let sources = sample_distinct(n, kssp_k, &mut rng);
                    let algo_seed = cell_seed(config.seed, fi, n_target, 3);
                    let ks_lb = kssp_lower_bound_rounds(kssp_k, params.global_capacity_msgs);
                    let kssp: Vec<KsspCell> = selection
                        .sssp
                        .iter()
                        .map(|algo| {
                            let mut net = HybridNetwork::new(Arc::clone(&weighted), params);
                            let out = algo.run(&mut net, &sources, 1.0, algo_seed);
                            KsspCell {
                                algorithm: algo.name(),
                                reference: algo.reference(),
                                stretch: out.stretch,
                                rounds: out.rounds,
                                ratio: ratio(out.rounds, ks_lb as f64),
                                skeleton_size: out.skeleton_size,
                            }
                        })
                        .collect();

                    SweepRow {
                        family: family.name(),
                        n,
                        point: point.name,
                        lambda: point.lambda_label(),
                        gamma_msgs: params.global_capacity_msgs,
                        k,
                        nq_k,
                        dissemination_lower_bound: diss_lb.rounds,
                        dissemination,
                        sssp_rounds: sssp.rounds,
                        sssp_lower_bound: sssp_lb.rounds,
                        sssp_ratio: ratio(sssp.rounds, sssp_lb.rounds),
                        kssp_k,
                        kssp_lower_bound: ks_lb,
                        kssp,
                    }
                })
                .collect()
        })
        .collect();
    Ok(per_cell.into_iter().flatten().collect())
}

/// Schema violations of a written `sweep_scaling.json` shootout artifact.
///
/// The strict regression gate re-reads the artifact it just wrote (and any
/// baseline copy it is handed) and refuses to pass when the shootout columns
/// are missing or corrupt — a malformed baseline must fail loudly, not
/// silently gate nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepArtifactError {
    /// Not a JSON array of rows.
    NotAnArray,
    /// The artifact parsed but contains no rows.
    Empty,
    /// A row is missing one of the shootout columns.
    MissingColumn(&'static str),
    /// Fewer algorithm entries than rows require (each row must carry at
    /// least [`MIN_ALGORITHMS_PER_ROW`] contenders).
    TooFewAlgorithms {
        /// Number of rows found.
        rows: usize,
        /// Number of algorithm entries found.
        algorithms: usize,
    },
    /// A ratio column is non-finite or null.
    NonFiniteRatio,
}

impl std::fmt::Display for SweepArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepArtifactError::NotAnArray => write!(f, "artifact is not a JSON array of rows"),
            SweepArtifactError::Empty => write!(f, "artifact contains no sweep rows"),
            SweepArtifactError::MissingColumn(c) => {
                write!(f, "sweep row is missing shootout column '{c}'")
            }
            SweepArtifactError::TooFewAlgorithms { rows, algorithms } => write!(
                f,
                "{rows} rows carry only {algorithms} algorithm entries \
                 (expected at least {} per row)",
                MIN_ALGORITHMS_PER_ROW
            ),
            SweepArtifactError::NonFiniteRatio => {
                write!(f, "a competitive-ratio column is null or non-finite")
            }
        }
    }
}

impl std::error::Error for SweepArtifactError {}

/// Minimum number of algorithm entries a well-formed shootout row carries
/// (ours + the two rivals is the floor the acceptance gate checks).
pub const MIN_ALGORITHMS_PER_ROW: usize = 3;

/// Validates the shootout schema of a serialized `sweep_scaling.json`
/// artifact: an array of rows, every row carrying the `dissemination` and
/// `kssp` shootout columns with at least [`MIN_ALGORITHMS_PER_ROW`]
/// algorithm entries between them, and no null/non-finite ratios.
///
/// The vendored `serde_json` stand-in only serializes, so — like the
/// `BENCH_baseline.json` gate — this is a structural string scan, not a full
/// parse; it is deliberately strict about the markers the gate relies on.
pub fn validate_sweep_artifact(json: &str) -> Result<(), SweepArtifactError> {
    let body = json.trim();
    if !body.starts_with('[') || !body.ends_with(']') {
        return Err(SweepArtifactError::NotAnArray);
    }
    let rows = body.matches("\"family\":").count();
    if rows == 0 {
        return Err(SweepArtifactError::Empty);
    }
    for column in [
        "\"dissemination\":",
        "\"kssp\":",
        "\"dissemination_lower_bound\":",
        "\"kssp_lower_bound\":",
    ] {
        let got = body.matches(column).count();
        if got < rows {
            // Strip the quotes+colon for the message.
            return Err(SweepArtifactError::MissingColumn(
                &column[1..column.len() - 2],
            ));
        }
    }
    let algorithms = body.matches("\"algorithm\":").count();
    if algorithms < rows * MIN_ALGORITHMS_PER_ROW {
        return Err(SweepArtifactError::TooFewAlgorithms { rows, algorithms });
    }
    let ratios = body.matches("\"ratio\":").count();
    if ratios < algorithms {
        return Err(SweepArtifactError::MissingColumn("ratio"));
    }
    // Every `"ratio":` value must start like a finite JSON number.  (The
    // unbounded-λ rows legitimately carry `"lambda":"inf"`, so the scan is
    // anchored to the ratio keys rather than the whole body.)
    for (idx, _) in body.match_indices("\"ratio\":") {
        let value = body[idx + "\"ratio\":".len()..].trim_start();
        let mut digits = value.strip_prefix('-').unwrap_or(value).chars();
        if !digits.next().is_some_and(|c| c.is_ascii_digit()) {
            return Err(SweepArtifactError::NonFiniteRatio);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_family_size_and_point() {
        let config = SweepConfig::quick();
        let rows = sweep_rows(GraphFamily::all(), &config);
        assert_eq!(
            rows.len(),
            GraphFamily::all().len() * config.sizes.len() * config.points.len()
        );
        for family in GraphFamily::all() {
            for point in &config.points {
                let count = rows
                    .iter()
                    .filter(|r| r.family == family.name() && r.point == point.name)
                    .count();
                assert_eq!(
                    count,
                    config.sizes.len(),
                    "{} × {}",
                    family.name(),
                    point.name
                );
            }
        }
        // Every row carries the full shootout: 3 dissemination + 3 k-SSP
        // contenders, measured against the row's shared witnesses.
        for r in &rows {
            assert_eq!(r.dissemination.len(), 3, "{} n={}", r.family, r.n);
            assert_eq!(r.kssp.len(), 3, "{} n={}", r.family, r.n);
            assert!(r.diss_cell("theorem1").is_some());
            assert!(r.diss_cell("det-broadcast").is_some());
            assert!(r.kssp_cell("theorem14").is_some());
            assert!(r.kssp_cell("schneider").is_some());
        }
    }

    #[test]
    fn rows_respect_their_lower_bounds() {
        let config = SweepConfig {
            sizes: vec![96, 192],
            points: vec![SweepPoint::HYBRID, SweepPoint::SCARCE_GLOBAL],
            seed: 9,
        };
        let rows = sweep_rows(&[GraphFamily::Path, GraphFamily::Barbell], &config);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            for c in &r.dissemination {
                assert!(
                    c.rounds as f64 >= r.dissemination_lower_bound,
                    "{} n={} {} {}: dissemination below its lower bound",
                    r.family,
                    r.n,
                    r.point,
                    c.algorithm
                );
                assert!(c.ratio >= 1.0 || r.dissemination_lower_bound < 1.0);
                assert!(c.ratio.is_finite() && c.nq_ratio.is_finite());
            }
            for c in &r.kssp {
                assert!(
                    c.rounds >= r.kssp_lower_bound,
                    "{} n={} {} {}: k-SSP below its lower bound",
                    r.family,
                    r.n,
                    r.point,
                    c.algorithm
                );
                assert!(c.ratio.is_finite());
            }
            assert!(r.sssp_ratio > 0.0);
        }
    }

    #[test]
    fn schneider_pays_for_depth_on_the_path() {
        // The skeleton-free rival's deepening bill is Θ(hop-diameter): on the
        // path it must lose to Theorem 14 by a wide margin.
        let config = SweepConfig {
            sizes: vec![256],
            points: vec![SweepPoint::HYBRID],
            seed: 7,
        };
        let rows = sweep_rows(&[GraphFamily::Path], &config);
        let ours = rows[0].kssp_cell("theorem14").unwrap();
        let rival = rows[0].kssp_cell("schneider").unwrap();
        assert!(
            rival.rounds > 2 * ours.rounds,
            "schneider {} vs theorem14 {}",
            rival.rounds,
            ours.rounds
        );
    }

    #[test]
    fn algo_filter_restricts_rows_and_rejects_unknown_names() {
        let config = SweepConfig {
            sizes: vec![64],
            points: vec![SweepPoint::HYBRID],
            seed: 2,
        };
        let filter = vec!["theorem1".to_string(), "schneider".to_string()];
        let rows = sweep_rows_with(&[GraphFamily::Grid2D], &config, Some(&filter)).unwrap();
        assert_eq!(rows[0].dissemination.len(), 1);
        assert_eq!(rows[0].kssp.len(), 1);
        assert_eq!(rows[0].dissemination[0].algorithm, "theorem1");
        assert_eq!(rows[0].kssp[0].algorithm, "schneider");

        let bad = vec!["fancy-new-algo".to_string()];
        match sweep_rows_with(&[GraphFamily::Grid2D], &config, Some(&bad)) {
            Err(RegistryError::UnknownAlgorithm { name, .. }) => {
                assert_eq!(name, "fancy-new-algo")
            }
            other => panic!("expected UnknownAlgorithm, got {:?}", other.is_ok()),
        }
        assert!(matches!(
            sweep_rows_with(&[GraphFamily::Grid2D], &config, Some(&[])),
            Err(RegistryError::EmptyRegistry)
        ));
    }

    #[test]
    fn scarce_global_never_beats_rich_global() {
        let config = SweepConfig {
            sizes: vec![128],
            points: vec![SweepPoint::SCARCE_GLOBAL, SweepPoint::RICH_GLOBAL],
            seed: 5,
        };
        let rows = sweep_rows(&[GraphFamily::ChungLu], &config);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].gamma_msgs < rows[1].gamma_msgs);
        let scarce = rows[0].kssp_cell("theorem14").unwrap();
        let rich = rows[1].kssp_cell("theorem14").unwrap();
        assert!(scarce.rounds >= rich.rounds);
    }

    #[test]
    fn congest_local_matches_hybrid_rounds() {
        // λ enters neither the hop-charged local phases nor the Lemma 7.1
        // witness, so the congest-local point must reproduce HYBRID rounds
        // for every contender.
        let config = SweepConfig {
            sizes: vec![64],
            points: vec![SweepPoint::HYBRID, SweepPoint::CONGEST_LOCAL],
            seed: 3,
        };
        let rows = sweep_rows(&[GraphFamily::Grid2D], &config);
        for (a, b) in rows[0].dissemination.iter().zip(&rows[1].dissemination) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.rounds, b.rounds, "{}", a.algorithm);
        }
        for (a, b) in rows[0].kssp.iter().zip(&rows[1].kssp) {
            assert_eq!(a.rounds, b.rounds, "{}", a.algorithm);
        }
        assert_ne!(rows[0].lambda, rows[1].lambda);
    }

    #[test]
    fn gamma_scaling_is_clamped() {
        assert_eq!(SweepPoint::SCARCE_GLOBAL.gamma_msgs(4), 1);
        assert!(SweepPoint::RICH_GLOBAL.gamma_msgs(1024) > SweepPoint::HYBRID.gamma_msgs(1024));
    }

    #[test]
    fn artifact_validator_accepts_real_rows_and_rejects_corruption() {
        let config = SweepConfig {
            sizes: vec![64],
            points: vec![SweepPoint::HYBRID],
            seed: 1,
        };
        let rows = sweep_rows(&[GraphFamily::Cycle], &config);
        let json = serde_json::to_string_pretty(&rows).unwrap();
        validate_sweep_artifact(&json).unwrap();

        assert_eq!(
            validate_sweep_artifact("{}"),
            Err(SweepArtifactError::NotAnArray)
        );
        assert_eq!(
            validate_sweep_artifact("[]"),
            Err(SweepArtifactError::Empty)
        );
        let no_shootout = json.replace("\"dissemination\":", "\"legacy\":");
        assert_eq!(
            validate_sweep_artifact(&no_shootout),
            Err(SweepArtifactError::MissingColumn("dissemination"))
        );
        let truncated = json.replacen("\"algorithm\":", "\"alg\":", 4);
        assert!(matches!(
            validate_sweep_artifact(&truncated),
            Err(SweepArtifactError::TooFewAlgorithms { .. })
        ));
        let nulled = json.replacen("\"ratio\":", "\"ratio\":null,\"x\":", 1);
        assert_eq!(
            validate_sweep_artifact(&nulled),
            Err(SweepArtifactError::NonFiniteRatio)
        );
    }
}
