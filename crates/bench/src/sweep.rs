//! Scaling sweeps: competitive-ratio curves against the per-instance lower
//! bound over a `family × size × (λ, γ)` grid.
//!
//! The paper's headline claim is *universal* optimality — on **every**
//! topology the algorithms stay within polylog factors of that graph's own
//! lower bound.  The table reproductions check fixed-size rows; this module
//! measures the claim *at scale*: every [`GraphFamily`] is swept over a
//! geometric ladder of sizes and a small grid of `HYBRID(λ, γ)` parameter
//! points, and each cell records the measured rounds of the dissemination,
//! SSSP and k-SSP pipelines **next to the instance's own lower-bound witness**
//! (from `hybrid_core::lower_bounds` / `kssp_lower_bound_rounds`), plus the
//! resulting competitive ratio.  Plotting `ratio` against `n` per family is
//! the empirical universal-optimality curve: universal optimality predicts a
//! polylog envelope on every family, while an existential `√k`-style bound
//! only predicts it on the worst one.
//!
//! ## Determinism
//!
//! Cells are independent experiments: each `(family, n)` pair derives its own
//! `ChaCha8` streams from the sweep seed and the cell coordinates, so the
//! rayon fan-out (one task per `(family, n)` pair, `(λ, γ)` points run
//! in-cell to share the graph and its `NQ` oracle) is bit-identical across
//! `RAYON_NUM_THREADS` — pinned by `crates/bench/tests/determinism.rs` and
//! the CI cross-thread artifact diff.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::Serialize;

use hybrid_core::dissemination::{k_dissemination, place_tokens};
use hybrid_core::kssp::{kssp, kssp_lower_bound_rounds, KsspVariant};
use hybrid_core::lower_bounds::{dissemination_lower_bound, shortest_paths_lower_bound};
use hybrid_core::nq::NqOracle;
use hybrid_core::prob::sample_distinct;
use hybrid_core::sssp::sssp_approx;
use hybrid_sim::{HybridNetwork, IdSpace, LocalBandwidth, ModelParams};

use crate::scenarios::GraphFamily;

/// One `(λ, γ)` point of the sweep grid, as a function of `n` (both
/// parameters are measured in the paper's `⌈log₂ n⌉` unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SweepPoint {
    /// Short name used in the JSON rows (`hybrid`, `scarce-global`, …).
    pub name: &'static str,
    /// `λ`: `None` is unlimited local bandwidth; `Some(c)` bounds every local
    /// edge to `c·⌈log₂ n⌉` bits per round (CONGEST-style local network).
    pub lambda_log_factor: Option<u64>,
    /// `γ` in messages per node per round: `max(1, num·⌈log₂ n⌉ / den)`.
    pub gamma_num: usize,
    /// Denominator of the `γ` scaling (see `gamma_num`).
    pub gamma_den: usize,
}

impl SweepPoint {
    /// The standard `HYBRID` point: `λ = ∞`, `γ = ⌈log₂ n⌉`.
    pub const HYBRID: SweepPoint = SweepPoint {
        name: "hybrid",
        lambda_log_factor: None,
        gamma_num: 1,
        gamma_den: 1,
    };
    /// Scarce global bandwidth: `λ = ∞`, `γ = max(1, ⌈log₂ n⌉ / 4)` — the
    /// regime where the `1/γ` factor of Lemma 7.1 bites hardest.
    pub const SCARCE_GLOBAL: SweepPoint = SweepPoint {
        name: "scarce-global",
        lambda_log_factor: None,
        gamma_num: 1,
        gamma_den: 4,
    };
    /// Rich global bandwidth: `λ = ∞`, `γ = 4·⌈log₂ n⌉`.
    pub const RICH_GLOBAL: SweepPoint = SweepPoint {
        name: "rich-global",
        lambda_log_factor: None,
        gamma_num: 4,
        gamma_den: 1,
    };
    /// CONGEST-style local edges (`λ = ⌈log₂ n⌉` bits) with the standard
    /// global capacity.  The phase simulation charges local phases by hop
    /// radius, so measured rounds coincide with [`SweepPoint::HYBRID`]; the
    /// point documents that λ does not enter the Lemma 7.1 witness either.
    pub const CONGEST_LOCAL: SweepPoint = SweepPoint {
        name: "congest-local",
        lambda_log_factor: Some(1),
        gamma_num: 1,
        gamma_den: 1,
    };

    /// `γ` in messages per node per round for an `n`-node instance.
    pub fn gamma_msgs(&self, n: usize) -> usize {
        (self.gamma_num * ModelParams::log_n(n) / self.gamma_den.max(1)).max(1)
    }

    /// Human-readable `λ` description for the JSON rows.
    pub fn lambda_label(&self) -> String {
        match self.lambda_log_factor {
            None => "inf".to_string(),
            Some(c) => format!("{c}*log(n) bits"),
        }
    }

    /// Model parameters for an `n`-node instance at this point.
    ///
    /// Identifiers are kept globally known (`Hybrid`-style) so the same grid
    /// point drives all three pipelines; the `Hybrid0` distinction is covered
    /// by the table reproductions.
    pub fn params(&self, n: usize) -> ModelParams {
        ModelParams {
            n,
            local: match self.lambda_log_factor {
                None => LocalBandwidth::Unlimited,
                Some(c) => LocalBandwidth::BoundedBits(c * ModelParams::log_n(n) as u64),
            },
            global_capacity_msgs: self.gamma_msgs(n),
            id_space: IdSpace::Contiguous,
        }
    }
}

/// Configuration of a scaling sweep: which sizes and `(λ, γ)` points to grid
/// over (families are passed separately so callers can restrict them).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Geometric ladder of target node counts.
    pub sizes: Vec<usize>,
    /// `(λ, γ)` grid points.
    pub points: Vec<SweepPoint>,
    /// Master seed; every cell derives its own streams from it.
    pub seed: u64,
}

impl SweepConfig {
    /// The CI-sized sweep: 3 sizes × 3 points (`reproduce sweep --quick`).
    pub fn quick() -> Self {
        SweepConfig {
            sizes: vec![64, 128, 256],
            points: vec![
                SweepPoint::HYBRID,
                SweepPoint::SCARCE_GLOBAL,
                SweepPoint::RICH_GLOBAL,
            ],
            seed: 0x5CA1E,
        }
    }

    /// The full-depth sweep (nightly): 4 sizes × 4 points.
    pub fn full() -> Self {
        SweepConfig {
            sizes: vec![128, 256, 512, 1024],
            points: vec![
                SweepPoint::HYBRID,
                SweepPoint::SCARCE_GLOBAL,
                SweepPoint::RICH_GLOBAL,
                SweepPoint::CONGEST_LOCAL,
            ],
            seed: 0x5CA1E,
        }
    }
}

/// One cell of the scaling sweep: a `(family, n, λ, γ)` coordinate with the
/// measured rounds, the instance's lower-bound witness and the competitive
/// ratio for each pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Graph family.
    pub family: &'static str,
    /// Actual number of nodes of the built instance.
    pub n: usize,
    /// Name of the `(λ, γ)` grid point.
    pub point: &'static str,
    /// `λ` description (`inf` or `c*log(n) bits`).
    pub lambda: String,
    /// `γ` in messages per node per round.
    pub gamma_msgs: usize,
    /// Dissemination workload (number of tokens `k`).
    pub k: u64,
    /// Measured `NQ_k` of the instance.
    pub nq_k: u64,
    /// Rounds of the universal `k`-dissemination (Theorem 1).
    pub dissemination_rounds: u64,
    /// The instance's Theorem 4 lower-bound witness, in rounds.
    pub dissemination_lower_bound: f64,
    /// `dissemination_rounds / max(1, lower bound)`.
    pub dissemination_ratio: f64,
    /// `dissemination_rounds / max(1, NQ_k)` — the paper states the lower
    /// bound as `Ω̃(NQ_k)`, and the Lemma 7.1 witness degenerates to 0 when
    /// the instance is too small for the reduction (`NQ_k < 6` or a tiny
    /// `h/2 − 1` local term), so this is the column whose flat polylog
    /// envelope across *every* family is the universal-optimality signal.
    pub dissemination_nq_ratio: f64,
    /// Rounds of the Theorem 13 `(1+ε)`-SSSP.
    pub sssp_rounds: u64,
    /// Theorems 11/12 witness for a single source (trivially small — SSSP is
    /// `Õ(1)`, so the ratio column tracks the polylog envelope itself).
    pub sssp_lower_bound: f64,
    /// `sssp_rounds / max(1, lower bound)`.
    pub sssp_ratio: f64,
    /// Number of k-SSP sources.
    pub kssp_k: usize,
    /// Rounds of the Theorem 14 `Õ(√(k/γ))` k-SSP.
    pub kssp_rounds: u64,
    /// The `Ω̃(√(k/γ))` k-SSP lower bound, in rounds.
    pub kssp_lower_bound: u64,
    /// `kssp_rounds / max(1, lower bound)`.
    pub kssp_ratio: f64,
}

/// Ratio of measured rounds to a lower-bound witness, with the witness
/// clamped to ≥ 1 round so trivial bounds don't divide by zero.
fn ratio(rounds: u64, lower_bound: f64) -> f64 {
    rounds as f64 / lower_bound.max(1.0)
}

/// Mixes the cell coordinates into the master seed (SplitMix64 finalizer, so
/// neighbouring cells get unrelated streams).  Shared with the scale tier
/// (`crate::scale`), which addresses its cells the same way.
pub fn cell_seed(seed: u64, family_idx: usize, n: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ (family_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (n as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the full sweep grid: `families × config.sizes × config.points`.
///
/// The `(family, n)` pairs fan out in parallel (each builds its graph and
/// `NQ` oracle once and reuses them for every `(λ, γ)` point); row order is
/// family-major, then size, then grid point — identical to the sequential
/// sweep for every pool width.
pub fn sweep_rows(families: &[GraphFamily], config: &SweepConfig) -> Vec<SweepRow> {
    let cells: Vec<(usize, GraphFamily, usize)> = families
        .iter()
        .enumerate()
        .flat_map(|(fi, &family)| config.sizes.iter().map(move |&n| (fi, family, n)))
        .collect();
    let per_cell: Vec<Vec<SweepRow>> = cells
        .par_iter()
        .with_min_len(1)
        .map(|&(fi, family, n_target)| {
            let graph_seed = cell_seed(config.seed, fi, n_target, 0);
            let graph = Arc::new(family.build(n_target, graph_seed));
            let weighted = Arc::new(family.reweight(&graph, graph_seed));
            // `NQ_k` is a hop-distance profile and `reweight` keeps the same
            // topology, so one oracle serves both.
            let oracle = NqOracle::new(&graph);
            let n = graph.n();

            // Workloads scale with the instance: an n-token load for
            // dissemination (large enough that `NQ_k ≥ 6` and the Lemma 7.2
            // reduction yields a non-trivial witness on path-like families),
            // `√n` sources for k-SSP.
            let k = n as u64;
            let nq_k = oracle.nq(k);
            let kssp_k = ((n as f64).sqrt().ceil() as usize).max(4).min(n);

            config
                .points
                .iter()
                .map(|point| {
                    let params = point.params(n);

                    // Dissemination: k tokens on k distinct holders.
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(cell_seed(config.seed, fi, n_target, 1));
                    let holders = sample_distinct(n, k as usize, &mut rng);
                    let tokens = place_tokens(&holders, k);
                    let mut net = HybridNetwork::new(Arc::clone(&graph), params);
                    let diss = k_dissemination(&mut net, &oracle, &tokens);
                    let diss_lb = dissemination_lower_bound(&oracle, &params, k, 0.99);

                    // SSSP from node 0 on the weighted instance.
                    let mut net = HybridNetwork::new(Arc::clone(&weighted), params);
                    let sssp = sssp_approx(&mut net, 0, 0.25);
                    let sssp_lb = shortest_paths_lower_bound(&oracle, &params, 1, 0.99);

                    // k-SSP with √n random sources on the weighted instance.
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(cell_seed(config.seed, fi, n_target, 2));
                    let sources = sample_distinct(n, kssp_k, &mut rng);
                    let mut net = HybridNetwork::new(Arc::clone(&weighted), params);
                    let ks = kssp(
                        &mut net,
                        &sources,
                        1.0,
                        KsspVariant::RandomSources,
                        &mut rng,
                    );
                    let ks_lb = kssp_lower_bound_rounds(kssp_k, params.global_capacity_msgs);

                    SweepRow {
                        family: family.name(),
                        n,
                        point: point.name,
                        lambda: point.lambda_label(),
                        gamma_msgs: params.global_capacity_msgs,
                        k,
                        nq_k,
                        dissemination_rounds: diss.rounds,
                        dissemination_lower_bound: diss_lb.rounds,
                        dissemination_ratio: ratio(diss.rounds, diss_lb.rounds),
                        dissemination_nq_ratio: ratio(diss.rounds, nq_k.max(1) as f64),
                        sssp_rounds: sssp.rounds,
                        sssp_lower_bound: sssp_lb.rounds,
                        sssp_ratio: ratio(sssp.rounds, sssp_lb.rounds),
                        kssp_k,
                        kssp_rounds: ks.rounds,
                        kssp_lower_bound: ks_lb,
                        kssp_ratio: ratio(ks.rounds, ks_lb as f64),
                    }
                })
                .collect()
        })
        .collect();
    per_cell.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_family_size_and_point() {
        let config = SweepConfig::quick();
        let rows = sweep_rows(GraphFamily::all(), &config);
        assert_eq!(
            rows.len(),
            GraphFamily::all().len() * config.sizes.len() * config.points.len()
        );
        for family in GraphFamily::all() {
            for point in &config.points {
                let count = rows
                    .iter()
                    .filter(|r| r.family == family.name() && r.point == point.name)
                    .count();
                assert_eq!(
                    count,
                    config.sizes.len(),
                    "{} × {}",
                    family.name(),
                    point.name
                );
            }
        }
    }

    #[test]
    fn rows_respect_their_lower_bounds() {
        let config = SweepConfig {
            sizes: vec![96, 192],
            points: vec![SweepPoint::HYBRID, SweepPoint::SCARCE_GLOBAL],
            seed: 9,
        };
        let rows = sweep_rows(&[GraphFamily::Path, GraphFamily::Barbell], &config);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.dissemination_rounds as f64 >= r.dissemination_lower_bound,
                "{} n={} {}: dissemination below its lower bound",
                r.family,
                r.n,
                r.point
            );
            assert!(r.kssp_rounds >= r.kssp_lower_bound);
            assert!(r.dissemination_ratio >= 1.0 || r.dissemination_lower_bound < 1.0);
            assert!(r.sssp_ratio > 0.0);
        }
    }

    #[test]
    fn scarce_global_never_beats_rich_global() {
        let config = SweepConfig {
            sizes: vec![128],
            points: vec![SweepPoint::SCARCE_GLOBAL, SweepPoint::RICH_GLOBAL],
            seed: 5,
        };
        let rows = sweep_rows(&[GraphFamily::ChungLu], &config);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].gamma_msgs < rows[1].gamma_msgs);
        assert!(rows[0].kssp_rounds >= rows[1].kssp_rounds);
    }

    #[test]
    fn congest_local_matches_hybrid_rounds() {
        // λ enters neither the hop-charged local phases nor the Lemma 7.1
        // witness, so the congest-local point must reproduce HYBRID rounds.
        let config = SweepConfig {
            sizes: vec![64],
            points: vec![SweepPoint::HYBRID, SweepPoint::CONGEST_LOCAL],
            seed: 3,
        };
        let rows = sweep_rows(&[GraphFamily::Grid2D], &config);
        assert_eq!(rows[0].dissemination_rounds, rows[1].dissemination_rounds);
        assert_eq!(rows[0].kssp_rounds, rows[1].kssp_rounds);
        assert_ne!(rows[0].lambda, rows[1].lambda);
    }

    #[test]
    fn gamma_scaling_is_clamped() {
        assert_eq!(SweepPoint::SCARCE_GLOBAL.gamma_msgs(4), 1);
        assert!(SweepPoint::RICH_GLOBAL.gamma_msgs(1024) > SweepPoint::HYBRID.gamma_msgs(1024));
    }
}
