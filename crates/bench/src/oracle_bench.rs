//! Query-serving benchmark: build a [`DistanceOracle`] once, then serve
//! batched point-to-point queries and record per-batch latency percentiles
//! and throughput.
//!
//! The workload is split into two artifacts with different determinism
//! contracts (the same split the sweep uses for `bench_last_run.json`):
//!
//! * `results/oracle_queries.json` ([`OracleLatencyReport`]) — wall-clock
//!   telemetry: per-batch latencies, `p50/p90/p99` percentiles and a
//!   queries-per-second figure.  Timing is machine-dependent and **excluded**
//!   from the CI cross-thread diff.
//! * `results/oracle_answers.json` ([`OracleAnswersReport`]) — the semantic
//!   output: the landmark set, one FNV-1a digest per answered batch and the
//!   saturating sum of all answers.  Bit-identical across
//!   `RAYON_NUM_THREADS` and **included** in the CI cross-thread diff.
//!
//! Percentiles are computed by *count* (nearest-rank over the sorted batch
//! latencies), never asserted against wall-clock thresholds — timing numbers
//! are recorded, only answer content is gated.

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use hybrid_core::oracle::{DistanceOracle, OracleConfig, ORACLE_STRETCH};
use hybrid_graph::{generators, Graph, NodeId};

/// Workload shape for the oracle serving benchmark.
#[derive(Debug, Clone)]
pub struct OracleBenchConfig {
    /// Grid side lengths of the weighted instance (`n = dims.0 · dims.1`).
    pub dims: (usize, usize),
    /// Maximum random edge weight.
    pub max_weight: u64,
    /// Number of query batches to serve.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Seed for the instance, the landmark sample and the query stream.
    pub seed: u64,
}

impl OracleBenchConfig {
    /// CI-sized workload (`--quick`).
    pub fn quick() -> Self {
        OracleBenchConfig {
            dims: (24, 24),
            max_weight: 32,
            batches: 12,
            batch_size: 2048,
            seed: 0x0_5E4F,
        }
    }

    /// Full-size workload.
    pub fn full() -> Self {
        OracleBenchConfig {
            dims: (48, 48),
            max_weight: 32,
            batches: 32,
            batch_size: 8192,
            seed: 0x0_5E4F,
        }
    }

    /// The benchmark instance: a connected weighted grid.
    pub fn build_graph(&self) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        generators::weighted_grid(&[self.dims.0, self.dims.1], self.max_weight, &mut rng)
            .expect("bench grid")
    }

    /// The deterministic query stream: `batches` batches of uniform pairs.
    pub fn query_batches(&self, n: usize) -> Vec<Vec<(NodeId, NodeId)>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        (0..self.batches)
            .map(|_| {
                (0..self.batch_size)
                    .map(|_| (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)))
                    .collect()
            })
            .collect()
    }
}

/// Latency of one served batch.
#[derive(Debug, Clone, Serialize)]
pub struct BatchLatency {
    /// Batch index in serving order.
    pub batch: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Wall-clock microseconds to answer the whole batch.
    pub wall_us: f64,
}

/// Timing telemetry of an oracle serving run (`results/oracle_queries.json`;
/// machine-dependent, excluded from the determinism diff).
#[derive(Debug, Clone, Serialize)]
pub struct OracleLatencyReport {
    /// Artifact schema tag.
    pub schema: &'static str,
    /// Nodes served.
    pub n: usize,
    /// Edges of the instance.
    pub m: usize,
    /// Landmarks sampled.
    pub landmarks: usize,
    /// Preprocessing wall-clock milliseconds (build once).
    pub build_ms: f64,
    /// Oracle resident bytes after the build.
    pub memory_bytes: u64,
    /// Per-batch latencies in serving order.
    pub batches: Vec<BatchLatency>,
    /// Nearest-rank p50 over the batch latencies, microseconds.
    pub p50_us: f64,
    /// Nearest-rank p90 over the batch latencies, microseconds.
    pub p90_us: f64,
    /// Nearest-rank p99 over the batch latencies, microseconds.
    pub p99_us: f64,
    /// Total distance queries served per second (batch answering only).
    pub queries_per_sec: f64,
}

/// Semantic output of an oracle serving run (`results/oracle_answers.json`;
/// bit-identical across pool widths, gated by the CI cross-thread diff).
#[derive(Debug, Clone, Serialize)]
pub struct OracleAnswersReport {
    /// Artifact schema tag.
    pub schema: &'static str,
    /// Nodes served.
    pub n: usize,
    /// Documented stretch of the serving contract.
    pub stretch: f64,
    /// The sorted landmark sample the build chose.
    pub landmarks: Vec<NodeId>,
    /// FNV-1a digest of each batch's answer vector, in serving order.
    pub batch_digests: Vec<u64>,
    /// FNV-1a digest of the first batch's witness-path arena.
    pub path_digest: u64,
    /// Saturating sum of every answered distance.
    pub answer_sum: u64,
}

/// FNV-1a over a stream of `u64` values.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Nearest-rank percentile (count-based; `sorted` must be ascending).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the serving workload: builds the oracle once, serves every batch,
/// and returns the (telemetry, semantic) artifact pair.
pub fn oracle_bench_rows(config: &OracleBenchConfig) -> (OracleLatencyReport, OracleAnswersReport) {
    let graph = config.build_graph();
    let n = graph.n();
    let build_start = Instant::now();
    let oracle = DistanceOracle::build(
        &graph,
        OracleConfig {
            seed: config.seed,
            ..OracleConfig::default()
        },
    )
    .expect("oracle build");
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let batches = config.query_batches(n);
    let mut latencies = Vec::with_capacity(batches.len());
    let mut digests = Vec::with_capacity(batches.len());
    let mut answer_sum: u64 = 0;
    for (i, batch) in batches.iter().enumerate() {
        let start = Instant::now();
        let answers = oracle.query_batch(batch);
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        latencies.push(BatchLatency {
            batch: i,
            queries: batch.len(),
            wall_us,
        });
        for &a in &answers {
            answer_sum = answer_sum.saturating_add(a);
        }
        digests.push(fnv1a(answers));
    }
    // One witness-path batch pins the path arena in the semantic artifact.
    let paths = oracle.query_paths_batch(&batches[0]);
    let path_digest = fnv1a(
        paths
            .dists()
            .iter()
            .copied()
            .chain((0..paths.len()).flat_map(|i| paths.path(i).iter().map(|&v| v as u64))),
    );

    let total_queries: usize = latencies.iter().map(|b| b.queries).sum();
    let total_us: f64 = latencies.iter().map(|b| b.wall_us).sum();
    let mut sorted: Vec<f64> = latencies.iter().map(|b| b.wall_us).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let latency = OracleLatencyReport {
        schema: "hybrid-oracle-queries/v1",
        n,
        m: graph.m(),
        landmarks: oracle.landmarks().len(),
        build_ms,
        memory_bytes: oracle.memory_bytes(),
        p50_us: percentile(&sorted, 50.0),
        p90_us: percentile(&sorted, 90.0),
        p99_us: percentile(&sorted, 99.0),
        queries_per_sec: if total_us > 0.0 {
            total_queries as f64 / (total_us / 1e6)
        } else {
            0.0
        },
        batches: latencies,
    };
    let answers = OracleAnswersReport {
        schema: "hybrid-oracle-answers/v1",
        n,
        stretch: ORACLE_STRETCH,
        landmarks: oracle.landmarks().to_vec(),
        batch_digests: digests,
        path_digest,
        answer_sum,
    };
    (latency, answers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_deterministic_and_shaped() {
        let config = OracleBenchConfig {
            dims: (6, 6),
            max_weight: 8,
            batches: 3,
            batch_size: 64,
            seed: 42,
        };
        let (lat_a, ans_a) = oracle_bench_rows(&config);
        let (_, ans_b) = oracle_bench_rows(&config);
        assert_eq!(lat_a.batches.len(), 3);
        assert_eq!(ans_a.batch_digests.len(), 3);
        // The semantic artifact is run-to-run identical; timing is not gated.
        assert_eq!(ans_a.batch_digests, ans_b.batch_digests);
        assert_eq!(ans_a.answer_sum, ans_b.answer_sum);
        assert_eq!(ans_a.path_digest, ans_b.path_digest);
        assert_eq!(ans_a.landmarks, ans_b.landmarks);
        assert!(lat_a.queries_per_sec > 0.0);
        assert!(lat_a.p50_us <= lat_a.p99_us);
    }

    #[test]
    fn percentiles_are_count_based() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 50.0), 5.0);
        assert_eq!(percentile(&sorted, 90.0), 9.0);
        assert_eq!(percentile(&sorted, 99.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
