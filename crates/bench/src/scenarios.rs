//! Shared experiment harness: graph families, scenario runners and row types
//! for every table / figure of the paper.
//!
//! Each `tableN_rows` function runs both sides of the paper's comparison (the
//! universal algorithm and the existential baseline, plus the lower-bound
//! witness where applicable) on the requested graph families and returns
//! plain serializable rows; the `reproduce` binary formats them, and the
//! Criterion benches time the underlying algorithm calls.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::Serialize;

use hybrid_core::apsp;
use hybrid_core::dissemination::{
    baseline_sqrt_k_dissemination, k_aggregation, k_dissemination, place_tokens,
};
use hybrid_core::klsp::{baseline_klsp, klsp, KlspScenario};
use hybrid_core::kssp::{baseline_chlp21_rounds, kssp, kssp_lower_bound_rounds, KsspVariant};
use hybrid_core::lower_bounds::{dissemination_lower_bound, shortest_paths_lower_bound};
use hybrid_core::nq::{families, NqOracle};
use hybrid_core::prob::{sample_distinct, sample_with_probability};
use hybrid_core::routing::{baseline_sqrt_k_routing, kl_routing, RoutingScenario};
use hybrid_core::sssp::{baseline_sssp, sssp_approx, SsspBaseline};
use hybrid_graph::{generators, properties, Graph};
use hybrid_sim::HybridNetwork;

/// The graph families the experiments sweep over (the families analysed in
/// Section 3.3 / Appendix B plus realistic topologies for the examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GraphFamily {
    /// Path graph `P_n` (worst case: `NQ_k = Θ(√k)`).
    Path,
    /// Cycle `C_n`.
    Cycle,
    /// Two-dimensional square grid.
    Grid2D,
    /// Three-dimensional cube grid.
    Grid3D,
    /// Complete binary tree.
    BinaryTree,
    /// Connected Erdős–Rényi graph with expected degree ≈ 6.
    ErdosRenyi,
    /// Random geometric graph (wireless-style short links).
    RandomGeometric,
    /// Two-level leaf–spine data-center topology.
    FatTree,
    /// Chung–Lu power-law graph (heavy-tailed degrees; the regime where the
    /// HYBRID global capacity dominates the round complexity).
    ChungLu,
    /// Ring of cliques (clustered small-world with a tunable cut).
    RingOfCliques,
    /// Barbell: two cliques joined by a path (bottleneck stress for the
    /// γ-capacitated global scheduler).
    Barbell,
}

impl GraphFamily {
    /// All families, in presentation order.
    pub fn all() -> &'static [GraphFamily] {
        &[
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::Grid2D,
            GraphFamily::Grid3D,
            GraphFamily::BinaryTree,
            GraphFamily::ErdosRenyi,
            GraphFamily::RandomGeometric,
            GraphFamily::FatTree,
            GraphFamily::ChungLu,
            GraphFamily::RingOfCliques,
            GraphFamily::Barbell,
        ]
    }

    /// A short list used by the heavier (APSP-style) experiments.
    pub fn core_families() -> &'static [GraphFamily] {
        &[
            GraphFamily::Path,
            GraphFamily::Grid2D,
            GraphFamily::BinaryTree,
            GraphFamily::ErdosRenyi,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphFamily::Path => "path",
            GraphFamily::Cycle => "cycle",
            GraphFamily::Grid2D => "grid-2d",
            GraphFamily::Grid3D => "grid-3d",
            GraphFamily::BinaryTree => "binary-tree",
            GraphFamily::ErdosRenyi => "erdos-renyi",
            GraphFamily::RandomGeometric => "random-geometric",
            GraphFamily::FatTree => "fat-tree",
            GraphFamily::ChungLu => "chung-lu",
            GraphFamily::RingOfCliques => "ring-of-cliques",
            GraphFamily::Barbell => "barbell",
        }
    }

    /// Builds an instance with approximately `n_target` nodes.
    pub fn build(&self, n_target: usize, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = n_target.max(8);
        match self {
            GraphFamily::Path => generators::path(n).expect("path"),
            GraphFamily::Cycle => generators::cycle(n).expect("cycle"),
            GraphFamily::Grid2D => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid(&[side, side]).expect("grid")
            }
            GraphFamily::Grid3D => {
                let side = (n as f64).cbrt().round().max(2.0) as usize;
                generators::grid(&[side, side, side]).expect("grid3")
            }
            GraphFamily::BinaryTree => {
                // Exactly n nodes: `tree_balanced(2, ⌈log2 n⌉)` overshot the
                // size target by up to 3.5× and dominated sweep wall-clock.
                generators::tree_with_n(2, n).expect("tree")
            }
            GraphFamily::ErdosRenyi => {
                let p = 6.0 / n as f64;
                generators::erdos_renyi(n, p.min(1.0), &mut rng).expect("er")
            }
            GraphFamily::RandomGeometric => {
                let radius = (8.0 / n as f64).sqrt().min(0.9);
                generators::random_geometric(n, radius, &mut rng).expect("rgg")
            }
            GraphFamily::FatTree => {
                let hosts = (n.saturating_sub(12)).max(8) / 8;
                generators::fat_tree(4, 8, hosts.max(1)).expect("fat-tree")
            }
            GraphFamily::ChungLu => generators::chung_lu(n, 2.5, 6.0, &mut rng).expect("chung-lu"),
            GraphFamily::RingOfCliques => {
                // Cliques of 8 with a 2-edge cut; ring length scales with n.
                let cliques = (n / 8).max(3);
                generators::ring_of_cliques(cliques, 8, 2).expect("ring-of-cliques")
            }
            GraphFamily::Barbell => {
                // Cliques take ~3/8 n each; the bridge path the remaining ~n/4.
                let clique = (3 * n / 8).max(2);
                generators::barbell(clique, n.saturating_sub(2 * clique)).expect("barbell")
            }
        }
    }

    /// Builds an instance with approximately `n_target` nodes through the
    /// parallel streaming generators ([`hybrid_graph::streaming`]).
    ///
    /// The parameter mapping (side lengths, densities, clique sizes) is
    /// identical to [`Self::build`], so the deterministic families produce
    /// bit-identical graphs; the random families draw from the streaming
    /// module's canonical per-chunk streams instead of the legacy sequential
    /// ones (documented there), which is what makes them feasible at
    /// `n = 10⁶`.  The small-`n` experiments keep using [`Self::build`] so
    /// their recorded artifacts are unchanged.
    pub fn build_streamed(&self, n_target: usize, seed: u64) -> Graph {
        use hybrid_graph::streaming;
        let n = n_target.max(8);
        match self {
            GraphFamily::Path => streaming::path(n).expect("path"),
            GraphFamily::Cycle => streaming::cycle(n).expect("cycle"),
            GraphFamily::Grid2D => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                streaming::grid(&[side, side]).expect("grid")
            }
            GraphFamily::Grid3D => {
                let side = (n as f64).cbrt().round().max(2.0) as usize;
                streaming::grid(&[side, side, side]).expect("grid3")
            }
            GraphFamily::BinaryTree => streaming::tree_with_n(2, n).expect("tree"),
            GraphFamily::ErdosRenyi => {
                let p = 6.0 / n as f64;
                streaming::erdos_renyi(n, p.min(1.0), seed).expect("er")
            }
            GraphFamily::RandomGeometric => {
                let radius = (8.0 / n as f64).sqrt().min(0.9);
                streaming::random_geometric(n, radius, seed).expect("rgg")
            }
            GraphFamily::FatTree => {
                let hosts = (n.saturating_sub(12)).max(8) / 8;
                streaming::fat_tree(4, 8, hosts.max(1)).expect("fat-tree")
            }
            GraphFamily::ChungLu => streaming::chung_lu(n, 2.5, 6.0, seed).expect("chung-lu"),
            GraphFamily::RingOfCliques => {
                let cliques = (n / 8).max(3);
                streaming::ring_of_cliques(cliques, 8, 2).expect("ring-of-cliques")
            }
            GraphFamily::Barbell => {
                let clique = (3 * n / 8).max(2);
                streaming::barbell(clique, n.saturating_sub(2 * clique)).expect("barbell")
            }
        }
    }

    /// Builds a weighted instance (random weights in `[1, 32]`).
    pub fn build_weighted(&self, n_target: usize, seed: u64) -> Graph {
        self.reweight(&self.build(n_target, seed), seed)
    }

    /// Re-weights a streamed instance through the streaming module's chunked
    /// weight pass (same `[1, 32]` range and seed derivation as
    /// [`Self::reweight`], but a canonical per-chunk stream instead of the
    /// legacy sequential one).
    pub fn reweight_streamed(&self, base: &Graph, seed: u64) -> Graph {
        hybrid_graph::streaming::with_random_weights(base, 32, seed ^ 0x5E_ED0F_EE61_u64)
            .expect("weighted")
    }

    /// Re-weights an already-built instance exactly as [`Self::build_weighted`]
    /// would (same seed derivation, random weights in `[1, 32]`), so callers
    /// holding the unweighted graph skip the second topology build.
    pub fn reweight(&self, base: &Graph, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5E_ED0F_EE61_u64);
        generators::with_random_weights(base, 32, &mut rng).expect("weighted")
    }
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Graph family.
    pub family: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Workload (number of messages).
    pub k: u64,
    /// Measured `NQ_k`.
    pub nq: u64,
    /// `⌈√k⌉` for reference.
    pub sqrt_k: u64,
    /// Rounds of the universal `k`-dissemination (Theorem 1).
    pub dissemination_universal: u64,
    /// Rounds of the existential `Õ(√k)` baseline (`[AHK+20]`).
    pub dissemination_baseline: u64,
    /// Rounds of the universal `k`-aggregation (Theorem 2).
    pub aggregation_universal: u64,
    /// Rounds of the universal `(k, ℓ)`-routing (Theorem 3, case 1).
    pub routing_universal: u64,
    /// Rounds of the `(k, ℓ)`-routing baseline (`[KS20]`).
    pub routing_baseline: u64,
    /// The universal lower-bound witness (Theorem 4), in rounds.
    pub lower_bound: f64,
}

/// Table 1 — information dissemination, across families and workloads.
///
/// Families are processed in parallel (each family is an independent
/// experiment with its own graph, oracle and per-`k` RNGs); row order is
/// deterministic and identical to the sequential sweep.
pub fn table1_rows(families: &[GraphFamily], n: usize, ks: &[u64], seed: u64) -> Vec<Table1Row> {
    let per_family: Vec<Vec<Table1Row>> = families
        .par_iter()
        .with_min_len(1)
        .map(|family| {
            let mut rows = Vec::with_capacity(ks.len());
            let graph = Arc::new(family.build(n, seed));
            let oracle = NqOracle::new(&graph);
            for &k in ks {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ k);
                let holders =
                    sample_distinct(graph.n(), graph.n().min(k as usize).max(1), &mut rng);
                let tokens = place_tokens(&holders, k);

                let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                let uni = k_dissemination(&mut net, &oracle, &tokens);

                let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                let base = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);

                // Aggregation with a small value vector per node (k functions is
                // too heavy for the sweep; use min(k, 16) which has the same
                // round shape because the cost is dominated by the clustering).
                let agg_k = (k as usize).min(16);
                let values: Vec<Vec<u64>> = (0..graph.n() as u64)
                    .map(|v| (0..agg_k as u64).map(|i| v + i).collect())
                    .collect();
                let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                let agg = k_aggregation(&mut net, &oracle, &values, |a, b| a.max(b));

                // Routing: k arbitrary sources, ℓ = NQ_k random targets.
                let sources = sample_distinct(graph.n(), (k as usize).min(graph.n()), &mut rng);
                let nq_k = oracle.nq(k).max(1);
                let mut targets = sample_with_probability(
                    graph.n(),
                    (nq_k as f64 / graph.n() as f64).min(1.0),
                    &mut rng,
                );
                if targets.is_empty() {
                    targets.push((graph.n() / 2) as u32);
                }
                let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
                let route_uni = kl_routing(
                    &mut net,
                    &oracle,
                    &sources,
                    &targets,
                    RoutingScenario::ArbitrarySourcesRandomTargets,
                    &mut rng,
                );
                let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
                let route_base =
                    baseline_sqrt_k_routing(&mut net, &oracle, &sources, &targets, &mut rng);

                let lb = dissemination_lower_bound(&oracle, net.params(), k, 0.99);

                rows.push(Table1Row {
                    family: family.name(),
                    n: graph.n(),
                    k,
                    nq: oracle.nq(k),
                    sqrt_k: (k as f64).sqrt().ceil() as u64,
                    dissemination_universal: uni.rounds,
                    dissemination_baseline: base.rounds,
                    aggregation_universal: agg.rounds,
                    routing_universal: route_uni.rounds,
                    routing_baseline: route_base.rounds,
                    lower_bound: lb.rounds,
                });
            }
            rows
        })
        .collect();
    per_family.into_iter().flatten().collect()
}

/// One row of the Table 2 reproduction (APSP).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Graph family.
    pub family: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Measured `NQ_n`.
    pub nq_n: u64,
    /// `⌈√n⌉` for reference.
    pub sqrt_n: u64,
    /// Theorem 6 (unweighted, `1+ε`) rounds.
    pub unweighted_universal: u64,
    /// Measured stretch of the Theorem 6 labels.
    pub unweighted_stretch: f64,
    /// Structured `Õ(√n)` baseline (same pipeline, worst-case radius) rounds.
    pub unweighted_baseline: u64,
    /// Theorem 7 (weighted spanner, `O(log n/log log n)`) rounds.
    pub weighted_spanner_universal: u64,
    /// Measured stretch of the Theorem 7 labels.
    pub weighted_spanner_stretch: f64,
    /// Theorem 8 (weighted skeleton, `4α−1` with α=1) rounds.
    pub weighted_skeleton_universal: u64,
    /// Measured stretch of the Theorem 8 labels.
    pub weighted_skeleton_stretch: f64,
    /// Literature row: exact `Õ(√n)` APSP (`[KS20]`) rounds.
    pub literature_sqrt_n: u64,
    /// Universal lower bound (Theorems 11/12) in rounds.
    pub lower_bound: f64,
}

/// Table 2 — APSP across families.
///
/// Families run in parallel; within a family the exact distance matrices
/// (unweighted and weighted) are computed **once** and shared by every
/// stretch verification instead of re-running `n` Dijkstras per output.
pub fn table2_rows(families: &[GraphFamily], n: usize, seed: u64) -> Vec<Table2Row> {
    families
        .par_iter()
        .with_min_len(1)
        .map(|family| {
            let graph = Arc::new(family.build(n, seed));
            let oracle = NqOracle::new(&graph);
            let weighted = Arc::new(family.build_weighted(n, seed));
            // `NQ_k` is defined over hop distances, and `build_weighted` only
            // re-weights the same topology — the weighted instance's oracle is
            // identical, so the ball-profile sweep is paid once per family.
            let weighted_oracle = &oracle;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let exact_unweighted = hybrid_graph::dijkstra::apsp_exact(&graph);
            let exact_weighted = hybrid_graph::dijkstra::apsp_exact(&weighted);

            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            let uni = apsp::apsp_unweighted(&mut net, &oracle, 0.5);
            let uni_stretch = uni
                .verify_stretch_against(&exact_unweighted)
                .expect("Theorem 6 stretch");

            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            let base = apsp::baseline_unweighted_apsp_sqrt_n(&mut net, &oracle, 0.5);

            let mut net = HybridNetwork::hybrid0(Arc::clone(&weighted));
            let spanner = apsp::apsp_weighted_log_over_loglog(&mut net, weighted_oracle);
            let spanner_stretch = spanner
                .verify_stretch_against(&exact_weighted)
                .expect("Theorem 7 stretch");

            let mut net = HybridNetwork::hybrid0(Arc::clone(&weighted));
            let skel = apsp::apsp_weighted_skeleton(&mut net, weighted_oracle, 1, &mut rng);
            let skel_stretch = skel
                .verify_stretch_against(&exact_weighted)
                .expect("Theorem 8 stretch");

            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            let lit = apsp::baseline_sqrt_n_apsp_from_labels(&mut net, exact_unweighted.clone());

            let lb = shortest_paths_lower_bound(&oracle, net.params(), graph.n() as u64, 0.99);

            Table2Row {
                family: family.name(),
                n: graph.n(),
                nq_n: oracle.nq(graph.n() as u64),
                sqrt_n: (graph.n() as f64).sqrt().ceil() as u64,
                unweighted_universal: uni.rounds,
                unweighted_stretch: uni_stretch,
                unweighted_baseline: base.rounds,
                weighted_spanner_universal: spanner.rounds,
                weighted_spanner_stretch: spanner_stretch,
                weighted_skeleton_universal: skel.rounds,
                weighted_skeleton_stretch: skel_stretch,
                literature_sqrt_n: lit.rounds,
                lower_bound: lb.rounds,
            }
        })
        .collect()
}

/// One row of the Table 3 reproduction (`(k, ℓ)`-SP).
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Graph family.
    pub family: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Number of sources `k`.
    pub k: u64,
    /// Number of targets `ℓ`.
    pub l: usize,
    /// Measured `NQ_k`.
    pub nq: u64,
    /// `⌈√k⌉` for reference.
    pub sqrt_k: u64,
    /// Theorem 5 rounds.
    pub universal: u64,
    /// Measured stretch of the Theorem 5 labels.
    pub stretch: f64,
    /// Literature baseline (`[CHLP21a]`/`[KS20]`) rounds.
    pub baseline: u64,
    /// Universal lower bound (Theorems 11/12) in rounds.
    pub lower_bound: f64,
}

/// Table 3 — `(k, ℓ)`-SP across families and source counts.
///
/// Families run in parallel; per-`k` RNGs keep rows deterministic.
pub fn table3_rows(families: &[GraphFamily], n: usize, ks: &[u64], seed: u64) -> Vec<Table3Row> {
    let per_family: Vec<Vec<Table3Row>> = families
        .par_iter()
        .with_min_len(1)
        .map(|family| {
            let mut rows = Vec::with_capacity(ks.len());
            let graph = Arc::new(family.build_weighted(n, seed));
            let oracle = NqOracle::new(&graph);
            for &k in ks {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (k << 1));
                let k_usize = (k as usize).min(graph.n());
                let sources = sample_distinct(graph.n(), k_usize, &mut rng);
                let nq_k = oracle.nq(k).max(1);
                let mut targets = sample_with_probability(
                    graph.n(),
                    (nq_k as f64 / graph.n() as f64).min(1.0),
                    &mut rng,
                );
                if targets.is_empty() {
                    targets.push((graph.n() / 3) as u32);
                }

                let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
                let uni = klsp(
                    &mut net,
                    &oracle,
                    &sources,
                    &targets,
                    0.25,
                    KlspScenario::ArbitrarySourcesRandomTargets,
                    &mut rng,
                );
                let stretch = uni.verify_stretch(&graph).expect("Theorem 5 stretch");

                let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
                let base = baseline_klsp(&mut net, &sources, &targets);

                let lb = shortest_paths_lower_bound(&oracle, net.params(), k, 0.99);

                rows.push(Table3Row {
                    family: family.name(),
                    n: graph.n(),
                    k,
                    l: targets.len(),
                    nq: nq_k,
                    sqrt_k: (k as f64).sqrt().ceil() as u64,
                    universal: uni.rounds,
                    stretch,
                    baseline: base.rounds,
                    lower_bound: lb.rounds,
                });
            }
            rows
        })
        .collect();
    per_family.into_iter().flatten().collect()
}

/// One row of the Table 4 reproduction (SSSP).
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Graph family.
    pub family: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Theorem 13 (`1+ε`, `Õ(1)`) rounds.
    pub theorem13: u64,
    /// Measured stretch of the Theorem 13 labels.
    pub theorem13_stretch: f64,
    /// `[KS20]` `Õ(√n)` exact baseline rounds.
    pub ks20_sqrt_n: u64,
    /// `[CHLP21b]` `Õ(n^{5/17})` baseline rounds.
    pub chlp21: u64,
    /// `[AHK+20]` `Õ(n^ε)` baseline rounds (ε = 1/3).
    pub ahk20: u64,
    /// `[AG21a]` deterministic `Õ(√n)` baseline rounds.
    pub ag21: u64,
}

/// Table 4 — SSSP across families and sizes.
///
/// Every (family, size) cell is an independent experiment; the whole grid is
/// flattened and fanned out over all cores.
pub fn table4_rows(families: &[GraphFamily], sizes: &[usize], seed: u64) -> Vec<Table4Row> {
    let cells: Vec<(GraphFamily, usize)> = families
        .iter()
        .flat_map(|&family| sizes.iter().map(move |&n| (family, n)))
        .collect();
    cells
        .par_iter()
        .with_min_len(1)
        .map(|&(family, n)| {
            let graph = Arc::new(family.build_weighted(n, seed));
            let exact = hybrid_graph::dijkstra::sssp_auto(&graph, 0);

            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            let ours = sssp_approx(&mut net, 0, 0.25);
            ours.verify_stretch(&exact).expect("Theorem 13 stretch");
            let measured_stretch = ours
                .dist
                .iter()
                .zip(&exact)
                .filter(|&(_, &e)| e > 0)
                .map(|(&a, &e)| a as f64 / e as f64)
                .fold(1.0f64, f64::max);

            let baseline_rounds = |b: SsspBaseline| {
                let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
                baseline_sssp(&mut net, 0, b).rounds
            };
            Table4Row {
                family: family.name(),
                n: graph.n(),
                theorem13: ours.rounds,
                theorem13_stretch: measured_stretch,
                ks20_sqrt_n: baseline_rounds(SsspBaseline::Ks20SqrtN),
                chlp21: baseline_rounds(SsspBaseline::Chlp21FiveSeventeenths),
                ahk20: baseline_rounds(SsspBaseline::Ahk20NEps {
                    exponent: 1.0 / 3.0,
                }),
                ag21: baseline_rounds(SsspBaseline::Ag21DeterministicSqrtN),
            }
        })
        .collect()
}

/// One row of the Figure 1 reproduction (k-SSP landscape).
#[derive(Debug, Clone, Serialize)]
pub struct Figure1Row {
    /// The exponent β with `k = n^β`.
    pub beta: f64,
    /// The number of sources `k`.
    pub k: usize,
    /// Rounds of the new `Õ(√(k/γ))` algorithm (Theorem 14).
    pub new_algorithm: u64,
    /// The implied exponent `δ = log_n(rounds)`.
    pub new_delta: f64,
    /// Rounds of the prior `Õ(n^{1/3} + √k)` algorithm (`[CHLP21a]`).
    pub prior_algorithm: u64,
    /// The implied exponent for the prior algorithm.
    pub prior_delta: f64,
    /// The `Ω̃(√(k/γ))` lower bound in rounds.
    pub lower_bound: u64,
}

/// Figure 1 — the k-SSP landscape on an Erdős–Rényi graph of `n` nodes.
/// The betas sweep in parallel over a shared graph.
pub fn figure1_rows(n: usize, betas: &[f64], seed: u64) -> Vec<Figure1Row> {
    let family = GraphFamily::ErdosRenyi;
    let graph = Arc::new(family.build(n, seed));
    betas
        .par_iter()
        .with_min_len(1)
        .map(|&beta| {
            let k = ((n as f64).powf(beta).round() as usize).clamp(1, graph.n());
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (k as u64));
            let sources = sample_distinct(graph.n(), k, &mut rng);
            let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
            let gamma = net.params().global_capacity_msgs;
            let out = kssp(
                &mut net,
                &sources,
                1.0,
                KsspVariant::RandomSources,
                &mut rng,
            );
            let n_f = graph.n() as f64;
            let prior = baseline_chlp21_rounds(graph.n(), k);
            Figure1Row {
                beta,
                k,
                new_algorithm: out.rounds,
                new_delta: (out.rounds.max(1) as f64).ln() / n_f.ln(),
                prior_algorithm: prior,
                prior_delta: (prior.max(1) as f64).ln() / n_f.ln(),
                lower_bound: kssp_lower_bound_rounds(k, gamma),
            }
        })
        .collect()
}

/// One row of the Appendix B reproduction (`NQ_k` on special families).
#[derive(Debug, Clone, Serialize)]
pub struct AppendixBRow {
    /// Graph family.
    pub family: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Diameter.
    pub diameter: u64,
    /// Workload `k`.
    pub k: u64,
    /// Measured `NQ_k`.
    pub measured: u64,
    /// The paper's Θ-prediction evaluated with constant 1.
    pub predicted: f64,
    /// The prediction formula.
    pub formula: &'static str,
}

/// Appendix B / Theorems 15–17: measured vs. predicted `NQ_k` (families in
/// parallel).
pub fn appendix_b_rows(n: usize, ks: &[u64], seed: u64) -> Vec<AppendixBRow> {
    let cases: Vec<(GraphFamily, u32)> = vec![
        (GraphFamily::Path, 1),
        (GraphFamily::Cycle, 1),
        (GraphFamily::Grid2D, 2),
        (GraphFamily::Grid3D, 3),
    ];
    let per_family: Vec<Vec<AppendixBRow>> = cases
        .par_iter()
        .with_min_len(1)
        .map(|&(family, dim)| {
            let graph = family.build(n, seed);
            let d = properties::diameter(&graph);
            let oracle = NqOracle::new(&graph);
            ks.iter()
                .map(|&k| {
                    let measured = oracle.nq(k);
                    let prediction = if dim == 1 {
                        families::predict_path_like(k, d)
                    } else {
                        families::predict_grid(k, dim, d)
                    };
                    AppendixBRow {
                        family: family.name(),
                        n: graph.n(),
                        diameter: d,
                        k,
                        measured,
                        predicted: prediction.theta_value,
                        formula: prediction.formula,
                    }
                })
                .collect()
        })
        .collect();
    per_family.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_connected_graphs_of_requested_size() {
        for family in GraphFamily::all() {
            let g = family.build(120, 3);
            assert!(g.n() >= 60, "{} too small: {}", family.name(), g.n());
            assert!(g.n() <= 300, "{} too large: {}", family.name(), g.n());
            let (_, c) = hybrid_graph::traversal::connected_components(&g);
            assert_eq!(c, 1, "{} not connected", family.name());
            let w = family.build_weighted(120, 3);
            assert_eq!(w.n(), g.n());
        }
    }

    #[test]
    fn table1_universal_never_slower_than_baseline() {
        let rows = table1_rows(&[GraphFamily::Grid2D, GraphFamily::Path], 256, &[64], 7);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.dissemination_universal <= row.dissemination_baseline);
            assert!(row.nq <= row.sqrt_k);
            assert!((row.lower_bound) <= row.dissemination_universal as f64);
        }
    }

    #[test]
    fn table4_theorem13_flat_while_baselines_grow() {
        let rows = table4_rows(&[GraphFamily::ErdosRenyi], &[128, 512], 5);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].ks20_sqrt_n > rows[0].ks20_sqrt_n);
        assert!(rows[1].theorem13 <= rows[0].theorem13 * 2);
        for row in &rows {
            assert!(row.theorem13_stretch <= 1.25 + 1e-9);
        }
    }

    #[test]
    fn appendix_b_measured_within_constant_of_prediction() {
        let rows = appendix_b_rows(512, &[16, 64, 256], 1);
        for row in &rows {
            let ratio = row.measured as f64 / row.predicted.max(1.0);
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{} k={} measured {} predicted {}",
                row.family,
                row.k,
                row.measured,
                row.predicted
            );
        }
    }

    #[test]
    fn figure1_rows_cover_betas() {
        let rows = figure1_rows(256, &[0.25, 0.75], 2);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].k < rows[1].k);
        assert!(rows[1].prior_algorithm >= rows[0].prior_algorithm);
    }
}
