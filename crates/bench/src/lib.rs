//! # hybrid-bench
//!
//! Benchmark harness that regenerates the *shape* of every table and figure
//! of the PODC 2024 paper (see DESIGN.md for the experiment index):
//!
//! * Table 1 — information dissemination (broadcast / aggregation / unicast);
//! * Table 2 — APSP;
//! * Table 3 — `(k, ℓ)`-SP;
//! * Table 4 — SSSP;
//! * Figure 1 — the k-SSP complexity landscape;
//! * Appendix B / Theorems 15–17 — `NQ_k` on special graph families;
//! * Scaling sweeps (the [`sweep`] module) — competitive-ratio curves against
//!   the per-instance lower bound over a `family × size × (λ, γ)` grid;
//! * Fault sweeps (the [`faults_sweep`] module) — degradation-factor curves
//!   under a seeded fault-injection adversary over a `family × size ×
//!   fault-profile` grid;
//! * The scale tier (the [`scale`] module) — the sweep question at
//!   `n = 10⁵–10⁶` on streaming generators, row-streamed distances and
//!   sampled `NQ` witnesses (`reproduce sweep --scale`);
//! * The serving tier (the [`oracle_bench`] module) — batched point-to-point
//!   queries against a built [`hybrid_core::oracle::DistanceOracle`], with
//!   per-batch latency percentiles and a queries/s figure
//!   (`reproduce oracle`).
//!
//! The round-count reproduction lives in the [`scenarios`] module and is
//! driven by the `reproduce` binary (`cargo run -p hybrid-bench --bin
//! reproduce -- all`), which prints paper-style tables and writes
//! machine-readable JSON next to them.  The Criterion benches (in `benches/`)
//! measure the wall-clock performance of the implementation itself on the
//! same scenarios.

pub mod faults_sweep;
pub mod oracle_bench;
pub mod scale;
pub mod scenarios;
pub mod sweep;

pub use faults_sweep::{fault_sweep_rows, FaultProfile, FaultSweepConfig, FaultSweepRow};
pub use oracle_bench::{oracle_bench_rows, OracleBenchConfig};
pub use scale::{scale_rows, ScaleConfig, ScaleRow};
pub use scenarios::{
    appendix_b_rows, figure1_rows, table1_rows, table2_rows, table3_rows, table4_rows, GraphFamily,
};
pub use sweep::{
    sweep_rows, sweep_rows_with, validate_sweep_artifact, DissCell, KsspCell, SweepArtifactError,
    SweepConfig, SweepPoint, SweepRow, MIN_ALGORITHMS_PER_ROW,
};
