//! Million-node scale tier: the sweep pipeline with the `Θ(n²)` memory wall
//! refactored out.
//!
//! The regular sweep ([`crate::sweep`]) runs the *full* algorithm pipelines —
//! exact `NQ` oracle (`Θ(n·D)` profile), full dissemination simulation, full
//! label matrices — which caps it around `n ≈ 10³`.  This module keeps the
//! same universal-optimality question ("measured rounds vs. the instance's
//! own lower-bound witness, per family") but swaps every quadratic
//! ingredient for its row-streamed / sampled counterpart:
//!
//! * **graphs** come from the parallel streaming generators
//!   ([`hybrid_graph::streaming`] via [`GraphFamily::build_streamed`]) with
//!   pre-sized CSR assembly — `O(n + m)` memory, bit-identical across pool
//!   widths;
//! * **`NQ_k` witnesses** come from a [`SampledNqOracle`]: exact bounded ball
//!   profiles on a seeded node sample, with the recorded `(estimate, sample
//!   size, confidence)` semantics, and an exact cross-check column where `n`
//!   is small enough to afford the full oracle;
//! * **distances** are [`DistanceRows`] over `|S|` sampled sources — the
//!   genuine Theorem 14 `k ≤ γ` fast path (per-source Dijkstra + `(1+ε)`
//!   quantization, charged at the Theorem 13 model cost) on `O(|S|·n)`
//!   memory, with the stretch *verified* row by row against the exact rows;
//! * **dissemination** is *modeled* at its Theorem 1 bound `Õ(NQ_k)`
//!   (one `⌈log₂ n⌉` factor standing in for the `Õ(·)`, the same convention
//!   the baseline rows use) on the sampled estimate — simulating `n` tokens
//!   through the scheduler is itself super-linear and stays in the small-`n`
//!   sweep.
//!
//! Every row records the exact allocation arithmetic of its cell
//! (graph + rows + profiles, in bytes), which is how the "peak graph +
//! distance memory is `O(|S|·n)`, not `O(n²)`" claim is tested and gated.
//!
//! ## Determinism
//!
//! Cells derive their streams from [`cell_seed`] exactly like the regular
//! sweep (salt 0 = graph, 2 = sources, 3 = `NQ` sample), and the streaming
//! generators use worker-independent canonical chunk streams, so
//! `results/sweep_scale.json` is bit-identical across `RAYON_NUM_THREADS` —
//! pinned by `crates/bench/tests/determinism.rs` and the CI cross-thread
//! artifact diff.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::Serialize;

use hybrid_core::kssp::kssp_lower_bound_rounds;
use hybrid_core::lower_bounds::dissemination_lower_bound;
use hybrid_core::nq::{NqOracle, SampledNqOracle};
use hybrid_core::prob::sample_distinct;
use hybrid_core::rows::DistanceRows;
use hybrid_core::sssp::SsspCostModel;
use hybrid_graph::{streaming, Graph};
use hybrid_sim::ModelParams;

use crate::scenarios::GraphFamily;
use crate::sweep::{cell_seed, SweepPoint};

/// Barbell cliques are `Θ(n²)` edges under the small-`n` parameter mapping
/// (`clique = 3n/8`); past this node count the scale tier caps the cliques at
/// [`BARBELL_CLIQUE_CAP`] and lets the bridge path absorb the rest — the
/// dense clique interior is a memory wall orthogonal to the `n`-scaling
/// question the sweep asks.
const BARBELL_CAP_THRESHOLD: usize = 4096;
/// Clique size of the capped scale-tier barbell (`≈ 10⁶` clique edges).
const BARBELL_CLIQUE_CAP: usize = 1024;

/// Configuration of a scale sweep: sizes, families and sampling widths.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Target node counts (geometric ladder up to `10⁶`).
    pub sizes: Vec<usize>,
    /// Families to sweep.
    pub families: Vec<GraphFamily>,
    /// `|S|`: sampled Dijkstra sources per cell (the k-SSP fast-path
    /// workload; memory scales as `O(|S|·n)`).
    pub sources: usize,
    /// Sampled `NQ` witnesses per cell.
    pub nq_samples: usize,
    /// Cells with `n` at most this also compute the exact `NQ` oracle as a
    /// cross-check column (`Θ(n·D)` — affordable only at the ladder's foot).
    pub exact_crosscheck_max: usize,
    /// Master seed (cells derive their streams via [`cell_seed`]).
    pub seed: u64,
}

impl ScaleConfig {
    /// The CI smoke configuration: one small cross-checked size plus one
    /// `10⁵` cell for a handful of families (`reproduce sweep --scale
    /// --quick`).
    pub fn quick() -> Self {
        ScaleConfig {
            sizes: vec![1024, 100_000],
            families: vec![
                GraphFamily::Path,
                GraphFamily::Grid2D,
                GraphFamily::BinaryTree,
                GraphFamily::ErdosRenyi,
            ],
            sources: 16,
            nq_samples: 64,
            exact_crosscheck_max: 2048,
            seed: 0x5CA1E,
        }
    }

    /// The full grid (nightly): every family at `n` up to `10⁶`.
    pub fn full() -> Self {
        ScaleConfig {
            sizes: vec![1024, 100_000, 1_000_000],
            families: GraphFamily::all().to_vec(),
            sources: 16,
            nq_samples: 64,
            exact_crosscheck_max: 2048,
            seed: 0x5CA1E,
        }
    }
}

/// One cell of the scale sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRow {
    /// Graph family.
    pub family: &'static str,
    /// Actual number of nodes of the built instance.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// `γ` in messages per node per round (the standard `HYBRID` point).
    pub gamma_msgs: usize,
    /// Dissemination workload (`k = n` tokens).
    pub k: u64,
    /// Sampled `NQ_k` estimate (sample maximum of exact per-node values —
    /// a guaranteed lower bound on the population maximum).
    pub nq_estimate: u64,
    /// Number of sampled `NQ` witnesses.
    pub nq_sample_size: usize,
    /// Top-quantile fraction the confidence statement refers to.
    pub nq_quantile: f64,
    /// `P[estimate ≥ (1−q)-quantile]` for the recorded sample size.
    pub nq_confidence: f64,
    /// Exact `NQ_k` cross-check (only where `n ≤ exact_crosscheck_max`).
    pub nq_exact: Option<u64>,
    /// Theorem 1 dissemination modeled at `NQ̂_k · ⌈log₂ n⌉` rounds.
    pub dissemination_modeled_rounds: u64,
    /// Theorem 4 lower-bound witness on the *sampled* oracle, in rounds.
    pub dissemination_lower_bound: f64,
    /// `modeled rounds / max(1, lower bound)`.
    pub dissemination_ratio: f64,
    /// `|S|`: number of sampled k-SSP sources.
    pub kssp_sources: usize,
    /// Rounds of the Theorem 14 `k ≤ γ` fast path (Theorem 13 model cost).
    pub kssp_rounds: u64,
    /// The `Ω̃(√(k/γ))` k-SSP lower bound, in rounds.
    pub kssp_lower_bound: u64,
    /// `kssp_rounds / max(1, lower bound)`.
    pub kssp_ratio: f64,
    /// Worst verified stretch of the quantized rows against the exact rows
    /// (must stay within `1 + ε`).
    pub kssp_stretch_worst: f64,
    /// Bytes of the CSR graphs (unweighted + reweighted instance).
    pub graph_mem_bytes: u64,
    /// Bytes of the distance rows (exact + quantized, `O(|S|·n)`).
    pub distance_rows_mem_bytes: u64,
    /// Bytes of the sampled `NQ` ball profiles.
    pub nq_profile_mem_bytes: u64,
    /// Total of the three memory columns — the cell's dominant allocations.
    pub peak_mem_bytes: u64,
}

/// Builds a scale-tier instance: [`GraphFamily::build_streamed`] everywhere,
/// except the barbell past [`BARBELL_CAP_THRESHOLD`] nodes (see the constant).
fn build_scale_graph(family: GraphFamily, n_target: usize, seed: u64) -> Graph {
    let n = n_target.max(8);
    if family == GraphFamily::Barbell && n > BARBELL_CAP_THRESHOLD {
        return streaming::barbell(BARBELL_CLIQUE_CAP, n - 2 * BARBELL_CLIQUE_CAP)
            .expect("barbell");
    }
    family.build_streamed(n_target, seed)
}

/// Runs the scale grid: `config.families × config.sizes`, one row per cell
/// (single `(λ, γ)` point — the standard `HYBRID`), in parallel with
/// family-major row order identical to the sequential sweep.
pub fn scale_rows(config: &ScaleConfig) -> Vec<ScaleRow> {
    let epsilon = 0.25;
    let cells: Vec<(usize, GraphFamily, usize)> = config
        .families
        .iter()
        .enumerate()
        .flat_map(|(fi, &family)| config.sizes.iter().map(move |&n| (fi, family, n)))
        .collect();
    cells
        .par_iter()
        .with_min_len(1)
        .map(|&(fi, family, n_target)| {
            let graph_seed = cell_seed(config.seed, fi, n_target, 0);
            let graph = build_scale_graph(family, n_target, graph_seed);
            let weighted = family.reweight_streamed(&graph, graph_seed);
            let n = graph.n();
            let params = SweepPoint::HYBRID.params(n);
            let k = n as u64;

            // Sampled NQ witness (exact per-node, sampled maximization).
            let sampled = SampledNqOracle::new(
                &graph,
                config.nq_samples,
                k,
                0.02,
                cell_seed(config.seed, fi, n_target, 3),
            );
            let est = sampled.nq_estimate(k);
            let nq_exact = (n <= config.exact_crosscheck_max).then(|| NqOracle::new(&graph).nq(k));
            let diss_lb = dissemination_lower_bound(&sampled, &params, k, 0.99);
            let log_n = ModelParams::log_n(n) as u64;
            let diss_rounds = est.estimate.saturating_mul(log_n).max(1);

            // Theorem 14 fast path on |S| ≤ γ sampled sources: real
            // per-source Dijkstra rows, (1+ε)-quantized, verified, charged at
            // the Theorem 13 model cost (exactly what `kssp` does for k ≤ γ).
            let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(config.seed, fi, n_target, 2));
            let sources = sample_distinct(n, config.sources.clamp(1, n), &mut rng);
            let rows_exact = DistanceRows::compute(&weighted, &sources);
            let rows_quantized = rows_exact.quantized(epsilon);
            let worst = rows_quantized
                .verify_stretch_against(&rows_exact, 1.0 + epsilon)
                .expect("quantized rows verify");
            let kssp_rounds = SsspCostModel::default().rounds(n, epsilon);
            let kssp_lb = kssp_lower_bound_rounds(sources.len(), params.global_capacity_msgs);

            let graph_mem = graph.memory_bytes() + weighted.memory_bytes();
            let rows_mem = rows_exact.memory_bytes() + rows_quantized.memory_bytes();
            let nq_mem = sampled.memory_bytes();

            ScaleRow {
                family: family.name(),
                n,
                m: graph.m(),
                gamma_msgs: params.global_capacity_msgs,
                k,
                nq_estimate: est.estimate,
                nq_sample_size: est.sample_size,
                nq_quantile: est.quantile,
                nq_confidence: est.confidence,
                nq_exact,
                dissemination_modeled_rounds: diss_rounds,
                dissemination_lower_bound: diss_lb.rounds,
                dissemination_ratio: diss_rounds as f64 / diss_lb.rounds.max(1.0),
                kssp_sources: sources.len(),
                kssp_rounds,
                kssp_lower_bound: kssp_lb,
                kssp_ratio: kssp_rounds as f64 / (kssp_lb.max(1) as f64),
                kssp_stretch_worst: worst,
                graph_mem_bytes: graph_mem,
                distance_rows_mem_bytes: rows_mem,
                nq_profile_mem_bytes: nq_mem,
                peak_mem_bytes: graph_mem + rows_mem + nq_mem,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScaleConfig {
        ScaleConfig {
            sizes: vec![256, 1024],
            families: vec![GraphFamily::Path, GraphFamily::ErdosRenyi],
            sources: 8,
            nq_samples: 24,
            exact_crosscheck_max: 2048,
            seed: 0x5CA1E,
        }
    }

    #[test]
    fn rows_cover_the_grid_and_verify_their_stretch() {
        let config = tiny_config();
        let rows = scale_rows(&config);
        assert_eq!(rows.len(), config.families.len() * config.sizes.len());
        for r in &rows {
            assert!(r.kssp_stretch_worst >= 1.0 && r.kssp_stretch_worst <= 1.25 + 1e-9);
            assert_eq!(r.kssp_sources, 8);
            assert!(r.kssp_rounds >= r.kssp_lower_bound);
            assert!(r.nq_confidence > 0.3 && r.nq_confidence < 1.0);
            assert!(r.dissemination_modeled_rounds >= 1);
        }
    }

    #[test]
    fn sampled_estimate_cross_checks_against_the_exact_oracle() {
        let rows = scale_rows(&tiny_config());
        for r in &rows {
            let exact = r.nq_exact.expect("all tiny sizes are cross-checked");
            assert!(
                r.nq_estimate <= exact,
                "{} n={}: sampled {} above exact {}",
                r.family,
                r.n,
                r.nq_estimate,
                exact
            );
            // 24 samples on ≤ 1024 nodes land close on these families; the
            // pinned bound is the guaranteed direction plus non-triviality.
            assert!(r.nq_estimate >= 1);
        }
    }

    #[test]
    fn memory_is_rows_times_n_not_n_squared() {
        let config = tiny_config();
        let rows = scale_rows(&config);
        for r in &rows {
            let expected_rows = 2 * (r.kssp_sources * r.n * 8 + r.kssp_sources * 4) as u64;
            assert_eq!(r.distance_rows_mem_bytes, expected_rows);
            let full_matrix = (r.n as u64) * (r.n as u64) * 8;
            assert!(
                r.peak_mem_bytes < full_matrix,
                "{} n={}: peak {} not below the n² matrix {}",
                r.family,
                r.n,
                r.peak_mem_bytes,
                full_matrix
            );
        }
    }

    #[test]
    fn barbell_is_capped_past_the_threshold() {
        let capped = build_scale_graph(GraphFamily::Barbell, 10_000, 1);
        assert_eq!(capped.n(), 10_000);
        // Two capped cliques plus the bridge path, not Θ(n²).
        let expected =
            BARBELL_CLIQUE_CAP * (BARBELL_CLIQUE_CAP - 1) + (10_000 - 2 * BARBELL_CLIQUE_CAP) + 1;
        assert_eq!(capped.m(), expected);
        // Below the threshold the mapping is the shared streamed one.
        let small = build_scale_graph(GraphFamily::Barbell, 1024, 1);
        assert_eq!(
            small.edges(),
            GraphFamily::Barbell.build_streamed(1024, 1).edges()
        );
    }

    #[test]
    fn scale_rows_are_seed_deterministic() {
        let config = ScaleConfig {
            sizes: vec![512],
            families: vec![GraphFamily::RandomGeometric, GraphFamily::ChungLu],
            sources: 4,
            nq_samples: 8,
            exact_crosscheck_max: 0,
            seed: 42,
        };
        let a = serde_json::to_string(&scale_rows(&config)).unwrap();
        let b = serde_json::to_string(&scale_rows(&config)).unwrap();
        assert_eq!(a, b);
        assert!(
            a.contains("null"),
            "uncross-checked cells serialize nq_exact as null"
        );
    }
}
