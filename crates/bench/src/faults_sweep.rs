//! Fault sweeps: degradation-factor curves under a seeded adversary over a
//! `family × size × fault-profile` grid.
//!
//! The scaling sweep ([`crate::sweep`]) measures competitive ratios against
//! each instance's lower-bound witness; that framing does not survive fault
//! injection, because the paper's lower bounds (Theorems 4, 10–12) are proved
//! in the failure-free model — an adversary only makes executions *slower*,
//! never the witness larger.  This module therefore reports **degradation
//! factors** instead: each `(family, n)` cell first runs failure-free, then
//! replays the identical workload under every fault profile, and each row
//! records `rounds(faulty) / rounds(failure-free)` plus the message-overhead
//! factor and the injected-fault counters.
//!
//! Two execution layers are measured per cell, matching the two engines the
//! [`hybrid_sim::FaultPlan`] is wired into:
//!
//! * **engine** — ack/retry token dissemination
//!   ([`hybrid_sim::programs::AckFloodProgram`]) on the per-node engine,
//!   whose completion under any drop rate `< 1` is the tentpole guarantee;
//! * **phase** — the Theorem 1 `k`-dissemination pipeline on the phase
//!   engine, whose global batches replay through the wave-retry scheduler
//!   path ([`hybrid_sim::GlobalScheduler::deliver_with_faults`]).
//!
//! ## Determinism
//!
//! Cells are independent: every `(family, n)` pair derives its graph seed and
//! its per-profile fault-plan seeds from the sweep seed via the same
//! SplitMix64 mixing as the scaling sweep, and a [`FaultPlan`]'s decisions
//! are themselves pure hashes of its seeded key — so the rayon fan-out is
//! bit-identical across `RAYON_NUM_THREADS` (pinned by
//! `crates/bench/tests/determinism.rs` and the CI artifact diff).

use std::sync::Arc;

use rayon::prelude::*;
use serde::Serialize;

use hybrid_core::dissemination::{k_dissemination, place_tokens};
use hybrid_core::nq::NqOracle;
use hybrid_sim::engine::{Executor, NodeProgram};
use hybrid_sim::programs::AckFloodProgram;
use hybrid_sim::{EngineConfig, FaultPlan, FaultSpec, HybridNetwork, ModelParams};

use crate::scenarios::GraphFamily;

/// A named adversary distribution of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// Short name used in the JSON rows (`none`, `drop-15`, `chaos`, …).
    pub name: &'static str,
    /// The fault distribution.
    pub spec: FaultSpec,
}

/// The failure-free reference profile (degradation factor 1 by definition).
const NONE: FaultProfile = FaultProfile {
    name: "none",
    spec: FaultSpec {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        delay_prob: 0.0,
        max_delay_rounds: 0,
        crash_prob: 0.0,
        crash_down_rounds: 0,
        crash_horizon_rounds: 0,
        partition_start: 0,
        partition_rounds: 0,
    },
};

/// A drop-only profile with the given per-attempt probability (percent).
const fn drop_profile(name: &'static str, percent: u64) -> FaultProfile {
    FaultProfile {
        name,
        spec: FaultSpec {
            drop_prob: percent as f64 / 100.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay_rounds: 0,
            crash_prob: 0.0,
            crash_down_rounds: 0,
            crash_horizon_rounds: 0,
            partition_start: 0,
            partition_rounds: 0,
        },
    }
}

/// The combined adversary: moderate drops plus duplication, delay,
/// crash-restart and a transient partition window — every fault class the
/// plane implements, active at once.
const CHAOS: FaultProfile = FaultProfile {
    name: "chaos",
    spec: FaultSpec {
        drop_prob: 0.2,
        duplicate_prob: 0.1,
        delay_prob: 0.1,
        max_delay_rounds: 3,
        crash_prob: 0.3,
        crash_down_rounds: 6,
        crash_horizon_rounds: 12,
        partition_start: 3,
        partition_rounds: 6,
    },
};

/// Configuration of a fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// Target node counts per family.
    pub sizes: Vec<usize>,
    /// Fault profiles (the `none` reference is always measured, whether or
    /// not it is listed — listing it adds its factor-1 row to the curves).
    pub profiles: Vec<FaultProfile>,
    /// Master seed; every cell derives its own streams from it.
    pub seed: u64,
    /// Engine-level round budget for the ack/retry dissemination (generous:
    /// the completion guarantee holds for any drop rate `< 1`, but the sweep
    /// must terminate even if a profile is made hostile).
    pub max_rounds: u64,
}

impl FaultSweepConfig {
    /// The CI-sized sweep (`reproduce faults --quick`): 2 sizes × 5 profiles
    /// (the failure-free reference, three drop rates, the combined chaos
    /// adversary).
    pub fn quick() -> Self {
        FaultSweepConfig {
            sizes: vec![64, 128],
            profiles: vec![
                NONE,
                drop_profile("drop-15", 15),
                drop_profile("drop-35", 35),
                drop_profile("drop-55", 55),
                CHAOS,
            ],
            seed: 0xFA17,
            max_rounds: 50_000,
        }
    }

    /// The full-depth sweep (nightly): 3 sizes, a denser drop ladder.
    pub fn full() -> Self {
        FaultSweepConfig {
            sizes: vec![128, 256, 512],
            profiles: vec![
                NONE,
                drop_profile("drop-15", 15),
                drop_profile("drop-35", 35),
                drop_profile("drop-55", 55),
                drop_profile("drop-75", 75),
                CHAOS,
            ],
            seed: 0xFA17,
            max_rounds: 200_000,
        }
    }
}

/// One cell of the fault sweep: a `(family, n, profile)` coordinate with the
/// rounds-to-completion, degradation factors over the failure-free run and
/// the injected-fault accounting for both execution layers.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweepRow {
    /// Graph family.
    pub family: &'static str,
    /// Actual number of nodes of the built instance.
    pub n: usize,
    /// Fault profile name.
    pub profile: &'static str,
    /// Per-attempt drop probability of the profile.
    pub drop_prob: f64,
    /// Per-attempt duplication probability.
    pub duplicate_prob: f64,
    /// Per-attempt delay probability.
    pub delay_prob: f64,
    /// Per-node crash probability (crash-restart model).
    pub crash_prob: f64,
    /// Number of disseminated tokens (same workload at every profile).
    pub k: u64,
    /// Engine layer: rounds of the ack/retry dissemination under this profile.
    pub ack_rounds: u64,
    /// Engine layer: the failure-free reference rounds of the same workload.
    pub ack_baseline_rounds: u64,
    /// `ack_rounds / ack_baseline_rounds` — the engine degradation factor.
    pub ack_degradation: f64,
    /// Delivered local messages divided by the failure-free count — the
    /// retransmission overhead the ack/retry protocol pays.  Can dip below 1
    /// under heavy drops: destroyed copies never count as delivered, and the
    /// periodic retries only partially replace them.
    pub ack_message_overhead: f64,
    /// Whether every node learned every token within the round budget (the
    /// completion guarantee says this is `true` whenever `drop_prob < 1`).
    pub ack_completed: bool,
    /// Engine layer: messages destroyed by the adversary.
    pub ack_injected_drops: u64,
    /// Engine layer: extra copies delivered by duplication.
    pub ack_injected_duplicates: u64,
    /// Engine layer: messages held back by delay.
    pub ack_injected_delays: u64,
    /// Phase layer: rounds of Theorem 1 `k`-dissemination under this profile.
    pub diss_rounds: u64,
    /// Phase layer: the failure-free reference rounds.
    pub diss_baseline_rounds: u64,
    /// `diss_rounds / diss_baseline_rounds` — the phase degradation factor.
    pub diss_degradation: f64,
    /// Delivered global messages divided by the failure-free count (retries
    /// never re-deliver, so this only exceeds 1 through duplication).
    pub diss_message_overhead: f64,
    /// Phase layer: delivery attempts dropped (from the `CostMeter`).
    pub diss_dropped: u64,
    /// Phase layer: extra copies delivered by duplication.
    pub diss_duplicated: u64,
    /// Phase layer: delivery attempts held back by delay.
    pub diss_delayed: u64,
}

/// Same SplitMix64 coordinate mixing as the scaling sweep.
fn cell_seed(seed: u64, family_idx: usize, n: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ (family_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (n as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Degradation/overhead factor with the reference clamped to ≥ 1.
fn factor(measured: u64, reference: u64) -> f64 {
    measured as f64 / reference.max(1) as f64
}

/// One engine-layer measurement: ack/retry dissemination of `k` tokens
/// (holders spread evenly over the id space) under an optional fault plan.
struct AckRun {
    rounds: u64,
    local_messages: u64,
    completed: bool,
    drops: u64,
    duplicates: u64,
    delays: u64,
}

fn run_ack_flood(
    graph: &hybrid_graph::Graph,
    params: ModelParams,
    k: usize,
    plan: Option<&FaultPlan>,
    max_rounds: u64,
) -> AckRun {
    let n = graph.n();
    let mut config = EngineConfig::new(params);
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan.clone());
    }
    let mut exec = Executor::with_config(graph, config, |v| {
        let stride = (n / k).max(1) as u32;
        let initial = if v % stride == 0 && (v / stride) < k as u32 {
            vec![(v / stride) as u64]
        } else {
            vec![]
        };
        AckFloodProgram::new(initial, k, 2)
    });
    // A truncated run is a legitimate data point here (heavy-drop cells are
    // *expected* to miss the horizon), so use the bounded-window entry point
    // and record `completed` instead of treating the cap as an error.
    let report = exec.run_capped(max_rounds, |ps| ps.iter().all(|p| p.done()));
    AckRun {
        rounds: report.rounds,
        local_messages: report.local_messages,
        completed: report.completed,
        drops: report.injected_drops,
        duplicates: report.injected_duplicates,
        delays: report.injected_delays,
    }
}

/// Runs the fault sweep grid: `families × config.sizes × config.profiles`.
///
/// The `(family, n)` cells fan out in parallel; each builds its graph and
/// `NQ` oracle once, measures the failure-free reference once, and then
/// replays the identical workload per profile.  Row order is family-major,
/// then size, then profile — identical for every pool width.
pub fn fault_sweep_rows(families: &[GraphFamily], config: &FaultSweepConfig) -> Vec<FaultSweepRow> {
    let cells: Vec<(usize, GraphFamily, usize)> = families
        .iter()
        .enumerate()
        .flat_map(|(fi, &family)| config.sizes.iter().map(move |&n| (fi, family, n)))
        .collect();
    let per_cell: Vec<Vec<FaultSweepRow>> = cells
        .par_iter()
        .with_min_len(1)
        .map(|&(fi, family, n_target)| {
            let graph_seed = cell_seed(config.seed, fi, n_target, 0);
            let graph = Arc::new(family.build(n_target, graph_seed));
            let oracle = NqOracle::new(&graph);
            let n = graph.n();
            let params = ModelParams::hybrid(n);

            // The engine workload: 8 tokens on evenly spread holders — small
            // enough that heavy-drop cells stay fast, large enough that every
            // token crosses long stretches of the graph.
            let k = 8usize.min(n);
            let ack_base = run_ack_flood(&graph, params, k, None, config.max_rounds);

            // The phase workload: the Theorem 1 pipeline with an n-token
            // load, same shape as the scaling sweep's dissemination column.
            let tokens = place_tokens(&(0..n as u32).collect::<Vec<_>>(), n as u64);
            let mut net = HybridNetwork::new(Arc::clone(&graph), params);
            let diss_base = k_dissemination(&mut net, &oracle, &tokens);
            let diss_base_msgs = diss_base.meter.global_messages();

            config
                .profiles
                .iter()
                .enumerate()
                .map(|(pi, profile)| {
                    let plan_seed = cell_seed(config.seed, fi, n_target, 1 + pi as u64);
                    let plan = FaultPlan::new(profile.spec, plan_seed, n);

                    let ack = if plan.is_failure_free() {
                        run_ack_flood(&graph, params, k, None, config.max_rounds)
                    } else {
                        run_ack_flood(&graph, params, k, Some(&plan), config.max_rounds)
                    };

                    let net_config = EngineConfig::new(params).with_fault_plan(plan);
                    let mut net = HybridNetwork::with_config(Arc::clone(&graph), &net_config);
                    let diss = k_dissemination(&mut net, &oracle, &tokens);

                    FaultSweepRow {
                        family: family.name(),
                        n,
                        profile: profile.name,
                        drop_prob: profile.spec.drop_prob,
                        duplicate_prob: profile.spec.duplicate_prob,
                        delay_prob: profile.spec.delay_prob,
                        crash_prob: profile.spec.crash_prob,
                        k: k as u64,
                        ack_rounds: ack.rounds,
                        ack_baseline_rounds: ack_base.rounds,
                        ack_degradation: factor(ack.rounds, ack_base.rounds),
                        ack_message_overhead: factor(ack.local_messages, ack_base.local_messages),
                        ack_completed: ack.completed,
                        ack_injected_drops: ack.drops,
                        ack_injected_duplicates: ack.duplicates,
                        ack_injected_delays: ack.delays,
                        diss_rounds: diss.rounds,
                        diss_baseline_rounds: diss_base.rounds,
                        diss_degradation: factor(diss.rounds, diss_base.rounds),
                        diss_message_overhead: factor(diss.meter.global_messages(), diss_base_msgs),
                        diss_dropped: diss.meter.dropped(),
                        diss_duplicated: diss.meter.duplicated(),
                        diss_delayed: diss.meter.delayed(),
                    }
                })
                .collect()
        })
        .collect();
    per_cell.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FaultSweepConfig {
        FaultSweepConfig {
            sizes: vec![48],
            profiles: vec![NONE, drop_profile("drop-35", 35), CHAOS],
            seed: 0xFA17,
            max_rounds: 50_000,
        }
    }

    #[test]
    fn grid_covers_every_family_size_and_profile() {
        let config = tiny_config();
        let families = [
            GraphFamily::Path,
            GraphFamily::Grid2D,
            GraphFamily::ErdosRenyi,
        ];
        let rows = fault_sweep_rows(&families, &config);
        assert_eq!(
            rows.len(),
            families.len() * config.sizes.len() * config.profiles.len()
        );
        for r in &rows {
            assert!(r.ack_completed, "{} {} must complete", r.family, r.profile);
            assert!(r.ack_degradation >= 1.0 || r.profile == "none");
            assert!(r.diss_degradation >= 1.0 || r.profile == "none");
        }
    }

    #[test]
    fn none_profile_is_the_reference() {
        let config = tiny_config();
        let rows = fault_sweep_rows(&[GraphFamily::BinaryTree], &config);
        let none = rows.iter().find(|r| r.profile == "none").unwrap();
        assert_eq!(none.ack_rounds, none.ack_baseline_rounds);
        assert_eq!(none.diss_rounds, none.diss_baseline_rounds);
        assert_eq!(none.ack_degradation, 1.0);
        assert_eq!(none.diss_degradation, 1.0);
        assert_eq!(none.ack_injected_drops, 0);
        assert_eq!(none.diss_dropped, 0);
    }

    #[test]
    fn heavier_drops_degrade_more() {
        let config = FaultSweepConfig {
            sizes: vec![64],
            profiles: vec![drop_profile("drop-15", 15), drop_profile("drop-55", 55)],
            seed: 1,
            max_rounds: 50_000,
        };
        let rows = fault_sweep_rows(&[GraphFamily::Path], &config);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].ack_degradation > rows[0].ack_degradation,
            "55% loss ({}) should cost more than 15% loss ({})",
            rows[1].ack_degradation,
            rows[0].ack_degradation
        );
        assert!(rows[0].ack_injected_drops > 0);
        assert!(rows[1].diss_dropped > rows[0].diss_dropped);
    }
}
