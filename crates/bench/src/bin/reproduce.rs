//! `reproduce` — regenerates the paper's tables and figures as round-count
//! tables, printing them in a paper-like layout and writing machine-readable
//! JSON into `results/`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hybrid-bench --bin reproduce -- [table1|table2|table3|table4|figure1|appendix-b|all] [--quick]
//! ```
//!
//! `--quick` shrinks the instance sizes so the full run finishes in well under
//! a minute (used by CI and by the recorded EXPERIMENTS.md runs on small
//! machines); without it the default sizes are used.

use std::fs;
use std::path::Path;
use std::time::Instant;

use hybrid_bench::scenarios::{
    appendix_b_rows, figure1_rows, table1_rows, table2_rows, table3_rows, table4_rows, GraphFamily,
};
use serde::Serialize;

fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(rows) {
        let _ = fs::write(&path, json);
        println!("  (wrote {})", path.display());
    }
}

/// Wall-clock measurement of one reproduce target.
#[derive(Debug, Clone, Serialize)]
struct TargetTiming {
    /// Target name (`table1` … `appendix-b`).
    target: &'static str,
    /// Wall-clock milliseconds.
    wall_ms: f64,
}

/// The machine-readable perf record `reproduce` emits so future PRs have a
/// trajectory to beat.
#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    /// Record schema identifier.
    schema: &'static str,
    /// Whether `--quick` sizes were used.
    quick: bool,
    /// Worker threads the parallel fan-outs could use.
    threads: usize,
    /// Per-target wall-clock times.
    targets: Vec<TargetTiming>,
    /// Sum over targets.
    total_wall_ms: f64,
}

impl BenchRecord {
    fn write(&self, full_sweep: bool) {
        write_json("bench_last_run", self);
        // The first *full* sweep (`reproduce all`) on a machine records the
        // baseline later runs are compared against; partial runs never
        // baseline (their target set would not match a full run), and an
        // existing baseline is never clobbered (delete the file to
        // re-baseline).
        if !full_sweep {
            return;
        }
        let baseline = Path::new("BENCH_baseline.json");
        if !baseline.exists() {
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = fs::write(baseline, json);
                println!("  (wrote {} — new perf baseline)", baseline.display());
            }
        }
    }
}

/// Runs `f`, printing and returning its wall-clock time.
fn timed(target: &'static str, f: impl FnOnce()) -> TargetTiming {
    let start = Instant::now();
    f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  [{target}: {wall_ms:.1} ms]");
    TargetTiming { target, wall_ms }
}

fn run_table1(quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let ks: Vec<u64> = if quick {
        vec![16, 64, 256]
    } else {
        vec![16, 64, 256, 1024]
    };
    println!("\n=== Table 1: information dissemination (n = {n}) ===");
    println!(
        "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "family",
        "k",
        "NQ_k",
        "sqrt(k)",
        "bcast-UNIV",
        "bcast-BASE",
        "aggr-UNIV",
        "route-UNIV",
        "route-BASE",
        "lower-bnd"
    );
    let rows = table1_rows(GraphFamily::all(), n, &ks, 0xC0FFEE);
    for r in &rows {
        println!(
            "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10.2}",
            r.family,
            r.k,
            r.nq,
            r.sqrt_k,
            r.dissemination_universal,
            r.dissemination_baseline,
            r.aggregation_universal,
            r.routing_universal,
            r.routing_baseline,
            r.lower_bound
        );
    }
    write_json("table1_dissemination", &rows);
}

fn run_table2(quick: bool) {
    let n = if quick { 144 } else { 400 };
    println!("\n=== Table 2: APSP (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9}{:>11}{:>11}{:>9}{:>11}{:>9}{:>10}{:>10}",
        "family",
        "n",
        "NQ_n",
        "sqrt(n)",
        "T6-UNIV",
        "T6-str",
        "T6-BASE",
        "T7-UNIV",
        "T7-str",
        "T8-UNIV",
        "T8-str",
        "lit-sqrt",
        "lower-bnd"
    );
    let rows = table2_rows(GraphFamily::core_families(), n, 0xBEEF);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9.3}{:>11}{:>11}{:>9.3}{:>11}{:>9.3}{:>10}{:>10.2}",
            r.family,
            r.n,
            r.nq_n,
            r.sqrt_n,
            r.unweighted_universal,
            r.unweighted_stretch,
            r.unweighted_baseline,
            r.weighted_spanner_universal,
            r.weighted_spanner_stretch,
            r.weighted_skeleton_universal,
            r.weighted_skeleton_stretch,
            r.literature_sqrt_n,
            r.lower_bound
        );
    }
    write_json("table2_apsp", &rows);
}

fn run_table3(quick: bool) {
    let n = if quick { 196 } else { 400 };
    let ks: Vec<u64> = if quick {
        vec![16, 64]
    } else {
        vec![16, 64, 144]
    };
    println!("\n=== Table 3: (k, l)-shortest paths (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9}{:>10}{:>10}",
        "family", "k", "l", "NQ_k", "sqrt(k)", "T5-UNIV", "stretch", "baseline", "lower-bnd"
    );
    let rows = table3_rows(GraphFamily::core_families(), n, &ks, 0xFACE);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9.3}{:>10}{:>10.2}",
            r.family, r.k, r.l, r.nq, r.sqrt_k, r.universal, r.stretch, r.baseline, r.lower_bound
        );
    }
    write_json("table3_klsp", &rows);
}

fn run_table4(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![64, 256, 1024]
    } else {
        vec![64, 256, 1024, 4096]
    };
    println!("\n=== Table 4: SSSP ===");
    println!(
        "{:<18}{:>7}{:>10}{:>10}{:>12}{:>10}{:>10}{:>10}",
        "family", "n", "T13-ours", "stretch", "KS20-sqrt", "CHLP21", "AHK20", "AG21"
    );
    let rows = table4_rows(
        &[
            GraphFamily::Grid2D,
            GraphFamily::ErdosRenyi,
            GraphFamily::Path,
        ],
        &sizes,
        0xDEAD,
    );
    for r in &rows {
        println!(
            "{:<18}{:>7}{:>10}{:>10.3}{:>12}{:>10}{:>10}{:>10}",
            r.family,
            r.n,
            r.theorem13,
            r.theorem13_stretch,
            r.ks20_sqrt_n,
            r.chlp21,
            r.ahk20,
            r.ag21
        );
    }
    write_json("table4_sssp", &rows);
}

fn run_figure1(quick: bool) {
    let n = if quick { 512 } else { 1024 };
    let betas = [0.0, 1.0 / 6.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 5.0 / 6.0, 1.0];
    println!("\n=== Figure 1: k-SSP landscape (k = n^beta, n = {n}) ===");
    println!(
        "{:<8}{:>8}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "beta", "k", "new(T14)", "delta", "prior", "prior-delta", "lower-bnd"
    );
    let rows = figure1_rows(n, &betas, 0xF16);
    for r in &rows {
        println!(
            "{:<8.3}{:>8}{:>12}{:>10.3}{:>12}{:>12.3}{:>12}",
            r.beta,
            r.k,
            r.new_algorithm,
            r.new_delta,
            r.prior_algorithm,
            r.prior_delta,
            r.lower_bound
        );
    }
    write_json("figure1_kssp", &rows);
}

fn run_appendix_b(quick: bool) {
    let n = if quick { 512 } else { 2048 };
    let ks: Vec<u64> = vec![16, 64, 256, 1024, 4096];
    println!("\n=== Appendix B / Theorems 15-17: NQ_k on special families (n ~ {n}) ===");
    println!(
        "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11}  formula",
        "family", "n", "D", "k", "measured", "predicted"
    );
    let rows = appendix_b_rows(n, &ks, 0xAB);
    for r in &rows {
        println!(
            "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11.2}  {}",
            r.family, r.n, r.diameter, r.k, r.measured, r.predicted, r.formula
        );
    }
    write_json("appendix_b_nq", &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let timings = match what.as_str() {
        "table1" => vec![timed("table1", || run_table1(quick))],
        "table2" => vec![timed("table2", || run_table2(quick))],
        "table3" => vec![timed("table3", || run_table3(quick))],
        "table4" => vec![timed("table4", || run_table4(quick))],
        "figure1" => vec![timed("figure1", || run_figure1(quick))],
        "appendix-b" => vec![timed("appendix-b", || run_appendix_b(quick))],
        "all" => vec![
            timed("table1", || run_table1(quick)),
            timed("table2", || run_table2(quick)),
            timed("table3", || run_table3(quick)),
            timed("table4", || run_table4(quick)),
            timed("figure1", || run_figure1(quick)),
            timed("appendix-b", || run_appendix_b(quick)),
        ],
        other => {
            eprintln!(
                "unknown target '{other}'; expected table1|table2|table3|table4|figure1|appendix-b|all"
            );
            std::process::exit(2);
        }
    };
    let total_wall_ms = timings.iter().map(|t| t.wall_ms).sum();
    let record = BenchRecord {
        schema: "hybrid-bench-baseline/v1",
        quick,
        threads: rayon::current_num_threads(),
        targets: timings,
        total_wall_ms,
    };
    record.write(what == "all");
}
