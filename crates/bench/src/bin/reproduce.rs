//! `reproduce` — regenerates the paper's tables and figures as round-count
//! tables, printing them in a paper-like layout and writing machine-readable
//! JSON into `results/`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hybrid-bench --bin reproduce -- [table1|table2|table3|table4|figure1|appendix-b|sweep|faults|oracle|all] [--quick] [--check-regression] [--strict]
//! ```
//!
//! `--quick` shrinks the instance sizes so the full run finishes in well under
//! a minute (used by CI and by the recorded EXPERIMENTS.md runs on small
//! machines); without it the default sizes are used.
//!
//! `--check-regression` compares the wall-clock times of this run against the
//! committed `BENCH_baseline.json` with a generous tolerance and prints a
//! warning per regressed target.  By default it is **warn-only** (the exit
//! code stays 0) so local runs on noisy laptops never fail; with `--strict`
//! (what CI passes; implies `--check-regression`) any breach of the
//! `2× + 100 ms` tolerance — or a target missing its baseline entry — exits
//! non-zero and blocks the merge.
//!
//! Unknown targets *and unknown flags* exit with code 2 and the usage string:
//! a typo like `--qiuck` must not silently run the slow full suite.

use std::fs;
use std::path::Path;
use std::time::Instant;

use hybrid_bench::faults_sweep::{fault_sweep_rows, FaultSweepConfig};
use hybrid_bench::oracle_bench::{oracle_bench_rows, OracleBenchConfig};
use hybrid_bench::scale::{scale_rows, ScaleConfig};
use hybrid_bench::scenarios::{
    appendix_b_rows, figure1_rows, table1_rows, table2_rows, table3_rows, table4_rows, GraphFamily,
};
use hybrid_bench::sweep::{sweep_rows_with, validate_sweep_artifact, SweepConfig};
use serde::Serialize;

const USAGE: &str =
    "usage: reproduce [table1|table2|table3|table4|figure1|appendix-b|sweep|faults|oracle|all] [--scale] [--algo <name,...>] [--quick] [--check-regression] [--strict]";

/// Parsed command line of the `reproduce` binary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    /// The reproduction target (`all` when omitted).
    target: String,
    /// Shrunk instance sizes.
    quick: bool,
    /// Run the sweep target as the million-node scale tier
    /// (`sweep --scale` → `results/sweep_scale.json`).
    scale: bool,
    /// Restrict the sweep shootout to these registry names
    /// (`--algo theorem1,schneider`); `None` runs every registered algorithm.
    algo: Option<Vec<String>>,
    /// Compare against `BENCH_baseline.json`.
    check_regression: bool,
    /// Escalate regression warnings to a non-zero exit (CI mode; implies
    /// `check_regression`).
    strict: bool,
}

/// Parses the argument list (without the program name).  Unknown flags and
/// surplus positional arguments are errors so that a typo (`--qiuck`) cannot
/// silently select the slow full-size defaults.
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        target: String::new(),
        quick: false,
        scale: false,
        algo: None,
        check_regression: false,
        strict: false,
    };
    let parse_algo_list = |value: &str| -> Vec<String> {
        value
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--scale" => cli.scale = true,
            "--algo" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    return Err(format!(
                        "--algo requires a value (comma-separated algorithm names)\n{USAGE}"
                    ));
                };
                cli.algo = Some(parse_algo_list(value));
            }
            inline if inline.starts_with("--algo=") => {
                cli.algo = Some(parse_algo_list(&inline["--algo=".len()..]));
            }
            "--check-regression" => cli.check_regression = true,
            "--strict" => cli.strict = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag '{flag}'\n{USAGE}"));
            }
            target if cli.target.is_empty() => cli.target = target.to_string(),
            surplus => {
                return Err(format!(
                    "unexpected argument '{surplus}' (target already set to '{}')\n{USAGE}",
                    cli.target
                ));
            }
        }
        i += 1;
    }
    if cli.target.is_empty() {
        cli.target = "all".to_string();
    }
    // `--strict` without the gate would be a silent no-op (the same class of
    // bug as an ignored `--qiuck` typo), so it implies the gate instead.
    if cli.strict {
        cli.check_regression = true;
    }
    // `--scale` selects the scale tier of the sweep; on any other target it
    // would be a silent no-op, which is the `--qiuck` bug class again.
    if cli.scale && cli.target != "sweep" {
        return Err(format!(
            "--scale applies to the sweep target only (target is '{}')\n{USAGE}",
            cli.target
        ));
    }
    // `--algo` filters the shootout, which only the plain sweep target runs;
    // anywhere else it would silently select nothing (the `--qiuck` bug class).
    if cli.algo.is_some() && (cli.target != "sweep" || cli.scale) {
        return Err(format!(
            "--algo applies to the sweep shootout only (target is '{}'{})\n{USAGE}",
            cli.target,
            if cli.scale { " --scale" } else { "" }
        ));
    }
    Ok(cli)
}

fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(rows) {
        let _ = fs::write(&path, json);
        println!("  (wrote {})", path.display());
    }
}

/// Wall-clock measurement of one reproduce target.
#[derive(Debug, Clone, Serialize)]
struct TargetTiming {
    /// Target name (`table1` … `appendix-b`, `scale`).
    target: &'static str,
    /// Wall-clock milliseconds.
    wall_ms: f64,
    /// Estimated peak bytes of the target's dominant allocations — exact
    /// arithmetic for the scale tier (graph + rows + profiles per cell),
    /// dominant-allocation formulas for the small-`n` targets (each `run_*`
    /// documents its own).  The regression gate only compares `wall_ms`.
    peak_mem_bytes: u64,
}

/// The machine-readable perf record `reproduce` emits so future PRs have a
/// trajectory to beat.
#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    /// Record schema identifier.
    schema: &'static str,
    /// Whether `--quick` sizes were used.
    quick: bool,
    /// Worker threads the parallel fan-outs could use.
    threads: usize,
    /// Per-target wall-clock times.
    targets: Vec<TargetTiming>,
    /// Sum over targets.
    total_wall_ms: f64,
}

impl BenchRecord {
    fn write(&self, full_sweep: bool) {
        write_json("bench_last_run", self);
        // The first *full* sweep (`reproduce all`) on a machine records the
        // baseline later runs are compared against; partial runs never
        // baseline (their target set would not match a full run), and an
        // existing baseline is never clobbered (delete the file to
        // re-baseline).
        if !full_sweep {
            return;
        }
        let baseline = Path::new("BENCH_baseline.json");
        if !baseline.exists() {
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = fs::write(baseline, json);
                println!("  (wrote {} — new perf baseline)", baseline.display());
            }
        }
    }
}

/// A regressed target is one slower than `factor × baseline + slack`.  The
/// tolerance is deliberately generous: CI containers and developer laptops
/// time the same work very differently, and the gate is a tripwire for
/// order-of-magnitude drift, not a microbenchmark.
const REGRESSION_FACTOR: f64 = 2.0;
const REGRESSION_SLACK_MS: f64 = 100.0;

/// Pulls every `"target": "name" … "wall_ms": x` pair out of a recorded
/// bench JSON without a deserializer (the vendored `serde_json` only
/// serializes).  The scan keys on the `"target"` fields, so the baseline's
/// auxiliary maps (e.g. `pre_optimization_wall_ms`) are ignored.
fn parse_recorded_targets(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"target\"").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(rest) = chunk.split("\"wall_ms\"").nth(1) else {
            continue;
        };
        let number: String = rest
            .chars()
            .skip_while(|c| *c == ':' || c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(ms) = number.parse::<f64>() {
            out.push((name.to_string(), ms));
        }
    }
    out
}

/// Whether the recorded JSON was a `--quick` run (`"quick": true`).
fn parse_quick_flag(json: &str) -> Option<bool> {
    let rest = json.split("\"quick\"").nth(1)?;
    let value = rest.trim_start_matches([':', ' ', '\t', '\n']);
    if value.starts_with("true") {
        Some(true)
    } else if value.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The bench regression gate: compares this run's per-target times against
/// `BENCH_baseline.json` and returns the number of regressed targets.  The
/// caller decides whether that fails the process (`--strict`, CI) or is
/// warn-only (local runs); annotations are GitHub-flavoured either way.
fn check_regression(record: &BenchRecord, strict: bool) -> usize {
    gate_regressions(
        record,
        fs::read_to_string(Path::new("BENCH_baseline.json"))
            .ok()
            .as_deref(),
        strict,
    )
}

/// The gate logic behind [`check_regression`], with the baseline text passed
/// in (`None` = no baseline file) so the strict/warn counting is unit-testable
/// without touching the filesystem.
fn gate_regressions(record: &BenchRecord, baseline_text: Option<&str>, strict: bool) -> usize {
    let annotation = if strict { "error" } else { "warning" };
    // Under --strict a comparison that cannot run is itself a failure: CI
    // promises the gate fails on any breach, and a deleted / unparsable /
    // quick-mismatched baseline would otherwise disable the gate silently.
    let skip = |message: String| -> usize {
        if strict {
            println!("::error title=bench regression::{message} (--strict: failing the run, the gate could not compare anything)");
            1
        } else {
            println!("\n[regression gate] {message}; skipping comparison");
            0
        }
    };
    let Some(text) = baseline_text else {
        return skip(
            "no BENCH_baseline.json — nothing to compare against (run `reproduce all` once to record it)"
                .to_string(),
        );
    };
    if parse_quick_flag(text) != Some(record.quick) {
        return skip(format!(
            "baseline quick={:?} does not match this run (quick={})",
            parse_quick_flag(text),
            record.quick
        ));
    }
    let baseline = parse_recorded_targets(text);
    if baseline.is_empty() {
        return skip("BENCH_baseline.json has no parsable targets".to_string());
    }
    println!("\n[regression gate] comparing against BENCH_baseline.json ({} at > {REGRESSION_FACTOR}x + {REGRESSION_SLACK_MS} ms):", if strict { "fail" } else { "warn" });
    let mut regressed = 0usize;
    for t in &record.targets {
        let Some(&(_, base_ms)) = baseline.iter().find(|(name, _)| name == t.target) else {
            if strict {
                // CI gates every target: a new target without a baseline
                // entry must fail loudly, not stay silently ungated forever.
                regressed += 1;
                println!(
                    "::error title=bench regression::{} has no entry in BENCH_baseline.json (add one so the target is gated)",
                    t.target
                );
            } else {
                println!(
                    "  {:<12} {:>9.1} ms (no baseline entry)",
                    t.target, t.wall_ms
                );
            }
            continue;
        };
        let limit = REGRESSION_FACTOR * base_ms + REGRESSION_SLACK_MS;
        if t.wall_ms > limit {
            regressed += 1;
            println!(
                "::{annotation} title=bench regression::{} took {:.1} ms vs baseline {:.1} ms (limit {:.1} ms)",
                t.target, t.wall_ms, base_ms, limit
            );
        } else {
            println!(
                "  {:<12} {:>9.1} ms vs baseline {:>9.1} ms  ok",
                t.target, t.wall_ms, base_ms
            );
        }
    }
    if regressed == 0 {
        println!(
            "[regression gate] all {} targets within tolerance",
            record.targets.len()
        );
    } else if strict {
        println!("[regression gate] {regressed} target(s) regressed (--strict: failing the run)");
    } else {
        println!(
            "[regression gate] {regressed} target(s) regressed (warn-only; not failing the run)"
        );
    }
    regressed
}

/// Runs `f`, printing and returning its wall-clock time and the peak-memory
/// estimate `f` reports (bytes of the target's dominant allocations).
fn timed(target: &'static str, f: impl FnOnce() -> u64) -> TargetTiming {
    let start = Instant::now();
    let peak_mem_bytes = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "  [{target}: {wall_ms:.1} ms, ~{:.1} MiB peak]",
        peak_mem_bytes as f64 / (1024.0 * 1024.0)
    );
    TargetTiming {
        target,
        wall_ms,
        peak_mem_bytes,
    }
}

/// Returns the dominant allocation: the path family's `NqOracle` ball profile
/// (`n` nodes × eccentricity ≈ `n` entries of 8 bytes).
fn run_table1(quick: bool) -> u64 {
    let n = if quick { 256 } else { 1024 };
    let ks: Vec<u64> = if quick {
        vec![16, 64, 256]
    } else {
        vec![16, 64, 256, 1024]
    };
    println!("\n=== Table 1: information dissemination (n = {n}) ===");
    println!(
        "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "family",
        "k",
        "NQ_k",
        "sqrt(k)",
        "bcast-UNIV",
        "bcast-BASE",
        "aggr-UNIV",
        "route-UNIV",
        "route-BASE",
        "lower-bnd"
    );
    let rows = table1_rows(GraphFamily::all(), n, &ks, 0xC0FFEE);
    for r in &rows {
        println!(
            "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10.2}",
            r.family,
            r.k,
            r.nq,
            r.sqrt_k,
            r.dissemination_universal,
            r.dissemination_baseline,
            r.aggregation_universal,
            r.routing_universal,
            r.routing_baseline,
            r.lower_bound
        );
    }
    write_json("table1_dissemination", &rows);
    (n as u64).pow(2) * 8
}

/// Returns the dominant allocation: the dense `n × n` label matrix plus the
/// exact distance matrix it is verified against.
fn run_table2(quick: bool) -> u64 {
    let n = if quick { 144 } else { 400 };
    println!("\n=== Table 2: APSP (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9}{:>11}{:>11}{:>9}{:>11}{:>9}{:>10}{:>10}",
        "family",
        "n",
        "NQ_n",
        "sqrt(n)",
        "T6-UNIV",
        "T6-str",
        "T6-BASE",
        "T7-UNIV",
        "T7-str",
        "T8-UNIV",
        "T8-str",
        "lit-sqrt",
        "lower-bnd"
    );
    let rows = table2_rows(GraphFamily::core_families(), n, 0xBEEF);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9.3}{:>11}{:>11}{:>9.3}{:>11}{:>9.3}{:>10}{:>10.2}",
            r.family,
            r.n,
            r.nq_n,
            r.sqrt_n,
            r.unweighted_universal,
            r.unweighted_stretch,
            r.unweighted_baseline,
            r.weighted_spanner_universal,
            r.weighted_spanner_stretch,
            r.weighted_skeleton_universal,
            r.weighted_skeleton_stretch,
            r.literature_sqrt_n,
            r.lower_bound
        );
    }
    write_json("table2_apsp", &rows);
    2 * (n as u64).pow(2) * 8
}

/// Returns the dominant allocation: the largest `k × n` source-row block plus
/// the exact rows it is verified against.
fn run_table3(quick: bool) -> u64 {
    let n = if quick { 196 } else { 400 };
    let ks: Vec<u64> = if quick {
        vec![16, 64]
    } else {
        vec![16, 64, 144]
    };
    let k_max = *ks.iter().max().expect("ks is non-empty");
    println!("\n=== Table 3: (k, l)-shortest paths (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9}{:>10}{:>10}",
        "family", "k", "l", "NQ_k", "sqrt(k)", "T5-UNIV", "stretch", "baseline", "lower-bnd"
    );
    let rows = table3_rows(GraphFamily::core_families(), n, &ks, 0xFACE);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9.3}{:>10}{:>10.2}",
            r.family, r.k, r.l, r.nq, r.sqrt_k, r.universal, r.stretch, r.baseline, r.lower_bound
        );
    }
    write_json("table3_klsp", &rows);
    2 * k_max * n as u64 * 8
}

/// Returns the dominant allocation: SSSP keeps a handful of length-`n`
/// working arrays (distances, heap, visited, parents) at the largest size.
fn run_table4(quick: bool) -> u64 {
    let sizes: Vec<usize> = if quick {
        vec![64, 256, 1024]
    } else {
        vec![64, 256, 1024, 4096]
    };
    let n_max = *sizes.iter().max().expect("sizes is non-empty") as u64;
    println!("\n=== Table 4: SSSP ===");
    println!(
        "{:<18}{:>7}{:>10}{:>10}{:>12}{:>10}{:>10}{:>10}",
        "family", "n", "T13-ours", "stretch", "KS20-sqrt", "CHLP21", "AHK20", "AG21"
    );
    let rows = table4_rows(
        &[
            GraphFamily::Grid2D,
            GraphFamily::ErdosRenyi,
            GraphFamily::Path,
        ],
        &sizes,
        0xDEAD,
    );
    for r in &rows {
        println!(
            "{:<18}{:>7}{:>10}{:>10.3}{:>12}{:>10}{:>10}{:>10}",
            r.family,
            r.n,
            r.theorem13,
            r.theorem13_stretch,
            r.ks20_sqrt_n,
            r.chlp21,
            r.ahk20,
            r.ag21
        );
    }
    write_json("table4_sssp", &rows);
    n_max * 8 * 4
}

/// Returns the dominant allocation: the `β = 1` point runs `k = n` sources,
/// i.e. a full `n × n` label matrix plus the exact verification rows.
fn run_figure1(quick: bool) -> u64 {
    let n = if quick { 512 } else { 1024 };
    let betas = [0.0, 1.0 / 6.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 5.0 / 6.0, 1.0];
    println!("\n=== Figure 1: k-SSP landscape (k = n^beta, n = {n}) ===");
    println!(
        "{:<8}{:>8}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "beta", "k", "new(T14)", "delta", "prior", "prior-delta", "lower-bnd"
    );
    let rows = figure1_rows(n, &betas, 0xF16);
    for r in &rows {
        println!(
            "{:<8.3}{:>8}{:>12}{:>10.3}{:>12}{:>12.3}{:>12}",
            r.beta,
            r.k,
            r.new_algorithm,
            r.new_delta,
            r.prior_algorithm,
            r.prior_delta,
            r.lower_bound
        );
    }
    write_json("figure1_kssp", &rows);
    2 * (n as u64).pow(2) * 8
}

/// Returns the dominant allocation: the exact `NqOracle` ball profile on the
/// highest-diameter family (`n` nodes × up to `n` profile entries).
fn run_appendix_b(quick: bool) -> u64 {
    let n = if quick { 512 } else { 2048 };
    let ks: Vec<u64> = vec![16, 64, 256, 1024, 4096];
    println!("\n=== Appendix B / Theorems 15-17: NQ_k on special families (n ~ {n}) ===");
    println!(
        "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11}  formula",
        "family", "n", "D", "k", "measured", "predicted"
    );
    let rows = appendix_b_rows(n, &ks, 0xAB);
    for r in &rows {
        println!(
            "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11.2}  {}",
            r.family, r.n, r.diameter, r.k, r.measured, r.predicted, r.formula
        );
    }
    write_json("appendix_b_nq", &rows);
    (n as u64).pow(2) * 8
}

/// Returns the dominant allocation: the largest cell's exact `n × n` distance
/// matrix (the memory wall the scale tier exists to avoid).
///
/// Every cell is a *shootout*: each registry algorithm (optionally filtered
/// by `--algo`) runs on the same instance and is printed next to the same
/// lower-bound witness.  A typed registry error (unknown name, empty
/// selection) exits with code 2 and the usage string.
fn run_sweep(quick: bool, algo: Option<&[String]>) -> u64 {
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    let n_max = *config.sizes.iter().max().expect("sizes is non-empty") as u64;
    println!(
        "\n=== Scaling sweep: algorithm shootout vs. per-instance lower bound ({} families x {} sizes x {} (lambda, gamma) points) ===",
        GraphFamily::all().len(),
        config.sizes.len(),
        config.points.len()
    );
    let rows = match sweep_rows_with(GraphFamily::all(), &config, algo) {
        Ok(rows) => rows,
        Err(err) => {
            eprintln!("{err}\n{USAGE}");
            std::process::exit(2);
        }
    };
    println!(
        "{:<18}{:>6} {:<14}{:>6}{:>7}{:>7}{:>10}{:>12}{:>7}{:>8}",
        "family", "n", "point", "gamma", "k", "NQ_k", "diss-LB", "sssp(T13)", "kssp-k", "kssp-LB"
    );
    for r in &rows {
        println!(
            "{:<18}{:>6} {:<14}{:>6}{:>7}{:>7}{:>10.2}{:>7}/{:<4.2}{:>7}{:>8}",
            r.family,
            r.n,
            r.point,
            r.gamma_msgs,
            r.k,
            r.nq_k,
            r.dissemination_lower_bound,
            r.sssp_rounds,
            r.sssp_ratio,
            r.kssp_k,
            r.kssp_lower_bound
        );
        let diss: Vec<String> = r
            .dissemination
            .iter()
            .map(|c| format!("{}={} ({:.2}x)", c.algorithm, c.rounds, c.ratio))
            .collect();
        let ks: Vec<String> = r
            .kssp
            .iter()
            .map(|c| {
                format!(
                    "{}={} ({:.2}x, stretch {:.2})",
                    c.algorithm, c.rounds, c.ratio, c.stretch
                )
            })
            .collect();
        if !diss.is_empty() {
            println!("    diss: {}", diss.join("  "));
        }
        if !ks.is_empty() {
            println!("    kssp: {}", ks.join("  "));
        }
    }
    write_json("sweep_scaling", &rows);
    n_max * n_max * 8
}

/// Re-reads the shootout artifact this run just wrote (or a baseline copy CI
/// diffs against) and fails loudly when its schema is corrupt.  Returns the
/// number of gate failures (0 or 1), counted like a regressed target under
/// `--strict`.
fn gate_sweep_artifact(artifact_text: Option<&str>, strict: bool) -> usize {
    let annotation = if strict { "error" } else { "warning" };
    let fail = |message: String| -> usize {
        println!("::{annotation} title=sweep artifact::{message}");
        if strict {
            println!("[regression gate] sweep_scaling.json failed validation (--strict: failing the run)");
            1
        } else {
            println!("[regression gate] sweep_scaling.json failed validation (warn-only)");
            0
        }
    };
    match artifact_text {
        None => fail("results/sweep_scaling.json is missing or unreadable".to_string()),
        Some(text) => match validate_sweep_artifact(text) {
            Ok(()) => {
                println!("[regression gate] sweep_scaling.json shootout schema ok");
                0
            }
            Err(err) => fail(format!("malformed shootout artifact: {err}")),
        },
    }
}

/// The million-node scale tier (`sweep --scale`): streaming generators,
/// row-streamed distances and sampled `NQ` witnesses.  Returns the exact
/// per-cell allocation maximum the rows record (no formula needed here — the
/// scale tier tracks its own arithmetic).
fn run_sweep_scale(quick: bool) -> u64 {
    let config = if quick {
        ScaleConfig::quick()
    } else {
        ScaleConfig::full()
    };
    println!(
        "\n=== Scale tier: streamed sweep at n up to {} ({} families x {} sizes, |S| = {} sources, {} NQ samples) ===",
        config.sizes.iter().max().copied().unwrap_or(0),
        config.families.len(),
        config.sizes.len(),
        config.sources,
        config.nq_samples
    );
    println!(
        "{:<14}{:>9}{:>11}{:>6}{:>8}{:>7}{:>7}{:>9}{:>11}{:>10}{:>8}{:>9}{:>8}{:>8}{:>9}{:>10}",
        "family",
        "n",
        "m",
        "gamma",
        "NQ-est",
        "conf",
        "exact",
        "diss-rnd",
        "diss-LB",
        "ratio",
        "k-rnds",
        "k-LB",
        "ratio",
        "stretch",
        "peakMiB",
        "rows/n2"
    );
    let rows = scale_rows(&config);
    for r in &rows {
        let full_matrix = (r.n as f64) * (r.n as f64) * 8.0;
        println!(
            "{:<14}{:>9}{:>11}{:>6}{:>8}{:>7.3}{:>7}{:>9}{:>11.2}{:>10.2}{:>8}{:>9}{:>8.2}{:>8.3}{:>9.1}{:>10.6}",
            r.family,
            r.n,
            r.m,
            r.gamma_msgs,
            r.nq_estimate,
            r.nq_confidence,
            r.nq_exact.map_or_else(|| "-".to_string(), |v| v.to_string()),
            r.dissemination_modeled_rounds,
            r.dissemination_lower_bound,
            r.dissemination_ratio,
            r.kssp_rounds,
            r.kssp_lower_bound,
            r.kssp_ratio,
            r.kssp_stretch_worst,
            r.peak_mem_bytes as f64 / (1024.0 * 1024.0),
            r.distance_rows_mem_bytes as f64 / full_matrix
        );
    }
    write_json("sweep_scale", &rows);
    rows.iter().map(|r| r.peak_mem_bytes).max().unwrap_or(0)
}

/// The serving tier: build a `DistanceOracle` once, answer batched
/// point-to-point queries, record latency percentiles (telemetry, not
/// diffed) and deterministic answer digests (diffed across pool widths).
/// Returns the oracle's resident bytes as the dominant allocation.
fn run_oracle(quick: bool) -> u64 {
    let config = if quick {
        OracleBenchConfig::quick()
    } else {
        OracleBenchConfig::full()
    };
    println!(
        "\n=== Oracle serving: {}x{} weighted grid, {} batches x {} queries ===",
        config.dims.0, config.dims.1, config.batches, config.batch_size
    );
    let (latency, answers) = oracle_bench_rows(&config);
    println!(
        "{:<10}{:>8}{:>10}{:>10}{:>12}{:>12}{:>12}{:>14}",
        "n", "m", "landmarks", "build-ms", "p50-us", "p90-us", "p99-us", "queries/s"
    );
    println!(
        "{:<10}{:>8}{:>10}{:>10.1}{:>12.1}{:>12.1}{:>12.1}{:>14.0}",
        latency.n,
        latency.m,
        latency.landmarks,
        latency.build_ms,
        latency.p50_us,
        latency.p90_us,
        latency.p99_us,
        latency.queries_per_sec
    );
    write_json("oracle_queries", &latency);
    write_json("oracle_answers", &answers);
    latency.memory_bytes
}

/// Returns the dominant allocation: per-node mailboxes holding `O(log n)`
/// in-flight tokens (payload + retry bookkeeping) at the largest size.
fn run_faults(quick: bool) -> u64 {
    let config = if quick {
        FaultSweepConfig::quick()
    } else {
        FaultSweepConfig::full()
    };
    let n_max = *config.sizes.iter().max().expect("sizes is non-empty") as u64;
    let log_n = (n_max.max(2) as f64).log2().ceil() as u64;
    let families = GraphFamily::core_families();
    println!(
        "\n=== Fault sweep: degradation factors under a seeded adversary ({} families x {} sizes x {} profiles) ===",
        families.len(),
        config.sizes.len(),
        config.profiles.len()
    );
    println!(
        "{:<14}{:>6} {:<9}{:>6}{:>6}{:>6}{:>6} {:>5}{:>9}{:>8}{:>9}{:>6}{:>9}{:>8}{:>9}",
        "family",
        "n",
        "profile",
        "drop",
        "dup",
        "delay",
        "crash",
        "ok",
        "ack-rnds",
        "ack-deg",
        "ack-msgx",
        "k",
        "T1-rnds",
        "T1-deg",
        "T1-msgx"
    );
    let rows = fault_sweep_rows(families, &config);
    for r in &rows {
        println!(
            "{:<14}{:>6} {:<9}{:>6.2}{:>6.2}{:>6.2}{:>6.2} {:>5}{:>9}{:>8.2}{:>9.2}{:>6}{:>9}{:>8.2}{:>9.2}",
            r.family,
            r.n,
            r.profile,
            r.drop_prob,
            r.duplicate_prob,
            r.delay_prob,
            r.crash_prob,
            if r.ack_completed { "yes" } else { "NO" },
            r.ack_rounds,
            r.ack_degradation,
            r.ack_message_overhead,
            r.k,
            r.diss_rounds,
            r.diss_degradation,
            r.diss_message_overhead
        );
    }
    write_json("sweep_faults", &rows);
    n_max * log_n * 16
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let quick = cli.quick;
    let algo = cli.algo.clone();

    let timings = match cli.target.as_str() {
        "table1" => vec![timed("table1", || run_table1(quick))],
        "table2" => vec![timed("table2", || run_table2(quick))],
        "table3" => vec![timed("table3", || run_table3(quick))],
        "table4" => vec![timed("table4", || run_table4(quick))],
        "figure1" => vec![timed("figure1", || run_figure1(quick))],
        "appendix-b" => vec![timed("appendix-b", || run_appendix_b(quick))],
        "sweep" if cli.scale => vec![timed("scale", || run_sweep_scale(quick))],
        "sweep" => vec![timed("sweep", || run_sweep(quick, algo.as_deref()))],
        "faults" => vec![timed("faults", || run_faults(quick))],
        "oracle" => vec![timed("oracle", || run_oracle(quick))],
        "all" => vec![
            timed("table1", || run_table1(quick)),
            timed("table2", || run_table2(quick)),
            timed("table3", || run_table3(quick)),
            timed("table4", || run_table4(quick)),
            timed("figure1", || run_figure1(quick)),
            timed("appendix-b", || run_appendix_b(quick)),
            timed("sweep", || run_sweep(quick, None)),
            timed("faults", || run_faults(quick)),
            timed("oracle", || run_oracle(quick)),
        ],
        other => {
            eprintln!("unknown target '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    };
    let total_wall_ms = timings.iter().map(|t| t.wall_ms).sum();
    let record = BenchRecord {
        schema: "hybrid-bench-baseline/v1",
        quick,
        threads: rayon::current_num_threads(),
        targets: timings,
        total_wall_ms,
    };
    record.write(cli.target == "all");
    if cli.check_regression {
        let mut regressed = check_regression(&record, cli.strict);
        // The shootout artifact is part of the gated contract: a malformed
        // sweep_scaling.json (however it got that way) must fail loudly.
        if cli.target == "all" || (cli.target == "sweep" && !cli.scale) {
            regressed += gate_sweep_artifact(
                fs::read_to_string(Path::new("results/sweep_scaling.json"))
                    .ok()
                    .as_deref(),
                cli.strict,
            );
        }
        if cli.strict && regressed > 0 {
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_all() {
        let cli = parse_args(&[]).unwrap();
        assert_eq!(cli.target, "all");
        assert!(!cli.quick && !cli.check_regression && !cli.strict);
    }

    #[test]
    fn parses_target_and_flags_in_any_order() {
        let cli = parse_args(&args(&[
            "--quick",
            "sweep",
            "--check-regression",
            "--strict",
        ]))
        .unwrap();
        assert_eq!(cli.target, "sweep");
        assert!(cli.quick && cli.check_regression && cli.strict);
    }

    #[test]
    fn strict_implies_the_regression_gate() {
        // `--strict` alone must not be a silent no-op.
        let cli = parse_args(&args(&["all", "--strict"])).unwrap();
        assert!(cli.strict && cli.check_regression);
    }

    #[test]
    fn rejects_unknown_flags_with_usage() {
        // The motivating bug: `--qiuck` used to be silently ignored and the
        // slow full-size suite ran instead.
        let err = parse_args(&args(&["table1", "--qiuck"])).unwrap_err();
        assert!(err.contains("unknown flag '--qiuck'"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        assert!(parse_args(&args(&["--check-regresion"])).is_err());
    }

    #[test]
    fn scale_is_accepted_on_the_sweep_target_only() {
        let cli = parse_args(&args(&["sweep", "--scale", "--quick"])).unwrap();
        assert!(cli.scale && cli.quick);
        assert_eq!(cli.target, "sweep");
        // On any other target (including the implicit `all`) the flag would
        // be a silent no-op, so it is rejected like an unknown flag.
        let err = parse_args(&args(&["table1", "--scale"])).unwrap_err();
        assert!(err.contains("--scale applies to the sweep target"), "{err}");
        let err = parse_args(&args(&["--scale"])).unwrap_err();
        assert!(err.contains("target is 'all'"), "{err}");
    }

    #[test]
    fn algo_filter_parses_both_spellings_on_sweep_only() {
        let cli = parse_args(&args(&["sweep", "--algo", "theorem1,schneider"])).unwrap();
        assert_eq!(
            cli.algo,
            Some(vec!["theorem1".to_string(), "schneider".to_string()])
        );
        let cli = parse_args(&args(&["sweep", "--algo=det-broadcast"])).unwrap();
        assert_eq!(cli.algo, Some(vec!["det-broadcast".to_string()]));
        // Empty value parses to an empty selection — the registry turns that
        // into the typed EmptyRegistry error downstream.
        let cli = parse_args(&args(&["sweep", "--algo="])).unwrap();
        assert_eq!(cli.algo, Some(Vec::new()));
        // Missing value and wrong targets are CLI errors (exit 2 + usage).
        let err = parse_args(&args(&["sweep", "--algo"])).unwrap_err();
        assert!(err.contains("--algo requires a value"), "{err}");
        let err = parse_args(&args(&["table1", "--algo=theorem1"])).unwrap_err();
        assert!(
            err.contains("--algo applies to the sweep shootout"),
            "{err}"
        );
        let err = parse_args(&args(&["sweep", "--scale", "--algo=theorem1"])).unwrap_err();
        assert!(
            err.contains("--algo applies to the sweep shootout"),
            "{err}"
        );
    }

    #[test]
    fn sweep_artifact_gate_counts_malformed_artifacts_under_strict() {
        // Missing artifact.
        assert_eq!(gate_sweep_artifact(None, false), 0);
        assert_eq!(gate_sweep_artifact(None, true), 1);
        // Structurally broken artifact (no shootout columns).
        let junk = r#"[{"family": "path", "n": 64}]"#;
        assert_eq!(gate_sweep_artifact(Some(junk), false), 0);
        assert_eq!(gate_sweep_artifact(Some(junk), true), 1);
        // A well-formed row passes: three contenders per shootout column.
        let good = r#"[{"family":"path","dissemination_lower_bound":1.0,
            "dissemination":[
              {"algorithm":"theorem1","ratio":1.0},
              {"algorithm":"det-broadcast","ratio":2.0},
              {"algorithm":"sqrt-k-baseline","ratio":3.0}],
            "kssp_lower_bound":1,
            "kssp":[
              {"algorithm":"theorem14","ratio":1.5},
              {"algorithm":"theorem14-proxy","ratio":1.8},
              {"algorithm":"schneider","ratio":9.0}]}]"#;
        assert_eq!(gate_sweep_artifact(Some(good), true), 0);
    }

    #[test]
    fn rejects_surplus_positional_arguments() {
        let err = parse_args(&args(&["table1", "table2"])).unwrap_err();
        assert!(err.contains("unexpected argument 'table2'"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn baseline_parsers_extract_quick_flag_and_targets() {
        let json = r#"{"quick": true, "targets": [
            {"target": "table1", "wall_ms": 10.0},
            {"target": "sweep", "wall_ms": 20.0}
        ]}"#;
        assert_eq!(parse_quick_flag(json), Some(true));
        let parsed = parse_recorded_targets(json);
        assert_eq!(
            parsed,
            vec![("table1".to_string(), 10.0), ("sweep".to_string(), 20.0)]
        );
    }

    fn record(targets: Vec<(&'static str, f64)>) -> BenchRecord {
        let targets: Vec<TargetTiming> = targets
            .into_iter()
            .map(|(target, wall_ms)| TargetTiming {
                target,
                wall_ms,
                peak_mem_bytes: 0,
            })
            .collect();
        BenchRecord {
            schema: "hybrid-bench-baseline/v1",
            quick: true,
            threads: 1,
            total_wall_ms: targets.iter().map(|t| t.wall_ms).sum(),
            targets,
        }
    }

    const BASELINE: &str = r#"{"quick": true, "targets": [
        {"target": "table1", "wall_ms": 10.0},
        {"target": "sweep", "wall_ms": 20.0}
    ]}"#;

    #[test]
    fn gate_counts_breaches_of_the_tolerance() {
        // table1 limit = 2*10 + 100 = 120 ms; sweep limit = 140 ms.
        let rec = record(vec![("table1", 500.0), ("sweep", 30.0)]);
        assert_eq!(gate_regressions(&rec, Some(BASELINE), false), 1);
        assert_eq!(gate_regressions(&rec, Some(BASELINE), true), 1);
        let within = record(vec![("table1", 119.0), ("sweep", 139.0)]);
        assert_eq!(gate_regressions(&within, Some(BASELINE), true), 0);
    }

    #[test]
    fn strict_gate_fails_targets_missing_a_baseline_entry() {
        let rec = record(vec![("brand-new-target", 1.0)]);
        // Warn-only: an ungated target is reported but not counted.
        assert_eq!(gate_regressions(&rec, Some(BASELINE), false), 0);
        // Strict (CI): new targets must be gated from day one.
        assert_eq!(gate_regressions(&rec, Some(BASELINE), true), 1);
    }

    #[test]
    fn strict_gate_fails_when_the_comparison_cannot_run() {
        let rec = record(vec![("table1", 1.0)]);
        // Missing baseline file.
        assert_eq!(gate_regressions(&rec, None, false), 0);
        assert_eq!(gate_regressions(&rec, None, true), 1);
        // quick-flag mismatch (baseline quick=false vs run quick=true).
        let full = r#"{"quick": false, "targets": [{"target": "table1", "wall_ms": 10.0}]}"#;
        assert_eq!(gate_regressions(&rec, Some(full), false), 0);
        assert_eq!(gate_regressions(&rec, Some(full), true), 1);
        // Unparsable baseline.
        let junk = r#"{"quick": true, "targets": []}"#;
        assert_eq!(gate_regressions(&rec, Some(junk), false), 0);
        assert_eq!(gate_regressions(&rec, Some(junk), true), 1);
    }
}
