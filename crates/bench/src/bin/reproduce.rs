//! `reproduce` — regenerates the paper's tables and figures as round-count
//! tables, printing them in a paper-like layout and writing machine-readable
//! JSON into `results/`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hybrid-bench --bin reproduce -- [table1|table2|table3|table4|figure1|appendix-b|all] [--quick] [--check-regression]
//! ```
//!
//! `--quick` shrinks the instance sizes so the full run finishes in well under
//! a minute (used by CI and by the recorded EXPERIMENTS.md runs on small
//! machines); without it the default sizes are used.
//!
//! `--check-regression` compares the wall-clock times of this run against the
//! committed `BENCH_baseline.json` with a generous tolerance and prints a
//! warning per regressed target.  It is **warn-only** (the exit code stays 0):
//! the gate exists to make perf drift visible in CI logs, not to block merges
//! on noisy container timings.

use std::fs;
use std::path::Path;
use std::time::Instant;

use hybrid_bench::scenarios::{
    appendix_b_rows, figure1_rows, table1_rows, table2_rows, table3_rows, table4_rows, GraphFamily,
};
use serde::Serialize;

fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(rows) {
        let _ = fs::write(&path, json);
        println!("  (wrote {})", path.display());
    }
}

/// Wall-clock measurement of one reproduce target.
#[derive(Debug, Clone, Serialize)]
struct TargetTiming {
    /// Target name (`table1` … `appendix-b`).
    target: &'static str,
    /// Wall-clock milliseconds.
    wall_ms: f64,
}

/// The machine-readable perf record `reproduce` emits so future PRs have a
/// trajectory to beat.
#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    /// Record schema identifier.
    schema: &'static str,
    /// Whether `--quick` sizes were used.
    quick: bool,
    /// Worker threads the parallel fan-outs could use.
    threads: usize,
    /// Per-target wall-clock times.
    targets: Vec<TargetTiming>,
    /// Sum over targets.
    total_wall_ms: f64,
}

impl BenchRecord {
    fn write(&self, full_sweep: bool) {
        write_json("bench_last_run", self);
        // The first *full* sweep (`reproduce all`) on a machine records the
        // baseline later runs are compared against; partial runs never
        // baseline (their target set would not match a full run), and an
        // existing baseline is never clobbered (delete the file to
        // re-baseline).
        if !full_sweep {
            return;
        }
        let baseline = Path::new("BENCH_baseline.json");
        if !baseline.exists() {
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = fs::write(baseline, json);
                println!("  (wrote {} — new perf baseline)", baseline.display());
            }
        }
    }
}

/// A regressed target is one slower than `factor × baseline + slack`.  The
/// tolerance is deliberately generous: CI containers and developer laptops
/// time the same work very differently, and the gate is a tripwire for
/// order-of-magnitude drift, not a microbenchmark.
const REGRESSION_FACTOR: f64 = 2.0;
const REGRESSION_SLACK_MS: f64 = 100.0;

/// Pulls every `"target": "name" … "wall_ms": x` pair out of a recorded
/// bench JSON without a deserializer (the vendored `serde_json` only
/// serializes).  The scan keys on the `"target"` fields, so the baseline's
/// auxiliary maps (e.g. `pre_optimization_wall_ms`) are ignored.
fn parse_recorded_targets(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"target\"").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(rest) = chunk.split("\"wall_ms\"").nth(1) else {
            continue;
        };
        let number: String = rest
            .chars()
            .skip_while(|c| *c == ':' || c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(ms) = number.parse::<f64>() {
            out.push((name.to_string(), ms));
        }
    }
    out
}

/// Whether the recorded JSON was a `--quick` run (`"quick": true`).
fn parse_quick_flag(json: &str) -> Option<bool> {
    let rest = json.split("\"quick\"").nth(1)?;
    let value = rest.trim_start_matches([':', ' ', '\t', '\n']);
    if value.starts_with("true") {
        Some(true)
    } else if value.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The warn-only bench regression gate: compares this run's per-target times
/// against `BENCH_baseline.json`.  Never fails the process — it prints
/// GitHub-annotation-style warnings so CI logs surface drift.
fn check_regression(record: &BenchRecord) {
    let baseline_path = Path::new("BENCH_baseline.json");
    let Ok(text) = fs::read_to_string(baseline_path) else {
        println!("\n[regression gate] no {} — nothing to compare against (run `reproduce all` once to record it)", baseline_path.display());
        return;
    };
    if parse_quick_flag(&text) != Some(record.quick) {
        println!(
            "\n[regression gate] baseline quick={:?} does not match this run (quick={}); skipping comparison",
            parse_quick_flag(&text),
            record.quick
        );
        return;
    }
    let baseline = parse_recorded_targets(&text);
    if baseline.is_empty() {
        println!(
            "\n[regression gate] {} has no parsable targets; skipping",
            baseline_path.display()
        );
        return;
    }
    println!("\n[regression gate] comparing against {} (warn at > {REGRESSION_FACTOR}x + {REGRESSION_SLACK_MS} ms):", baseline_path.display());
    let mut regressed = 0usize;
    for t in &record.targets {
        let Some(&(_, base_ms)) = baseline.iter().find(|(name, _)| name == t.target) else {
            println!(
                "  {:<12} {:>9.1} ms (no baseline entry)",
                t.target, t.wall_ms
            );
            continue;
        };
        let limit = REGRESSION_FACTOR * base_ms + REGRESSION_SLACK_MS;
        if t.wall_ms > limit {
            regressed += 1;
            println!(
                "::warning title=bench regression::{} took {:.1} ms vs baseline {:.1} ms (limit {:.1} ms)",
                t.target, t.wall_ms, base_ms, limit
            );
        } else {
            println!(
                "  {:<12} {:>9.1} ms vs baseline {:>9.1} ms  ok",
                t.target, t.wall_ms, base_ms
            );
        }
    }
    if regressed == 0 {
        println!(
            "[regression gate] all {} targets within tolerance",
            record.targets.len()
        );
    } else {
        println!(
            "[regression gate] {regressed} target(s) regressed (warn-only; not failing the run)"
        );
    }
}

/// Runs `f`, printing and returning its wall-clock time.
fn timed(target: &'static str, f: impl FnOnce()) -> TargetTiming {
    let start = Instant::now();
    f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  [{target}: {wall_ms:.1} ms]");
    TargetTiming { target, wall_ms }
}

fn run_table1(quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let ks: Vec<u64> = if quick {
        vec![16, 64, 256]
    } else {
        vec![16, 64, 256, 1024]
    };
    println!("\n=== Table 1: information dissemination (n = {n}) ===");
    println!(
        "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "family",
        "k",
        "NQ_k",
        "sqrt(k)",
        "bcast-UNIV",
        "bcast-BASE",
        "aggr-UNIV",
        "route-UNIV",
        "route-BASE",
        "lower-bnd"
    );
    let rows = table1_rows(GraphFamily::all(), n, &ks, 0xC0FFEE);
    for r in &rows {
        println!(
            "{:<18}{:>6}{:>6}{:>8}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10.2}",
            r.family,
            r.k,
            r.nq,
            r.sqrt_k,
            r.dissemination_universal,
            r.dissemination_baseline,
            r.aggregation_universal,
            r.routing_universal,
            r.routing_baseline,
            r.lower_bound
        );
    }
    write_json("table1_dissemination", &rows);
}

fn run_table2(quick: bool) {
    let n = if quick { 144 } else { 400 };
    println!("\n=== Table 2: APSP (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9}{:>11}{:>11}{:>9}{:>11}{:>9}{:>10}{:>10}",
        "family",
        "n",
        "NQ_n",
        "sqrt(n)",
        "T6-UNIV",
        "T6-str",
        "T6-BASE",
        "T7-UNIV",
        "T7-str",
        "T8-UNIV",
        "T8-str",
        "lit-sqrt",
        "lower-bnd"
    );
    let rows = table2_rows(GraphFamily::core_families(), n, 0xBEEF);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>7}{:>8}{:>11}{:>9.3}{:>11}{:>11}{:>9.3}{:>11}{:>9.3}{:>10}{:>10.2}",
            r.family,
            r.n,
            r.nq_n,
            r.sqrt_n,
            r.unweighted_universal,
            r.unweighted_stretch,
            r.unweighted_baseline,
            r.weighted_spanner_universal,
            r.weighted_spanner_stretch,
            r.weighted_skeleton_universal,
            r.weighted_skeleton_stretch,
            r.literature_sqrt_n,
            r.lower_bound
        );
    }
    write_json("table2_apsp", &rows);
}

fn run_table3(quick: bool) {
    let n = if quick { 196 } else { 400 };
    let ks: Vec<u64> = if quick {
        vec![16, 64]
    } else {
        vec![16, 64, 144]
    };
    println!("\n=== Table 3: (k, l)-shortest paths (n = {n}) ===");
    println!(
        "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9}{:>10}{:>10}",
        "family", "k", "l", "NQ_k", "sqrt(k)", "T5-UNIV", "stretch", "baseline", "lower-bnd"
    );
    let rows = table3_rows(GraphFamily::core_families(), n, &ks, 0xFACE);
    for r in &rows {
        println!(
            "{:<14}{:>6}{:>5}{:>6}{:>8}{:>10}{:>9.3}{:>10}{:>10.2}",
            r.family, r.k, r.l, r.nq, r.sqrt_k, r.universal, r.stretch, r.baseline, r.lower_bound
        );
    }
    write_json("table3_klsp", &rows);
}

fn run_table4(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![64, 256, 1024]
    } else {
        vec![64, 256, 1024, 4096]
    };
    println!("\n=== Table 4: SSSP ===");
    println!(
        "{:<18}{:>7}{:>10}{:>10}{:>12}{:>10}{:>10}{:>10}",
        "family", "n", "T13-ours", "stretch", "KS20-sqrt", "CHLP21", "AHK20", "AG21"
    );
    let rows = table4_rows(
        &[
            GraphFamily::Grid2D,
            GraphFamily::ErdosRenyi,
            GraphFamily::Path,
        ],
        &sizes,
        0xDEAD,
    );
    for r in &rows {
        println!(
            "{:<18}{:>7}{:>10}{:>10.3}{:>12}{:>10}{:>10}{:>10}",
            r.family,
            r.n,
            r.theorem13,
            r.theorem13_stretch,
            r.ks20_sqrt_n,
            r.chlp21,
            r.ahk20,
            r.ag21
        );
    }
    write_json("table4_sssp", &rows);
}

fn run_figure1(quick: bool) {
    let n = if quick { 512 } else { 1024 };
    let betas = [0.0, 1.0 / 6.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 5.0 / 6.0, 1.0];
    println!("\n=== Figure 1: k-SSP landscape (k = n^beta, n = {n}) ===");
    println!(
        "{:<8}{:>8}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "beta", "k", "new(T14)", "delta", "prior", "prior-delta", "lower-bnd"
    );
    let rows = figure1_rows(n, &betas, 0xF16);
    for r in &rows {
        println!(
            "{:<8.3}{:>8}{:>12}{:>10.3}{:>12}{:>12.3}{:>12}",
            r.beta,
            r.k,
            r.new_algorithm,
            r.new_delta,
            r.prior_algorithm,
            r.prior_delta,
            r.lower_bound
        );
    }
    write_json("figure1_kssp", &rows);
}

fn run_appendix_b(quick: bool) {
    let n = if quick { 512 } else { 2048 };
    let ks: Vec<u64> = vec![16, 64, 256, 1024, 4096];
    println!("\n=== Appendix B / Theorems 15-17: NQ_k on special families (n ~ {n}) ===");
    println!(
        "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11}  formula",
        "family", "n", "D", "k", "measured", "predicted"
    );
    let rows = appendix_b_rows(n, &ks, 0xAB);
    for r in &rows {
        println!(
            "{:<12}{:>7}{:>6}{:>7}{:>10}{:>11.2}  {}",
            r.family, r.n, r.diameter, r.k, r.measured, r.predicted, r.formula
        );
    }
    write_json("appendix_b_nq", &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check-regression");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let timings = match what.as_str() {
        "table1" => vec![timed("table1", || run_table1(quick))],
        "table2" => vec![timed("table2", || run_table2(quick))],
        "table3" => vec![timed("table3", || run_table3(quick))],
        "table4" => vec![timed("table4", || run_table4(quick))],
        "figure1" => vec![timed("figure1", || run_figure1(quick))],
        "appendix-b" => vec![timed("appendix-b", || run_appendix_b(quick))],
        "all" => vec![
            timed("table1", || run_table1(quick)),
            timed("table2", || run_table2(quick)),
            timed("table3", || run_table3(quick)),
            timed("table4", || run_table4(quick)),
            timed("figure1", || run_figure1(quick)),
            timed("appendix-b", || run_appendix_b(quick)),
        ],
        other => {
            eprintln!(
                "unknown target '{other}'; expected table1|table2|table3|table4|figure1|appendix-b|all"
            );
            std::process::exit(2);
        }
    };
    let total_wall_ms = timings.iter().map(|t| t.wall_ms).sum();
    let record = BenchRecord {
        schema: "hybrid-bench-baseline/v1",
        quick,
        threads: rayon::current_num_threads(),
        targets: timings,
        total_wall_ms,
    };
    record.write(what == "all");
    if check {
        check_regression(&record);
    }
}
