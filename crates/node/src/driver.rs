//! The driver side of the networked runtime: spawns one `hybrid-node`
//! process per node, distributes the scenario over `Init` frames, and runs
//! the lock-step round barrier.
//!
//! # Conformance by construction
//!
//! The driver replicates the in-process engine's routing rule *exactly*, so
//! its per-round delivered-message traces diff bit-for-bit against
//! [`Executor`](hybrid_sim::engine::Executor) runs:
//!
//! 1. outboxes are staged in node-id order, each message tagged with a
//!    running per-plane sequence number (the engine's staging order),
//! 2. the staged batch is sorted by `(destination, sequence)` — the unique
//!    key makes the order deterministic,
//! 3. the γ *receive* cap truncates each destination's global inbox in that
//!    order, counting the excess as dropped (the γ *send* cap was already
//!    enforced inside the node process by the genuine `NodeCtx`),
//! 4. the round counter, message accounting and the typed
//!    [`EngineError::RoundLimitExceeded`] mirror `Executor::run`.
//!
//! Fault plans are rejected: the networked runtime has no fault injector
//! (ROADMAP: faults stay an in-process feature for now).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use hybrid_sim::engine::RunReport;
use hybrid_sim::envelope::body_json;
use hybrid_sim::{EngineError, Envelope, RoundTrace, TraceEntry};
use serde::Value;

use crate::protocol::{read_frame, write_frame, FromNode, ToNode};
use crate::scenario::{EngineOutcome, Scenario};

/// How long the driver waits for a node frame before declaring the fleet
/// wedged.  Generous — scenario rounds are milliseconds; this only guards
/// against a hung or dead child.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// How the driver talks to its node processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Frames over the child's stdin/stdout pipes.
    Stdio,
    /// Frames over loopback TCP; children connect back to the driver.
    Tcp,
}

impl Transport {
    /// Parses the CLI spelling (`stdio` / `tcp`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "stdio" => Ok(Transport::Stdio),
            "tcp" => Ok(Transport::Tcp),
            other => Err(format!("unknown transport `{other}` (want stdio or tcp)")),
        }
    }
}

/// Result of a networked execution — same shape as the in-process
/// [`EngineOutcome`], so the two diff directly.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOutcome {
    /// Accounting of the run (node-process refusals and driver routing).
    pub report: RunReport,
    /// Per-round delivered messages (empty unless the config records traces).
    pub trace: Vec<RoundTrace>,
    /// Per-node final state summaries, indexed by node id.
    pub states: Vec<Value>,
}

/// Failure of a networked run.
#[derive(Debug)]
pub enum DriverError {
    /// An I/O failure talking to a node process.
    Io(io::Error),
    /// A node violated the protocol (wrong round, forged sender, bad frame).
    Protocol(String),
    /// The engine-level typed failure — currently only the round cap,
    /// mirrored exactly from the in-process engine.
    Engine(EngineError),
}

impl From<io::Error> for DriverError {
    fn from(e: io::Error) -> Self {
        DriverError::Io(e)
    }
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Io(e) => write!(f, "node i/o failed: {e}"),
            DriverError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DriverError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

fn proto(msg: impl Into<String>) -> DriverError {
    DriverError::Protocol(msg.into())
}

/// One node's step output as the driver stores it between barrier phases.
struct StepOut {
    local: Vec<Envelope<Value>>,
    global: Vec<Envelope<Value>>,
    refused: u64,
    done: bool,
}

/// The spawned node processes plus the channels to talk to them.  Dropping
/// the fleet kills any children still running (the success path halts them
/// cleanly first, so the kill is a no-op there).
struct Fleet {
    children: Vec<Child>,
    writers: Vec<Box<dyn Write + Send>>,
    rx: mpsc::Receiver<Result<FromNode, String>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Forwards every frame a node sends into the driver's single inbox; the
/// sender id rides inside the frames themselves.
fn spawn_reader(reader: impl Read + Send + 'static, tx: mpsc::Sender<Result<FromNode, String>>) {
    thread::spawn(move || {
        let mut reader = io::BufReader::new(reader);
        loop {
            match read_frame::<FromNode>(&mut reader) {
                Ok(Some(msg)) => {
                    if tx.send(Ok(msg)).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(format!("node stream failed: {e}")));
                    return;
                }
            }
        }
    });
}

fn spawn_fleet(n: usize, transport: Transport, node_bin: &Path) -> Result<Fleet, DriverError> {
    let (tx, rx) = mpsc::channel();
    let mut children = Vec::with_capacity(n);
    let mut writers: Vec<Box<dyn Write + Send>> = Vec::with_capacity(n);
    match transport {
        Transport::Stdio => {
            for _ in 0..n {
                let mut child = Command::new(node_bin)
                    .arg("stdio")
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                spawn_reader(stdout, tx.clone());
                writers.push(Box::new(stdin));
                children.push(child);
            }
        }
        Transport::Tcp => {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            for _ in 0..n {
                let child = Command::new(node_bin)
                    .arg("--connect")
                    .arg(addr.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                children.push(child);
            }
            // Accept order is arbitrary: identity is assigned by the Init
            // frame the driver sends on each connection, not by who
            // connected first.
            for _ in 0..n {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true).ok();
                let read_half: TcpStream = stream.try_clone()?;
                spawn_reader(read_half, tx.clone());
                writers.push(Box::new(stream));
            }
        }
    }
    Ok(Fleet {
        children,
        writers,
        rx,
    })
}

/// Waits for exactly one `RoundOut` of the given round from every node.
fn collect_round(
    rx: &mpsc::Receiver<Result<FromNode, String>>,
    n: usize,
    round: u64,
) -> Result<Vec<StepOut>, DriverError> {
    let mut slots: Vec<Option<StepOut>> = (0..n).map(|_| None).collect();
    let mut missing = n;
    while missing > 0 {
        let msg = rx
            .recv_timeout(RECV_TIMEOUT)
            .map_err(|_| proto(format!("timed out waiting for round {round} outputs")))?
            .map_err(DriverError::Protocol)?;
        match msg {
            FromNode::RoundOut {
                node,
                round: r,
                local,
                global,
                refused,
                done,
            } => {
                if r != round {
                    return Err(proto(format!(
                        "node {node} answered round {r} during round {round}"
                    )));
                }
                let v = node as usize;
                if v >= n {
                    return Err(proto(format!("RoundOut from out-of-range node {node}")));
                }
                if slots[v].is_some() {
                    return Err(proto(format!("duplicate RoundOut from node {node}")));
                }
                for env in local.iter().chain(global.iter()) {
                    if env.src != node {
                        return Err(proto(format!(
                            "node {node} forged an envelope from {}",
                            env.src
                        )));
                    }
                    if (env.dst as usize) >= n {
                        return Err(proto(format!(
                            "node {node} addressed out-of-range node {}",
                            env.dst
                        )));
                    }
                }
                slots[v] = Some(StepOut {
                    local,
                    global,
                    refused,
                    done,
                });
                missing -= 1;
            }
            FromNode::Halted { node, .. } => {
                return Err(proto(format!("unexpected Halted from node {node}")));
            }
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
}

/// The engine's routing rule over envelopes: stage in node-id order with a
/// running sequence number, sort by `(destination, sequence)`, apply the
/// receive cap per destination in that order.  Returns per-destination
/// inboxes plus `(delivered, dropped)` counts.
fn route_plane(
    outboxes: Vec<Vec<Envelope<Value>>>,
    n: usize,
    receive_cap: Option<usize>,
) -> (Vec<Vec<Envelope<Value>>>, u64, u64) {
    let mut staged: Vec<(u32, u32, Envelope<Value>)> = Vec::new();
    for outbox in outboxes {
        for env in outbox {
            let seq = staged.len() as u32;
            staged.push((env.dst, seq, env));
        }
    }
    staged.sort_unstable_by_key(|&(dst, seq, _)| (dst, seq));
    let mut inboxes: Vec<Vec<Envelope<Value>>> = (0..n).map(|_| Vec::new()).collect();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for (dst, _, env) in staged {
        let inbox = &mut inboxes[dst as usize];
        if receive_cap.is_some_and(|cap| inbox.len() >= cap) {
            dropped += 1;
        } else {
            inbox.push(env);
            delivered += 1;
        }
    }
    (inboxes, delivered, dropped)
}

/// Snapshots one round's delivered envelopes in the engine's trace order
/// (destination-major, then staging sequence — exactly how `route_plane`
/// left them).
fn trace_round(
    round: u64,
    local: &[Vec<Envelope<Value>>],
    global: &[Vec<Envelope<Value>>],
) -> RoundTrace {
    let collect = |inboxes: &[Vec<Envelope<Value>>]| {
        inboxes
            .iter()
            .flatten()
            .map(|env| TraceEntry {
                src: env.src,
                dst: env.dst,
                body: body_json(&env.body),
            })
            .collect()
    };
    RoundTrace {
        round,
        local: collect(local),
        global: collect(global),
    }
}

/// Sends `Halt` everywhere and collects one `Halted` state per node.
fn halt_fleet(fleet: &mut Fleet, n: usize) -> Result<Vec<Value>, DriverError> {
    for writer in &mut fleet.writers {
        write_frame(writer, &ToNode::Halt)?;
    }
    let mut states = vec![Value::Null; n];
    let mut seen = vec![false; n];
    let mut missing = n;
    while missing > 0 {
        let msg = fleet
            .rx
            .recv_timeout(RECV_TIMEOUT)
            .map_err(|_| proto("timed out waiting for Halted states".to_string()))?
            .map_err(DriverError::Protocol)?;
        match msg {
            FromNode::Halted { node, state } => {
                let v = node as usize;
                if v >= n || seen[v] {
                    return Err(proto(format!("unexpected Halted from node {node}")));
                }
                seen[v] = true;
                states[v] = state;
                missing -= 1;
            }
            FromNode::RoundOut { node, .. } => {
                return Err(proto(format!("late RoundOut from node {node}")));
            }
        }
    }
    Ok(states)
}

/// Runs a scenario across real node processes and returns the outcome.
///
/// # Errors
/// [`DriverError::Engine`] with the same [`EngineError::RoundLimitExceeded`]
/// the in-process engine produces when the round cap is exhausted;
/// [`DriverError::Protocol`] if the scenario carries a fault plan (not
/// supported over the wire) or a node misbehaves; [`DriverError::Io`] on
/// transport failures.
pub fn run_scenario(
    scenario: &Scenario,
    transport: Transport,
    node_bin: &Path,
) -> Result<NetOutcome, DriverError> {
    let config = &scenario.config;
    if config.fault_plan().is_some() {
        return Err(proto(
            "fault plans are not supported by the networked runtime; run fault scenarios in-process",
        ));
    }
    let graph = scenario.graph.build();
    let n = graph.n();
    let params = *config.params();
    assert_eq!(params.n, n, "scenario params must match the graph size");
    let gamma = params.global_capacity_msgs;
    let record_trace = config.record_trace();

    let mut fleet = spawn_fleet(n, transport, node_bin)?;

    // Distribute the scenario.
    for v in 0..n {
        let init = ToNode::Init {
            node: v as u32,
            n,
            neighbors: graph.neighbors(v as u32).collect(),
            params,
            seed: config.seed(),
            program: scenario.program.clone(),
        };
        write_frame(&mut fleet.writers[v], &init)?;
    }

    let mut report = RunReport {
        rounds: 0,
        local_messages: 0,
        global_messages: 0,
        dropped_global: 0,
        refused_sends: 0,
        injected_drops: 0,
        injected_duplicates: 0,
        injected_delays: 0,
        completed: false,
    };
    let mut trace: Vec<RoundTrace> = Vec::new();

    // Init pass (round 0), mirroring the engine: route, account, trace,
    // then check the stop condition.
    let outs = collect_round(&fleet.rx, n, 0)?;
    let mut all_done = outs.iter().all(|o| o.done);
    report.refused_sends += outs.iter().map(|o| o.refused).sum::<u64>();
    let (locals, globals): (Vec<_>, Vec<_>) = outs.into_iter().map(|o| (o.local, o.global)).unzip();
    let (mut local_in, delivered, _) = route_plane(locals, n, None);
    report.local_messages += delivered;
    let (mut global_in, delivered, dropped) = route_plane(globals, n, Some(gamma));
    report.global_messages += delivered;
    report.dropped_global += dropped;
    if record_trace {
        trace.push(trace_round(0, &local_in, &global_in));
    }

    if !all_done {
        let mut completed = false;
        for round in 1..=config.max_rounds() {
            report.rounds = round;
            for (v, writer) in fleet.writers.iter_mut().enumerate() {
                let barrier = ToNode::Round {
                    round,
                    local: std::mem::take(&mut local_in[v]),
                    global: std::mem::take(&mut global_in[v]),
                };
                write_frame(writer, &barrier)?;
            }
            let outs = collect_round(&fleet.rx, n, round)?;
            all_done = outs.iter().all(|o| o.done);
            report.refused_sends += outs.iter().map(|o| o.refused).sum::<u64>();
            let (l, g): (Vec<_>, Vec<_>) = outs.into_iter().map(|o| (o.local, o.global)).unzip();
            let (li, delivered, _) = route_plane(l, n, None);
            report.local_messages += delivered;
            let (gi, delivered, dropped) = route_plane(g, n, Some(gamma));
            report.global_messages += delivered;
            report.dropped_global += dropped;
            local_in = li;
            global_in = gi;
            if record_trace {
                trace.push(trace_round(round, &local_in, &global_in));
            }
            if all_done {
                completed = true;
                break;
            }
        }
        if !completed {
            // Same typed truncation as `Executor::run` — halt the fleet
            // cleanly first so no child is left blocking on a barrier.
            let _ = halt_fleet(&mut fleet, n);
            return Err(DriverError::Engine(EngineError::RoundLimitExceeded {
                limit: config.max_rounds(),
                report,
            }));
        }
    }
    report.completed = true;

    let states = halt_fleet(&mut fleet, n)?;
    for (v, child) in fleet.children.iter_mut().enumerate() {
        let status = child.wait()?;
        if !status.success() {
            return Err(proto(format!("node process {v} exited with {status}")));
        }
    }
    fleet.children.clear();
    Ok(NetOutcome {
        report,
        trace,
        states,
    })
}

/// Diffs a networked outcome against the in-process reference.  `Ok(())`
/// means bit-identical: same report, same per-round delivered-message
/// traces (order included), same final states.
pub fn conformance_diff(engine: &EngineOutcome, net: &NetOutcome) -> Result<(), String> {
    if engine.report != net.report {
        return Err(format!(
            "run reports diverge:\n  engine: {:?}\n  net:    {:?}",
            engine.report, net.report
        ));
    }
    if engine.trace.len() != net.trace.len() {
        return Err(format!(
            "trace lengths diverge: engine {} rounds, net {} rounds",
            engine.trace.len(),
            net.trace.len()
        ));
    }
    for (e, a) in engine.trace.iter().zip(&net.trace) {
        if e != a {
            return Err(format!(
                "round {} trace diverges:\n  engine: {:?}\n  net:    {:?}",
                e.round, e, a
            ));
        }
    }
    if engine.states != net.states {
        for (v, (e, a)) in engine.states.iter().zip(&net.states).enumerate() {
            if e != a {
                return Err(format!(
                    "node {v} final state diverges:\n  engine: {e:?}\n  net:    {a:?}"
                ));
            }
        }
        return Err("state vectors diverge in length".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `route_plane` must reproduce the engine's arena semantics: sort by
    /// `(destination, staging sequence)` with the receive cap applied per
    /// destination in that order.
    #[test]
    fn route_plane_matches_arena_semantics() {
        let env = |src: u32, dst: u32| Envelope {
            src,
            dst,
            round: 1,
            body: Value::UInt(u64::from(src) * 100 + u64::from(dst)),
        };
        // Node-id-ordered outboxes: node 0 sends to 2, 0→0, node 1 sends
        // to 2, node 2 sends to 2, 2→0.
        let outboxes = vec![
            vec![env(0, 2), env(0, 0)],
            vec![env(1, 2)],
            vec![env(2, 2), env(2, 0)],
        ];
        let (inboxes, delivered, dropped) = route_plane(outboxes, 3, Some(2));
        assert_eq!((delivered, dropped), (4, 1));
        // Destination 0: staged seq 1 (from 0) then seq 4 (from 2).
        assert_eq!(
            inboxes[0].iter().map(|e| e.src).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(inboxes[1].is_empty());
        // Destination 2: cap 2 keeps the first two staged (from 0, from 1)
        // and drops the third (from 2).
        assert_eq!(
            inboxes[2].iter().map(|e| e.src).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn transport_parses() {
        assert_eq!(Transport::parse("tcp").unwrap(), Transport::Tcp);
        assert_eq!(Transport::parse("stdio").unwrap(), Transport::Stdio);
        assert!(Transport::parse("quic").is_err());
    }
}
