//! The node side of the runtime: one process, one node, one
//! [`NodeRunner`].
//!
//! [`serve`] speaks the [`crate::protocol`] over any byte stream: it waits
//! for the `Init` frame, instantiates the program named by the
//! [`ProgramSpec`], and then executes one
//! program step per `Round` frame until `Halt`.  The program runs against
//! the *genuine* engine `NodeCtx` (via [`NodeRunner`]), so the γ send cap,
//! the neighbour check on local sends and the local-mode assertion behave
//! identically to the in-process executor by construction.
//!
//! Typed message bodies exist only inside this process: incoming
//! [`Envelope`]s carry untyped [`Value`] trees that are bound to the
//! program's `Msg` type here, and outgoing messages are converted back to
//! `Value` trees before they are framed.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use hybrid_graph::NodeId;
use hybrid_sim::engine::{NodeProgram, NodeRunner, StepOutput};
use hybrid_sim::programs::{
    AckFloodProgram, BfsProgram, DetForwardProgram, FloodProgram, TokenGossipProgram,
};
use hybrid_sim::Envelope;
use serde::{Deserialize, Serialize, Value};

use crate::protocol::{read_frame, write_frame, FromNode, ToNode};
use crate::scenario::{
    ack_flood_state, bfs_state, det_forward_state, flood_state, gossip_state, initial_tokens,
    ProgramSpec,
};

fn bad_proto(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serves one node over the given byte streams until the driver sends
/// `Halt` or closes the connection.
///
/// # Errors
/// I/O errors from the streams, and `InvalidData` on protocol violations
/// (a frame other than `Init` first, a second `Init`, or a message body
/// that does not deserialize to the program's message type).
pub fn serve(reader: impl Read, writer: impl Write) -> io::Result<()> {
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(writer);
    let Some(first) = read_frame::<ToNode>(&mut reader)? else {
        // The driver vanished before Init; nothing to do.
        return Ok(());
    };
    let ToNode::Init {
        node,
        n,
        neighbors,
        params,
        seed,
        program,
    } = first
    else {
        return Err(bad_proto("first frame must be Init"));
    };
    match program {
        ProgramSpec::Flood {
            tokens_at,
            rounds_budget,
        } => run_node(
            NodeRunner::new(
                node,
                neighbors,
                &params,
                FloodProgram::new(initial_tokens(&tokens_at, node), rounds_budget),
            ),
            &mut reader,
            &mut writer,
            flood_state,
        ),
        ProgramSpec::AckFlood {
            tokens_at,
            target_tokens,
            retry_interval,
        } => run_node(
            NodeRunner::new(
                node,
                neighbors,
                &params,
                AckFloodProgram::new(
                    initial_tokens(&tokens_at, node),
                    target_tokens,
                    retry_interval,
                ),
            ),
            &mut reader,
            &mut writer,
            ack_flood_state,
        ),
        ProgramSpec::DetForward {
            tokens_at,
            target_tokens,
        } => run_node(
            NodeRunner::new(
                node,
                neighbors,
                &params,
                DetForwardProgram::new(initial_tokens(&tokens_at, node), target_tokens),
            ),
            &mut reader,
            &mut writer,
            det_forward_state,
        ),
        ProgramSpec::Bfs { source } => run_node(
            NodeRunner::new(node, neighbors, &params, BfsProgram::new(node, source)),
            &mut reader,
            &mut writer,
            bfs_state,
        ),
        ProgramSpec::Gossip {
            tokens_at,
            target_tokens,
        } => run_node(
            NodeRunner::new(
                node,
                neighbors,
                &params,
                TokenGossipProgram::new(
                    node,
                    n,
                    initial_tokens(&tokens_at, node),
                    target_tokens,
                    seed,
                ),
            ),
            &mut reader,
            &mut writer,
            gossip_state,
        ),
    }
}

/// The generic serve loop: init step first (round 0), then one step per
/// `Round` barrier, then the `Halted` state summary on `Halt`.
fn run_node<P: NodeProgram>(
    mut runner: NodeRunner<P>,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    state: impl Fn(&P) -> Value,
) -> io::Result<()> {
    let out = runner.init();
    send_round_out(writer, &runner, 0, out)?;
    loop {
        match read_frame::<ToNode>(reader)? {
            // The driver hung up without Halt (e.g. it aborted on an error
            // elsewhere); exit quietly rather than crash-loop.
            None => return Ok(()),
            Some(ToNode::Round {
                round,
                local,
                global,
            }) => {
                let local_inbox = bind_inbox::<P>(local)?;
                let global_inbox = bind_inbox::<P>(global)?;
                let out = runner.step(round, &local_inbox, &global_inbox);
                send_round_out(writer, &runner, round, out)?;
            }
            Some(ToNode::Halt) => {
                let halted = FromNode::Halted {
                    node: runner.node(),
                    state: state(runner.program()),
                };
                return write_frame(writer, &halted);
            }
            Some(ToNode::Init { .. }) => return Err(bad_proto("duplicate Init frame")),
        }
    }
}

/// Binds a delivered envelope batch to the program's message type,
/// preserving the driver's delivery order.
fn bind_inbox<P: NodeProgram>(
    envelopes: Vec<Envelope<Value>>,
) -> io::Result<Vec<(NodeId, P::Msg)>> {
    envelopes
        .into_iter()
        .map(|env| {
            P::Msg::deserialize(&env.body)
                .map(|msg| (env.src, msg))
                .map_err(|e| bad_proto(format!("undecodable body from node {}: {e}", env.src)))
        })
        .collect()
}

/// Frames one step's outboxes as a `RoundOut`, sealing each message into an
/// envelope stamped with the sending round.
fn send_round_out<P: NodeProgram>(
    writer: &mut impl Write,
    runner: &NodeRunner<P>,
    round: u64,
    out: StepOutput<P::Msg>,
) -> io::Result<()> {
    let node = runner.node();
    let seal = |msgs: Vec<(NodeId, P::Msg)>| -> Vec<Envelope<Value>> {
        msgs.into_iter()
            .map(|(dst, msg)| Envelope {
                src: node,
                dst,
                round,
                body: msg.to_value(),
            })
            .collect()
    };
    let round_out = FromNode::RoundOut {
        node,
        round,
        local: seal(out.local),
        global: seal(out.global),
        refused: out.refused,
        done: runner.done(),
    };
    write_frame(writer, &round_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_sim::ModelParams;
    use std::io::Cursor;

    /// Drives a single served node by hand: init → one round → halt.
    #[test]
    fn serve_speaks_the_protocol_end_to_end() {
        let params = ModelParams::hybrid(4);
        let mut script = Vec::new();
        write_frame(
            &mut script,
            &ToNode::Init {
                node: 1,
                n: 4,
                neighbors: vec![0, 2],
                params,
                seed: 0,
                program: ProgramSpec::Flood {
                    tokens_at: vec![(1, vec![42])],
                    rounds_budget: 8,
                },
            },
        )
        .unwrap();
        write_frame(
            &mut script,
            &ToNode::Round {
                round: 1,
                local: vec![Envelope {
                    src: 0,
                    dst: 1,
                    round: 0,
                    body: Value::Array(vec![Value::UInt(7)]),
                }],
                global: vec![],
            },
        )
        .unwrap();
        write_frame(&mut script, &ToNode::Halt).unwrap();

        let mut replies = Vec::new();
        serve(Cursor::new(script), &mut replies).unwrap();

        let mut cursor = Cursor::new(replies);
        // Init pass: node 1 floods its token to both neighbours.
        let Some(FromNode::RoundOut {
            node, round, local, ..
        }) = read_frame(&mut cursor).unwrap()
        else {
            panic!("expected RoundOut");
        };
        assert_eq!((node, round), (1, 0));
        assert_eq!(local.len(), 2);
        assert!(local
            .iter()
            .all(|e| e.body == Value::Array(vec![Value::UInt(42)])));
        // Round 1: it learned token 7, floods the union.
        let Some(FromNode::RoundOut { round, local, .. }) = read_frame(&mut cursor).unwrap() else {
            panic!("expected RoundOut");
        };
        assert_eq!(round, 1);
        assert!(local
            .iter()
            .all(|e| e.body == Value::Array(vec![Value::UInt(7), Value::UInt(42)])));
        // Halt: the state summary knows both tokens.
        let Some(FromNode::Halted { node, state }) = read_frame(&mut cursor).unwrap() else {
            panic!("expected Halted");
        };
        assert_eq!(node, 1);
        assert_eq!(
            state.get("known"),
            Some(&Value::Array(vec![Value::UInt(7), Value::UInt(42)]))
        );
        assert!(read_frame::<FromNode>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn non_init_first_frame_is_a_protocol_error() {
        let mut script = Vec::new();
        write_frame(&mut script, &ToNode::Halt).unwrap();
        let mut replies = Vec::new();
        let err = serve(Cursor::new(script), &mut replies).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
