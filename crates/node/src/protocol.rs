//! The wire protocol between `hybrid-driver` and its `hybrid-node` processes.
//!
//! Every message is one *frame*: a big-endian `u32` byte length followed by
//! that many bytes of compact JSON.  The JSON payload is one externally
//! tagged [`ToNode`] (driver → node) or [`FromNode`] (node → driver) value;
//! program payloads travel inside [`Envelope`]s whose `body` stays an
//! untyped [`Value`] tree until the node process binds it to its program's
//! message type.  The same framing works over any ordered byte stream —
//! the driver speaks it over child-process pipes and loopback TCP alike.
//!
//! Conversation shape (per node, hub-and-spoke through the driver):
//!
//! ```text
//! driver → node   Init { node, n, neighbors, params, seed, program }
//! node   → driver RoundOut { round: 0, … }            (the init pass)
//! driver → node   Round { round: 1, local, global }    (round barrier)
//! node   → driver RoundOut { round: 1, … }
//! …
//! driver → node   Halt
//! node   → driver Halted { state }
//! ```

use std::io::{self, Read, Write};

use hybrid_graph::NodeId;
use hybrid_sim::{Envelope, ModelParams};
use serde::{Deserialize, DeserializeOwned, Serialize, Value};

use crate::scenario::ProgramSpec;

/// Upper bound on a single frame's payload size; a length prefix above this
/// is treated as stream corruption rather than honoured with a giant
/// allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Driver → node messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToNode {
    /// First frame on every connection: who the node is and what it runs.
    Init {
        /// This node's identifier.
        node: NodeId,
        /// Total number of nodes in the network.
        n: usize,
        /// The node's neighbourhood in the local communication graph.
        neighbors: Vec<NodeId>,
        /// Model parameters (γ, local bandwidth, id space).
        params: ModelParams,
        /// Scenario seed (randomized programs derive per-node streams).
        seed: u64,
        /// Which program the node instantiates.
        program: ProgramSpec,
    },
    /// Round barrier: the messages delivered to this node for `round`.
    Round {
        /// The round the node must now execute.
        round: u64,
        /// Delivered local-plane messages, in the engine's delivery order.
        local: Vec<Envelope<Value>>,
        /// Delivered global-plane messages (γ receive cap already applied).
        global: Vec<Envelope<Value>>,
    },
    /// The run is over; reply with [`FromNode::Halted`] and exit.
    Halt,
}

/// Node → driver messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FromNode {
    /// The outboxes produced by one program step.
    RoundOut {
        /// The responding node.
        node: NodeId,
        /// The round these outboxes belong to (0 = the init pass).
        round: u64,
        /// Outgoing local messages, in send order.
        local: Vec<Envelope<Value>>,
        /// Outgoing global messages, at most γ (send cap already enforced).
        global: Vec<Envelope<Value>>,
        /// Global sends refused by the γ send cap this step.
        refused: u64,
        /// Whether the program reports itself finished.
        done: bool,
    },
    /// Final state summary, sent in response to [`ToNode::Halt`].
    Halted {
        /// The responding node.
        node: NodeId,
        /// Program-defined state summary (used by the conformance diff).
        state: Value,
    },
}

/// Writes one length-prefixed JSON frame and flushes the stream (frames are
/// barrier messages — the peer is always waiting for them).
pub fn write_frame<T: Serialize>(writer: &mut impl Write, msg: &T) -> io::Result<()> {
    let text = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame exceeds u32 length"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one frame.  Returns `Ok(None)` on clean end-of-stream (the peer
/// closed between frames); end-of-stream in the *middle* of a frame is an
/// error, as is a length prefix above [`MAX_FRAME_BYTES`] or a payload that
/// is not valid JSON for `T`.
pub fn read_frame<T: DeserializeOwned>(reader: &mut impl Read) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match reader.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let msg = ToNode::Round {
            round: 3,
            local: vec![Envelope {
                src: 1,
                dst: 2,
                round: 2,
                body: Value::Array(vec![Value::UInt(7)]),
            }],
            global: vec![],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &ToNode::Halt).unwrap();

        let mut cursor = Cursor::new(buf);
        let first: ToNode = read_frame(&mut cursor).unwrap().expect("first frame");
        match first {
            ToNode::Round { round, local, .. } => {
                assert_eq!(round, 3);
                assert_eq!(local.len(), 1);
                assert_eq!(local[0].body, Value::Array(vec![Value::UInt(7)]));
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let second: ToNode = read_frame(&mut cursor).unwrap().expect("second frame");
        assert!(matches!(second, ToNode::Halt));
        assert!(read_frame::<ToNode>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_errors() {
        // Cut inside the length prefix.
        let mut cursor = Cursor::new(vec![0u8, 0]);
        assert!(read_frame::<ToNode>(&mut cursor).is_err());
        // Cut inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, &ToNode::Halt).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame::<ToNode>(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let mut cursor = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(read_frame::<ToNode>(&mut cursor).is_err());
    }
}
