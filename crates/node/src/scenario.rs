//! Scenario descriptions shared by the driver, the node runtime and the
//! conformance harness.
//!
//! A [`Scenario`] names a pinned local graph ([`GraphSpec`]), the program
//! every node runs ([`ProgramSpec`]) and one [`EngineConfig`].  The same
//! scenario value drives both executions the conformance contract compares:
//! [`run_in_process`] on the in-process [`Executor`], and
//! [`crate::driver::run_scenario`] across real node processes.
//!
//! [`ProgramSpec`] is serializable — it travels inside the
//! [`Init`](crate::protocol::ToNode::Init) frame, so a node process can
//! instantiate its program without sharing memory with the driver.

use std::collections::BTreeSet;

use hybrid_graph::{generators, Graph, NodeId};
use hybrid_sim::engine::{Executor, NodeProgram, RunReport};
use hybrid_sim::programs::{
    AckFloodProgram, BfsProgram, DetForwardProgram, FloodProgram, TokenGossipProgram,
};
use hybrid_sim::{EngineConfig, EngineError, ModelParams, RoundTrace};
use serde::{Deserialize, Serialize, Value};

/// Token placement: `(node, tokens held initially)` pairs; nodes not listed
/// start empty.
pub type TokensAt = Vec<(NodeId, Vec<u64>)>;

/// A pinned local-graph family instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Path on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// Cycle on `n` nodes.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// `rows × cols` grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Star with centre `0` and `n - 1` leaves.
    Star {
        /// Node count (centre included).
        n: usize,
    },
}

impl GraphSpec {
    /// Number of nodes of the instance.
    pub fn n(&self) -> usize {
        match *self {
            GraphSpec::Path { n } | GraphSpec::Cycle { n } | GraphSpec::Star { n } => n,
            GraphSpec::Grid { rows, cols } => rows * cols,
        }
    }

    /// Materializes the graph.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (e.g. fewer than 2 nodes) — scenario
    /// specs are pinned test inputs, not untrusted data.
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Grid { rows, cols } => generators::grid(&[rows, cols]),
            GraphSpec::Star { n } => generators::star(n),
        }
        .expect("scenario graph spec must be buildable")
    }

    /// Parses a CLI spelling: `path`, `cycle`, `star`, or `grid-RxC`
    /// (combined with the separate node count for the first three).
    pub fn parse(family: &str, n: usize) -> Result<Self, String> {
        match family {
            "path" => Ok(GraphSpec::Path { n }),
            "cycle" => Ok(GraphSpec::Cycle { n }),
            "star" => Ok(GraphSpec::Star { n }),
            _ => {
                if let Some(dims) = family.strip_prefix("grid-") {
                    let (rows, cols) = dims
                        .split_once('x')
                        .ok_or_else(|| format!("bad grid spec `{family}` (want grid-RxC)"))?;
                    let rows = rows
                        .parse::<usize>()
                        .map_err(|_| format!("bad grid rows in `{family}`"))?;
                    let cols = cols
                        .parse::<usize>()
                        .map_err(|_| format!("bad grid cols in `{family}`"))?;
                    Ok(GraphSpec::Grid { rows, cols })
                } else {
                    Err(format!(
                        "unknown graph family `{family}` (want path, cycle, star, or grid-RxC)"
                    ))
                }
            }
        }
    }
}

/// Which ready-made [`hybrid_sim::programs`] program every node runs, plus
/// its parameters.  Serializable so it rides in the `Init` frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProgramSpec {
    /// Unstructured flooding ([`FloodProgram`]).
    Flood {
        /// Initial token placement.
        tokens_at: TokensAt,
        /// Rounds each node keeps flooding after its last novelty.
        rounds_budget: u64,
    },
    /// Ack/retry flooding ([`AckFloodProgram`]).
    AckFlood {
        /// Initial token placement.
        tokens_at: TokensAt,
        /// Tokens a node must know to consider itself finished.
        target_tokens: usize,
        /// Retransmission interval for unacknowledged tokens.
        retry_interval: u64,
    },
    /// Deterministic smallest-token-first forwarding ([`DetForwardProgram`]).
    DetForward {
        /// Initial token placement.
        tokens_at: TokensAt,
        /// Tokens a node must know to consider itself finished.
        target_tokens: usize,
    },
    /// Local-plane BFS from a source ([`BfsProgram`]).
    Bfs {
        /// BFS source node.
        source: NodeId,
    },
    /// Randomized token gossip over the global plane
    /// ([`TokenGossipProgram`]); per-node RNG streams derive from the
    /// scenario seed.
    Gossip {
        /// Initial token placement.
        tokens_at: TokensAt,
        /// Tokens a node must know to consider itself finished.
        target_tokens: usize,
    },
}

impl ProgramSpec {
    /// Short name for logs and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            ProgramSpec::Flood { .. } => "flood",
            ProgramSpec::AckFlood { .. } => "ack-flood",
            ProgramSpec::DetForward { .. } => "det-forward",
            ProgramSpec::Bfs { .. } => "bfs",
            ProgramSpec::Gossip { .. } => "gossip",
        }
    }
}

/// The tokens `node` holds initially under `tokens_at`.
pub fn initial_tokens(tokens_at: &[(NodeId, Vec<u64>)], node: NodeId) -> Vec<u64> {
    tokens_at
        .iter()
        .filter(|(v, _)| *v == node)
        .flat_map(|(_, tokens)| tokens.iter().copied())
        .collect()
}

/// One complete experiment: graph instance, per-node program, engine
/// configuration.  The driver refuses fault plans (the networked runtime has
/// no fault injector yet); everything else is honoured by both engines.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The local communication graph.
    pub graph: GraphSpec,
    /// The program every node runs.
    pub program: ProgramSpec,
    /// Engine configuration (params, seed, round cap, trace recording).
    pub config: EngineConfig,
}

impl Scenario {
    /// A scenario with standard `HYBRID` parameters for the graph's size and
    /// trace recording enabled (conformance is the common case).
    pub fn new(graph: GraphSpec, program: ProgramSpec) -> Self {
        let params = ModelParams::hybrid(graph.n());
        Scenario {
            graph,
            program,
            config: EngineConfig::new(params).with_trace(true),
        }
    }

    /// Replaces the engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }
}

/// Result of an in-process reference execution: the run report, the per-round
/// delivered-message trace, and one state summary per node.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// Accounting of the run.
    pub report: RunReport,
    /// Per-round delivered messages (empty unless the config records traces).
    pub trace: Vec<RoundTrace>,
    /// Per-node final state summaries, indexed by node id.
    pub states: Vec<Value>,
}

/// State summary of a [`FloodProgram`]: `{"known": [tokens…]}`.
pub fn flood_state(p: &FloodProgram) -> Value {
    known_state(&p.known)
}

/// State summary of an [`AckFloodProgram`]: known tokens plus the number of
/// still-unacknowledged transmissions.
pub fn ack_flood_state(p: &AckFloodProgram) -> Value {
    Value::Object(vec![
        ("known".to_string(), tokens_value(&p.known)),
        ("pending".to_string(), Value::UInt(p.pending() as u64)),
    ])
}

/// State summary of a [`DetForwardProgram`]: `{"known": [tokens…]}`.
pub fn det_forward_state(p: &DetForwardProgram) -> Value {
    known_state(&p.known)
}

/// State summary of a [`BfsProgram`]: `{"dist": d}` (JSON `null` while
/// unreached).
pub fn bfs_state(p: &BfsProgram) -> Value {
    Value::Object(vec![("dist".to_string(), p.dist.to_value())])
}

/// State summary of a [`TokenGossipProgram`]: `{"known": [tokens…]}`.
pub fn gossip_state(p: &TokenGossipProgram) -> Value {
    known_state(&p.known)
}

fn tokens_value(tokens: &BTreeSet<u64>) -> Value {
    Value::Array(tokens.iter().map(|&t| Value::UInt(t)).collect())
}

fn known_state(tokens: &BTreeSet<u64>) -> Value {
    Value::Object(vec![("known".to_string(), tokens_value(tokens))])
}

/// Runs the scenario on the in-process [`Executor`] — the reference side of
/// the conformance contract.
///
/// # Errors
/// Propagates [`EngineError::RoundLimitExceeded`] from the engine when the
/// configured round cap is exhausted before every program is done.
pub fn run_in_process(scenario: &Scenario) -> Result<EngineOutcome, EngineError> {
    let graph = scenario.graph.build();
    let n = graph.n();
    let config = scenario.config.clone();
    let seed = config.seed();
    match &scenario.program {
        ProgramSpec::Flood {
            tokens_at,
            rounds_budget,
        } => run_typed(
            &graph,
            config,
            |v| FloodProgram::new(initial_tokens(tokens_at, v), *rounds_budget),
            flood_state,
        ),
        ProgramSpec::AckFlood {
            tokens_at,
            target_tokens,
            retry_interval,
        } => run_typed(
            &graph,
            config,
            |v| {
                AckFloodProgram::new(
                    initial_tokens(tokens_at, v),
                    *target_tokens,
                    *retry_interval,
                )
            },
            ack_flood_state,
        ),
        ProgramSpec::DetForward {
            tokens_at,
            target_tokens,
        } => run_typed(
            &graph,
            config,
            |v| DetForwardProgram::new(initial_tokens(tokens_at, v), *target_tokens),
            det_forward_state,
        ),
        ProgramSpec::Bfs { source } => {
            run_typed(&graph, config, |v| BfsProgram::new(v, *source), bfs_state)
        }
        ProgramSpec::Gossip {
            tokens_at,
            target_tokens,
        } => run_typed(
            &graph,
            config,
            |v| TokenGossipProgram::new(v, n, initial_tokens(tokens_at, v), *target_tokens, seed),
            gossip_state,
        ),
    }
}

fn run_typed<P: NodeProgram>(
    graph: &Graph,
    config: EngineConfig,
    factory: impl FnMut(NodeId) -> P,
    state: impl Fn(&P) -> Value,
) -> Result<EngineOutcome, EngineError> {
    let mut exec = Executor::with_config(graph, config, factory);
    let report = exec.run()?;
    let trace = exec.take_trace();
    let states = exec.programs().iter().map(state).collect();
    Ok(EngineOutcome {
        report,
        trace,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_build_and_parse() {
        assert_eq!(GraphSpec::parse("path", 12).unwrap().n(), 12);
        assert_eq!(GraphSpec::parse("grid-4x3", 0).unwrap().n(), 12);
        assert!(GraphSpec::parse("torus", 9).is_err());
        assert!(GraphSpec::parse("grid-4", 0).is_err());
        let g = GraphSpec::Grid { rows: 4, cols: 3 }.build();
        assert_eq!(g.n(), 12);
    }

    #[test]
    fn program_specs_ride_through_json() {
        let spec = ProgramSpec::AckFlood {
            tokens_at: vec![(0, vec![1, 2, 3])],
            target_tokens: 3,
            retry_interval: 2,
        };
        let text = serde_json::to_string(&spec).unwrap();
        let back: ProgramSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.name(), "ack-flood");
        match back {
            ProgramSpec::AckFlood {
                tokens_at,
                target_tokens,
                retry_interval,
            } => {
                assert_eq!(tokens_at, vec![(0, vec![1, 2, 3])]);
                assert_eq!(target_tokens, 3);
                assert_eq!(retry_interval, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn in_process_reference_run_produces_trace_and_states() {
        let scenario = Scenario::new(
            GraphSpec::Path { n: 6 },
            ProgramSpec::Flood {
                tokens_at: vec![(0, vec![10, 11])],
                rounds_budget: 64,
            },
        );
        let out = run_in_process(&scenario).expect("flood completes");
        assert!(out.report.completed);
        assert!(!out.trace.is_empty());
        assert_eq!(out.states.len(), 6);
        let expected = known_state(&[10u64, 11].into_iter().collect());
        assert!(out.states.iter().all(|s| *s == expected));
    }

    #[test]
    fn initial_tokens_filters_by_node() {
        let at = vec![(0, vec![1]), (2, vec![5, 6]), (0, vec![9])];
        assert_eq!(initial_tokens(&at, 0), vec![1, 9]);
        assert_eq!(initial_tokens(&at, 1), Vec::<u64>::new());
        assert_eq!(initial_tokens(&at, 2), vec![5, 6]);
    }
}
