//! `hybrid-driver` — spawn a fleet of `hybrid-node` processes and run one
//! scenario across them.
//!
//! ```text
//! hybrid-driver [--family path|cycle|star|grid-RxC] [--n N]
//!               [--program flood|ack-flood|det-forward|bfs|gossip]
//!               [--tokens K] [--gamma G] [--seed S] [--max-rounds R]
//!               [--transport tcp|stdio] [--node-bin PATH] [--conformance]
//! ```
//!
//! With `--conformance` the same scenario additionally runs on the
//! in-process engine and the two outcomes are diffed bit-for-bit (round
//! count, per-round ordered delivered-message traces, final states); any
//! divergence is a non-zero exit.  Timing is printed as telemetry only —
//! never asserted on.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hybrid_node::driver::{conformance_diff, run_scenario, Transport};
use hybrid_node::scenario::{run_in_process, GraphSpec, ProgramSpec, Scenario, TokensAt};
use hybrid_sim::{EngineConfig, ModelParams};

struct Args {
    family: String,
    n: usize,
    program: String,
    tokens: u64,
    gamma: Option<usize>,
    seed: u64,
    max_rounds: u64,
    transport: Transport,
    node_bin: Option<PathBuf>,
    conformance: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            family: "cycle".to_string(),
            n: 8,
            program: "flood".to_string(),
            tokens: 4,
            gamma: None,
            seed: 0,
            max_rounds: 10_000,
            transport: Transport::Tcp,
            node_bin: None,
            conformance: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--family" => args.family = value("--family")?,
                "--n" => {
                    args.n = value("--n")?
                        .parse()
                        .map_err(|_| "--n wants an integer".to_string())?
                }
                "--program" => args.program = value("--program")?,
                "--tokens" => {
                    args.tokens = value("--tokens")?
                        .parse()
                        .map_err(|_| "--tokens wants an integer".to_string())?
                }
                "--gamma" => {
                    args.gamma = Some(
                        value("--gamma")?
                            .parse()
                            .map_err(|_| "--gamma wants an integer".to_string())?,
                    )
                }
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed wants an integer".to_string())?
                }
                "--max-rounds" => {
                    args.max_rounds = value("--max-rounds")?
                        .parse()
                        .map_err(|_| "--max-rounds wants an integer".to_string())?
                }
                "--transport" => args.transport = Transport::parse(&value("--transport")?)?,
                "--node-bin" => args.node_bin = Some(PathBuf::from(value("--node-bin")?)),
                "--conformance" => args.conformance = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }
}

/// All `K` tokens start at node 0 (the concentrated placement).
fn tokens_at_origin(k: u64) -> TokensAt {
    vec![(0, (0..k).collect())]
}

/// Token `i` starts at node `i mod n` (the spread placement).
fn tokens_spread(k: u64, n: usize) -> TokensAt {
    (0..k).map(|t| ((t % n as u64) as u32, vec![t])).collect()
}

fn build_program(args: &Args) -> Result<ProgramSpec, String> {
    let k = args.tokens;
    match args.program.as_str() {
        "flood" => Ok(ProgramSpec::Flood {
            tokens_at: tokens_at_origin(k),
            rounds_budget: args.max_rounds,
        }),
        "ack-flood" => Ok(ProgramSpec::AckFlood {
            tokens_at: tokens_at_origin(k),
            target_tokens: k as usize,
            retry_interval: 3,
        }),
        "det-forward" => Ok(ProgramSpec::DetForward {
            tokens_at: tokens_at_origin(k),
            target_tokens: k as usize,
        }),
        "bfs" => Ok(ProgramSpec::Bfs { source: 0 }),
        "gossip" => Ok(ProgramSpec::Gossip {
            tokens_at: tokens_spread(k, args.n),
            target_tokens: k as usize,
        }),
        other => Err(format!(
            "unknown program `{other}` (want flood, ack-flood, det-forward, bfs, or gossip)"
        )),
    }
}

fn default_node_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate hybrid-driver: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "hybrid-driver has no parent directory".to_string())?;
    Ok(dir.join("hybrid-node"))
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let graph = GraphSpec::parse(&args.family, args.n)?;
    let n = graph.n();
    let program = build_program(&args)?;
    let params = match args.gamma {
        Some(gamma) => ModelParams::hybrid_with_global_capacity(n, gamma),
        None => ModelParams::hybrid(n),
    };
    let config = EngineConfig::new(params)
        .with_seed(args.seed)
        .with_max_rounds(args.max_rounds)
        .with_trace(true);
    let scenario = Scenario::new(graph, program).with_config(config);
    let node_bin = match &args.node_bin {
        Some(path) => path.clone(),
        None => default_node_bin()?,
    };

    eprintln!(
        "hybrid-driver: {} on {:?} (n={n}, gamma={}, seed={}, transport={:?})",
        scenario.program.name(),
        scenario.graph,
        params.global_capacity_msgs,
        args.seed,
        args.transport,
    );
    let started = Instant::now();
    let net = run_scenario(&scenario, args.transport, &node_bin)
        .map_err(|e| format!("networked run failed: {e}"))?;
    let elapsed = started.elapsed();
    println!(
        "rounds={} local_messages={} global_messages={} dropped_global={} refused_sends={} completed={}",
        net.report.rounds,
        net.report.local_messages,
        net.report.global_messages,
        net.report.dropped_global,
        net.report.refused_sends,
        net.report.completed,
    );
    // Telemetry only — wall-clock is environment-dependent and never asserted.
    eprintln!(
        "hybrid-driver: {} node processes, {} traced rounds, {:.1} ms wall clock",
        n,
        net.trace.len(),
        elapsed.as_secs_f64() * 1e3,
    );

    if args.conformance {
        let engine =
            run_in_process(&scenario).map_err(|e| format!("in-process run failed: {e}"))?;
        conformance_diff(&engine, &net).map_err(|e| format!("CONFORMANCE MISMATCH: {e}"))?;
        println!(
            "conformance: OK ({} rounds, {} traced rounds, {} delivered messages bit-identical)",
            net.report.rounds,
            net.trace.len(),
            net.report.local_messages + net.report.global_messages,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hybrid-driver: {e}");
            ExitCode::FAILURE
        }
    }
}
