//! `hybrid-node` — one HYBRID node as a process.
//!
//! Usage:
//!
//! ```text
//! hybrid-node [stdio]            # speak frames over stdin/stdout (default)
//! hybrid-node --connect ADDR     # connect back to a driver over TCP
//! ```
//!
//! The process serves exactly one node: it waits for the driver's `Init`
//! frame, steps its program at every `Round` barrier, and exits after
//! answering `Halt` (or when the driver closes the connection).

use std::io;
use std::net::TcpStream;
use std::process::ExitCode;

use hybrid_node::runtime::serve;

fn run() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("stdio") => serve(io::stdin().lock(), io::stdout().lock()),
        Some("--connect") => {
            let addr = args.get(1).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "--connect needs an address")
            })?;
            let stream = TcpStream::connect(addr.as_str())?;
            stream.set_nodelay(true).ok();
            let reader = stream.try_clone()?;
            serve(reader, stream)
        }
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown argument `{other}` (usage: hybrid-node [stdio | --connect ADDR])"),
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hybrid-node: {e}");
            ExitCode::FAILURE
        }
    }
}
