//! HYBRID-as-a-service: the networked node runtime behind the
//! transport-agnostic engine API.
//!
//! This crate turns the in-process simulation into a real distributed
//! execution: every HYBRID node is its own OS process (`hybrid-node`)
//! speaking length-framed JSON envelopes over stdin/stdout or loopback TCP,
//! and `hybrid-driver` spawns the fleet, distributes local-graph adjacency
//! and [`ModelParams`](hybrid_sim::ModelParams) in `Init` frames, enforces
//! γ as the per-round per-node cap, and runs the lock-step round barrier.
//!
//! The design splits cleanly along the engine API introduced in
//! `hybrid-sim`:
//!
//! * [`protocol`] — the wire format: framing plus the `ToNode` / `FromNode`
//!   conversation.
//! * [`scenario`] — serializable scenario descriptions and the in-process
//!   reference execution ([`scenario::run_in_process`]).
//! * [`runtime`] — the node side: a serve loop around the engine's genuine
//!   [`NodeRunner`](hybrid_sim::engine::NodeRunner), so program-facing
//!   semantics are shared with the executor by construction.
//! * [`driver`] — the hub: process spawning, round barriers, and the
//!   routing rule replicated bit-for-bit from the executor's mailbox
//!   arenas, which is what makes [`driver::conformance_diff`] a meaningful
//!   equality (identical round counts, identical per-round ordered
//!   delivered-message traces, identical final states).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod protocol;
pub mod runtime;
pub mod scenario;

pub use driver::{conformance_diff, run_scenario, DriverError, NetOutcome, Transport};
pub use scenario::{run_in_process, EngineOutcome, GraphSpec, ProgramSpec, Scenario};
