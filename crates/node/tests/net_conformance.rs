//! Networked-vs-in-process conformance: the same scenario runs once on the
//! in-process `Executor` and once across real `hybrid-node` OS processes,
//! and the two outcomes must be *bit-identical* — same round count, same
//! run report, same per-round ordered delivered-message traces, same final
//! states.
//!
//! These tests spawn real child processes (via `CARGO_BIN_EXE_hybrid-node`)
//! and real loopback sockets; they are the acceptance gate for the
//! networked runtime.

use std::path::Path;

use hybrid_node::driver::{conformance_diff, run_scenario, DriverError, Transport};
use hybrid_node::scenario::{run_in_process, EngineOutcome, GraphSpec, ProgramSpec, Scenario};
use hybrid_node::NetOutcome;
use hybrid_sim::{EngineConfig, ModelParams};
use serde::Value;

fn node_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_hybrid-node"))
}

/// Runs both sides and panics with the first divergence, if any.
fn assert_conformant(scenario: &Scenario, transport: Transport) -> (EngineOutcome, NetOutcome) {
    let engine = run_in_process(scenario).expect("in-process run completes");
    let net = run_scenario(scenario, transport, node_bin()).expect("networked run completes");
    if let Err(diff) = conformance_diff(&engine, &net) {
        panic!("networked run diverged from the engine:\n{diff}");
    }
    (engine, net)
}

fn known_tokens(state: &Value) -> Vec<u64> {
    state
        .get("known")
        .and_then(Value::as_array)
        .expect("state has a known array")
        .iter()
        .map(|v| v.as_u64().expect("token"))
        .collect()
}

/// Pinned instance 1: flooding on a 12-node path over loopback TCP.
#[test]
fn flood_on_path_12_is_bit_identical_over_tcp() {
    let scenario = Scenario::new(
        GraphSpec::Path { n: 12 },
        ProgramSpec::Flood {
            tokens_at: vec![(0, vec![100, 101, 102, 103])],
            rounds_budget: 64,
        },
    );
    let (engine, net) = assert_conformant(&scenario, Transport::Tcp);
    assert!(net.report.completed);
    assert!(!net.trace.is_empty(), "trace recording was requested");
    assert_eq!(engine.states.len(), 12);
    for state in &net.states {
        assert_eq!(known_tokens(state), vec![100, 101, 102, 103]);
    }
}

/// Pinned instance 2: ack/retry flooding on a 16-node cycle — the largest
/// fleet in the suite, exercising retransmission state.
#[test]
fn ack_flood_on_cycle_16_is_bit_identical_over_tcp() {
    let scenario = Scenario::new(
        GraphSpec::Cycle { n: 16 },
        ProgramSpec::AckFlood {
            tokens_at: vec![(0, vec![7, 8, 9])],
            target_tokens: 3,
            retry_interval: 3,
        },
    );
    let (_, net) = assert_conformant(&scenario, Transport::Tcp);
    assert!(net.report.completed);
    for state in &net.states {
        assert_eq!(known_tokens(state), vec![7, 8, 9]);
    }
}

/// Pinned instance 3: deterministic smallest-token-first forwarding on a
/// 4×3 grid.
#[test]
fn det_forward_on_grid_4x3_is_bit_identical_over_tcp() {
    let scenario = Scenario::new(
        GraphSpec::Grid { rows: 4, cols: 3 },
        ProgramSpec::DetForward {
            tokens_at: vec![(0, vec![1, 2]), (11, vec![3])],
            target_tokens: 3,
        },
    );
    let (_, net) = assert_conformant(&scenario, Transport::Tcp);
    assert!(net.report.completed);
    for state in &net.states {
        assert_eq!(known_tokens(state), vec![1, 2, 3]);
    }
}

/// The global plane under pressure: randomized gossip with a small γ, so
/// the driver's receive-cap rule and the per-node RNG streams both have to
/// match the engine exactly.
#[test]
fn gossip_with_small_gamma_is_bit_identical_over_tcp() {
    let n = 10;
    let tokens_at: Vec<(u32, Vec<u64>)> = (0..6u64).map(|t| (t as u32, vec![t])).collect();
    let config = EngineConfig::new(ModelParams::hybrid_with_global_capacity(n, 2))
        .with_seed(42)
        .with_trace(true);
    let scenario = Scenario::new(
        GraphSpec::Cycle { n },
        ProgramSpec::Gossip {
            tokens_at,
            target_tokens: 6,
        },
    )
    .with_config(config);
    let (engine, net) = assert_conformant(&scenario, Transport::Tcp);
    assert!(net.report.completed);
    assert!(
        net.report.global_messages > 0,
        "gossip must exercise the global plane"
    );
    assert_eq!(engine.report.global_messages, net.report.global_messages);
}

/// The stdio transport leg: BFS on a star, frames over child pipes instead
/// of sockets — same conformance contract.
#[test]
fn bfs_on_star_9_is_bit_identical_over_stdio() {
    let scenario = Scenario::new(GraphSpec::Star { n: 9 }, ProgramSpec::Bfs { source: 0 });
    let (_, net) = assert_conformant(&scenario, Transport::Stdio);
    assert!(net.report.completed);
    assert_eq!(net.states[0].get("dist"), Some(&Value::UInt(0)));
    for state in &net.states[1..] {
        assert_eq!(state.get("dist"), Some(&Value::UInt(1)));
    }
}

/// Truncation conformance: when the round cap is exhausted, the driver must
/// produce the *same typed error with the same partial report* as the
/// in-process engine.
#[test]
fn round_limit_error_is_bit_identical() {
    let n = 12;
    let config = EngineConfig::new(ModelParams::hybrid(n))
        .with_max_rounds(3)
        .with_trace(true);
    let scenario = Scenario::new(
        GraphSpec::Path { n },
        ProgramSpec::DetForward {
            tokens_at: vec![(0, vec![1, 2, 3, 4, 5, 6])],
            target_tokens: 6,
        },
    )
    .with_config(config);

    let engine_err = run_in_process(&scenario).expect_err("3 rounds cannot cross a 12-path");
    let net_err = run_scenario(&scenario, Transport::Tcp, node_bin())
        .expect_err("the driver must hit the same cap");
    match net_err {
        DriverError::Engine(e) => assert_eq!(e, engine_err),
        other => panic!("expected the engine's typed error, got: {other}"),
    }
}
