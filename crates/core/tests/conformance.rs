//! Differential conformance suite for the algorithm registry.
//!
//! Every contender registered in [`hybrid_core::dissemination_registry`] /
//! [`hybrid_core::sssp_registry`] is run on the *same instances* and
//! cross-checked against every other implementation of the same problem:
//!
//! * dissemination — all implementations must deliver the **identical token
//!   set** (the problem has one correct answer; only the round bill may
//!   differ);
//! * shortest paths — every implementation must stay within its **stated
//!   stretch** of the exact Dijkstra oracle, which induces the pairwise
//!   cross-bound `dist_A ≤ stretch_A · dist_B` for any two contenders;
//! * determinism — contenders that advertise `deterministic()` (and every
//!   contender under a fixed seed) must reproduce bit-identical output, at
//!   every rayon pool width the CI matrix pins (`{1, 4}`).
//!
//! The random-instance sweep over `(family, seed, λ, γ)` lives in the
//! workspace-level proptest suite (`tests/property_tests.rs`); this file pins
//! the deterministic cross-product so a conformance break names the exact
//! instance in its assertion message.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use hybrid_core::dissemination::place_tokens;
use hybrid_core::{dissemination_registry, sssp_registry, NqOracle};
use hybrid_graph::{generators, Graph};
use hybrid_sim::{HybridNetwork, ModelParams};

/// The instance grid: one graph per family shape, small enough for the exact
/// oracle, varied enough to hit every pipeline branch (high diameter, low
/// diameter, irregular degrees).
fn conformance_graphs() -> Vec<(&'static str, Arc<Graph>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0F0);
    vec![
        ("path-48", Arc::new(generators::path(48).unwrap())),
        ("cycle-40", Arc::new(generators::cycle(40).unwrap())),
        ("grid-8x8", Arc::new(generators::grid(&[8, 8]).unwrap())),
        (
            "tree-2-60",
            Arc::new(generators::tree_with_n(2, 60).unwrap()),
        ),
        (
            "er-56",
            Arc::new(generators::erdos_renyi(56, 0.12, &mut rng).unwrap()),
        ),
    ]
}

/// Weighted variants for the shortest-paths half of the suite.
fn weighted_conformance_graphs() -> Vec<(&'static str, Arc<Graph>)> {
    conformance_graphs()
        .into_iter()
        .map(|(name, g)| {
            let mut rng = ChaCha8Rng::seed_from_u64(0x11ED + name.len() as u64);
            let w = generators::with_random_weights(&g, 32, &mut rng).unwrap();
            (name, Arc::new(w))
        })
        .collect()
}

/// The (γ) points the conformance grid exercises on top of the default
/// `γ = ⌈log₂ n⌉`: a scarce and a rich global network.
fn gamma_points(n: usize) -> Vec<ModelParams> {
    vec![
        ModelParams::hybrid(n),
        ModelParams::hybrid_with_global_capacity(n, 1),
        ModelParams::hybrid_with_global_capacity(n, 64),
    ]
}

#[test]
fn all_dissemination_impls_deliver_identical_token_sets() {
    for (name, graph) in conformance_graphs() {
        let oracle = NqOracle::new(&graph);
        let holders: Vec<u32> = (0..graph.n() as u32).step_by(3).collect();
        for k in [1u64, 17, 96] {
            let tokens = place_tokens(&holders, k);
            for params in gamma_points(graph.n()) {
                let gamma = params.global_capacity_msgs;
                let mut reference: Option<(&'static str, Vec<u64>)> = None;
                for algo in dissemination_registry() {
                    let mut net = HybridNetwork::new(Arc::clone(&graph), params);
                    let out = algo.run(&mut net, &oracle, &tokens);
                    assert_eq!(
                        out.tokens.len() as u64,
                        k,
                        "{} lost tokens on {name} (k={k}, gamma={gamma})",
                        algo.name(),
                    );
                    match &reference {
                        None => reference = Some((algo.name(), out.tokens)),
                        Some((ref_name, ref_tokens)) => assert_eq!(
                            ref_tokens,
                            &out.tokens,
                            "{} and {ref_name} disagree on {name} (k={k}, gamma={gamma})",
                            algo.name(),
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn all_sssp_impls_meet_stretch_and_pairwise_cross_bounds() {
    const EPSILON: f64 = 0.5;
    for (name, graph) in weighted_conformance_graphs() {
        let n = graph.n() as u32;
        let sources: Vec<u32> = vec![0, n / 3, n / 2, n - 1];
        for params in gamma_points(graph.n()) {
            let gamma = params.global_capacity_msgs;
            let mut outputs = Vec::new();
            for algo in sssp_registry() {
                let mut net = HybridNetwork::new(Arc::clone(&graph), params);
                let out = algo.run(&mut net, &sources, EPSILON, 0xD1FF);
                assert!(
                    out.stretch <= algo.stated_stretch(EPSILON) + 1e-9,
                    "{} reported stretch above its contract on {name}",
                    algo.name(),
                );
                // Against the exact oracle: never underestimates, never more
                // than the reported stretch over the truth.
                out.verify_stretch(&graph).unwrap_or_else(|e| {
                    panic!(
                        "{} broke stretch on {name} (gamma={gamma}): {e}",
                        algo.name()
                    )
                });
                outputs.push((algo.name(), algo.stated_stretch(EPSILON), out));
            }
            // Pairwise: labels never underestimate, so for any two contenders
            // A, B it must hold that dist_A ≤ stretch_A · dist_B.
            for (a_name, a_stretch, a) in &outputs {
                for (b_name, _, b) in &outputs {
                    for (si, _) in sources.iter().enumerate() {
                        for v in 0..graph.n() {
                            let (da, db) = (a.dist[si][v], b.dist[si][v]);
                            if da == hybrid_graph::INFINITY || db == hybrid_graph::INFINITY {
                                assert_eq!(
                                    da, db,
                                    "{a_name}/{b_name} disagree on reachability on {name}"
                                );
                                continue;
                            }
                            assert!(
                                da as f64 <= a_stretch * db as f64 + 1e-6,
                                "{a_name} vs {b_name} cross-bound broke on {name} \
                                 (gamma={gamma}, source {si}, node {v}: {da} vs {db})",
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn deterministic_impls_ignore_the_seed() {
    let graph = Arc::new(generators::grid(&[9, 9]).unwrap());
    let sources = vec![0u32, 40, 80];
    for algo in sssp_registry() {
        let run = |seed: u64| {
            let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
            algo.run(&mut net, &sources, 0.5, seed)
        };
        let (a, b) = (run(1), run(0xFFFF_FFFF));
        if algo.name() == "schneider" {
            assert_eq!(a.dist, b.dist, "schneider drew random bits");
            assert_eq!(a.rounds, b.rounds, "schneider rounds depend on the seed");
        } else {
            // Seeded contenders must at least be self-reproducible.
            let c = run(1);
            assert_eq!(a.dist, c.dist, "{} is not seed-deterministic", algo.name());
            assert_eq!(a.rounds, c.rounds);
        }
    }
    let oracle = NqOracle::new(&graph);
    let tokens = place_tokens(&[0, 11, 44], 30);
    for algo in dissemination_registry() {
        let run = || {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            algo.run(&mut net, &oracle, &tokens)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.tokens, b.tokens, "{} replay diverged", algo.name());
        assert_eq!(a.rounds, b.rounds, "{} rounds diverged", algo.name());
    }
}

#[test]
fn registry_outputs_are_pool_width_invariant() {
    let graph = {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        Arc::new(generators::weighted_grid(&[8, 8], 16, &mut rng).unwrap())
    };
    let oracle = NqOracle::new(&graph);
    let tokens = place_tokens(&(0..32).collect::<Vec<_>>(), 48);
    let sources = vec![0u32, 21, 63];

    let run_all = || {
        let mut diss = Vec::new();
        for algo in dissemination_registry() {
            let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
            let out = algo.run(&mut net, &oracle, &tokens);
            diss.push((algo.name(), out.rounds, out.tokens));
        }
        let mut sssp = Vec::new();
        for algo in sssp_registry() {
            let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
            let out = algo.run(&mut net, &sources, 0.5, 77);
            sssp.push((algo.name(), out.rounds, out.dist));
        }
        (diss, sssp)
    };

    let reference = run_all();
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let got = pool.install(run_all);
        assert_eq!(
            got, reference,
            "registry output diverged at {threads} rayon threads"
        );
    }
}

#[test]
fn empty_instances_conform_across_the_registry() {
    let graph = Arc::new(generators::cycle(24).unwrap());
    let oracle = NqOracle::new(&graph);
    for algo in dissemination_registry() {
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let out = algo.run(&mut net, &oracle, &[]);
        assert!(out.tokens.is_empty(), "{} invented tokens", algo.name());
    }
    for algo in sssp_registry() {
        let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
        let out = algo.run(&mut net, &[], 0.5, 9);
        assert!(out.dist.is_empty(), "{} invented distances", algo.name());
        assert_eq!(out.rounds, 0, "{} charged for nothing", algo.name());
    }
}
