//! Differential conformance suite for the query-serving [`DistanceOracle`].
//!
//! The oracle is cross-checked against the exact Dijkstra matrix
//! ([`apsp_exact`]) on the same pinned instance grid the PR 8 registry
//! shootout uses (`tests/conformance.rs`), so a break names the exact
//! instance:
//!
//! * **distance** — every answer obeys `exact ≤ answer ≤ stretch · exact`
//!   with the stretch the oracle documents ([`ORACLE_STRETCH`]), and is
//!   *exactly* `exact` whenever either endpoint is a landmark;
//! * **path validity** — every witness path starts at `u`, ends at `v`,
//!   every consecutive pair is an edge of the graph, and the edge weights
//!   sum to exactly the reported distance;
//! * **determinism** — rebuilding from the same seed is bit-identical, and
//!   batched answers are bit-identical across rayon pool widths `{1, 4, 8}`.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use hybrid_core::{DistanceOracle, OracleConfig, ORACLE_STRETCH};
use hybrid_graph::dijkstra::apsp_exact;
use hybrid_graph::{generators, Graph, NodeId, Weight};

/// Same instance grid as `tests/conformance.rs`: one graph per family shape,
/// small enough for the exact oracle.
fn conformance_graphs() -> Vec<(&'static str, Arc<Graph>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0F0);
    vec![
        ("path-48", Arc::new(generators::path(48).unwrap())),
        ("cycle-40", Arc::new(generators::cycle(40).unwrap())),
        ("grid-8x8", Arc::new(generators::grid(&[8, 8]).unwrap())),
        (
            "tree-2-60",
            Arc::new(generators::tree_with_n(2, 60).unwrap()),
        ),
        (
            "er-56",
            Arc::new(generators::erdos_renyi(56, 0.12, &mut rng).unwrap()),
        ),
    ]
}

/// Weighted variants, identical to the registry suite's weighting.
fn weighted_conformance_graphs() -> Vec<(&'static str, Arc<Graph>)> {
    conformance_graphs()
        .into_iter()
        .map(|(name, g)| {
            let mut rng = ChaCha8Rng::seed_from_u64(0x11ED + name.len() as u64);
            let w = generators::with_random_weights(&g, 32, &mut rng).unwrap();
            (name, Arc::new(w))
        })
        .collect()
}

/// All instances the oracle suite runs on: unweighted and weighted grids.
fn all_instances() -> Vec<(String, Arc<Graph>)> {
    let mut out: Vec<(String, Arc<Graph>)> = conformance_graphs()
        .into_iter()
        .map(|(n, g)| (n.to_string(), g))
        .collect();
    out.extend(
        weighted_conformance_graphs()
            .into_iter()
            .map(|(n, g)| (format!("{n}-weighted"), g)),
    );
    out
}

fn build(graph: &Graph) -> DistanceOracle {
    DistanceOracle::build(graph, OracleConfig::default()).expect("oracle build")
}

/// Every (u, v) pair of the instance, in a fixed order.
fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut q = Vec::with_capacity(n * n);
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            q.push((u, v));
        }
    }
    q
}

#[test]
fn distances_stay_within_documented_stretch_of_exact_dijkstra() {
    for (name, graph) in all_instances() {
        let oracle = build(&graph);
        let exact = apsp_exact(&graph);
        for (u, v) in all_pairs(graph.n()) {
            let a = oracle.query(u, v);
            let e = exact[u as usize][v as usize];
            assert!(
                a >= e,
                "{name}: ({u},{v}) answer {a} underestimates exact {e}"
            );
            assert!(
                a as f64 <= ORACLE_STRETCH * e as f64 + 1e-9,
                "{name}: ({u},{v}) answer {a} breaks stretch {ORACLE_STRETCH} over exact {e}"
            );
        }
        for &l in oracle.landmarks() {
            for v in 0..graph.n() as NodeId {
                assert_eq!(
                    oracle.query(l, v),
                    exact[l as usize][v as usize],
                    "{name}: landmark query ({l},{v}) must be exact"
                );
            }
        }
    }
}

#[test]
fn witness_paths_are_valid_walks_with_telescoping_weights() {
    for (name, graph) in all_instances() {
        let oracle = build(&graph);
        let queries = all_pairs(graph.n());
        let batch = oracle.query_paths_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, &(u, v)) in queries.iter().enumerate() {
            let d = batch.dist(i);
            let path = batch.path(i);
            assert_eq!(path.first(), Some(&u), "{name}: ({u},{v}) path start");
            assert_eq!(path.last(), Some(&v), "{name}: ({u},{v}) path end");
            let mut total: Weight = 0;
            for pair in path.windows(2) {
                let arc = graph
                    .arcs(pair[0])
                    .iter()
                    .find(|a| a.to == pair[1])
                    .unwrap_or_else(|| {
                        panic!(
                            "{name}: ({u},{v}) step {}-{} is not an edge",
                            pair[0], pair[1]
                        )
                    });
                total += arc.weight;
            }
            assert_eq!(
                total, d,
                "{name}: ({u},{v}) path weight must equal the reported distance"
            );
        }
    }
}

#[test]
fn same_seed_rebuild_is_bit_identical() {
    for (name, graph) in all_instances() {
        let a = build(&graph);
        let b = build(&graph);
        assert_eq!(a.landmarks(), b.landmarks(), "{name}: landmark sample");
        let queries = all_pairs(graph.n());
        assert_eq!(
            a.query_batch(&queries),
            b.query_batch(&queries),
            "{name}: rebuilt oracle must answer identically"
        );
    }
}

/// Everything a pool-width run produces: batch distances, path-batch
/// distances, and the flattened witness paths.
type PoolRunAnswers = (Vec<Weight>, Vec<Weight>, Vec<Vec<NodeId>>);

#[test]
fn batched_answers_are_pool_width_invariant() {
    for (name, graph) in all_instances() {
        let queries = all_pairs(graph.n());
        let run_all = || {
            let oracle = build(&graph);
            let dists = oracle.query_batch(&queries);
            let paths = oracle.query_paths_batch(&queries);
            let flat_paths: Vec<Vec<NodeId>> =
                (0..paths.len()).map(|i| paths.path(i).to_vec()).collect();
            (dists, paths.dists().to_vec(), flat_paths)
        };
        let mut reference: Option<PoolRunAnswers> = None;
        for threads in [1usize, 4, 8] {
            let got = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(run_all);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "{name}: batch answers diverged at pool width {threads}"
                ),
            }
        }
    }
}

#[test]
fn batch_agrees_with_per_query_answers() {
    for (name, graph) in all_instances() {
        let oracle = build(&graph);
        let queries = all_pairs(graph.n());
        let batch = oracle.query_batch(&queries);
        for (i, &(u, v)) in queries.iter().enumerate() {
            assert_eq!(
                batch[i],
                oracle.query(u, v),
                "{name}: batch answer ({u},{v}) diverges from the single query"
            );
        }
    }
}
