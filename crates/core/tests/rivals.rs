//! Adversarial regression tests for the rival baselines: hand-built
//! instances pinning *why* the paper's pipelines win the shootout — one
//! instance per rival where the rival provably pays more rounds than the
//! Theorem 1 / Theorem 14 pipelines, plus an instance where the contenders
//! tie exactly.
//!
//! These are regression tests in the strict sense: if a refactor of either
//! side changes the cost structure (e.g. stops charging the leader funnel
//! `⌈T/γ⌉` per tree hop, or lets the deepening loop skip the path's
//! hop-diameter bill), the corresponding assertion here names the mechanism
//! that broke.

use std::sync::Arc;

use hybrid_core::dissemination::{k_dissemination, place_tokens};
use hybrid_core::kssp::{kssp, KsspVariant};
use hybrid_core::schneider::schneider_kssp;
use hybrid_core::{det_token_forward_dissemination, NqOracle};
use hybrid_graph::generators;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// **det-broadcast loses** — concentrated heavy load on a grid.
///
/// All `k = 256` tokens start at one corner of a 16×16 grid with
/// `γ = ⌈log₂ 256⌉ = 8`.  Theorem 1 spreads each cluster's payload over its
/// members before every tree hop, so a level moving `T` tokens costs
/// `≈ ⌈T / (|C|·γ)⌉` global rounds; the deterministic token-forwarding rival
/// funnels every token through the cluster *leader*, paying `⌈T/γ⌉` per hop.
/// With `T = 256 ≫ γ` the funnel is the bottleneck and the rival strictly
/// loses on the same instance with the same witness.
#[test]
fn det_broadcast_pays_for_the_leader_funnel_on_concentrated_load() {
    let graph = Arc::new(generators::grid(&[16, 16]).unwrap());
    let oracle = NqOracle::new(&graph);
    let tokens = place_tokens(&[0], 256);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let ours = k_dissemination(&mut net, &oracle, &tokens);
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let rival = det_token_forward_dissemination(&mut net, &oracle, &tokens);

    assert_eq!(ours.tokens, rival.tokens, "both must solve the instance");
    assert!(
        rival.rounds > ours.rounds,
        "leader funnel must cost extra global rounds on concentrated load: \
         rival {} vs theorem1 {}",
        rival.rounds,
        ours.rounds
    );
}

/// **det-broadcast ties** — a single-cluster instance.
///
/// On a small cycle the measured `NQ_k` reaches the diameter, the Lemma 3.5
/// clustering collapses to one cluster and the tree has no edges: *neither*
/// pipeline sends a single global message, and their local bills are
/// identical by construction (count + clustering + `2·wd` balancing +
/// `wd` flood).  The two algorithms differ exactly in their global
/// schedules, so with no global phase left they tie to the round.
#[test]
fn det_broadcast_ties_theorem1_when_one_cluster_covers_the_graph() {
    let graph = Arc::new(generators::cycle(16).unwrap());
    let oracle = NqOracle::new(&graph);
    let tokens = place_tokens(&(0..16).collect::<Vec<_>>(), 200);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let ours = k_dissemination(&mut net, &oracle, &tokens);
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let rival = det_token_forward_dissemination(&mut net, &oracle, &tokens);

    assert_eq!(ours.tokens, rival.tokens);
    assert_eq!(
        ours.rounds, rival.rounds,
        "with no global phase the pipelines must tie exactly: \
         theorem1 {} vs det-broadcast {}",
        ours.rounds, rival.rounds
    );
}

/// **Schneider loses** — the hop-diameter bill on a path.
///
/// The skeleton-free baseline must deepen its `h`-hop sweeps until they hit
/// the Bellman–Ford fixpoint, and on a path of `n = 256` nodes that means
/// `h ≥ 255`: a bill of `Θ(n)` local rounds.  Theorem 14 schedules Theorem 13
/// SSSP instances on a sampled skeleton and never pays the hop diameter.
/// Same instance, same sources, same `ε`.
#[test]
fn schneider_pays_the_hop_diameter_on_the_path() {
    let graph = Arc::new(generators::path(256).unwrap());
    let sources = vec![0u32, 127];
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let ours = kssp(
        &mut net,
        &sources,
        1.0,
        KsspVariant::RandomSources,
        &mut rng,
    );
    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let rival = schneider_kssp(&mut net, &sources, 1.0);

    ours.verify_stretch(&graph).unwrap();
    rival.verify_stretch(&graph).unwrap();
    assert!(
        rival.rounds > 2 * ours.rounds,
        "the deepening bill must dominate on the path: rival {} vs theorem14 {}",
        rival.rounds,
        ours.rounds
    );
}

/// The flip side pinning the mechanism: the path gap is the *hop diameter's*
/// fault, so on a low-diameter grid of comparable size the same rival closes
/// most of the gap.  (Measured as the ratio of round bills — the path ratio
/// must exceed the grid ratio by at least 2×.)
#[test]
fn schneider_gap_collapses_on_low_diameter_instances() {
    let run = |graph: Arc<hybrid_graph::Graph>| -> f64 {
        let n = graph.n() as u32;
        let sources = vec![0u32, n / 2];
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
        let ours = kssp(
            &mut net,
            &sources,
            1.0,
            KsspVariant::RandomSources,
            &mut rng,
        );
        let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
        let rival = schneider_kssp(&mut net, &sources, 1.0);
        rival.rounds as f64 / ours.rounds.max(1) as f64
    };
    let path_ratio = run(Arc::new(generators::path(256).unwrap()));
    let grid_ratio = run(Arc::new(generators::grid(&[16, 16]).unwrap()));
    assert!(
        path_ratio > 2.0 * grid_ratio,
        "the rival's deficit must be concentrated on high-diameter instances: \
         path ratio {path_ratio:.2} vs grid ratio {grid_ratio:.2}"
    );
}
