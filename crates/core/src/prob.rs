//! Basic probabilistic tools (paper Appendix A): Chernoff-bound helpers and
//! sampling utilities used throughout the randomized algorithms.
//!
//! The algorithms themselves only need *sampling*; the Chernoff helpers are
//! exposed so that tests and benches can assert that sampled objects (helper
//! sets, skeletons, source sets) have the sizes the analysis promises with
//! the intended failure probability.

use rand::seq::SliceRandom;
use rand::Rng;

use hybrid_graph::NodeId;

/// Multiplicative Chernoff upper tail: probability that a sum of independent
/// `0/1` variables with mean `mu` exceeds `(1 + delta) * mu`, bounded by
/// `exp(-delta^2 mu / 3)` for `delta ∈ (0, 1]` and `exp(-delta mu / 3)` for
/// `delta > 1` (Lemma A.1 of the paper).
pub fn chernoff_upper_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && delta >= 0.0);
    if mu == 0.0 {
        return 0.0;
    }
    if delta <= 1.0 {
        (-delta * delta * mu / 3.0).exp()
    } else {
        (-delta * mu / 3.0).exp()
    }
}

/// Multiplicative Chernoff lower tail: probability that the sum falls below
/// `(1 - delta) * mu`, bounded by `exp(-delta^2 mu / 2)`.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0 && (0.0..=1.0).contains(&delta));
    if mu == 0.0 {
        return 0.0;
    }
    (-delta * delta * mu / 2.0).exp()
}

/// The "with high probability" threshold `1 / n^c` used by the paper
/// (Section 1.2) with the conventional exponent `c = 3`.
pub fn whp_threshold(n: usize) -> f64 {
    let n = n.max(2) as f64;
    n.powi(-3)
}

/// Samples a subset of `0..n` where each node joins independently with
/// probability `p` (the paper's "random sources/targets" regime).
pub fn sample_with_probability(n: usize, p: f64, rng: &mut impl Rng) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    (0..n as NodeId).filter(|_| rng.gen_bool(p)).collect()
}

/// Samples exactly `k` distinct nodes uniformly from `0..n`.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct(n: usize, k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    assert!(k <= n, "cannot sample {k} distinct nodes out of {n}");
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    all
}

/// Natural logarithm of `n`, clamped below at 1 — the `ln n` factor that the
/// paper's sampling probabilities multiply in to make Chernoff bounds work.
pub fn ln_n(n: usize) -> f64 {
    (n.max(3) as f64).ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn chernoff_tails_shrink_with_mu() {
        assert!(chernoff_upper_tail(100.0, 0.5) < chernoff_upper_tail(10.0, 0.5));
        assert!(chernoff_lower_tail(100.0, 0.5) < chernoff_lower_tail(10.0, 0.5));
        assert!(chernoff_upper_tail(50.0, 2.0) < 1e-10);
        assert_eq!(chernoff_upper_tail(0.0, 0.5), 0.0);
        assert_eq!(chernoff_lower_tail(0.0, 0.5), 0.0);
    }

    #[test]
    fn whp_threshold_is_inverse_poly() {
        assert!(whp_threshold(10) > whp_threshold(100));
        assert!((whp_threshold(10) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn sampling_with_probability_has_expected_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = sample_with_probability(10_000, 0.1, &mut rng);
        assert!((800..1200).contains(&s.len()), "got {}", s.len());
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(sample_with_probability(100, 0.0, &mut rng).is_empty());
        assert_eq!(sample_with_probability(100, 1.0, &mut rng).len(), 100);
    }

    #[test]
    fn sample_distinct_is_distinct_and_sorted() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = sample_distinct(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| (v as usize) < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_too_many_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        sample_distinct(5, 6, &mut rng);
    }

    #[test]
    fn ln_n_clamped() {
        assert!((ln_n(1) - 3.0_f64.ln()).abs() < 1e-9); // clamped to ln 3
        assert!(ln_n(1000) > 6.0);
    }
}
