//! Simulation of the Broadcast Congested Clique (Corollary 2.1).
//!
//! In the `BCC` model every node broadcasts one `O(log n)`-bit message to the
//! whole network per round.  One `BCC` round is exactly an instance of
//! `n`-dissemination with one token per node, so Theorem 1 simulates it in
//! `Õ(NQ_n)` rounds of `Hybrid0`, and Theorem 4 shows `Ω̃(NQ_n)` rounds are
//! necessary — i.e. the simulation is universally optimal.
//!
//! This module exposes the simulation as a reusable primitive: any algorithm
//! expressed as a sequence of `BCC` rounds (each node contributes one value
//! per round, everyone learns all values) can be run on a HYBRID network at a
//! per-round cost of one Theorem 1 broadcast.

use hybrid_graph::NodeId;
use hybrid_sim::HybridNetwork;

use crate::dissemination::{disseminate_with_radius, RadiusPolicy, TokenPlacement};
use crate::lower_bounds::{dissemination_lower_bound, LowerBoundWitness};
use crate::nq::{compute_nq, NqOracle};

/// Result of simulating a number of `BCC` rounds.
#[derive(Debug, Clone)]
pub struct BccSimulation {
    /// Number of `BCC` rounds simulated.
    pub bcc_rounds: usize,
    /// Everything every node knows afterwards: `history[r][v]` is the value
    /// node `v` broadcast in `BCC` round `r`.
    pub history: Vec<Vec<u64>>,
    /// Total HYBRID rounds consumed.
    pub hybrid_rounds: u64,
    /// HYBRID rounds per simulated `BCC` round (`Õ(NQ_n)`).
    pub rounds_per_bcc_round: u64,
}

/// Simulates `rounds` rounds of the Broadcast Congested Clique on `net`
/// (Corollary 2.1).  In each round, `step(round, history)` returns the value
/// every node broadcasts (indexed by node id); the returned history is then
/// available to every node in the next round, exactly as in `BCC`.
pub fn simulate_bcc(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    rounds: usize,
    mut step: impl FnMut(usize, &[Vec<u64>]) -> Vec<u64>,
) -> BccSimulation {
    let before = net.rounds();
    let n = net.graph().n();
    let nq_n = compute_nq(net, oracle, n as u64).nq.max(1);
    let mut history: Vec<Vec<u64>> = Vec::with_capacity(rounds);
    let mut per_round_cost = 0;
    for r in 0..rounds {
        let values = step(r, &history);
        assert_eq!(
            values.len(),
            n,
            "one broadcast value per node per BCC round"
        );
        // One BCC round = n-dissemination of one token per node (Theorem 1).
        // Tag each broadcast value with its round and sender so the token
        // values are globally distinct (the broadcast layer deduplicates by
        // value).
        let tokens: Vec<TokenPlacement> = values
            .iter()
            .enumerate()
            .map(|(v, &val)| {
                let tagged = ((r as u64) << 52) | ((v as u64) << 32) | (val & 0xFFFF_FFFF);
                (v as NodeId, tagged)
            })
            .collect();
        let start = net.rounds();
        let _ = disseminate_with_radius(net, oracle, &tokens, nq_n, RadiusPolicy::Fixed(nq_n));
        per_round_cost = net.rounds() - start;
        history.push(values);
    }
    BccSimulation {
        bcc_rounds: rounds,
        history,
        hybrid_rounds: net.rounds() - before,
        rounds_per_bcc_round: per_round_cost,
    }
}

/// The universal lower bound for simulating one `BCC` round (Corollary 2.1 /
/// Theorem 4 with `k = n`).
pub fn bcc_round_lower_bound(oracle: &NqOracle, net: &HybridNetwork) -> LowerBoundWitness {
    dissemination_lower_bound(oracle, net.params(), oracle.n() as u64, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use std::sync::Arc;

    #[test]
    fn bcc_simulation_runs_sum_protocol() {
        // A 2-round BCC protocol: round 0 everyone broadcasts its id; round 1
        // everyone broadcasts the sum of everything heard.  After the
        // simulation every node knows the global sum.
        let g = Arc::new(generators::grid(&[8, 8]).unwrap());
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let n = g.n() as u64;
        let sim = simulate_bcc(&mut net, &oracle, 2, |round, history| {
            if round == 0 {
                (0..n).collect()
            } else {
                let sum: u64 = history[0].iter().sum();
                vec![sum; n as usize]
            }
        });
        assert_eq!(sim.bcc_rounds, 2);
        let expected: u64 = (0..n).sum();
        assert!(sim.history[1].iter().all(|&s| s == expected));
        assert!(sim.hybrid_rounds > 0);
        assert!(sim.rounds_per_bcc_round > 0);
    }

    #[test]
    fn bcc_cost_is_polylog_times_nq_n() {
        let g = Arc::new(generators::grid(&[12, 12]).unwrap());
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let sim = simulate_bcc(&mut net, &oracle, 1, |_, _| vec![7; 144]);
        let nq_n = oracle.nq(144);
        let log_n = net.log_n();
        assert!(sim.rounds_per_bcc_round <= nq_n * 60 * log_n * log_n);
        let lb = bcc_round_lower_bound(&oracle, &net);
        assert!(lb.rounds <= sim.rounds_per_bcc_round as f64);
    }

    #[test]
    #[should_panic(expected = "one broadcast value per node")]
    fn wrong_value_count_panics() {
        let g = Arc::new(generators::cycle(10).unwrap());
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        simulate_bcc(&mut net, &oracle, 1, |_, _| vec![1, 2, 3]);
    }
}
