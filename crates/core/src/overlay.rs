//! Overlay (virtual tree) construction and the basic `Õ(1)`-round
//! aggregation/dissemination primitives built on it (paper Lemmas 4.3–4.6).
//!
//! # Why an overlay
//!
//! The universal broadcast algorithm needs a constant-degree, `O(log n)`-depth
//! rooted virtual tree over an arbitrary subset of nodes such that every tree
//! node knows the identifiers of its parent and children, even though tree
//! neighbours may be far apart in `G` — tree edges are *global-network*
//! channels, so one round of tree communication costs `O(1)` global messages
//! per participant regardless of the local topology.  The paper obtains this
//! from the overlay construction of `[GHSS17]` plus the pruning procedure of
//! Lemma 4.5; this module builds the tree directly over the sorted
//! participant ids (a heap-shaped complete binary tree,
//! [`VirtualTree::heap_shaped`]), which has the same degree/depth guarantees
//! (degree ≤ 3, depth `⌈log₂ m⌉`, pinned by unit tests), and charges the
//! `Õ(1)` construction rounds of Lemma 4.3 / 4.6 on the simulated network.
//!
//! # What is built on it
//!
//! * [`basic_aggregation`] — Lemma 4.4 `1`-aggregation: converge-cast the
//!   values up the tree under an associative operator, broadcast the result
//!   down; every node ends up knowing `F(values…)` after `O(height)` rounds
//!   of `O(log n)`-bit messages.
//! * [`basic_dissemination`] — Lemma 4.4 `1`-dissemination: one token
//!   holder, afterwards every node knows the token; same `Õ(1)` cost shape.
//! * The `k`-dissemination / `k`-aggregation algorithms of Theorems 1–2
//!   ([`crate::dissemination`]) run these per cluster: the `NQ_k`-clustering
//!   handles the local part, the overlay the global part.
//!
//! # Simulation contract
//!
//! The structural computation (parents, children, depths) happens at the data
//! level; the round cost is charged explicitly on the [`HybridNetwork`]
//! (`overlay/build-virtual-tree`, `overlay/aggregate-convergecast`,
//! `overlay/disseminate-broadcast` cost-trace entries), so the round counts
//! in the reproduced tables reflect the paper's bounds, not host wall-clock.

use hybrid_graph::NodeId;
use hybrid_sim::HybridNetwork;

/// A rooted, constant-degree, logarithmic-depth virtual tree over a subset of
/// the graph's nodes.
#[derive(Debug, Clone)]
pub struct VirtualTree {
    /// Participating nodes, sorted by id; tree positions refer to indices in
    /// this vector.
    pub participants: Vec<NodeId>,
    /// Parent position of every position (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children positions of every position.
    pub children: Vec<Vec<usize>>,
    /// Depth of every position (root has depth 0).
    pub depth: Vec<u32>,
}

impl VirtualTree {
    /// Builds the virtual tree over `participants` (Lemma 4.3 for the full
    /// node set, Lemma 4.6 for a subset), charging `Õ(1)` construction rounds
    /// on `net`.
    ///
    /// # Panics
    /// Panics if `participants` is empty.
    pub fn build(net: &mut HybridNetwork, participants: &[NodeId]) -> Self {
        assert!(
            !participants.is_empty(),
            "virtual tree needs at least one node"
        );
        let mut sorted: Vec<NodeId> = participants.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Lemma 4.3: O(log^2 n) deterministic construction rounds.
        net.charge_rounds("overlay/build-virtual-tree", net.polylog(2));
        Self::heap_shaped(sorted)
    }

    /// Builds the tree structure without charging rounds (used internally
    /// when the cost is already accounted for by the caller).
    pub fn heap_shaped(sorted_participants: Vec<NodeId>) -> Self {
        let m = sorted_participants.len();
        let mut parent = vec![None; m];
        let mut children = vec![Vec::new(); m];
        let mut depth = vec![0u32; m];
        for (i, kids) in children.iter_mut().enumerate() {
            for c in [2 * i + 1, 2 * i + 2] {
                if c < m {
                    parent[c] = Some(i);
                    kids.push(c);
                }
            }
        }
        for i in 1..m {
            depth[i] = depth[parent[i].expect("non-root has parent")] + 1;
        }
        VirtualTree {
            participants: sorted_participants,
            parent,
            children,
            depth,
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Whether the tree is empty (never true; construction requires ≥ 1 node).
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// Position of the root (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// The graph node at tree position `pos`.
    pub fn node_at(&self, pos: usize) -> NodeId {
        self.participants[pos]
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Maximum degree (children + parent).
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.children[i].len() + usize::from(self.parent[i].is_some()))
            .max()
            .unwrap_or(0)
    }

    /// Positions grouped by depth, deepest level last.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let h = self.height() as usize;
        let mut levels = vec![Vec::new(); h + 1];
        for (pos, &d) in self.depth.iter().enumerate() {
            levels[d as usize].push(pos);
        }
        levels
    }
}

/// Result of the basic aggregation primitive (Lemma 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicAggregation {
    /// The aggregate value, known to every node afterwards.
    pub value: u64,
    /// Rounds charged (always `Õ(1)`).
    pub rounds: u64,
}

/// Lemma 4.4 — `1`-aggregation: every node holds one value; afterwards every
/// node knows `F(values…)`.  Runs over the virtual tree in `Õ(1)` rounds
/// (converge-cast up, broadcast down).
pub fn basic_aggregation(
    net: &mut HybridNetwork,
    values: &[u64],
    f: impl Fn(u64, u64) -> u64,
) -> BasicAggregation {
    assert_eq!(values.len(), net.graph().n(), "one value per node required");
    let before = net.rounds();
    let participants: Vec<NodeId> = net.graph().nodes().collect();
    let tree = VirtualTree::build(net, &participants);
    // Converge-cast + broadcast: 2 * height rounds of one O(log n)-bit message
    // per tree edge per round, well within the per-node global capacity.
    net.charge_rounds(
        "overlay/aggregate-convergecast",
        2 * tree.height() as u64 + 2,
    );
    let value = values[1..].iter().fold(values[0], |acc, &v| f(acc, v));
    BasicAggregation {
        value,
        rounds: net.rounds() - before,
    }
}

/// Lemma 4.4 — `1`-dissemination: one node holds a token; afterwards every
/// node knows it.  `Õ(1)` rounds over the virtual tree.
pub fn basic_dissemination(net: &mut HybridNetwork, token_holder: NodeId, token: u64) -> u64 {
    let before = net.rounds();
    let participants: Vec<NodeId> = net.graph().nodes().collect();
    let tree = VirtualTree::build(net, &participants);
    let _ = (token_holder, token);
    net.charge_rounds(
        "overlay/disseminate-broadcast",
        2 * tree.height() as u64 + 2,
    );
    net.rounds() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use std::sync::Arc;

    fn net(n: usize) -> HybridNetwork {
        HybridNetwork::hybrid0(Arc::new(generators::cycle(n.max(3)).unwrap()))
    }

    #[test]
    fn tree_has_log_depth_and_constant_degree() {
        let mut net = net(300);
        let participants: Vec<NodeId> = (0..300).collect();
        let tree = VirtualTree::build(&mut net, &participants);
        assert_eq!(tree.len(), 300);
        assert!(tree.height() <= 9, "height {} too large", tree.height());
        assert!(tree.max_degree() <= 3);
        assert_eq!(tree.root(), 0);
        assert!(net.rounds() > 0);
    }

    #[test]
    fn tree_structure_is_consistent() {
        let tree = VirtualTree::heap_shaped((0..25u32).collect());
        assert!(!tree.is_empty());
        for pos in 1..tree.len() {
            let p = tree.parent[pos].unwrap();
            assert!(tree.children[p].contains(&pos));
            assert_eq!(tree.depth[pos], tree.depth[p] + 1);
        }
        // Every non-root is reachable from the root.
        let levels = tree.levels();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, 25);
        assert_eq!(levels[0], vec![0]);
    }

    #[test]
    fn tree_over_subset_deduplicates() {
        let mut net = net(50);
        let tree = VirtualTree::build(&mut net, &[9, 3, 3, 40, 9]);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.participants, vec![3, 9, 40]);
        assert_eq!(tree.node_at(0), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_tree_panics() {
        let mut net = net(10);
        VirtualTree::build(&mut net, &[]);
    }

    #[test]
    fn basic_aggregation_computes_and_is_polylog() {
        let mut network = net(128);
        let values: Vec<u64> = (0..128).collect();
        let out = basic_aggregation(&mut network, &values, |a, b| a.max(b));
        assert_eq!(out.value, 127);
        let log_n = 7u64;
        assert!(
            out.rounds <= 3 * log_n * log_n,
            "rounds {} not Õ(1)",
            out.rounds
        );
        let sum = basic_aggregation(&mut network, &values, |a, b| a + b);
        assert_eq!(sum.value, 127 * 128 / 2);
    }

    #[test]
    fn basic_dissemination_is_polylog() {
        let mut network = net(64);
        let rounds = basic_dissemination(&mut network, 5, 42);
        assert!(rounds > 0);
        assert!(rounds <= 3 * 6 * 6);
    }
}
