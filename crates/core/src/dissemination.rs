//! Universally optimal multi-message broadcast: `k`-dissemination
//! (Theorem 1), `k`-aggregation (Theorem 2), the uniform load-balancing
//! primitive (Lemma 4.1) and the existentially optimal `Õ(√k)` baseline of
//! `[AHK+20]` used as the comparison row of Table 1.
//!
//! # Algorithm (Theorem 1, see also Figure 2 of the paper)
//!
//! 1. **Clustering** — partition `V` into clusters of weak diameter
//!    `Õ(NQ_k)` and size `Θ(k/NQ_k)` (Lemma 3.5);
//! 2. **Cluster chaining** — build a logarithmic-depth, logarithmic-degree
//!    virtual tree over the cluster leaders (Lemma 4.6) and rank-match the
//!    members of adjacent clusters so they can talk over the global network;
//! 3. **Load balancing** — spread each cluster's tokens evenly over its
//!    members (Lemma 4.1), so nobody holds more than `≈ NQ_k` tokens;
//! 4. **Dissemination** — converge-cast all tokens up the cluster tree and
//!    broadcast them back down (each hop is a batch of global messages,
//!    scheduled under the per-node capacity), then flood inside each cluster
//!    over the local network.
//!
//! The *baseline* runs the identical pipeline with the radius forced to
//! `min(√k, D)` — the best bound available without looking at the topology —
//! which is exactly how the existentially optimal algorithms behave.  On
//! graphs whose neighbourhoods grow faster than a path's, `NQ_k ≪ √k` and the
//! universal algorithm wins; on paths the two coincide (Theorem 15).

use hybrid_graph::NodeId;
use hybrid_sim::{CostMeter, GlobalMessage, HybridNetwork};

use crate::cluster::cluster_with_radius;
use crate::nq::{compute_nq, NqOracle};
use crate::overlay::{basic_aggregation, VirtualTree};

/// A token to broadcast: the node that initially holds it and its value.
pub type TokenPlacement = (NodeId, u64);

/// Which radius policy the dissemination engine used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadiusPolicy {
    /// The universal algorithm: radius `NQ_k` (Theorem 1).
    NeighborhoodQuality,
    /// The existential baseline: radius `min(⌈√k⌉, D)` (`[AHK+20]`).
    WorstCaseSqrtK,
    /// An explicitly chosen radius (used by tests and ablations).
    Fixed(u64),
}

/// Output of a `k`-dissemination run.
#[derive(Debug, Clone)]
pub struct DisseminationOutput {
    /// Number of distinct tokens broadcast.
    pub k: u64,
    /// The measured `NQ_k` of the graph (for reference, also for baseline runs).
    pub nq: u64,
    /// The radius parameter the run actually used.
    pub radius: u64,
    /// Radius policy.
    pub policy: RadiusPolicy,
    /// Total rounds consumed.
    pub rounds: u64,
    /// Full cost trace.
    pub meter: CostMeter,
    /// The sorted set of token values every node knows at the end.
    pub tokens: Vec<u64>,
    /// Maximum number of tokens any single node had to hold after load
    /// balancing (≈ radius, by Lemma 4.1 + Lemma 3.5).
    pub max_tokens_per_node: u64,
}

/// Output of a `k`-aggregation run.
#[derive(Debug, Clone)]
pub struct AggregationOutput {
    /// Number of aggregation functions (`k`).
    pub k: u64,
    /// The measured `NQ_k`.
    pub nq: u64,
    /// Total rounds consumed.
    pub rounds: u64,
    /// Full cost trace.
    pub meter: CostMeter,
    /// The `k` aggregate values, known to every node at the end.
    pub results: Vec<u64>,
}

/// Lemma 4.1 — uniform load balancing: given a cluster of weak diameter `d`
/// holding `tokens`, assigns every member at most `⌈|tokens|/|C|⌉` tokens.
/// Charges `2d` local rounds on `net` when `charge` is set.
///
/// Returns, for every member (by index into `members`), the tokens it is
/// responsible for.
pub fn load_balance_cluster(
    net: &mut HybridNetwork,
    members: &[NodeId],
    tokens: &[u64],
    weak_diameter: u64,
    charge: bool,
) -> Vec<Vec<u64>> {
    assert!(!members.is_empty(), "cluster must have at least one member");
    if charge {
        net.charge_local("dissemination/load-balance", 2 * weak_diameter.max(1));
    }
    let mut assignment = vec![Vec::new(); members.len()];
    for (i, &t) in tokens.iter().enumerate() {
        assignment[i % members.len()].push(t);
    }
    assignment
}

/// Theorem 1 — universally optimal `k`-dissemination in `Õ(NQ_k)` rounds
/// (deterministic, `Hybrid0`).
pub fn k_dissemination(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    tokens: &[TokenPlacement],
) -> DisseminationOutput {
    let k = tokens.len() as u64;
    let nq = compute_nq(net, oracle, k.max(1)).nq.max(1);
    disseminate_with_radius(net, oracle, tokens, nq, RadiusPolicy::NeighborhoodQuality)
}

/// The existentially optimal baseline (`[AHK+20]`): the identical pipeline with
/// the worst-case radius `min(⌈√k⌉, D)` instead of `NQ_k`, costing `Õ(√k)`
/// rounds on every graph.
pub fn baseline_sqrt_k_dissemination(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    tokens: &[TokenPlacement],
) -> DisseminationOutput {
    let k = tokens.len() as u64;
    let radius = ((k.max(1) as f64).sqrt().ceil() as u64)
        .max(1)
        .min(oracle.diameter().max(1));
    disseminate_with_radius(net, oracle, tokens, radius, RadiusPolicy::WorstCaseSqrtK)
}

/// The shared dissemination engine with an explicit radius parameter.
pub fn disseminate_with_radius(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    tokens: &[TokenPlacement],
    radius: u64,
    policy: RadiusPolicy,
) -> DisseminationOutput {
    let before = net.rounds();
    let graph = net.graph_arc();
    let n = graph.n();
    let k = tokens.len() as u64;

    // Phase 0: count k with the basic aggregation primitive (Lemma 4.4).
    let counts: Vec<u64> = {
        let mut c = vec![0u64; n];
        for &(holder, _) in tokens {
            c[holder as usize] += 1;
        }
        c
    };
    let counted = basic_aggregation(net, &counts, |a, b| a + b);
    debug_assert_eq!(counted.value, k);

    if k == 0 {
        return DisseminationOutput {
            k,
            nq: oracle.nq(1),
            radius,
            policy,
            rounds: net.rounds() - before,
            meter: net.meter().clone(),
            tokens: Vec::new(),
            max_tokens_per_node: 0,
        };
    }

    // Phase 1: clustering with the prescribed radius (Lemma 3.5).
    let clustering = cluster_with_radius(net, radius, k);

    // Phase 2a: cluster tree over the leaders (Lemma 4.6).
    let leaders: Vec<NodeId> = clustering.clusters.iter().map(|c| c.leader).collect();
    let cluster_tree = VirtualTree::build(net, &leaders);
    // Map tree position -> cluster index.
    let pos_to_cluster: Vec<usize> = cluster_tree
        .participants
        .iter()
        .map(|leader| {
            clustering
                .clusters
                .iter()
                .position(|c| c.leader == *leader)
                .expect("leader has a cluster")
        })
        .collect();

    // Phase 2b: cluster chaining — rank-matched members of adjacent clusters
    // exchange identifiers over the global network.
    let mut chaining_msgs: Vec<GlobalMessage> = Vec::new();
    for pos in 1..cluster_tree.len() {
        let parent_pos = cluster_tree.parent[pos].expect("non-root");
        let child = &clustering.clusters[pos_to_cluster[pos]];
        let parent = &clustering.clusters[pos_to_cluster[parent_pos]];
        for (rank, &member) in child.members.iter().enumerate() {
            let counterpart = parent.members[rank % parent.members.len()];
            chaining_msgs.push(GlobalMessage::new(member, counterpart));
            chaining_msgs.push(GlobalMessage::new(counterpart, member));
        }
    }
    crate::deliver_global_checked(net, "dissemination/cluster-chaining", &chaining_msgs);

    // Phase 3: per-cluster load balancing of the initial tokens (Lemma 4.1).
    //
    // Token sets are represented as fixed-universe bitsets over the distinct
    // token values (dense `k`-bit vectors): the converge-cast then unions
    // sets with word-wide ORs and sizes them with popcounts instead of
    // shuffling `BTreeSet`s around — the message *schedule* handed to the
    // global scheduler is unchanged, only the data level got cheap.
    let mut values: Vec<u64> = tokens.iter().map(|&(_, v)| v).collect();
    values.sort_unstable();
    values.dedup();
    let words = values.len().div_ceil(64);
    let popcnt = |set: &[u64]| -> usize { set.iter().map(|w| w.count_ones() as usize).sum() };
    let mut known: Vec<Vec<u64>> = vec![vec![0u64; words]; clustering.len()];
    for &(holder, value) in tokens {
        let idx = values
            .binary_search(&value)
            .expect("value is in the universe");
        known[clustering.cluster_of[holder as usize]][idx / 64] |= 1u64 << (idx % 64);
    }
    net.charge_local(
        "dissemination/load-balance",
        2 * clustering.weak_diameter_bound.max(1),
    );

    // Phase 4a: converge-cast all tokens up the cluster tree, level by level.
    // Clusters accumulate the token sets of their subtrees.
    let levels = cluster_tree.levels();
    let mut max_tokens_per_node = 0u64;
    let mut batch: Vec<GlobalMessage> = Vec::new();
    for level in levels.iter().rev() {
        batch.clear();
        // Within a level every position is a child sending to a parent one
        // level up, so the in-place unions below never feed a set that still
        // has to emit its own payload this level.
        let mut merges: Vec<(usize, usize)> = Vec::new();
        for &pos in level {
            let Some(parent_pos) = cluster_tree.parent[pos] else {
                continue;
            };
            let child_idx = pos_to_cluster[pos];
            let parent_idx = pos_to_cluster[parent_pos];
            let child = &clustering.clusters[child_idx];
            let parent = &clustering.clusters[parent_idx];
            let payload_len = popcnt(&known[child_idx]);
            max_tokens_per_node =
                max_tokens_per_node.max(payload_len.div_ceil(child.members.len()) as u64);
            for i in 0..payload_len {
                let from = child.members[i % child.members.len()];
                let to = parent.members[i % parent.members.len()];
                batch.push(GlobalMessage::new(from, to));
            }
            merges.push((parent_idx, child_idx));
        }
        if !batch.is_empty() {
            // Re-balance inside each cluster before sending (Lemma 4.1).
            net.charge_local(
                "dissemination/load-balance",
                2 * clustering.weak_diameter_bound.max(1),
            );
            crate::deliver_global_checked(net, "dissemination/converge-cast-up", &batch);
        }
        for (parent_idx, child_idx) in merges {
            let (dst, src) = if parent_idx < child_idx {
                let (a, b) = known.split_at_mut(child_idx);
                (&mut a[parent_idx], &b[0])
            } else {
                let (a, b) = known.split_at_mut(parent_idx);
                (&mut b[0], &a[child_idx])
            };
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
    }
    let root_cluster = pos_to_cluster[cluster_tree.root()];
    debug_assert_eq!(
        popcnt(&known[root_cluster]),
        values.len(),
        "root cluster must have gathered every distinct token"
    );

    // Phase 4b: broadcast all tokens back down the tree, level by level.
    let all_tokens: Vec<u64> = values;
    let full: Vec<u64> = known[root_cluster].clone();
    for level in levels.iter() {
        batch.clear();
        for &pos in level {
            let Some(parent_pos) = cluster_tree.parent[pos] else {
                continue;
            };
            let child_idx = pos_to_cluster[pos];
            let parent_idx = pos_to_cluster[parent_pos];
            let child = &clustering.clusters[child_idx];
            let parent = &clustering.clusters[parent_idx];
            for i in 0..all_tokens.len() {
                let from = parent.members[i % parent.members.len()];
                let to = child.members[i % child.members.len()];
                batch.push(GlobalMessage::new(from, to));
            }
            known[child_idx].copy_from_slice(&full);
        }
        if !batch.is_empty() {
            net.charge_local(
                "dissemination/load-balance",
                2 * clustering.weak_diameter_bound.max(1),
            );
            crate::deliver_global_checked(net, "dissemination/broadcast-down", &batch);
        }
    }

    // Phase 5: flood all tokens inside each cluster over the local network.
    net.charge_local(
        "dissemination/intra-cluster-flood",
        clustering.weak_diameter_bound.max(1),
    );

    // Every cluster now knows every token.
    debug_assert!(known.iter().all(|s| popcnt(s) == all_tokens.len()));

    DisseminationOutput {
        k,
        nq: oracle.nq(k),
        radius,
        policy,
        rounds: net.rounds() - before,
        meter: net.meter().clone(),
        tokens: all_tokens,
        max_tokens_per_node,
    }
}

/// Theorem 2 — universally optimal `k`-aggregation in `Õ(NQ_k)` rounds:
/// every node holds `k` values `f_1(v), …, f_k(v)`; afterwards every node
/// knows `F(f_i(v_1), …, f_i(v_n))` for all `i`.
///
/// `values[v]` must have length `k` for every node `v`; `f` must be
/// associative and commutative.
pub fn k_aggregation(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    values: &[Vec<u64>],
    f: impl Fn(u64, u64) -> u64 + Copy,
) -> AggregationOutput {
    let before = net.rounds();
    let n = net.graph().n();
    assert_eq!(values.len(), n, "one value vector per node required");
    let k = values.first().map_or(0, Vec::len);
    assert!(
        values.iter().all(|v| v.len() == k),
        "every node must hold exactly k values"
    );
    if k == 0 {
        return AggregationOutput {
            k: 0,
            nq: oracle.nq(1),
            rounds: 0,
            meter: net.meter().clone(),
            results: Vec::new(),
        };
    }

    let nq = compute_nq(net, oracle, k as u64).nq.max(1);
    let clustering = cluster_with_radius(net, nq, k as u64);

    // Phase 1: intra-cluster aggregation over the local network
    // (weak-diameter rounds), then load balancing.
    let mut partials: Vec<Vec<u64>> = Vec::with_capacity(clustering.len());
    for c in &clustering.clusters {
        let mut agg = values[c.members[0] as usize].clone();
        for &m in &c.members[1..] {
            for (i, &x) in values[m as usize].iter().enumerate() {
                agg[i] = f(agg[i], x);
            }
        }
        partials.push(agg);
    }
    net.charge_local(
        "aggregation/intra-cluster",
        clustering.weak_diameter_bound.max(1),
    );
    net.charge_local(
        "aggregation/load-balance",
        2 * clustering.weak_diameter_bound.max(1),
    );

    // Phase 2: converge-cast the k partial aggregates up the cluster tree.
    let leaders: Vec<NodeId> = clustering.clusters.iter().map(|c| c.leader).collect();
    let cluster_tree = VirtualTree::build(net, &leaders);
    let pos_to_cluster: Vec<usize> = cluster_tree
        .participants
        .iter()
        .map(|leader| {
            clustering
                .clusters
                .iter()
                .position(|c| c.leader == *leader)
                .expect("leader has a cluster")
        })
        .collect();
    let levels = cluster_tree.levels();
    let mut acc: Vec<Vec<u64>> = partials;
    for level in levels.iter().rev() {
        let mut batch: Vec<GlobalMessage> = Vec::new();
        let mut merges: Vec<(usize, Vec<u64>)> = Vec::new();
        for &pos in level {
            let Some(parent_pos) = cluster_tree.parent[pos] else {
                continue;
            };
            let child_idx = pos_to_cluster[pos];
            let parent_idx = pos_to_cluster[parent_pos];
            let child = &clustering.clusters[child_idx];
            let parent = &clustering.clusters[parent_idx];
            for i in 0..k {
                let from = child.members[i % child.members.len()];
                let to = parent.members[i % parent.members.len()];
                batch.push(GlobalMessage::new(from, to));
            }
            merges.push((parent_idx, acc[child_idx].clone()));
        }
        if !batch.is_empty() {
            net.charge_local(
                "aggregation/load-balance",
                2 * clustering.weak_diameter_bound.max(1),
            );
            crate::deliver_global_checked(net, "aggregation/converge-cast-up", &batch);
        }
        for (parent_idx, child_values) in merges {
            for i in 0..k {
                acc[parent_idx][i] = f(acc[parent_idx][i], child_values[i]);
            }
        }
    }
    let root_cluster = pos_to_cluster[cluster_tree.root()];
    let results = acc[root_cluster].clone();

    // Phase 3: flood the results inside the root cluster, then disseminate
    // them to the whole graph with Theorem 1.
    net.charge_local(
        "aggregation/root-flood",
        clustering.weak_diameter_bound.max(1),
    );
    let root_leader = clustering.clusters[root_cluster].leader;
    let result_tokens: Vec<TokenPlacement> = results.iter().map(|&r| (root_leader, r)).collect();
    let _ = disseminate_with_radius(net, oracle, &result_tokens, nq, RadiusPolicy::Fixed(nq));

    AggregationOutput {
        k: k as u64,
        nq,
        rounds: net.rounds() - before,
        meter: net.meter().clone(),
        results,
    }
}

/// Helper used by tests and benches: place `k` tokens with values `0..k` on
/// nodes selected round-robin from `holders` (or adversarially concentrated
/// on a single node when `holders` has one element).
pub fn place_tokens(holders: &[NodeId], k: u64) -> Vec<TokenPlacement> {
    assert!(!holders.is_empty());
    (0..k)
        .map(|t| (holders[(t as usize) % holders.len()], t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, NqOracle, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let net = HybridNetwork::hybrid0(Arc::clone(&g));
        (g, oracle, net)
    }

    #[test]
    fn dissemination_delivers_all_tokens() {
        let (_, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let tokens = place_tokens(&(0..100).collect::<Vec<_>>(), 40);
        let out = k_dissemination(&mut net, &oracle, &tokens);
        assert_eq!(out.k, 40);
        assert_eq!(out.tokens, (0..40).collect::<Vec<u64>>());
        assert!(out.rounds > 0);
    }

    #[test]
    fn dissemination_handles_concentrated_tokens() {
        // All tokens start at a single corner node — Theorem 1 makes no
        // assumption about the initial distribution.
        let (_, oracle, mut net) = setup(generators::grid(&[8, 8]).unwrap());
        let tokens = place_tokens(&[0], 32);
        let out = k_dissemination(&mut net, &oracle, &tokens);
        assert_eq!(out.tokens.len(), 32);
    }

    #[test]
    fn dissemination_zero_tokens_is_cheap() {
        let (_, oracle, mut net) = setup(generators::cycle(20).unwrap());
        let out = k_dissemination(&mut net, &oracle, &[]);
        assert_eq!(out.k, 0);
        assert!(out.tokens.is_empty());
        let log_n = 5u64;
        assert!(out.rounds <= 4 * log_n * log_n);
    }

    #[test]
    fn universal_not_slower_than_baseline_and_faster_on_grids() {
        let g = generators::grid(&[16, 16]).unwrap();
        let k = 200u64;
        let tokens = place_tokens(&(0..256).collect::<Vec<_>>(), k);

        let (_, oracle, mut net_u) = setup(g.clone());
        let uni = k_dissemination(&mut net_u, &oracle, &tokens);

        let (_, oracle_b, mut net_b) = setup(g);
        let base = baseline_sqrt_k_dissemination(&mut net_b, &oracle_b, &tokens);

        assert_eq!(uni.tokens, base.tokens);
        assert!(uni.radius <= base.radius);
        assert!(
            uni.rounds <= base.rounds,
            "universal ({}) slower than baseline ({})",
            uni.rounds,
            base.rounds
        );
        // On a 2-D grid NQ_200 ≈ 200^(1/3) ≈ 6 < √200 ≈ 15, so the gap should
        // be visible, not marginal.
        assert!(
            uni.rounds * 3 < base.rounds * 2,
            "expected a clear win on the grid"
        );
    }

    #[test]
    fn universal_and_baseline_coincide_on_paths() {
        // Theorem 15: on a path NQ_k = Θ(√k), so both policies pick nearly the
        // same radius and the round counts are close.
        let g = generators::path(256).unwrap();
        let tokens = place_tokens(&(0..256).collect::<Vec<_>>(), 64);
        let (_, oracle, mut net_u) = setup(g.clone());
        let uni = k_dissemination(&mut net_u, &oracle, &tokens);
        let (_, oracle_b, mut net_b) = setup(g);
        let base = baseline_sqrt_k_dissemination(&mut net_b, &oracle_b, &tokens);
        assert!(uni.rounds <= base.rounds);
        assert!(
            base.rounds <= 2 * uni.rounds,
            "path should show no large gap"
        );
    }

    #[test]
    fn rounds_scale_like_nq_not_k() {
        let (_, oracle, mut net) = setup(generators::grid(&[12, 12]).unwrap());
        let tokens = place_tokens(&(0..144).collect::<Vec<_>>(), 100);
        let out = k_dissemination(&mut net, &oracle, &tokens);
        let log_n = net.log_n();
        // Õ(NQ_k): generous polylog allowance but far below k.
        assert!(out.rounds <= out.nq * 40 * log_n * log_n);
        assert!(out.rounds < 100 * out.nq * log_n);
    }

    #[test]
    fn load_balance_spreads_evenly() {
        let (_, _, mut net) = setup(generators::cycle(12).unwrap());
        let members: Vec<NodeId> = (0..4).collect();
        let tokens: Vec<u64> = (0..10).collect();
        let assignment = load_balance_cluster(&mut net, &members, &tokens, 3, true);
        assert_eq!(assignment.len(), 4);
        let max = assignment.iter().map(Vec::len).max().unwrap();
        let min = assignment.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(assignment.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(net.rounds(), 6);
    }

    #[test]
    fn aggregation_computes_componentwise_max_and_sum() {
        let (g, oracle, mut net) = setup(generators::grid(&[6, 6]).unwrap());
        let n = g.n();
        let k = 5usize;
        // Node v holds values [v, 2v, 3v, 4v, 5v].
        let values: Vec<Vec<u64>> = (0..n as u64)
            .map(|v| (1..=k as u64).map(|i| i * v).collect())
            .collect();
        let out = k_aggregation(&mut net, &oracle, &values, |a, b| a.max(b));
        let vmax = (n - 1) as u64;
        assert_eq!(
            out.results,
            (1..=k as u64).map(|i| i * vmax).collect::<Vec<_>>()
        );

        let (_, oracle2, mut net2) = setup(generators::grid(&[6, 6]).unwrap());
        let out_sum = k_aggregation(&mut net2, &oracle2, &values, |a, b| a + b);
        let vsum: u64 = (0..n as u64).sum();
        assert_eq!(
            out_sum.results,
            (1..=k as u64).map(|i| i * vsum).collect::<Vec<_>>()
        );
        assert!(out.rounds > 0);
    }

    #[test]
    fn aggregation_empty_k_is_noop() {
        let (g, oracle, mut net) = setup(generators::cycle(10).unwrap());
        let values: Vec<Vec<u64>> = vec![Vec::new(); g.n()];
        let out = k_aggregation(&mut net, &oracle, &values, |a, b| a + b);
        assert_eq!(out.k, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn max_tokens_per_node_close_to_radius() {
        let (_, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let tokens = place_tokens(&(0..100).collect::<Vec<_>>(), 80);
        let out = k_dissemination(&mut net, &oracle, &tokens);
        // Lemma 4.1 + Lemma 3.5: at most ~2·radius tokens per node during the
        // converge-cast (generous constant for integer effects on small graphs).
        assert!(
            out.max_tokens_per_node <= 4 * out.radius.max(1) + 4,
            "load {} exceeds O(radius {})",
            out.max_tokens_per_node,
            out.radius
        );
    }

    #[test]
    fn place_tokens_round_robin() {
        let t = place_tokens(&[3, 7], 5);
        assert_eq!(t, vec![(3, 0), (7, 1), (3, 2), (7, 3), (3, 4)]);
    }
}
