//! Cut approximation (Theorem 9): build a cut sparsifier, broadcast it with
//! Theorem 1, and let every node approximate all cut sizes locally.
//!
//! The paper uses the CONGEST spectral sparsifier of `[KX16]` (`Õ(n/ε²)` edges
//! in `Õ(1/ε²)` rounds).  This reproduction substitutes the classical uniform
//! sampling sparsifier of Karger: every edge is kept independently with
//! probability `p = min(1, c·ln n / (ε²·λ))`, where `λ` is a connectivity
//! estimate (the minimum weighted degree — equal to the minimum cut on the
//! benchmark families), and kept edges are re-weighted by `1/p`.  When `λ` is
//! small the sampler keeps everything and the "sparsifier" is exact, which is
//! also what the paper's machinery degrades to on sparse graphs.  The
//! substitution is documented in DESIGN.md; the benchmark checks the cut
//! approximation quality empirically on every run.

use rand::Rng;

use hybrid_graph::cuts::{cut_weight_mask, min_singleton_cut, sample_random_cuts};
use hybrid_graph::{Graph, GraphBuilder, Weight};
use hybrid_sim::HybridNetwork;

use crate::dissemination::{disseminate_with_radius, RadiusPolicy, TokenPlacement};
use crate::nq::NqOracle;
use crate::prob::ln_n;

/// Sampling constant `c` of the sparsifier (Karger-style uniform sampling).
pub const SPARSIFIER_CONSTANT: f64 = 12.0;

/// A cut sparsifier together with its construction metadata.
#[derive(Debug, Clone)]
pub struct CutSparsifier {
    /// The sparsifier graph (same node set, re-weighted edges).
    pub graph: Graph,
    /// The sampling probability that was used.
    pub probability: f64,
    /// The accuracy parameter ε.
    pub epsilon: f64,
}

/// Output of the Theorem 9 pipeline.
#[derive(Debug, Clone)]
pub struct CutsOutput {
    /// The sparsifier every node ends up knowing.
    pub sparsifier: CutSparsifier,
    /// Total rounds consumed (`Õ(NQ_n/ε + 1/ε²)`).
    pub rounds: u64,
}

/// Builds the cut sparsifier, charging the `Õ(1/ε²)` construction rounds of
/// the distributed algorithm it substitutes.
pub fn cut_sparsifier(net: &mut HybridNetwork, epsilon: f64, rng: &mut impl Rng) -> CutSparsifier {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let graph = net.graph_arc();
    let n = graph.n();
    let lambda = min_singleton_cut(&graph).max(1) as f64;
    let p = (SPARSIFIER_CONSTANT * ln_n(n) / (epsilon * epsilon * lambda)).min(1.0);
    let rounds = ((ln_n(n) / (epsilon * epsilon)).ceil() as u64).max(1);
    net.charge_rounds("cuts/sparsifier-construction", rounds);

    let mut builder = GraphBuilder::new(n);
    for &(u, v, w) in graph.edges() {
        if p >= 1.0 || rng.gen_bool(p) {
            let scaled = ((w as f64) / p).round().max(1.0) as Weight;
            builder.add_edge(u, v, scaled).expect("valid edge");
        }
    }
    CutSparsifier {
        graph: builder.build_unchecked_connectivity(),
        probability: p,
        epsilon,
    }
}

/// Theorem 9 — after `Õ(NQ_n/ε + 1/ε²)` rounds every node can locally compute
/// a `(1+ε)`-approximation of every cut size: build the sparsifier and
/// broadcast its edges with Theorem 1.
pub fn approximate_all_cuts(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    epsilon: f64,
    rng: &mut impl Rng,
) -> CutsOutput {
    let before = net.rounds();
    let sparsifier = cut_sparsifier(net, epsilon, rng);
    // Broadcast the sparsifier's edges (k = |Ê| tokens) with Theorem 1.
    let m = sparsifier.graph.m();
    if m > 0 {
        let tokens: Vec<TokenPlacement> = (0..m as u64).map(|i| (0, i)).collect();
        let nq = oracle.nq(m as u64).max(1);
        let _ = disseminate_with_radius(net, oracle, &tokens, nq, RadiusPolicy::Fixed(nq));
    }
    CutsOutput {
        sparsifier,
        rounds: net.rounds() - before,
    }
}

/// Measures the worst multiplicative error of the sparsifier over `samples`
/// random cuts plus all singleton cuts.  Returns `max(ratio, 1/ratio) - 1`
/// (so `0.0` means exact).
pub fn measured_cut_error(
    graph: &Graph,
    sparsifier: &Graph,
    samples: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut worst: f64 = 0.0;
    let mut check = |mask: &[bool]| {
        let original = cut_weight_mask(graph, mask) as f64;
        let approx = cut_weight_mask(sparsifier, mask) as f64;
        if original == 0.0 {
            return;
        }
        let ratio = if approx >= original {
            approx / original
        } else {
            original / approx.max(1.0)
        };
        worst = worst.max(ratio - 1.0);
    };
    for mask in sample_random_cuts(graph, samples, rng) {
        check(&mask);
    }
    for v in graph.nodes() {
        let mut mask = vec![false; graph.n()];
        mask[v as usize] = true;
        check(&mask);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn sparse_graph_sparsifier_is_exact() {
        // Grid: minimum cut 2 → sampling probability saturates at 1, the
        // sparsifier is the graph itself and every cut is preserved exactly.
        let g = Arc::new(generators::grid(&[6, 6]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sp = cut_sparsifier(&mut net, 0.3, &mut rng);
        assert_eq!(sp.probability, 1.0);
        assert_eq!(sp.graph.m(), g.m());
        let err = measured_cut_error(&g, &sp.graph, 10, &mut rng);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn dense_graph_sparsifier_shrinks_and_approximates() {
        let g = Arc::new(generators::complete(150).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let eps = 0.8;
        let sp = cut_sparsifier(&mut net, eps, &mut rng);
        assert!(sp.probability < 1.0);
        assert!(sp.graph.m() < g.m());
        let err = measured_cut_error(&g, &sp.graph, 30, &mut rng);
        assert!(err <= 2.0 * eps, "cut error {err} too large for eps {eps}");
    }

    #[test]
    fn theorem9_pipeline_charges_broadcast_and_construction() {
        let g = Arc::new(generators::grid(&[8, 8]).unwrap());
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = approximate_all_cuts(&mut net, &oracle, 0.5, &mut rng);
        assert!(out.rounds > 0);
        assert!(net.meter().rounds_for("sparsifier-construction") > 0);
        assert!(net.meter().rounds_for("dissemination") > 0);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn invalid_epsilon_panics() {
        let g = Arc::new(generators::path(8).unwrap());
        let mut net = HybridNetwork::hybrid0(g);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        cut_sparsifier(&mut net, 1.5, &mut rng);
    }
}
