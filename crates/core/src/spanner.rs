//! Multiplicative graph spanners.
//!
//! Theorem 7 broadcasts a `(2k−1)`-spanner with `Õ(k·n^{1+1/k})` edges to the
//! whole network (using Theorem 1) so that every node can approximate APSP
//! locally.  The paper obtains the spanner from the deterministic CONGEST
//! construction of [RG20, Corollary 3.16]; we build the classical greedy
//! `(2k−1)`-spanner of Althöfer et al., which satisfies the same (in fact, a
//! slightly stronger) size bound and the same stretch, and charge the `Õ(1)`
//! CONGEST rounds of the cited construction (see DESIGN.md, substitutions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hybrid_graph::{Graph, GraphBuilder, NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

/// A spanner together with its parameters.
#[derive(Debug, Clone)]
pub struct Spanner {
    /// The spanner subgraph (same node set as the input graph).
    pub graph: Graph,
    /// Stretch guarantee `2k − 1`.
    pub stretch: u64,
    /// The parameter `k`.
    pub k: u64,
}

impl Spanner {
    /// Number of edges of the spanner.
    pub fn m(&self) -> usize {
        self.graph.m()
    }
}

/// The partially built spanner during the greedy scan: an incremental
/// adjacency list plus the reusable buffers of a distance-bounded Dijkstra.
///
/// The greedy test only asks "does the spanner built *so far* contain a
/// `u`–`v` path of weight at most `limit`?", so instead of materializing a
/// CSR graph per candidate edge (the previous implementation cloned the
/// builder and re-ran Bellman–Ford every time, `O(m·n)` allocations), we run
/// a Dijkstra from `u` that prunes at `limit` and stops the moment `v` is
/// settled, sparse-resetting only the touched entries afterwards.
struct PartialSpanner {
    adj: Vec<Vec<(NodeId, Weight)>>,
    dist: Vec<Weight>,
    touched: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
}

impl PartialSpanner {
    fn new(n: usize) -> Self {
        PartialSpanner {
            adj: vec![Vec::new(); n],
            dist: vec![INFINITY; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
    }

    /// Whether the current spanner has a `u`–`v` path of weight `≤ limit`.
    fn has_path_within(&mut self, u: NodeId, v: NodeId, limit: Weight) -> bool {
        for &t in &self.touched {
            self.dist[t as usize] = INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
        self.dist[u as usize] = 0;
        self.touched.push(u);
        self.heap.push(Reverse((0, u)));
        while let Some(Reverse((d, x))) = self.heap.pop() {
            if d > self.dist[x as usize] {
                continue; // stale
            }
            if x == v {
                return true;
            }
            for &(y, w) in &self.adj[x as usize] {
                let nd = d + w;
                if nd <= limit && nd < self.dist[y as usize] {
                    if self.dist[y as usize] == INFINITY {
                        self.touched.push(y);
                    }
                    self.dist[y as usize] = nd;
                    self.heap.push(Reverse((nd, y)));
                }
            }
        }
        false
    }
}

/// Greedy `(2k−1)`-spanner: process edges by non-decreasing weight and keep an
/// edge iff the spanner built so far has no path between its endpoints of
/// weight at most `(2k−1)·w`.  The result has at most `n^{1+1/k}` edges
/// (girth argument) and stretch `2k−1`.
///
/// Charges the `Õ(1)` rounds of the distributed construction on `net` when a
/// network is supplied.
pub fn greedy_spanner(net: Option<&mut HybridNetwork>, graph: &Graph, k: u64) -> Spanner {
    assert!(k >= 1, "spanner parameter k must be at least 1");
    let stretch = 2 * k - 1;
    if let Some(net) = net {
        net.charge_rounds("spanner/rg20-construction", net.polylog(2));
    }
    let mut edges: Vec<(Weight, u32, u32)> =
        graph.edges().iter().map(|&(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();

    let mut partial = PartialSpanner::new(graph.n());
    let mut builder = GraphBuilder::new(graph.n());
    for &(w, u, v) in &edges {
        // A path of weight ≤ (2k−1)·w makes the edge redundant.  (In the
        // unweighted case such a path automatically has ≤ 2k−1 edges, so the
        // distance bound subsumes the hop bound the definition mentions.)
        if !partial.has_path_within(u, v, stretch.saturating_mul(w)) {
            partial.add_edge(u, v, w);
            builder
                .add_edge(u, v, w)
                .expect("input edges are valid and unique");
        }
    }
    Spanner {
        graph: builder.build_unchecked_connectivity(),
        stretch,
        k,
    }
}

/// Verifies the stretch guarantee of `spanner` against `graph` by comparing
/// exact distances from `samples` source nodes; returns the maximum observed
/// stretch.
pub fn measured_stretch(graph: &Graph, spanner: &Graph, samples: &[u32]) -> f64 {
    let mut worst: f64 = 1.0;
    for &s in samples {
        let exact = hybrid_graph::dijkstra::dijkstra(graph, s).dist;
        let approx = hybrid_graph::dijkstra::dijkstra(spanner, s).dist;
        for v in 0..graph.n() {
            if exact[v] == 0 || exact[v] == hybrid_graph::INFINITY {
                continue;
            }
            if approx[v] == hybrid_graph::INFINITY {
                return f64::INFINITY;
            }
            worst = worst.max(approx[v] as f64 / exact[v] as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn spanner_of_tree_is_the_tree() {
        let g = generators::tree_balanced(2, 4).unwrap();
        let s = greedy_spanner(None, &g, 2);
        assert_eq!(s.m(), g.m());
        assert_eq!(s.stretch, 3);
    }

    #[test]
    fn spanner_is_sparse_on_dense_graph() {
        let g = generators::complete(40).unwrap();
        let s = greedy_spanner(None, &g, 2);
        // Girth bound: at most n^{1+1/2} edges; the complete graph has ~n^2/2,
        // so the spanner must be strictly sparser.
        assert!(s.m() < g.m());
        assert!(s.m() as f64 <= 40.0_f64.powf(1.5) + 40.0);
    }

    #[test]
    fn spanner_stretch_holds_unweighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::erdos_renyi(60, 0.15, &mut rng).unwrap();
        for k in [2u64, 3] {
            let s = greedy_spanner(None, &g, k);
            let samples: Vec<u32> = (0..10).collect();
            let stretch = measured_stretch(&g, &s.graph, &samples);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "stretch {stretch} exceeds {}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn spanner_stretch_holds_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::weighted_erdos_renyi(50, 0.2, 20, &mut rng).unwrap();
        let s = greedy_spanner(None, &g, 2);
        let samples: Vec<u32> = (0..8).collect();
        let stretch = measured_stretch(&g, &s.graph, &samples);
        assert!(stretch <= 3.0 + 1e-9, "stretch {stretch} exceeds 3");
    }

    #[test]
    fn spanner_charges_polylog_rounds() {
        let g = Arc::new(generators::grid(&[6, 6]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let _ = greedy_spanner(Some(&mut net), &g, 3);
        assert!(net.rounds() > 0);
        assert!(net.rounds() <= net.polylog(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let g = generators::path(4).unwrap();
        greedy_spanner(None, &g, 0);
    }
}
