//! Multiplicative graph spanners.
//!
//! Theorem 7 broadcasts a `(2k−1)`-spanner with `Õ(k·n^{1+1/k})` edges to the
//! whole network (using Theorem 1) so that every node can approximate APSP
//! locally.  The paper obtains the spanner from the deterministic CONGEST
//! construction of [RG20, Corollary 3.16]; we build the classical greedy
//! `(2k−1)`-spanner of Althöfer et al., which satisfies the same (in fact, a
//! slightly stronger) size bound and the same stretch, and charge the `Õ(1)`
//! CONGEST rounds of the cited construction (see DESIGN.md, substitutions).

use hybrid_graph::dijkstra::hop_limited_distances;
use hybrid_graph::{Graph, GraphBuilder, Weight};
use hybrid_sim::HybridNetwork;

/// A spanner together with its parameters.
#[derive(Debug, Clone)]
pub struct Spanner {
    /// The spanner subgraph (same node set as the input graph).
    pub graph: Graph,
    /// Stretch guarantee `2k − 1`.
    pub stretch: u64,
    /// The parameter `k`.
    pub k: u64,
}

impl Spanner {
    /// Number of edges of the spanner.
    pub fn m(&self) -> usize {
        self.graph.m()
    }
}

/// Greedy `(2k−1)`-spanner: process edges by non-decreasing weight and keep an
/// edge iff the spanner built so far has no path between its endpoints of
/// weight at most `(2k−1)·w`.  The result has at most `n^{1+1/k}` edges
/// (girth argument) and stretch `2k−1`.
///
/// Charges the `Õ(1)` rounds of the distributed construction on `net` when a
/// network is supplied.
pub fn greedy_spanner(net: Option<&mut HybridNetwork>, graph: &Graph, k: u64) -> Spanner {
    assert!(k >= 1, "spanner parameter k must be at least 1");
    let stretch = 2 * k - 1;
    if let Some(net) = net {
        net.charge_rounds("spanner/rg20-construction", net.polylog(2));
    }
    let mut edges: Vec<(Weight, u32, u32)> = graph
        .edges()
        .iter()
        .map(|&(u, v, w)| (w, u, v))
        .collect();
    edges.sort_unstable();

    let mut builder = GraphBuilder::new(graph.n());
    for &(w, u, v) in &edges {
        // Check whether the spanner built so far already offers a path of
        // weight at most (2k-1)·w between u and v.  A path of that weight in
        // the partial spanner uses at most (2k-1) edges in the unweighted case
        // and never more than n-1 edges in general; we bound the hop budget by
        // the stretch for unweighted inputs and fall back to n-1 otherwise.
        let current = builder.clone().build_unchecked_connectivity();
        let budget = if graph.is_weighted() {
            current.n().saturating_sub(1)
        } else {
            stretch as usize
        };
        let dist = hop_limited_distances(&current, u, budget);
        let keep = dist[v as usize] == hybrid_graph::INFINITY
            || dist[v as usize] > stretch.saturating_mul(w);
        if keep {
            builder
                .add_edge(u, v, w)
                .expect("input edges are valid and unique");
        }
    }
    Spanner {
        graph: builder.build_unchecked_connectivity(),
        stretch,
        k,
    }
}

/// Verifies the stretch guarantee of `spanner` against `graph` by comparing
/// exact distances from `samples` source nodes; returns the maximum observed
/// stretch.
pub fn measured_stretch(graph: &Graph, spanner: &Graph, samples: &[u32]) -> f64 {
    let mut worst: f64 = 1.0;
    for &s in samples {
        let exact = hybrid_graph::dijkstra::dijkstra(graph, s).dist;
        let approx = hybrid_graph::dijkstra::dijkstra(spanner, s).dist;
        for v in 0..graph.n() {
            if exact[v] == 0 || exact[v] == hybrid_graph::INFINITY {
                continue;
            }
            if approx[v] == hybrid_graph::INFINITY {
                return f64::INFINITY;
            }
            worst = worst.max(approx[v] as f64 / exact[v] as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn spanner_of_tree_is_the_tree() {
        let g = generators::tree_balanced(2, 4).unwrap();
        let s = greedy_spanner(None, &g, 2);
        assert_eq!(s.m(), g.m());
        assert_eq!(s.stretch, 3);
    }

    #[test]
    fn spanner_is_sparse_on_dense_graph() {
        let g = generators::complete(40).unwrap();
        let s = greedy_spanner(None, &g, 2);
        // Girth bound: at most n^{1+1/2} edges; the complete graph has ~n^2/2,
        // so the spanner must be strictly sparser.
        assert!(s.m() < g.m());
        assert!(s.m() as f64 <= 40.0_f64.powf(1.5) + 40.0);
    }

    #[test]
    fn spanner_stretch_holds_unweighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::erdos_renyi(60, 0.15, &mut rng).unwrap();
        for k in [2u64, 3] {
            let s = greedy_spanner(None, &g, k);
            let samples: Vec<u32> = (0..10).collect();
            let stretch = measured_stretch(&g, &s.graph, &samples);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "stretch {stretch} exceeds {}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn spanner_stretch_holds_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::weighted_erdos_renyi(50, 0.2, 20, &mut rng).unwrap();
        let s = greedy_spanner(None, &g, 2);
        let samples: Vec<u32> = (0..8).collect();
        let stretch = measured_stretch(&g, &s.graph, &samples);
        assert!(stretch <= 3.0 + 1e-9, "stretch {stretch} exceeds 3");
    }

    #[test]
    fn spanner_charges_polylog_rounds() {
        let g = Arc::new(generators::grid(&[6, 6]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let _ = greedy_spanner(Some(&mut net), &g, 3);
        assert!(net.rounds() > 0);
        assert!(net.rounds() <= net.polylog(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let g = generators::path(4).unwrap();
        greedy_spanner(None, &g, 0);
    }
}
