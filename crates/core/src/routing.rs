//! Universally optimal multi-message unicast: the `(k, ℓ)`-routing problem
//! (Definition 1.3, Theorem 3) and the existentially optimal baseline of
//! `[KS20]`.
//!
//! Every source `s ∈ S` holds one individual message for every target
//! `t ∈ T`; every target must learn all `|S|` messages addressed to it.  The
//! universal algorithm (Theorem 3) reaches `Õ(NQ_k)` rounds by combining
//!
//! * **adaptive helper sets** (Lemma 5.2) that multiply each source's /
//!   target's global bandwidth by `k/NQ_k`,
//! * **pseudo-random intermediate nodes** chosen by a `κ`-wise independent
//!   hash `h(ID(s), ID(t))` (Lemma 5.3), which removes the need for sources
//!   and target helpers to know each other's identifiers, and
//! * **source consolidation** (Lemma 5.4) when `k` is too large for helper
//!   sets to exist (`k > √(n·NQ_k)`): sources inside each cluster first merge
//!   their traffic into one super-source per cluster over the local network.
//!
//! Every phase's global messages are scheduled explicitly under the per-node
//! capacity, so unbalanced communication genuinely costs more rounds.  The
//! paper's sub-target refinement of Lemma 5.4 (splitting overloaded targets)
//! is not implemented; its only effect here would be to reduce the receive
//! load of targets in extreme parameter ranges — with our scheduler the
//! missing refinement shows up as (at most) extra rounds, never as an
//! incorrect result.  See DESIGN.md.

use std::collections::{BTreeSet, HashMap};

use rand::Rng;

use hybrid_graph::NodeId;
use hybrid_sim::{CostMeter, GlobalMessage, HybridNetwork};

use crate::cluster::cluster_with_radius;
use crate::dissemination::{disseminate_with_radius, RadiusPolicy, TokenPlacement};
use crate::hashing::KWiseHash;
use crate::helpers::adaptive_helper_sets;
use crate::nq::{compute_nq, NqOracle};

/// Which of the four source/target scenarios of Definition 1.3 an instance
/// belongs to (the "arbitrary/arbitrary" case is not solvable in `Õ(NQ_k)`
/// rounds in general and is covered by broadcasting, Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingScenario {
    /// Theorem 3 case (1): arbitrary sources, randomly sampled targets,
    /// requires `ℓ ≤ NQ_k`.
    ArbitrarySourcesRandomTargets,
    /// Theorem 3 case (2): randomly sampled sources, arbitrary targets,
    /// requires `k ≤ NQ_ℓ`.
    RandomSourcesArbitraryTargets,
    /// Theorem 3 case (3): both sampled, requires `k·ℓ ≤ NQ_k·n`.
    RandomSourcesRandomTargets,
}

/// Result of a `(k, ℓ)`-routing run.
#[derive(Debug, Clone)]
pub struct RoutingOutput {
    /// Number of sources `k = |S|`.
    pub k: usize,
    /// Number of targets `ℓ = |T|`.
    pub l: usize,
    /// The graph's `NQ_k` (for the source count `k`).
    pub nq: u64,
    /// The radius parameter the run used.
    pub radius: u64,
    /// Total rounds consumed.
    pub rounds: u64,
    /// Full cost trace.
    pub meter: CostMeter,
    /// For every target, the set of source ids whose message it received —
    /// correctness means every set equals `S`.
    pub received: HashMap<NodeId, BTreeSet<NodeId>>,
    /// Maximum number of `(s,t)` pairs mapped to a single intermediate node
    /// (Lemma 5.3 property (1) promises `O(NQ_k)` w.h.p.).
    pub max_intermediate_load: u64,
}

impl RoutingOutput {
    /// Whether every target received every source's message.
    pub fn is_complete(&self, sources: &[NodeId], targets: &[NodeId]) -> bool {
        let source_set: BTreeSet<NodeId> = sources.iter().copied().collect();
        targets.iter().all(|t| {
            self.received
                .get(t)
                .map_or(sources.is_empty(), |r| *r == source_set)
        })
    }
}

/// Theorem 3 — universally optimal `(k, ℓ)`-routing in `Õ(NQ_k)` (cases 1/3)
/// or `Õ(NQ_ℓ)` (case 2) rounds w.h.p.
pub fn kl_routing(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    sources: &[NodeId],
    targets: &[NodeId],
    scenario: RoutingScenario,
    rng: &mut impl Rng,
) -> RoutingOutput {
    match scenario {
        RoutingScenario::ArbitrarySourcesRandomTargets => {
            let nq = compute_nq(net, oracle, sources.len().max(1) as u64)
                .nq
                .max(1);
            route_engine(net, oracle, sources, targets, nq, false, rng)
        }
        RoutingScenario::RandomSourcesRandomTargets => {
            let nq = compute_nq(net, oracle, sources.len().max(1) as u64)
                .nq
                .max(1);
            route_engine(net, oracle, sources, targets, nq, true, rng)
        }
        RoutingScenario::RandomSourcesArbitraryTargets => {
            // Case (2) reduces to case (1) with the roles of sources and
            // targets reversed: a logging pass is routed from targets to
            // sources and the real messages retrace it (proof of Theorem 3).
            let nq_l = compute_nq(net, oracle, targets.len().max(1) as u64)
                .nq
                .max(1);
            // Logging pass (reverse direction).
            let logging = route_engine(net, oracle, targets, sources, nq_l, false, rng);
            // Retrace pass: same communication pattern in reverse, same cost.
            net.charge_rounds("routing/retrace-logging-paths", logging.rounds);
            // The real messages flow source -> target; record them delivered.
            let mut received: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
            for &t in targets {
                received.insert(t, sources.iter().copied().collect());
            }
            RoutingOutput {
                k: sources.len(),
                l: targets.len(),
                nq: nq_l,
                radius: logging.radius,
                rounds: logging.rounds * 2,
                meter: net.meter().clone(),
                received,
                max_intermediate_load: logging.max_intermediate_load,
            }
        }
    }
}

/// The existentially optimal baseline (`[KS20]`, `Õ(√k + kℓ/n)` rounds): the
/// identical engine with the worst-case radius `min(⌈√k⌉, D)`.
pub fn baseline_sqrt_k_routing(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    sources: &[NodeId],
    targets: &[NodeId],
    rng: &mut impl Rng,
) -> RoutingOutput {
    let k = sources.len().max(1) as u64;
    let radius = ((k as f64).sqrt().ceil() as u64)
        .max(1)
        .min(oracle.diameter().max(1));
    route_engine(net, oracle, sources, targets, radius, true, rng)
}

/// Shared routing engine parameterized by the helper-set radius.
fn route_engine(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    sources: &[NodeId],
    targets: &[NodeId],
    radius: u64,
    use_source_helpers: bool,
    rng: &mut impl Rng,
) -> RoutingOutput {
    let before = net.rounds();
    let graph = net.graph_arc();
    let n = graph.n();
    let k = sources.len();
    let l = targets.len();
    let nq = oracle.nq(k.max(1) as u64);

    if k == 0 || l == 0 {
        return RoutingOutput {
            k,
            l,
            nq,
            radius,
            rounds: net.rounds() - before,
            meter: net.meter().clone(),
            received: targets.iter().map(|&t| (t, BTreeSet::new())).collect(),
            max_intermediate_load: 0,
        };
    }

    // Clustering with the prescribed radius; helper sets live inside clusters.
    let clustering = cluster_with_radius(net, radius, k as u64);

    // Lemma 5.4: if k is too large for per-source helper sets, consolidate
    // sources into one super-source per cluster over the local network.
    let threshold = ((n as f64) * radius as f64).sqrt();
    let consolidate = use_source_helpers && (k as f64) > threshold;
    // effective_sender[s] = the node that will inject s's traffic globally.
    let mut effective_sender: HashMap<NodeId, NodeId> = HashMap::new();
    if consolidate {
        net.charge_local(
            "routing/consolidate-super-sources",
            2 * clustering.weak_diameter_bound.max(1),
        );
        for &s in sources {
            let cluster = clustering.cluster_of_node(s);
            // Super-source: the first source of the cluster (by id).
            let super_source = cluster
                .members
                .iter()
                .copied()
                .filter(|m| sources.contains(m))
                .min()
                .unwrap_or(s);
            effective_sender.insert(s, super_source);
        }
    } else {
        for &s in sources {
            effective_sender.insert(s, s);
        }
    }

    // Adaptive helper sets for the targets (Lemma 5.2) and, in the
    // symmetric case, for the (effective) sources.
    let target_helpers = adaptive_helper_sets(net, &clustering, targets, rng);
    let source_helper_sets = if use_source_helpers {
        let effective: Vec<NodeId> = {
            let mut v: Vec<NodeId> = effective_sender.values().copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        Some(adaptive_helper_sets(net, &clustering, &effective, rng))
    } else {
        None
    };

    // Broadcast the source identifiers and the hash seed with Theorem 1:
    // k tokens for S plus ⌈seed_bits / log n⌉ tokens for the seed.
    let kappa = ((radius.max(1) as usize) * graph.log2_n()).max(2);
    let hash = KWiseHash::sample(kappa, n as u64, rng);
    let seed_tokens = (hash.seed_bits() as usize).div_ceil(graph.log2_n().max(1));
    let broadcast_payload: Vec<TokenPlacement> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u64))
        .chain((0..seed_tokens).map(|i| (sources[0], (k + i) as u64)))
        .collect();
    let _ = disseminate_with_radius(
        net,
        oracle,
        &broadcast_payload,
        radius,
        RadiusPolicy::Fixed(radius),
    );

    // If sources use helper sets, spread each source's ℓ messages over its
    // helpers via the local network first.
    if use_source_helpers {
        net.charge_local(
            "routing/spread-to-source-helpers",
            clustering.weak_diameter_bound.max(1),
        );
    }

    // Phase A: senders -> intermediate nodes h(s, t).
    let mut intermediate_load = vec![0u64; n];
    let mut phase_a: Vec<GlobalMessage> = Vec::with_capacity(k * l);
    let mut phase_b: Vec<GlobalMessage> = Vec::with_capacity(k * l);
    let mut phase_c: Vec<GlobalMessage> = Vec::with_capacity(k * l);
    let mut received: HashMap<NodeId, BTreeSet<NodeId>> =
        targets.iter().map(|&t| (t, BTreeSet::new())).collect();

    for (ti, &t) in targets.iter().enumerate() {
        let t_helpers = &target_helpers.sets[&t];
        for (si, &s) in sources.iter().enumerate() {
            let mid = hash.eval_pair(s as u64, t as u64) as usize % n;
            intermediate_load[mid] += 1;
            // Sender side: either the source itself, or one of the helpers of
            // its effective (super-)source, balanced by the message index.
            let injector = if let Some(src_helpers) = &source_helper_sets {
                let eff = effective_sender[&s];
                let hs = &src_helpers.sets[&eff];
                hs[(si * l + ti) % hs.len()]
            } else {
                effective_sender[&s]
            };
            phase_a.push(GlobalMessage::new(injector, mid as NodeId));
            // Receiver side: the helper of t responsible for this message.
            let collector = t_helpers[(si + ti) % t_helpers.len()];
            phase_b.push(GlobalMessage::new(collector, mid as NodeId));
            phase_c.push(GlobalMessage::new(mid as NodeId, collector));
            received.get_mut(&t).expect("target registered").insert(s);
        }
    }
    crate::deliver_global_checked(net, "routing/send-to-intermediates", &phase_a);
    crate::deliver_global_checked(net, "routing/helper-requests", &phase_b);
    crate::deliver_global_checked(net, "routing/intermediate-replies", &phase_c);

    // Final phase: targets collect their messages from their helpers locally.
    net.charge_local(
        "routing/collect-from-helpers",
        clustering.weak_diameter_bound.max(1),
    );

    RoutingOutput {
        k,
        l,
        nq,
        radius,
        rounds: net.rounds() - before,
        meter: net.meter().clone(),
        received,
        max_intermediate_load: intermediate_load.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::{sample_distinct, sample_with_probability};
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, NqOracle, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let net = HybridNetwork::hybrid(Arc::clone(&g));
        (g, oracle, net)
    }

    #[test]
    fn case1_arbitrary_sources_random_targets_delivers() {
        let (g, oracle, mut net) = setup(generators::grid(&[12, 12]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sources = sample_distinct(g.n(), 30, &mut rng); // arbitrary
        let nq = oracle.nq(30);
        let l_prob = (nq as f64 / g.n() as f64).min(1.0);
        let mut targets = sample_with_probability(g.n(), l_prob, &mut rng);
        if targets.is_empty() {
            targets.push(7);
        }
        let out = kl_routing(
            &mut net,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        assert!(out.is_complete(&sources, &targets));
        assert_eq!(out.k, 30);
        assert!(out.rounds > 0);
    }

    #[test]
    fn case3_random_sources_random_targets_delivers() {
        let (g, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sources = sample_with_probability(g.n(), 0.2, &mut rng);
        let targets = sample_with_probability(g.n(), 0.05, &mut rng);
        let out = kl_routing(
            &mut net,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::RandomSourcesRandomTargets,
            &mut rng,
        );
        assert!(out.is_complete(&sources, &targets));
    }

    #[test]
    fn case2_reverse_direction_costs_double_the_logging_pass() {
        let (g, oracle, mut net) = setup(generators::grid(&[8, 8]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sources = sample_with_probability(g.n(), 0.05, &mut rng);
        let sources = if sources.is_empty() { vec![1] } else { sources };
        let targets = sample_distinct(g.n(), 10, &mut rng);
        let out = kl_routing(
            &mut net,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::RandomSourcesArbitraryTargets,
            &mut rng,
        );
        assert!(out.is_complete(&sources, &targets));
        assert_eq!(out.rounds % 2, 0);
    }

    #[test]
    fn empty_instances_are_noops() {
        let (_, oracle, mut net) = setup(generators::cycle(20).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out = kl_routing(
            &mut net,
            &oracle,
            &[],
            &[5],
            RoutingScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        assert_eq!(out.k, 0);
        assert!(out.is_complete(&[], &[5]));
    }

    #[test]
    fn universal_beats_baseline_on_grid() {
        let g = generators::grid(&[14, 14]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sources = sample_distinct(g.n(), 60, &mut rng);
        let nq_k = NqOracle::new(&g).nq(60);
        let targets = sample_distinct(g.n(), (nq_k as usize).max(2), &mut rng);

        let (_, oracle, mut net_u) = setup(g.clone());
        let uni = kl_routing(
            &mut net_u,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        let (_, oracle_b, mut net_b) = setup(g);
        let base = baseline_sqrt_k_routing(&mut net_b, &oracle_b, &sources, &targets, &mut rng);
        assert!(uni.is_complete(&sources, &targets));
        assert!(base.is_complete(&sources, &targets));
        assert!(
            uni.rounds <= base.rounds,
            "universal {} > baseline {}",
            uni.rounds,
            base.rounds
        );
    }

    #[test]
    fn intermediate_load_is_balanced() {
        let (g, oracle, mut net) = setup(generators::grid(&[12, 12]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let sources = sample_distinct(g.n(), 40, &mut rng);
        let targets = sample_distinct(g.n(), 6, &mut rng);
        let out = kl_routing(
            &mut net,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        // Lemma 5.3: the max load on an intermediate node is O(kℓ/n + log n).
        let expected = (out.k * out.l) as f64 / g.n() as f64;
        let bound = 8.0 * (expected + (g.n() as f64).ln() + out.nq as f64);
        assert!(
            (out.max_intermediate_load as f64) <= bound,
            "load {} above bound {bound}",
            out.max_intermediate_load
        );
    }

    #[test]
    fn consolidation_triggers_for_large_k() {
        // k > sqrt(n * NQ_k) forces the Lemma 5.4 consolidation path.
        let (g, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect(); // k = n
        let targets = sample_distinct(g.n(), 3, &mut rng);
        let out = kl_routing(
            &mut net,
            &oracle,
            &sources,
            &targets,
            RoutingScenario::RandomSourcesRandomTargets,
            &mut rng,
        );
        assert!(out.is_complete(&sources, &targets));
        assert!(out.meter.rounds_for("consolidate-super-sources") > 0);
    }
}
