//! Universal lower bounds (Section 7) as computable witness values.
//!
//! All lower bounds reduce to the **node communication problem**
//! (Appendix C): a set `A` collectively knows the state of a random variable
//! `X` and a distant set `B` must learn it.  Lemma 7.1 bounds the rounds by
//! `min((p·H(X) − 1)/(N·γ), h/2 − 1)` where `h = hop(A, B)`, `N = |B_{h−1}(A)|`
//! and `γ` is the per-node global capacity in bits.
//!
//! * Lemma 7.2 / Theorem 4: `k`-dissemination, `k`-aggregation and
//!   `(k, ℓ)`-routing take `Ω̃(NQ_k)` rounds — [`dissemination_lower_bound`];
//! * Theorem 10: unweighted `k`-SSP in `Hybrid0` — same witness;
//! * Theorems 11/12: weighted `(k, ℓ)`-SP in `Hybrid` —
//!   [`shortest_paths_lower_bound`].
//!
//! The returned values are *round lower bounds for the concrete input graph*
//! (not asymptotic statements), so the benchmark harness can print
//! "measured rounds vs. lower-bound witness" columns for every scenario.

use hybrid_graph::NodeId;
use hybrid_sim::ModelParams;

use crate::nq::NqSource;

/// Lemma 7.1 — round lower bound for the node communication problem.
///
/// * `entropy_bits` — Shannon entropy `H(X)` of the information to transfer;
/// * `ball_size` — `N = |B_{h−1}(A)|`, the nodes that can help globally;
/// * `gamma_bits` — per-node global capacity in bits per round;
/// * `hop_distance` — `h = hop(A, B)`;
/// * `success_probability` — the success probability `p` of the algorithm.
pub fn node_communication_lower_bound(
    entropy_bits: f64,
    ball_size: u64,
    gamma_bits: u64,
    hop_distance: u64,
    success_probability: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&success_probability));
    let info_term = (success_probability * entropy_bits - 1.0)
        / ((ball_size.max(1) as f64) * (gamma_bits.max(1) as f64));
    let local_term = hop_distance as f64 / 2.0 - 1.0;
    info_term.min(local_term).max(0.0)
}

/// A concrete lower-bound witness on a given graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBoundWitness {
    /// The node `v` around which the information gap is constructed
    /// (the Lemma 3.8 witness maximizing `NQ_k(v)`).
    pub witness: NodeId,
    /// The hop distance `h` used in the reduction.
    pub hop_distance: u64,
    /// `N = |B_{h}(v)|` (the witness's helper ball).
    pub ball_size: u64,
    /// Entropy of the planted random variable, in bits.
    pub entropy_bits: f64,
    /// The resulting round lower bound.
    pub rounds: f64,
    /// The `NQ_k` value of the graph for the workload in question.
    pub nq: u64,
}

/// Lemma 7.2 / Theorem 4 — universal lower bound of `Ω̃(NQ_k)` rounds for
/// `k`-dissemination (and, by reduction, `k`-aggregation and
/// `(k, ℓ)`-routing with arbitrary targets), on the *given* graph, for
/// algorithms succeeding with probability `p`.
///
/// Generic over [`NqSource`]: the exact [`crate::nq::NqOracle`] yields the
/// exact witness; a [`crate::nq::SampledNqOracle`] yields a sound sampled
/// witness (its `NQ_k` and ball values are exact for the sampled node, which
/// just may not be the global maximizer).
pub fn dissemination_lower_bound(
    oracle: &impl NqSource,
    params: &ModelParams,
    k: u64,
    success_probability: f64,
) -> LowerBoundWitness {
    let k = k.max(1);
    let nq = oracle.nq(k);
    let witness = oracle.witness(k);
    if nq < 6 {
        // The paper's reduction assumes NQ_k(v) >= 6; below that the bound is
        // the trivial one.
        return LowerBoundWitness {
            witness,
            hop_distance: 1,
            ball_size: oracle.ball_size(witness, 1) as u64,
            entropy_bits: k as f64 / 2.0,
            rounds: 0.0,
            nq,
        };
    }
    let r = nq - 1;
    let h = (r / 3).saturating_sub(1).max(1);
    let ball = oracle.ball_size(witness, h) as u64;
    let entropy = k as f64 / 2.0;
    let rounds =
        node_communication_lower_bound(entropy, ball, params.gamma_bits(), h, success_probability);
    LowerBoundWitness {
        witness,
        hop_distance: h,
        ball_size: ball,
        entropy_bits: entropy,
        rounds,
        nq,
    }
}

/// Theorem 10 — lower bound for unweighted `k`-SSP with random sources in
/// `Hybrid0` (identifiers must be learned, so the `k`-dissemination reduction
/// applies verbatim).
pub fn unweighted_kssp_lower_bound(
    oracle: &impl NqSource,
    params: &ModelParams,
    k: u64,
    success_probability: f64,
) -> LowerBoundWitness {
    dissemination_lower_bound(oracle, params, k, success_probability)
}

/// Theorems 11 / 12 — lower bound of `Ω̃(NQ_k)` rounds for weighted
/// `(k, ℓ)`-SP in `Hybrid` (even with known topology / known sources), for
/// any polynomial stretch.  The planted random variable has entropy `k` bits
/// (one bit per source: which of the two distant node sets hosts it).
pub fn shortest_paths_lower_bound(
    oracle: &impl NqSource,
    params: &ModelParams,
    k: u64,
    success_probability: f64,
) -> LowerBoundWitness {
    let k = k.max(1);
    let nq = oracle.nq(k);
    let witness = oracle.witness(k);
    if nq < 3 {
        return LowerBoundWitness {
            witness,
            hop_distance: 1,
            ball_size: oracle.ball_size(witness, 1) as u64,
            entropy_bits: k as f64,
            rounds: 0.0,
            nq,
        };
    }
    let h = nq - 1;
    let ball = oracle.ball_size(witness, h.saturating_sub(1).max(1)) as u64;
    let entropy = k as f64;
    let rounds =
        node_communication_lower_bound(entropy, ball, params.gamma_bits(), h, success_probability);
    LowerBoundWitness {
        witness,
        hop_distance: h,
        ball_size: ball,
        entropy_bits: entropy,
        rounds,
        nq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nq::NqOracle;
    use hybrid_graph::generators;

    #[test]
    fn node_communication_bound_behaves() {
        // More entropy -> larger bound (until the h/2 term caps it).
        let a = node_communication_lower_bound(1000.0, 10, 10, 1000, 1.0);
        let b = node_communication_lower_bound(100.0, 10, 10, 1000, 1.0);
        assert!(a > b);
        // The local term caps the bound.
        let capped = node_communication_lower_bound(1e12, 1, 1, 10, 1.0);
        assert_eq!(capped, 4.0);
        // Never negative.
        assert_eq!(node_communication_lower_bound(0.5, 10, 10, 1, 0.5), 0.0);
    }

    #[test]
    fn dissemination_bound_scales_with_nq_on_path() {
        let g = generators::path(900).unwrap();
        let oracle = NqOracle::new(&g);
        let params = ModelParams::hybrid(g.n());
        let small = dissemination_lower_bound(&oracle, &params, 64, 0.9);
        let large = dissemination_lower_bound(&oracle, &params, 1024, 0.9);
        assert!(large.nq > small.nq);
        assert!(large.rounds > small.rounds);
        // The bound is Ω̃(NQ_k): within a polylog factor below NQ_k.
        assert!(large.rounds <= large.nq as f64);
    }

    #[test]
    fn dissemination_bound_nontrivial_and_below_upper_bound_shape() {
        // A large workload makes NQ_k big enough that the Lemma 7.2 reduction
        // (which needs NQ_k(v) >= 6) produces a non-trivial bound.
        let g = generators::grid(&[20, 20]).unwrap();
        let oracle = NqOracle::new(&g);
        let params = ModelParams::hybrid(g.n());
        let w = dissemination_lower_bound(&oracle, &params, 4000, 0.99);
        assert!(w.rounds > 0.0);
        assert!(w.rounds <= w.nq as f64);
        assert!(w.ball_size > 0);
    }

    #[test]
    fn trivial_bound_for_small_nq() {
        let g = generators::complete(32).unwrap();
        let oracle = NqOracle::new(&g);
        let params = ModelParams::hybrid(g.n());
        let w = dissemination_lower_bound(&oracle, &params, 32, 0.9);
        assert_eq!(w.rounds, 0.0);
        assert_eq!(w.nq, 1);
    }

    #[test]
    fn shortest_paths_bound_on_path_is_near_nq() {
        let g = generators::path(800).unwrap();
        let oracle = NqOracle::new(&g);
        let params = ModelParams::hybrid(g.n());
        let k = 400u64;
        let w = shortest_paths_lower_bound(&oracle, &params, k, 1.0);
        assert!(w.rounds > 0.0);
        // The bound is Ω̃(NQ_k): the hidden factor is at most the 1/γ = 1/Õ(1)
        // of Lemma 7.1, so the witness value lies between NQ_k / γ_bits and
        // NQ_k itself.
        assert!(w.rounds >= w.nq as f64 / (2.0 * params.gamma_bits() as f64));
        assert!(w.rounds <= w.nq as f64);
    }

    #[test]
    fn sampled_oracle_yields_a_sound_witness() {
        use crate::nq::SampledNqOracle;
        let g = generators::path(600).unwrap();
        let params = ModelParams::hybrid(g.n());
        let k = 600u64;
        let exact = NqOracle::new(&g);
        let sampled = SampledNqOracle::new(&g, 32, k, 0.02, 5);
        let we = dissemination_lower_bound(&exact, &params, k, 0.9);
        let ws = dissemination_lower_bound(&sampled, &params, k, 0.9);
        // The sampled NQ estimate is a guaranteed lower bound on the exact
        // one, and the resulting witness keeps the Ω̃(NQ_k) shape.
        assert!(ws.nq <= we.nq);
        assert!(ws.rounds <= ws.nq as f64);
        assert!(ws.rounds > 0.0, "path NQ is large; sampling keeps it so");
    }

    #[test]
    fn kssp_bound_equals_dissemination_bound() {
        let g = generators::grid(&[15, 15]).unwrap();
        let oracle = NqOracle::new(&g);
        let params = ModelParams::hybrid(g.n());
        let a = dissemination_lower_bound(&oracle, &params, 100, 0.5);
        let b = unweighted_kssp_lower_bound(&oracle, &params, 100, 0.5);
        assert_eq!(a, b);
    }
}
