//! The Minor-Aggregation interface model (Section 8) and the Eulerian
//! orientation oracle `O_Euler` (Section 8.2).
//!
//! `[RGH+22]` show that a `(1+ε)`-approximation of SSSP reduces to `Õ(1/ε²)`
//! rounds of the *Minor-Aggregation* model plus calls to an oracle that
//! orients the edges of an Eulerian subgraph so that every node has equal in-
//! and out-degree.  The paper's Theorem 13 follows by implementing both in
//! `Hybrid0` in `Õ(1)` rounds (Lemmas 8.2 and 8.6).
//!
//! This module provides
//!
//! * [`MinorAggregation`] — the contract / consensus / aggregate steps of the
//!   interface model, executed at the data level on the simulator and charged
//!   `Õ(1)` rounds per step (Lemma 8.2), and
//! * [`eulerian_orientation`] — an actual Eulerian-orientation algorithm
//!   (cycle peeling over an Eulerian partition of the edge set), the result
//!   the `Õ(1)`-round distributed implementation of Lemma 8.6 produces.
//!
//! # How a Minor-Aggregation round maps onto `Hybrid0`
//!
//! One interface round does three things ([`MinorAggregation::round`]):
//!
//! 1. **Contract** — the caller marks a subset of local edges; the connected
//!    components of the marked subgraph become *supernodes*
//!    ([`MinorAggregation::supernode_of`] maps each node to the minimum id of
//!    its component, the representative the distributed implementation
//!    elects).
//! 2. **Consensus** — every node contributes an `Õ(1)`-bit input; within each
//!    supernode the inputs are folded with the caller's associative operator
//!    and the result is known to all members
//!    ([`MinorAggregation::consensus`]).
//! 3. **Charge** — Lemma 8.2 implements both steps with one overlay tree per
//!    supernode ([`crate::overlay`]) in `Õ(1)` `Hybrid0` rounds; the
//!    simulator charges exactly that (`minor-aggregation/round` cost-trace
//!    entry).
//!
//! The SSSP algorithm of Theorem 13 ([`crate::sssp`]) consumes this
//! interface `Õ(1/ε²)` times, interleaved with `O_Euler` calls on the
//! (Eulerian) support of a flow; [`eulerian_orientation`] peels cycles
//! Hierholzer-style, which is precisely the orientation the distributed
//! Lemma 8.6 implementation converges to, and panics on non-Eulerian input
//! (every node must have even degree).

use hybrid_graph::{EdgeId, Graph, NodeId};
use hybrid_sim::HybridNetwork;

/// One round of the Minor-Aggregation model over the local communication
/// graph, simulated in `Õ(1)` HYBRID0 rounds (Lemma 8.2).
///
/// The caller supplies, per Minor-Aggregation round:
/// * which edges are contracted (`contract`),
/// * each node's `Õ(1)`-bit consensus input (`inputs`),
/// * the aggregation operator for the consensus step.
///
/// The struct computes the supernode decomposition and the consensus values,
/// and charges the simulation cost.
#[derive(Debug, Clone)]
pub struct MinorAggregation {
    /// For every node, the id of its supernode (the minimum node id of its
    /// contracted component).
    pub supernode_of: Vec<NodeId>,
    /// The consensus value of every node's supernode.
    pub consensus: Vec<u64>,
    /// Rounds charged for this Minor-Aggregation round.
    pub rounds: u64,
}

impl MinorAggregation {
    /// Executes one Minor-Aggregation round: contraction along `contract`
    /// edges, consensus with operator `op` over `inputs`, and charges the
    /// `Õ(1)` simulation rounds of Lemma 8.2 on `net`.
    pub fn round(
        net: &mut HybridNetwork,
        contract: impl Fn(EdgeId) -> bool,
        inputs: &[u64],
        op: impl Fn(u64, u64) -> u64,
    ) -> Self {
        let graph = net.graph_arc();
        let n = graph.n();
        assert_eq!(inputs.len(), n, "one consensus input per node");
        let before = net.rounds();

        // Supernodes: connected components of the contracted subgraph.
        let contracted = graph.edge_subgraph(&contract);
        let (comp, comp_count) = hybrid_graph::traversal::connected_components(&contracted);
        // Representative = minimum node id per component.
        let mut rep = vec![NodeId::MAX; comp_count];
        for v in 0..n {
            rep[comp[v]] = rep[comp[v]].min(v as NodeId);
        }
        let supernode_of: Vec<NodeId> = (0..n).map(|v| rep[comp[v]]).collect();

        // Consensus: aggregate inputs within each supernode.
        let mut consensus_by_comp: Vec<Option<u64>> = vec![None; comp_count];
        for v in 0..n {
            let c = comp[v];
            consensus_by_comp[c] = Some(match consensus_by_comp[c] {
                None => inputs[v],
                Some(acc) => op(acc, inputs[v]),
            });
        }
        let consensus: Vec<u64> = (0..n)
            .map(|v| consensus_by_comp[comp[v]].expect("component non-empty"))
            .collect();

        // Lemma 8.2: Õ(1) rounds per Minor-Aggregation round (overlay trees on
        // each supernode, each of logarithmic depth).
        net.charge_rounds("minor-aggregation/round", net.polylog(1).max(1));

        MinorAggregation {
            supernode_of,
            consensus,
            rounds: net.rounds() - before,
        }
    }
}

/// An orientation of a graph's edges: `towards_v[e]` is `true` when edge
/// `e = {u, v}` (with `u < v` as stored in the graph) is oriented `u → v`.
#[derive(Debug, Clone)]
pub struct Orientation {
    /// Orientation flag per edge id (`true` = from the smaller endpoint to the
    /// larger one).
    pub towards_larger: Vec<bool>,
}

impl Orientation {
    /// In-degree and out-degree of every node under this orientation.
    pub fn degrees(&self, graph: &Graph) -> (Vec<usize>, Vec<usize>) {
        let mut indeg = vec![0usize; graph.n()];
        let mut outdeg = vec![0usize; graph.n()];
        for (e, &(u, v, _)) in graph.edges().iter().enumerate() {
            if self.towards_larger[e] {
                outdeg[u as usize] += 1;
                indeg[v as usize] += 1;
            } else {
                outdeg[v as usize] += 1;
                indeg[u as usize] += 1;
            }
        }
        (indeg, outdeg)
    }
}

/// The oracle `O_Euler` (Definition 8.4): orients the edges of an Eulerian
/// graph (every degree even) so that in-degree equals out-degree at every
/// node.  Charges the `Õ(1)` rounds of the distributed implementation
/// (Lemma 8.6) when a network is supplied.
///
/// # Panics
/// Panics if some node has odd degree (the graph is not Eulerian).
pub fn eulerian_orientation(net: Option<&mut HybridNetwork>, graph: &Graph) -> Orientation {
    for v in graph.nodes() {
        assert!(
            graph.degree(v).is_multiple_of(2),
            "node {v} has odd degree; the graph is not Eulerian"
        );
    }
    if let Some(net) = net {
        net.charge_rounds("euler/orientation", net.polylog(2).max(1));
    }
    let m = graph.m();
    let mut oriented = vec![None::<bool>; m];
    let mut used = vec![false; m];
    // Hierholzer-style cycle peeling: repeatedly walk unused edges, always
    // leaving a node by an unused edge; because all degrees are even, every
    // walk closes a cycle, which we orient in traversal direction.
    let mut next_arc_index = vec![0usize; graph.n()];
    for start in graph.nodes() {
        loop {
            // Find an unused edge at `start`.
            let arcs = graph.arcs(start);
            while next_arc_index[start as usize] < arcs.len()
                && used[arcs[next_arc_index[start as usize]].edge as usize]
            {
                next_arc_index[start as usize] += 1;
            }
            if next_arc_index[start as usize] >= arcs.len() {
                break;
            }
            // Walk a cycle.
            let mut cur = start;
            loop {
                let arcs = graph.arcs(cur);
                let mut idx = next_arc_index[cur as usize];
                while idx < arcs.len() && used[arcs[idx].edge as usize] {
                    idx += 1;
                }
                next_arc_index[cur as usize] = idx;
                let arc = arcs[idx];
                used[arc.edge as usize] = true;
                let (u, _v, _) = graph.edge(arc.edge);
                // Orient cur -> arc.to.
                oriented[arc.edge as usize] = Some(u == cur);
                cur = arc.to;
                if cur == start {
                    break;
                }
            }
        }
    }
    Orientation {
        towards_larger: oriented
            .into_iter()
            .map(|o| o.expect("every edge lies on a peeled cycle"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::{generators, GraphBuilder};
    use std::sync::Arc;

    #[test]
    fn minor_aggregation_contract_everything_gives_global_consensus() {
        let g = Arc::new(generators::grid(&[5, 5]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let inputs: Vec<u64> = (0..25).collect();
        let ma = MinorAggregation::round(&mut net, |_| true, &inputs, |a, b| a.max(b));
        assert!(ma.supernode_of.iter().all(|&s| s == 0));
        assert!(ma.consensus.iter().all(|&c| c == 24));
        assert!(ma.rounds >= 1);
    }

    #[test]
    fn minor_aggregation_contract_nothing_keeps_singletons() {
        let g = Arc::new(generators::cycle(8).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let inputs: Vec<u64> = (10..18).collect();
        let ma = MinorAggregation::round(&mut net, |_| false, &inputs, |a, b| a + b);
        for v in 0..8u32 {
            assert_eq!(ma.supernode_of[v as usize], v);
            assert_eq!(ma.consensus[v as usize], 10 + v as u64);
        }
    }

    #[test]
    fn minor_aggregation_partial_contraction() {
        // Path 0-1-2-3-4-5; contract the first two edges and the last edge.
        let g = Arc::new(generators::path(6).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let inputs = vec![1u64, 2, 4, 8, 16, 32];
        let ma = MinorAggregation::round(
            &mut net,
            |e| e == 0 || e == 1 || e == 4,
            &inputs,
            |a, b| a + b,
        );
        // Supernodes: {0,1,2}, {3}, {4,5}.
        assert_eq!(ma.supernode_of[0], 0);
        assert_eq!(ma.supernode_of[2], 0);
        assert_eq!(ma.supernode_of[3], 3);
        assert_eq!(ma.supernode_of[5], 4);
        assert_eq!(ma.consensus[1], 7);
        assert_eq!(ma.consensus[3], 8);
        assert_eq!(ma.consensus[4], 48);
    }

    #[test]
    fn eulerian_orientation_balances_degrees_on_cycle_and_torus() {
        for g in [
            generators::cycle(9).unwrap(),
            generators::torus(&[4, 4]).unwrap(),
            generators::torus(&[3, 5]).unwrap(),
        ] {
            let o = eulerian_orientation(None, &g);
            let (indeg, outdeg) = o.degrees(&g);
            for v in g.nodes() {
                assert_eq!(indeg[v as usize], outdeg[v as usize], "node {v} unbalanced");
            }
        }
    }

    #[test]
    fn eulerian_orientation_on_multi_cycle_graph() {
        // Two triangles sharing a vertex: all degrees even (2, 2, 4, 2, 2).
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 0, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(3, 4, 1).unwrap();
        b.add_edge(4, 2, 1).unwrap();
        let g = b.build().unwrap();
        let o = eulerian_orientation(None, &g);
        let (indeg, outdeg) = o.degrees(&g);
        assert_eq!(indeg, outdeg);
        assert_eq!(indeg[2], 2);
    }

    #[test]
    fn eulerian_orientation_charges_polylog() {
        let g = Arc::new(generators::torus(&[4, 4]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let _ = eulerian_orientation(Some(&mut net), &g);
        assert!(net.rounds() >= 1);
        assert!(net.rounds() <= net.polylog(2));
    }

    #[test]
    #[should_panic(expected = "odd degree")]
    fn non_eulerian_graph_panics() {
        let g = generators::path(4).unwrap();
        eulerian_orientation(None, &g);
    }
}
