//! κ-wise independent universal hashing (paper Lemma 5.3 / Appendix A,
//! Definition A.5 and Lemma A.6).
//!
//! The `(k, ℓ)`-routing algorithm routes each source→target message through a
//! pseudo-random *intermediate node* `h(ID(s), ID(t))`.  The hash family must
//! be `κ`-wise independent for `κ = Θ(NQ_k · log n)` so that the
//! balls-into-bins argument (Lemma A.4) bounds every intermediate node's load
//! by `O(NQ_k)` w.h.p.  The classical construction — a random polynomial of
//! degree `κ − 1` over a prime field — achieves this, and the random seed
//! (its coefficient vector, `κ · O(log n)` bits) is what Theorem 1 broadcasts.

use rand::Rng;

/// The Mersenne prime `2^61 − 1`, comfortably above any `n^2` pair-encoding
/// used by the routing layer.
pub const FIELD_PRIME: u128 = (1u128 << 61) - 1;

/// A κ-wise independent hash function `h : [n] × [n] → [n]`, realized as a
/// degree-`(κ−1)` polynomial with uniformly random coefficients over
/// `GF(2^61 − 1)`.
#[derive(Debug, Clone)]
pub struct KWiseHash {
    coefficients: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Draws a random function from the family with independence `kappa` and
    /// output range `[0, range)`.
    ///
    /// # Panics
    /// Panics if `kappa == 0` or `range == 0`.
    pub fn sample(kappa: usize, range: u64, rng: &mut impl Rng) -> Self {
        assert!(kappa > 0, "independence parameter must be positive");
        assert!(range > 0, "hash range must be positive");
        let coefficients = (0..kappa)
            .map(|_| rng.gen_range(0..FIELD_PRIME as u64))
            .collect();
        KWiseHash {
            coefficients,
            range,
        }
    }

    /// Independence of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// Size of the random seed in bits (what the routing algorithm has to
    /// broadcast, Lemma 5.3 property (3)).
    pub fn seed_bits(&self) -> u64 {
        (self.coefficients.len() as u64) * 61
    }

    /// Evaluates the polynomial at `x` and reduces into the output range.
    pub fn eval(&self, x: u64) -> u64 {
        let x = (x as u128) % FIELD_PRIME;
        let mut acc: u128 = 0;
        // Horner evaluation modulo the Mersenne prime.
        for &c in self.coefficients.iter().rev() {
            acc = (acc * x + c as u128) % FIELD_PRIME;
        }
        (acc % self.range as u128) as u64
    }

    /// Hashes an ordered pair `(a, b)` (e.g. `(ID(s), ID(t))`) by first
    /// injectively encoding it into a single field element.
    pub fn eval_pair(&self, a: u64, b: u64) -> u64 {
        // Injective for a, b < 2^30, far above any node count we simulate.
        debug_assert!(a < (1 << 30) && b < (1 << 30));
        self.eval((a << 30) | b)
    }
}

/// Seed length in bits needed for independence `kappa` (Lemma A.6: `κ` field
/// elements).
pub fn seed_bits_for(kappa: usize) -> u64 {
    (kappa as u64) * 61
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let h1 = KWiseHash::sample(8, 100, &mut r1);
        let h2 = KWiseHash::sample(8, 100, &mut r2);
        for x in 0..50 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn output_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = KWiseHash::sample(16, 37, &mut rng);
        for x in 0..1000u64 {
            assert!(h.eval(x) < 37);
        }
        assert_eq!(h.independence(), 16);
        assert_eq!(h.seed_bits(), 16 * 61);
        assert_eq!(seed_bits_for(16), 16 * 61);
    }

    #[test]
    fn pair_encoding_distinguishes_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let h = KWiseHash::sample(4, 1 << 20, &mut rng);
        // Not a proof of injectivity, but the encodings of (a,b) and (b,a)
        // should almost surely hash differently for many pairs.
        let mut diffs = 0;
        for a in 0..50u64 {
            for b in 0..50u64 {
                if a != b && h.eval_pair(a, b) != h.eval_pair(b, a) {
                    diffs += 1;
                }
            }
        }
        assert!(diffs > 2000);
    }

    #[test]
    fn load_is_balanced_over_bins() {
        // Balls-into-bins sanity check (Lemma A.4 flavour): hashing n^2 pairs
        // into n bins, the maximum bin load should be close to n (within a
        // small constant factor), not concentrated.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 64u64;
        let h = KWiseHash::sample(32, n, &mut rng);
        let mut load = vec![0u64; n as usize];
        for a in 0..n {
            for b in 0..n {
                load[h.eval_pair(a, b) as usize] += 1;
            }
        }
        let max = *load.iter().max().unwrap();
        let avg = n;
        assert!(max <= 3 * avg, "max load {max} too far above average {avg}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_kappa_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        KWiseHash::sample(0, 10, &mut rng);
    }
}
