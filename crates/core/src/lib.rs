//! # hybrid-core
//!
//! Reproduction of the algorithmic contributions of *"Universally Optimal
//! Information Dissemination and Shortest Paths in the HYBRID Distributed
//! Model"* (Chang, Hecht, Leitersdorf, Schneider — PODC 2024).
//!
//! The crate implements, on top of the [`hybrid_sim`] simulator:
//!
//! * the **neighborhood quality** parameter `NQ_k` and its clustering
//!   (Section 3) — [`nq`], [`cluster`];
//! * **universally optimal information dissemination**: `k`-dissemination,
//!   `k`-aggregation (Theorems 1–2) and `(k, ℓ)`-routing (Theorem 3), plus
//!   the existentially optimal `Õ(√k)` baselines — [`dissemination`],
//!   [`routing`], [`helpers`], [`overlay`], [`hashing`];
//! * **universally optimal shortest paths**: `(k, ℓ)`-SP (Theorem 5),
//!   unweighted `(1+ε)`-APSP (Theorem 6), weighted `O(log n / log log n)`-
//!   and `(4α−1)`-approximate APSP (Theorems 7–8), sparse-graph APSP
//!   (Corollary 2.2) and cut approximation (Theorem 9) — [`apsp`], [`klsp`],
//!   [`cuts`], [`spanner`], [`skeleton`];
//! * **existentially optimal shortest paths**: `(1+ε)`-SSSP in `Õ(1)` rounds
//!   (Theorem 13, Section 8) and `k`-SSP via skeleton scheduling
//!   (Theorem 14, Section 9) — [`sssp`], [`kssp`], [`minor_aggregation`];
//! * the **universal lower bounds** (Theorems 4, 10, 11, 12; Lemmas 7.1–7.2)
//!   as computable witness values — [`lower_bounds`];
//! * the **Broadcast Congested Clique simulation** of Corollary 2.1 —
//!   [`bcc`];
//! * supporting machinery: probabilistic tools (Appendix A), κ-wise
//!   independent hashing, and the shared blocked `(min, +)` composition
//!   kernel behind the k-SSP / `(k, ℓ)`-SP / Theorem 8 data levels —
//!   [`prob`], [`hashing`], [`minplus`].
//!
//! Every algorithm returns both its *solution* (verified by the test suite
//! against exact oracles) and a round/message cost trace produced by the
//! simulator, which the `hybrid-bench` crate uses to regenerate the paper's
//! tables and figures.

// The default build carries no unsafe code at all; the `simd` feature opts
// into one audited `#[allow(unsafe_code)]` module of AVX2 intrinsics (the
// `(min, +)` fold kernels in [`minplus::kernel`]) and keeps everything else
// denied.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod algorithm;
pub mod apsp;
pub mod bcc;
pub mod cluster;
pub mod cuts;
pub mod det_broadcast;
pub mod dissemination;
pub mod hashing;
pub mod helpers;
pub mod klsp;
pub mod kssp;
pub mod lower_bounds;
pub mod minor_aggregation;
pub mod minplus;
pub mod nq;
pub mod oracle;
pub mod overlay;
pub mod prob;
pub mod routing;
pub mod rows;
pub mod schneider;
pub mod skeleton;
pub mod spanner;
pub mod sssp;

/// Delivers a global phase and enforces the failure-free invariant: unless an
/// active fault plan is installed on the network, a well-formed algorithm
/// phase never loses a message (the scheduler queues excess instead of
/// dropping, so a non-zero count means a bug, not congestion).  Returns the
/// full [`hybrid_sim::DeliveryReport`] so callers can inspect load statistics.
pub(crate) fn deliver_global_checked(
    net: &mut hybrid_sim::HybridNetwork,
    label: &str,
    messages: &[hybrid_sim::GlobalMessage],
) -> hybrid_sim::DeliveryReport {
    let report = net.deliver_global(label, messages);
    debug_assert!(
        net.has_faults() || report.dropped == 0,
        "{label}: {} dropped global messages in a failure-free run",
        report.dropped
    );
    report
}

pub use algorithm::{
    dissemination_registry, registry_names, select_algorithms, sssp_registry,
    DisseminationAlgorithm, RegistryError, ShootoutSelection, SsspAlgorithm,
};
pub use cluster::{cluster_by_nq, cluster_with_radius};
pub use det_broadcast::det_token_forward_dissemination;
pub use dissemination::{
    baseline_sqrt_k_dissemination, k_aggregation, k_dissemination, DisseminationOutput,
};
pub use nq::{compute_nq, NqEstimate, NqOracle, NqSource, SampledNqOracle};
pub use oracle::{DistanceOracle, OracleConfig, PathBatch, ORACLE_STRETCH};
pub use routing::{baseline_sqrt_k_routing, kl_routing, RoutingOutput, RoutingScenario};
pub use rows::DistanceRows;
pub use schneider::schneider_kssp;
