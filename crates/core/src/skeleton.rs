//! Skeleton graphs (Definition 6.2, Lemma 6.3) — the classical sampling
//! technique of Ullman & Yannakakis used by the weighted APSP algorithm
//! (Theorem 8), the k-SSP scheduling framework (Section 9) and the
//! existentially optimal baselines.
//!
//! A skeleton graph `S = (V_S, E_S, ω_S)` samples every node independently
//! with probability `1/x`, connects two skeleton nodes whenever they are
//! within `h = ξ·x·ln n` hops, and weights the edge by the `h`-hop-limited
//! distance.  W.h.p. every sufficiently long shortest path of `G` passes
//! through skeleton nodes every `h` hops, so skeleton distances equal graph
//! distances between skeleton nodes (Lemma 6.3).

use rand::Rng;
use rayon::prelude::*;

use hybrid_graph::dijkstra::{hop_limited_distances_with, HopLimitedWorkspace};
use hybrid_graph::{Graph, GraphBuilder, NodeId, INFINITY};
use hybrid_sim::HybridNetwork;

use crate::prob::ln_n;

/// The constant `ξ` of Definition 6.2 (any sufficiently large constant works;
/// the tests verify the distance-preservation property empirically).
pub const XI: f64 = 3.0;

/// A skeleton graph together with the data needed to translate between the
/// skeleton and the original graph.
#[derive(Debug, Clone)]
pub struct SkeletonGraph {
    /// The skeleton nodes (original ids, sorted).
    pub nodes: Vec<NodeId>,
    /// Position of each original node in [`SkeletonGraph::nodes`]
    /// (`usize::MAX` if not sampled).
    pub index_of: Vec<usize>,
    /// The skeleton graph itself (node `i` is `nodes[i]`).
    pub graph: Graph,
    /// The hop parameter `h = ξ·x·ln n`.
    pub h: u64,
    /// The sampling parameter `x` (sampling probability `1/x`).
    pub x: f64,
}

impl SkeletonGraph {
    /// Whether the original node `v` is a skeleton node.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index_of[v as usize] != usize::MAX
    }

    /// Number of skeleton nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the skeleton is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds a skeleton graph with sampling probability `1/x`, forcing the nodes
/// in `forced` to be included (the k-SSP algorithm adds the sources,
/// Theorem 14).  Charges `h ∈ Õ(x)` local rounds on `net` (Lemma 6.3: the
/// construction is pure local communication).
pub fn build_skeleton(
    net: &mut HybridNetwork,
    x: f64,
    forced: &[NodeId],
    rng: &mut impl Rng,
) -> SkeletonGraph {
    assert!(x >= 1.0, "sampling parameter x must be at least 1");
    let graph = net.graph_arc();
    let n = graph.n();
    let h = ((XI * x * ln_n(n)).ceil() as u64).max(1);

    let mut sampled = vec![false; n];
    for &f in forced {
        sampled[f as usize] = true;
    }
    let p = 1.0 / x;
    for slot in sampled.iter_mut() {
        if !*slot && rng.gen_bool(p.min(1.0)) {
            *slot = true;
        }
    }
    // Guarantee at least one skeleton node so downstream code never deals
    // with an empty skeleton.
    if !sampled.iter().any(|&s| s) {
        sampled[0] = true;
    }

    let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&v| sampled[v as usize]).collect();
    let mut index_of = vec![usize::MAX; n];
    for (i, &v) in nodes.iter().enumerate() {
        index_of[v as usize] = i;
    }

    // Skeleton edges: h-hop limited distances between sampled nodes,
    // computable after h rounds of local flooding.  The per-skeleton-node
    // sweeps fan out over all cores; each (i, j) pair with i < j is visited
    // exactly once, so no duplicate-edge pre-check is needed.
    net.charge_local("skeleton/construct", h);
    let rows: Vec<Vec<u64>> = nodes
        .par_iter()
        .map_init(HopLimitedWorkspace::new, |ws, &u| {
            let mut row = Vec::new();
            hop_limited_distances_with(ws, &graph, u, h as usize, &mut row);
            row
        })
        .collect();
    let mut builder = GraphBuilder::new(nodes.len());
    for (i, dist) in rows.iter().enumerate() {
        for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
            let d = dist[v as usize];
            if d != INFINITY {
                builder
                    .add_edge(i as NodeId, j as NodeId, d.max(1))
                    .expect("valid edge");
            }
        }
    }
    SkeletonGraph {
        graph: builder.build_unchecked_connectivity(),
        nodes,
        index_of,
        h,
        x,
    }
}

/// Checks Lemma 6.3 (2): for skeleton nodes `u, v`, the skeleton distance
/// equals the true distance in `G`.  Returns the worst ratio observed over
/// the given sample of skeleton node pairs (1.0 means exact).
pub fn skeleton_distance_fidelity(graph: &Graph, skeleton: &SkeletonGraph, samples: usize) -> f64 {
    let mut worst: f64 = 1.0;
    let count = samples.min(skeleton.len());
    for i in 0..count {
        let u = skeleton.nodes[i];
        let exact = hybrid_graph::dijkstra::dijkstra(graph, u).dist;
        let sk = hybrid_graph::dijkstra::dijkstra(&skeleton.graph, i as NodeId).dist;
        for (j, &v) in skeleton.nodes.iter().enumerate() {
            if exact[v as usize] == 0 {
                continue;
            }
            if sk[j] == INFINITY {
                return f64::INFINITY;
            }
            worst = worst.max(sk[j] as f64 / exact[v as usize] as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, HybridNetwork) {
        let g = Arc::new(graph);
        let net = HybridNetwork::hybrid(Arc::clone(&g));
        (g, net)
    }

    #[test]
    fn skeleton_contains_forced_nodes_and_charges_h_rounds() {
        let (_, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sk = build_skeleton(&mut net, 4.0, &[0, 55, 99], &mut rng);
        assert!(sk.contains(0) && sk.contains(55) && sk.contains(99));
        assert!(!sk.is_empty());
        assert_eq!(net.rounds(), sk.h);
        assert_eq!(sk.nodes.len(), sk.graph.n());
    }

    #[test]
    fn skeleton_distances_match_graph_distances() {
        let (g, mut net) = setup(generators::grid(&[9, 9]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sk = build_skeleton(&mut net, 3.0, &[], &mut rng);
        let fidelity = skeleton_distance_fidelity(&g, &sk, 10);
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "skeleton distances off by factor {fidelity}"
        );
    }

    #[test]
    fn skeleton_distances_match_on_weighted_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g0 = generators::weighted_grid(&[8, 8], 12, &mut rng).unwrap();
        let (g, mut net) = setup(g0);
        let sk = build_skeleton(&mut net, 2.5, &[], &mut rng);
        let fidelity = skeleton_distance_fidelity(&g, &sk, 8);
        assert!((fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skeleton_size_close_to_n_over_x() {
        let (g, mut net) = setup(generators::grid(&[20, 20]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = 5.0;
        let sk = build_skeleton(&mut net, x, &[], &mut rng);
        let expected = g.n() as f64 / x;
        assert!((sk.len() as f64) > expected / 3.0);
        assert!((sk.len() as f64) < expected * 3.0);
    }

    #[test]
    fn empty_sampling_still_yields_a_node() {
        let (_, mut net) = setup(generators::path(30).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Astronomically small sampling probability: forced fallback to node 0.
        let sk = build_skeleton(&mut net, 1e9, &[], &mut rng);
        assert!(!sk.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn x_below_one_panics() {
        let (_, mut net) = setup(generators::path(10).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        build_skeleton(&mut net, 0.5, &[], &mut rng);
    }
}
