//! Skeleton graphs (Definition 6.2, Lemma 6.3) — the classical sampling
//! technique of Ullman & Yannakakis used by the weighted APSP algorithm
//! (Theorem 8), the k-SSP scheduling framework (Section 9) and the
//! existentially optimal baselines.
//!
//! A skeleton graph `S = (V_S, E_S, ω_S)` samples every node independently
//! with probability `1/x`, connects two skeleton nodes whenever they are
//! within `h = ξ·x·ln n` hops, and weights the edge by the `h`-hop-limited
//! distance.  W.h.p. every sufficiently long shortest path of `G` passes
//! through skeleton nodes every `h` hops, so skeleton distances equal graph
//! distances between skeleton nodes (Lemma 6.3).
//!
//! The construction's raw material — one `h`-hop-limited distance row per
//! skeleton node — is kept on the [`SkeletonGraph`] as a
//! [`crate::minplus::RowMatrix`]: the k-SSP data level composes labels directly
//! against these rows with the shared `(min, +)` kernel
//! ([`crate::minplus`]), so they are computed exactly once.  The explicit
//! edge-list [`Graph`] of the skeleton (dense on low-diameter inputs) is only
//! materialized on demand via [`SkeletonGraph::graph`]; consumers that never
//! touch it (the common k-SSP path) skip the build entirely.

use std::sync::OnceLock;

use rand::Rng;
use rayon::prelude::*;

use hybrid_graph::dijkstra::{hop_limited_distances_with, HopLimitedWorkspace};
use hybrid_graph::{Graph, GraphBuilder, NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

use crate::minplus::RowMatrix;
use crate::prob::ln_n;

/// The constant `ξ` of Definition 6.2 (any sufficiently large constant works;
/// the tests verify the distance-preservation property empirically).
pub const XI: f64 = 3.0;

/// A skeleton graph together with the data needed to translate between the
/// skeleton and the original graph.
#[derive(Debug, Default)]
pub struct SkeletonGraph {
    /// The skeleton nodes (original ids, sorted).
    pub nodes: Vec<NodeId>,
    /// Position of each original node in [`SkeletonGraph::nodes`]
    /// (`usize::MAX` if not sampled).
    pub index_of: Vec<usize>,
    /// The `h`-hop-limited distance row of every skeleton node (`rows.row(i)`
    /// is `d^h(nodes[i], ·)` over all of `G`), with finite spans precomputed
    /// for the `(min, +)` kernel.
    pub rows: RowMatrix,
    /// Whether **every** row reached its Bellman–Ford fixpoint within `h`
    /// rounds — then `rows` holds exact distances `d(nodes[i], ·)`, the
    /// skeleton metric closure is the identity (triangle inequality), and
    /// consumers skip the skeleton-SSSP step (see
    /// [`crate::kssp`]).
    pub converged: bool,
    /// The hop parameter `h = ξ·x·ln n`.
    pub h: u64,
    /// The sampling parameter `x` (sampling probability `1/x`).
    pub x: f64,
    /// Lazily built explicit skeleton graph (see [`SkeletonGraph::graph`]).
    graph: OnceLock<Graph>,
}

impl Clone for SkeletonGraph {
    fn clone(&self) -> Self {
        let graph = OnceLock::new();
        if let Some(g) = self.graph.get() {
            let _ = graph.set(g.clone());
        }
        SkeletonGraph {
            nodes: self.nodes.clone(),
            index_of: self.index_of.clone(),
            rows: self.rows.clone(),
            converged: self.converged,
            h: self.h,
            x: self.x,
            graph,
        }
    }
}

impl SkeletonGraph {
    /// Whether the original node `v` is a skeleton node.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index_of[v as usize] != usize::MAX
    }

    /// Number of skeleton nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the skeleton is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The explicit skeleton graph (node `i` is `nodes[i]`; two skeleton
    /// nodes are adjacent iff within `h` hops, weighted by the
    /// `h`-hop-limited distance), built from [`SkeletonGraph::rows`] on first
    /// use.
    ///
    /// On low-diameter graphs this is near-complete (`Θ(|S|²)` edges), so
    /// algorithms that can work on `rows` directly — the k-SSP data level —
    /// never call this; Theorem 8's spanner construction does.
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| {
            let mut builder = GraphBuilder::new(self.nodes.len());
            for (i, dist) in self.rows.rows().iter().enumerate() {
                for (j, &v) in self.nodes.iter().enumerate().skip(i + 1) {
                    let d = dist[v as usize];
                    if d != INFINITY {
                        builder
                            .add_edge(i as NodeId, j as NodeId, d.max(1))
                            .expect("valid edge");
                    }
                }
            }
            builder.build_unchecked_connectivity()
        })
    }

    /// The skeleton-metric weight of the (potential) edge between skeleton
    /// positions `i` and `j`: the `h`-hop-limited distance between their
    /// nodes clamped to ≥ 1, or [`INFINITY`] when they are more than `h` hops
    /// apart (matching the edge set of [`SkeletonGraph::graph`]).
    #[inline]
    pub fn edge_weight(&self, i: usize, j: usize) -> Weight {
        if i == j {
            return 0;
        }
        let d = self.rows.row(i)[self.nodes[j] as usize];
        if d == INFINITY {
            INFINITY
        } else {
            d.max(1)
        }
    }

    /// Single-source shortest paths on the skeleton graph from position
    /// `source`, computed directly over the stored rows with a dense `O(|S|²)`
    /// array Dijkstra — the skeleton is near-complete on low-diameter inputs,
    /// where scanning the weight rows beats a heap over `Θ(|S|²)` explicit
    /// arcs, and the explicit [`SkeletonGraph::graph`] need never be built.
    ///
    /// Distances are identical to a Dijkstra run on the explicit skeleton
    /// graph (same metric, and shortest-path distances are unique).
    pub fn sssp(&self, source: usize) -> Vec<Weight> {
        let s_len = self.len();
        let mut dist = vec![INFINITY; s_len];
        let mut visited = vec![false; s_len];
        dist[source] = 0;
        loop {
            let mut u = usize::MAX;
            let mut best = INFINITY;
            for (j, &d) in dist.iter().enumerate() {
                if !visited[j] && d < best {
                    best = d;
                    u = j;
                }
            }
            if u == usize::MAX {
                break;
            }
            visited[u] = true;
            let row = self.rows.row(u);
            for (j, slot) in dist.iter_mut().enumerate() {
                if visited[j] {
                    continue;
                }
                let w = row[self.nodes[j] as usize];
                if w != INFINITY {
                    let nd = best.saturating_add(w.max(1));
                    if nd < *slot {
                        *slot = nd;
                    }
                }
            }
        }
        dist
    }
}

/// Builds a skeleton graph with sampling probability `1/x`, forcing the nodes
/// in `forced` to be included (the k-SSP algorithm adds the sources,
/// Theorem 14).  Charges `h ∈ Õ(x)` local rounds on `net` (Lemma 6.3: the
/// construction is pure local communication).
pub fn build_skeleton(
    net: &mut HybridNetwork,
    x: f64,
    forced: &[NodeId],
    rng: &mut impl Rng,
) -> SkeletonGraph {
    assert!(x >= 1.0, "sampling parameter x must be at least 1");
    let graph = net.graph_arc();
    let n = graph.n();
    let h = ((XI * x * ln_n(n)).ceil() as u64).max(1);

    let mut sampled = vec![false; n];
    for &f in forced {
        sampled[f as usize] = true;
    }
    let p = 1.0 / x;
    for slot in sampled.iter_mut() {
        if !*slot && rng.gen_bool(p.min(1.0)) {
            *slot = true;
        }
    }
    // Guarantee at least one skeleton node so downstream code never deals
    // with an empty skeleton.
    if !sampled.iter().any(|&s| s) {
        sampled[0] = true;
    }

    let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&v| sampled[v as usize]).collect();
    let mut index_of = vec![usize::MAX; n];
    for (i, &v) in nodes.iter().enumerate() {
        index_of[v as usize] = i;
    }

    // The h-hop-limited distance rows — what h rounds of local flooding give
    // every node about each skeleton node.  The per-skeleton-node sweeps fan
    // out over all cores; each sweep also reports whether it reached its
    // fixpoint (then the row is exact, not just h-hop-limited).
    net.charge_local("skeleton/construct", h);
    let rows_with_flags: Vec<(Vec<u64>, bool)> = nodes
        .par_iter()
        .map_init(HopLimitedWorkspace::new, |ws, &u| {
            let mut row = Vec::new();
            let converged = hop_limited_distances_with(ws, &graph, u, h as usize, &mut row);
            (row, converged)
        })
        .with_min_len(1)
        .collect();
    let converged = rows_with_flags.iter().all(|&(_, c)| c);
    let rows = RowMatrix::new(rows_with_flags.into_iter().map(|(row, _)| row).collect());
    SkeletonGraph {
        nodes,
        index_of,
        rows,
        converged,
        h,
        x,
        graph: OnceLock::new(),
    }
}

/// Checks Lemma 6.3 (2): for skeleton nodes `u, v`, the skeleton distance
/// equals the true distance in `G`.  Returns the worst ratio observed over
/// the given sample of skeleton node pairs (1.0 means exact).
pub fn skeleton_distance_fidelity(graph: &Graph, skeleton: &SkeletonGraph, samples: usize) -> f64 {
    let mut worst: f64 = 1.0;
    let count = samples.min(skeleton.len());
    for i in 0..count {
        let u = skeleton.nodes[i];
        let exact = hybrid_graph::dijkstra::dijkstra(graph, u).dist;
        let sk = hybrid_graph::dijkstra::dijkstra(skeleton.graph(), i as NodeId).dist;
        for (j, &v) in skeleton.nodes.iter().enumerate() {
            if exact[v as usize] == 0 {
                continue;
            }
            if sk[j] == INFINITY {
                return f64::INFINITY;
            }
            worst = worst.max(sk[j] as f64 / exact[v as usize] as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, HybridNetwork) {
        let g = Arc::new(graph);
        let net = HybridNetwork::hybrid(Arc::clone(&g));
        (g, net)
    }

    #[test]
    fn skeleton_contains_forced_nodes_and_charges_h_rounds() {
        let (_, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sk = build_skeleton(&mut net, 4.0, &[0, 55, 99], &mut rng);
        assert!(sk.contains(0) && sk.contains(55) && sk.contains(99));
        assert!(!sk.is_empty());
        assert_eq!(net.rounds(), sk.h);
        assert_eq!(sk.nodes.len(), sk.graph().n());
        assert_eq!(sk.rows.len(), sk.nodes.len());
    }

    #[test]
    fn skeleton_distances_match_graph_distances() {
        let (g, mut net) = setup(generators::grid(&[9, 9]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sk = build_skeleton(&mut net, 3.0, &[], &mut rng);
        let fidelity = skeleton_distance_fidelity(&g, &sk, 10);
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "skeleton distances off by factor {fidelity}"
        );
    }

    #[test]
    fn skeleton_distances_match_on_weighted_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g0 = generators::weighted_grid(&[8, 8], 12, &mut rng).unwrap();
        let (g, mut net) = setup(g0);
        let sk = build_skeleton(&mut net, 2.5, &[], &mut rng);
        let fidelity = skeleton_distance_fidelity(&g, &sk, 8);
        assert!((fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skeleton_size_close_to_n_over_x() {
        let (g, mut net) = setup(generators::grid(&[20, 20]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = 5.0;
        let sk = build_skeleton(&mut net, x, &[], &mut rng);
        let expected = g.n() as f64 / x;
        assert!((sk.len() as f64) > expected / 3.0);
        assert!((sk.len() as f64) < expected * 3.0);
    }

    #[test]
    fn empty_sampling_still_yields_a_node() {
        let (_, mut net) = setup(generators::path(30).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Astronomically small sampling probability: forced fallback to node 0.
        let sk = build_skeleton(&mut net, 1e9, &[], &mut rng);
        assert!(!sk.is_empty());
    }

    #[test]
    fn converged_rows_are_exact_distances() {
        // h = 3·x·ln n far exceeds the grid's diameter at x = 4 — every sweep
        // reaches its fixpoint and the rows must equal exact distances.
        let (g, mut net) = setup(generators::grid(&[7, 7]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sk = build_skeleton(&mut net, 4.0, &[0], &mut rng);
        assert!(sk.converged);
        for (i, &u) in sk.nodes.iter().enumerate() {
            let exact = hybrid_graph::dijkstra::dijkstra(&g, u).dist;
            assert_eq!(sk.rows.row(i), exact.as_slice(), "row {i} not exact");
        }
    }

    #[test]
    fn edge_weight_matches_built_graph() {
        let (_, mut net) = setup(generators::path(40).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let sk = build_skeleton(&mut net, 2.0, &[], &mut rng);
        let g = sk.graph().clone();
        let exact = hybrid_graph::dijkstra::apsp_exact(&g);
        for (i, exact_row) in exact.iter().enumerate() {
            for (j, &d) in exact_row.iter().enumerate() {
                let w = sk.edge_weight(i, j);
                if i == j {
                    assert_eq!(w, 0);
                } else if w != INFINITY {
                    // A direct skeleton edge exists; the built graph's
                    // distance can only be ≤ its weight.
                    assert!(d <= w);
                }
            }
        }
    }

    #[test]
    fn dense_sssp_matches_graph_dijkstra() {
        // A long path keeps h = 3·x·ln n well below the diameter, so the
        // sweeps do NOT converge and the metric closure is non-trivial.
        let (_, mut net) = setup(generators::path(60).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let sk = build_skeleton(&mut net, 2.0, &[], &mut rng);
        assert!(!sk.converged);
        for i in 0..sk.len() {
            let dense = sk.sssp(i);
            let via_graph = hybrid_graph::dijkstra::dijkstra(sk.graph(), i as NodeId).dist;
            assert_eq!(dense, via_graph, "source {i}");
        }
    }

    #[test]
    fn clone_preserves_lazy_graph_state() {
        let (_, mut net) = setup(generators::path(25).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sk = build_skeleton(&mut net, 2.0, &[], &mut rng);
        let cloned_cold = sk.clone();
        let n1 = sk.graph().n();
        let cloned_warm = sk.clone();
        assert_eq!(cloned_cold.graph().n(), n1);
        assert_eq!(cloned_warm.graph().n(), n1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn x_below_one_panics() {
        let (_, mut net) = setup(generators::path(10).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        build_skeleton(&mut net, 0.5, &[], &mut rng);
    }
}
