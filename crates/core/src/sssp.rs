//! Single-source shortest paths in the HYBRID model.
//!
//! * **Theorem 13** (existentially optimal SSSP): a `(1+ε)`-approximation of
//!   SSSP can be computed in `Õ(1/ε²)` rounds, deterministically, in
//!   `Hybrid0`.  The paper obtains this by simulating the Minor-Aggregation
//!   model (Lemma 8.2, see [`crate::minor_aggregation`]) and implementing the
//!   Eulerian-orientation oracle (Lemma 8.6), then invoking the
//!   transshipment-based SSSP of `[RGH+22]`.  Re-deriving the full
//!   transshipment / ℓ₁-oblivious-routing stack is out of scope for this
//!   reproduction: [`sssp_approx`] produces genuinely `(1+ε)`-approximate
//!   distance labels (exact distances quantized by the allowed error) and
//!   charges the `Õ(1/ε²)` rounds through an explicit, calibratable cost
//!   model ([`SsspCostModel`]).  Everything the downstream universal algorithms
//!   consume — label quality, polylogarithmic round cost, number of
//!   invocations — is thereby preserved.  See DESIGN.md (substitutions).
//!
//! * **Prior-work baselines** (the other rows of Table 4): reference cost
//!   curves for `[KS20]` (`Õ(√n)` exact), `[CHLP21b]` (`Õ(n^{5/17})`, `1+ε`),
//!   `[AHK+20]` (`Õ(n^ε)`, large constant stretch) and `[AG21a]` (`Õ(√n)`
//!   deterministic, `log n / log log n` stretch).  They compute correct
//!   distances on the substrate and charge the published round bound, so the
//!   Table 4 comparison has both sides.

use hybrid_graph::dijkstra::dijkstra;
use hybrid_graph::{NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

/// Cost model for the Theorem 13 SSSP.
///
/// Theorem 13's bound is `Õ(1/ε²)` — a polylogarithmic number of rounds whose
/// exponent and constant are hidden by the `Õ(·)`.  The default calibration
/// charges `constant · ⌈log₂ n⌉ / ε` rounds, which is consistent with the
/// asymptotic statement ("flat in `n` up to polylogs") at simulation scales
/// and keeps the constant-factor relationship to the `√n`-type baselines
/// realistic; the fully pessimistic `log² n / ε²` form can be selected with
/// [`SsspCostModel::pessimistic`] for ablation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsspCostModel {
    /// Multiplicative constant in front of the polylogarithmic bound.
    pub constant: f64,
    /// Power of the `log₂ n` factor.
    pub log_power: u32,
    /// Power of the `1/ε` factor.
    pub eps_power: u32,
}

impl Default for SsspCostModel {
    fn default() -> Self {
        SsspCostModel {
            constant: 1.0,
            log_power: 1,
            eps_power: 1,
        }
    }
}

impl SsspCostModel {
    /// The pessimistic calibration `log² n / ε²` (every hidden factor charged).
    pub fn pessimistic() -> Self {
        SsspCostModel {
            constant: 1.0,
            log_power: 2,
            eps_power: 2,
        }
    }

    /// Rounds charged for one SSSP invocation with accuracy `epsilon` on a
    /// network of `n` nodes.
    pub fn rounds(&self, n: usize, epsilon: f64) -> u64 {
        let log_n = hybrid_sim::ModelParams::log_n(n) as f64;
        let raw =
            self.constant * log_n.powi(self.log_power as i32) / epsilon.powi(self.eps_power as i32);
        (raw.ceil() as u64).max(1)
    }
}

/// Output of an SSSP computation.
#[derive(Debug, Clone)]
pub struct SsspOutput {
    /// The source node.
    pub source: NodeId,
    /// Distance label per node (`INFINITY` if unreachable; never happens on
    /// connected graphs).
    pub dist: Vec<Weight>,
    /// The accuracy parameter used (`0.0` for exact baselines).
    pub epsilon: f64,
    /// Guaranteed stretch of the labels (`1 + ε` for Theorem 13).
    pub stretch: f64,
    /// Rounds charged for this computation.
    pub rounds: u64,
}

impl SsspOutput {
    /// Verifies `d(v) ≤ label(v) ≤ stretch · d(v)` against exact distances.
    pub fn verify_stretch(&self, exact: &[Weight]) -> Result<(), String> {
        for (v, (&e, &a)) in exact.iter().zip(&self.dist).enumerate() {
            if e == INFINITY || a == INFINITY {
                if e != a {
                    return Err(format!("reachability mismatch at node {v}"));
                }
                continue;
            }
            if a < e {
                return Err(format!("label at node {v} underestimates: {a} < {e}"));
            }
            if (a as f64) > self.stretch * (e as f64) + 1e-9 {
                return Err(format!(
                    "label at node {v} exceeds stretch: {a} > {} * {e}",
                    self.stretch
                ));
            }
        }
        Ok(())
    }
}

/// Quantizes an exact distance by the allowed `(1+ε)` error:
/// `d ↦ d + ⌊d·ε/2⌋`, which satisfies `d ≤ d̃ ≤ (1+ε)·d`.
pub fn quantize_distance(d: Weight, epsilon: f64) -> Weight {
    if d == 0 || d == INFINITY {
        return d;
    }
    let slack = ((d as f64) * (epsilon / 2.0)).floor() as u64;
    d.saturating_add(slack)
}

/// Theorem 13 — `(1+ε)`-approximate SSSP in `Õ(1/ε²)` rounds (deterministic,
/// `Hybrid0`), with the default cost model.
pub fn sssp_approx(net: &mut HybridNetwork, source: NodeId, epsilon: f64) -> SsspOutput {
    sssp_approx_with_cost(net, source, epsilon, SsspCostModel::default())
}

/// Theorem 13 with an explicit cost model (used by ablation benches).
pub fn sssp_approx_with_cost(
    net: &mut HybridNetwork,
    source: NodeId,
    epsilon: f64,
    cost: SsspCostModel,
) -> SsspOutput {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let graph = net.graph_arc();
    let exact = dijkstra(&graph, source).dist;
    let dist: Vec<Weight> = exact
        .iter()
        .map(|&d| quantize_distance(d, epsilon))
        .collect();
    let rounds = cost.rounds(graph.n(), epsilon);
    net.charge_rounds("sssp/theorem13-minor-aggregation", rounds);
    SsspOutput {
        source,
        dist,
        epsilon,
        stretch: 1.0 + epsilon,
        rounds,
    }
}

/// Number of rounds one Theorem 13 SSSP invocation costs without running it
/// (used by schedulers that charge `T_SSSP` symbolically, Lemma 9.3).
pub fn sssp_round_cost(net: &HybridNetwork, epsilon: f64) -> u64 {
    SsspCostModel::default().rounds(net.graph().n(), epsilon)
}

/// Prior-work SSSP algorithms used as the comparison rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SsspBaseline {
    /// `[KS20]`: exact SSSP in `Õ(√n)` rounds (randomized).
    Ks20SqrtN,
    /// `[CHLP21b]`: `(1+ε)`-approximate SSSP in `Õ(n^{5/17})` rounds.
    Chlp21FiveSeventeenths,
    /// `[AHK+20]`: `(1/ε)^O(1/ε)`-approximate SSSP in `Õ(n^ε)` rounds.
    Ahk20NEps {
        /// The exponent ε of the round bound.
        exponent: f64,
    },
    /// `[AG21a]`: deterministic `log n / log log n`-approximation in `Õ(√n)`.
    Ag21DeterministicSqrtN,
}

impl SsspBaseline {
    /// Published round bound of the baseline (with constant 1 and a single
    /// `log n` factor standing in for the `Õ(·)`).
    pub fn rounds(&self, n: usize) -> u64 {
        let n_f = n.max(2) as f64;
        let log_n = hybrid_sim::ModelParams::log_n(n) as f64;
        let raw = match self {
            SsspBaseline::Ks20SqrtN => n_f.sqrt() * log_n,
            SsspBaseline::Chlp21FiveSeventeenths => n_f.powf(5.0 / 17.0) * log_n,
            SsspBaseline::Ahk20NEps { exponent } => n_f.powf(*exponent) * log_n,
            SsspBaseline::Ag21DeterministicSqrtN => n_f.sqrt() * log_n,
        };
        (raw.ceil() as u64).max(1)
    }

    /// Stretch guarantee of the baseline.
    pub fn stretch(&self, n: usize) -> f64 {
        let n_f = n.max(4) as f64;
        match self {
            SsspBaseline::Ks20SqrtN => 1.0,
            SsspBaseline::Chlp21FiveSeventeenths => 1.05,
            SsspBaseline::Ahk20NEps { .. } => 16.0,
            SsspBaseline::Ag21DeterministicSqrtN => n_f.ln() / n_f.ln().ln().max(1.0),
        }
    }
}

/// Runs a prior-work baseline: computes distance labels within its published
/// stretch (exact labels for exact baselines, quantized otherwise) and
/// charges its published round bound.
pub fn baseline_sssp(
    net: &mut HybridNetwork,
    source: NodeId,
    baseline: SsspBaseline,
) -> SsspOutput {
    let graph = net.graph_arc();
    let n = graph.n();
    let exact = dijkstra(&graph, source).dist;
    let stretch = baseline.stretch(n);
    let eps_equivalent = (stretch - 1.0).max(0.0);
    let dist: Vec<Weight> = exact
        .iter()
        .map(|&d| quantize_distance(d, eps_equivalent.min(1.0)))
        .collect();
    let rounds = baseline.rounds(n);
    net.charge_rounds(format!("sssp/baseline-{baseline:?}"), rounds);
    SsspOutput {
        source,
        dist,
        epsilon: eps_equivalent,
        stretch,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn quantization_respects_bounds() {
        for eps in [0.1f64, 0.5, 1.0] {
            for d in [0u64, 1, 2, 7, 100, 12345] {
                let q = quantize_distance(d, eps);
                assert!(q >= d);
                assert!(q as f64 <= (1.0 + eps) * d as f64 + 1e-9);
            }
        }
        assert_eq!(quantize_distance(INFINITY, 0.5), INFINITY);
    }

    #[test]
    fn sssp_labels_have_promised_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = Arc::new(generators::weighted_grid(&[10, 10], 30, &mut rng).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let out = sssp_approx(&mut net, 0, 0.25);
        let exact = dijkstra(&g, 0).dist;
        out.verify_stretch(&exact).unwrap();
        assert_eq!(out.stretch, 1.25);
    }

    #[test]
    fn sssp_rounds_are_polylog_and_independent_of_n_growth() {
        let small = Arc::new(generators::grid(&[8, 8]).unwrap());
        let large = Arc::new(generators::grid(&[32, 32]).unwrap());
        let mut net_s = HybridNetwork::hybrid0(Arc::clone(&small));
        let mut net_l = HybridNetwork::hybrid0(Arc::clone(&large));
        let out_s = sssp_approx(&mut net_s, 0, 0.5);
        let out_l = sssp_approx(&mut net_l, 0, 0.5);
        // Table 4: Õ(1) — rounds grow only polylogarithmically with n.
        assert!(out_l.rounds <= out_s.rounds * 4);
        assert!(out_l.rounds < (large.n() as f64).sqrt() as u64);
        assert_eq!(out_s.rounds, sssp_round_cost(&net_s, 0.5));
    }

    #[test]
    fn cost_model_scales_with_epsilon() {
        let m = SsspCostModel::default();
        assert!(m.rounds(1000, 0.1) > m.rounds(1000, 1.0));
        let custom = SsspCostModel {
            constant: 3.0,
            ..SsspCostModel::default()
        };
        assert_eq!(custom.rounds(1024, 1.0), 30);
        assert_eq!(SsspCostModel::pessimistic().rounds(1024, 0.5), 400);
        assert!(SsspCostModel::pessimistic().rounds(1024, 0.5) > m.rounds(1024, 0.5));
    }

    #[test]
    fn baselines_cost_more_than_theorem13_for_large_n() {
        let g = Arc::new(generators::grid(&[40, 40]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let ours = sssp_approx(&mut net, 0, 0.5);
        for b in [
            SsspBaseline::Ks20SqrtN,
            SsspBaseline::Chlp21FiveSeventeenths,
            SsspBaseline::Ahk20NEps { exponent: 0.4 },
            SsspBaseline::Ag21DeterministicSqrtN,
        ] {
            let out = baseline_sssp(&mut net, 0, b);
            assert!(
                out.rounds > ours.rounds,
                "{b:?} should be slower than Theorem 13 on n=1600"
            );
            let exact = dijkstra(&g, 0).dist;
            out.verify_stretch(&exact).unwrap();
        }
    }

    #[test]
    fn verify_stretch_catches_underestimates() {
        let g = Arc::new(generators::path(6).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let mut out = sssp_approx(&mut net, 0, 0.5);
        let exact = dijkstra(&g, 0).dist;
        out.dist[5] = 1; // corrupt
        assert!(out.verify_stretch(&exact).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_panics() {
        let g = Arc::new(generators::path(5).unwrap());
        let mut net = HybridNetwork::hybrid0(g);
        sssp_approx(&mut net, 0, 0.0);
    }
}
