//! Helper-set machinery: the *adaptive helper sets* of Definition 5.1 /
//! Lemma 5.2 (used by the universal `(k, ℓ)`-routing algorithm, Theorem 3)
//! and the classical helper sets of `[KS20]` (Definition 9.1 / Lemma 9.2, used
//! by the skeleton-scheduling framework of Section 9).
//!
//! A helper set `H_w` gives node `w` a pool of nearby nodes whose global
//! bandwidth it can use almost exclusively, multiplying its effective
//! communication capacity by `|H_w|`.  The *adaptive* variant sizes the pool
//! by the graph's actual neighbourhood quality (`|H_w| ≥ k/NQ_k` within
//! `Õ(NQ_k)` hops), whereas `[KS20]` can only guarantee the worst-case
//! trade-off (`Θ̃(x)` helpers within `Θ̃(x)` hops).

use std::collections::HashMap;

use rand::Rng;
use rayon::prelude::*;

use hybrid_graph::{Graph, NodeId};
use hybrid_sim::HybridNetwork;

use crate::cluster::Clustering;
use crate::prob::ln_n;

/// Adaptive helper sets (Definition 5.1) for a node set `W`.
#[derive(Debug, Clone)]
pub struct AdaptiveHelperSets {
    /// For every `w ∈ W`, its helper set `H_w`.
    pub sets: HashMap<NodeId, Vec<NodeId>>,
    /// The workload parameter `k` the sets were built for.
    pub k: u64,
    /// The `NQ_k` value used.
    pub nq: u64,
    /// Hop-distance bound: every helper is within this many hops of its node
    /// (property (2) of Definition 5.1, `Õ(NQ_k)`).
    pub distance_bound: u64,
}

impl AdaptiveHelperSets {
    /// Size of the smallest helper set.
    pub fn min_size(&self) -> usize {
        self.sets.values().map(Vec::len).min().unwrap_or(0)
    }

    /// For every node of the graph, in how many helper sets it participates
    /// (property (3) of Definition 5.1 requires this to be `Õ(1)` w.h.p.).
    pub fn membership_counts(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for helpers in self.sets.values() {
            for &h in helpers {
                counts[h as usize] += 1;
            }
        }
        counts
    }

    /// Maximum membership count.
    pub fn max_membership(&self, n: usize) -> usize {
        self.membership_counts(n).into_iter().max().unwrap_or(0)
    }
}

/// Lemma 5.2 / Algorithm 1 — computes adaptive helper sets for `W` on top of
/// an `NQ_k`-clustering.  `W` is expected to be sampled with probability at
/// most `NQ_k / k` (the lemma's pre-condition); the function works for any
/// `W` but the `Õ(1)`-membership property only holds w.h.p. under that
/// condition.
///
/// Charges `Õ(NQ_k)` rounds on `net` for the intra-cluster coordination
/// (learning `C` and `C ∩ W`, drafting helpers).
pub fn adaptive_helper_sets(
    net: &mut HybridNetwork,
    clustering: &Clustering,
    w_set: &[NodeId],
    rng: &mut impl Rng,
) -> AdaptiveHelperSets {
    let n = net.graph().n();
    let k = clustering.k.max(1);
    let nq = clustering.nq.max(1);
    let log_factor = 8.0 * ln_n(n);

    // Nodes in each cluster learn C and C ∩ W over the local network.
    net.charge_local(
        "helpers/learn-cluster-members",
        clustering.weak_diameter_bound.max(1),
    );

    let mut sets: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for cluster in &clustering.clusters {
        let members_in_w: Vec<NodeId> = cluster
            .members
            .iter()
            .copied()
            .filter(|v| w_set.contains(v))
            .collect();
        if members_in_w.is_empty() {
            continue;
        }
        let q =
            ((k as f64 / nq as f64) * (1.0 / cluster.members.len() as f64) * log_factor).min(1.0);
        for &w in &members_in_w {
            let mut helpers: Vec<NodeId> = cluster
                .members
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(q))
                .collect();
            if helpers.is_empty() {
                helpers.push(w);
            }
            sets.insert(w, helpers);
        }
    }
    AdaptiveHelperSets {
        sets,
        k,
        nq,
        distance_bound: clustering.weak_diameter_bound,
    }
}

/// Classical helper sets of `[KS20]` (Definition 9.1) for a node set `W`
/// sampled with probability `1/x`: each `w ∈ W` receives the `µ ∈ Θ̃(x)`
/// nodes closest to it (ties by node id) as helpers.
#[derive(Debug, Clone)]
pub struct Ks20HelperSets {
    /// For every `w ∈ W`, its helper set.
    pub sets: HashMap<NodeId, Vec<NodeId>>,
    /// The size / radius parameter `µ`.
    pub mu: u64,
}

impl Ks20HelperSets {
    /// Maximum number of helper sets any node belongs to.
    pub fn max_membership(&self, n: usize) -> usize {
        let mut counts = vec![0usize; n];
        for helpers in self.sets.values() {
            for &h in helpers {
                counts[h as usize] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Size of the smallest helper set.
    pub fn min_size(&self) -> usize {
        self.sets.values().map(Vec::len).min().unwrap_or(0)
    }
}

/// Lemma 9.2 — computes `[KS20]` helper sets for `W` with parameter `x`,
/// charging `Õ(x)` local rounds.
///
/// The set drafted for `w` is the `µ` nodes closest to `w` (hop distance,
/// ties by node id) within radius `µ`.  The draft runs a level-by-level BFS
/// that **stops as soon as `µ` candidates are banked** — on low-diameter
/// graphs this touches `Θ(µ)` nodes instead of sweeping all `n` and sorting
/// them (the k-SSP scheduler calls this once per skeleton, so the difference
/// is a measurable slice of `reproduce figure1`).  Selection is identical to
/// sorting the full `µ`-ball by `(distance, id)`: BFS levels are complete
/// distance classes, and each banked level is sorted by id.
pub fn ks20_helper_sets(
    net: &mut HybridNetwork,
    graph: &Graph,
    w_set: &[NodeId],
    x: u64,
) -> Ks20HelperSets {
    let x = x.max(1);
    let mu = ((x as f64) * ln_n(graph.n())).ceil() as u64;
    net.charge_local("helpers/ks20-draft", mu.max(1));
    let drafted: Vec<(NodeId, Vec<NodeId>)> = w_set
        .par_iter()
        .map_init(
            || (vec![false; graph.n()], Vec::new(), Vec::new()),
            |(seen, frontier, next), &w| {
                // Level-synchronous BFS banking whole distance classes until
                // µ candidates (or radius µ) are reached.
                let mut helpers: Vec<NodeId> = Vec::with_capacity(mu as usize + 8);
                frontier.clear();
                frontier.push(w);
                seen[w as usize] = true;
                let mut touched: Vec<NodeId> = vec![w];
                let mut depth = 0u64;
                while !frontier.is_empty() && depth <= mu && (helpers.len() as u64) < mu {
                    let level_start = helpers.len();
                    helpers.extend_from_slice(frontier);
                    helpers[level_start..].sort_unstable();
                    next.clear();
                    if depth < mu && (helpers.len() as u64) < mu {
                        for &v in frontier.iter() {
                            for a in graph.arcs(v) {
                                if !seen[a.to as usize] {
                                    seen[a.to as usize] = true;
                                    touched.push(a.to);
                                    next.push(a.to);
                                }
                            }
                        }
                    }
                    std::mem::swap(frontier, next);
                    depth += 1;
                }
                for v in touched {
                    seen[v as usize] = false;
                }
                helpers.truncate((mu as usize).max(1));
                (w, helpers)
            },
        )
        .with_min_len(1)
        .collect();
    let sets: HashMap<NodeId, Vec<NodeId>> = drafted.into_iter().collect();
    Ks20HelperSets { sets, mu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_by_nq;
    use crate::nq::NqOracle;
    use crate::prob::sample_with_probability;
    use hybrid_graph::generators;
    use hybrid_graph::traversal::bfs;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(
        graph: hybrid_graph::Graph,
        k: u64,
    ) -> (Arc<hybrid_graph::Graph>, Clustering, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let clustering = cluster_by_nq(&mut net, &oracle, k);
        (g, clustering, net)
    }

    #[test]
    fn adaptive_sets_cover_w_and_stay_in_cluster() {
        let (g, clustering, mut net) = setup(generators::grid(&[12, 12]).unwrap(), 72);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let prob = (clustering.nq as f64 / clustering.k as f64).min(1.0);
        let w = sample_with_probability(g.n(), prob.max(0.05), &mut rng);
        let sets = adaptive_helper_sets(&mut net, &clustering, &w, &mut rng);
        for &node in &w {
            let helpers = sets.sets.get(&node).expect("every w gets a helper set");
            assert!(!helpers.is_empty());
            // Property (2): helpers within Õ(NQ_k) hops.
            let d = bfs(&g, node);
            for &h in helpers {
                assert!(d.dist[h as usize] <= sets.distance_bound);
            }
        }
    }

    #[test]
    fn adaptive_sets_membership_is_small_for_sparse_w() {
        let (g, clustering, mut net) = setup(generators::grid(&[14, 14]).unwrap(), 98);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let prob = (clustering.nq as f64 / clustering.k as f64).min(1.0);
        let w = sample_with_probability(g.n(), prob, &mut rng);
        let sets = adaptive_helper_sets(&mut net, &clustering, &w, &mut rng);
        if !w.is_empty() {
            let log_n = (g.n() as f64).ln();
            assert!(
                (sets.max_membership(g.n()) as f64) <= 40.0 * log_n,
                "membership {} not Õ(1)",
                sets.max_membership(g.n())
            );
        }
    }

    #[test]
    fn adaptive_sets_size_lower_bound_when_q_saturates() {
        // With a tiny workload the sampling probability saturates at 1 and the
        // whole cluster is drafted, so |H_w| >= k / NQ_k deterministically.
        let (g, clustering, mut net) = setup(generators::grid(&[8, 8]).unwrap(), 16);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let w = vec![0 as NodeId, 37, 63];
        let sets = adaptive_helper_sets(&mut net, &clustering, &w, &mut rng);
        let bound = (clustering.k as f64 / clustering.nq as f64).floor() as usize;
        for &node in &w {
            assert!(
                sets.sets[&node].len() >= bound.min(g.n() / clustering.len()),
                "helper set too small"
            );
        }
        assert!(sets.min_size() >= 1);
    }

    #[test]
    fn ks20_sets_have_mu_size_and_radius() {
        let g = generators::grid(&[15, 15]).unwrap();
        let mut net = HybridNetwork::hybrid(Arc::new(g.clone()));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x = 5u64;
        let w = sample_with_probability(g.n(), 1.0 / x as f64, &mut rng);
        let sets = ks20_helper_sets(&mut net, &g, &w, x);
        assert!(sets.mu >= x);
        for (&node, helpers) in &sets.sets {
            assert!(!helpers.is_empty());
            let d = bfs(&g, node);
            for &h in helpers {
                assert!(d.dist[h as usize] <= sets.mu);
            }
            assert!(helpers.len() as u64 <= sets.mu);
        }
        if !w.is_empty() {
            assert!(sets.min_size() >= 1);
            assert!(sets.max_membership(g.n()) >= 1);
        }
    }

    #[test]
    fn ks20_early_stop_draft_matches_full_ball_sort() {
        // Reference: explore the whole µ-ball, sort by (distance, id), take µ
        // — the pre-optimization implementation.
        for (g, x) in [
            (generators::grid(&[9, 9]).unwrap(), 3u64),
            (generators::path(70).unwrap(), 2),
            (generators::tree_with_n(2, 60).unwrap(), 4),
        ] {
            let w_set: Vec<NodeId> = (0..g.n() as NodeId).step_by(7).collect();
            let mut net = HybridNetwork::hybrid(Arc::new(g.clone()));
            let sets = ks20_helper_sets(&mut net, &g, &w_set, x);
            for &w in &w_set {
                let reach = hybrid_graph::traversal::bfs_bounded(&g, w, sets.mu);
                let mut candidates: Vec<(u64, NodeId)> = reach
                    .order
                    .iter()
                    .map(|&v| (reach.dist[v as usize], v))
                    .collect();
                candidates.sort_unstable();
                let take = (sets.mu as usize).min(candidates.len()).max(1);
                let reference: Vec<NodeId> =
                    candidates.into_iter().take(take).map(|(_, v)| v).collect();
                assert_eq!(sets.sets[&w], reference, "w = {w}");
            }
        }
    }

    #[test]
    fn ks20_sets_on_path_are_contiguous_neighbourhoods() {
        let g = generators::path(60).unwrap();
        let mut net = HybridNetwork::hybrid(Arc::new(g.clone()));
        let sets = ks20_helper_sets(&mut net, &g, &[30], 4);
        let helpers = &sets.sets[&30];
        let d = bfs(&g, 30);
        for &h in helpers {
            assert!(d.dist[h as usize] <= sets.mu);
        }
    }
}
