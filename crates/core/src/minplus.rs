//! Shared blocked `(min, +)` composition kernel for the shortest-paths data
//! level.
//!
//! Several algorithms of the paper end their *data level* with the same
//! algebraic step: every output row is the `(min, +)` product of a
//! coefficient row against a shared right-hand-side matrix of `h`-hop
//! distance rows, folded into an initial row —
//!
//! ```text
//! out[i][v] = min( init[i][v],
//!                  offset_i ⊕ min_j ( coeff_i[j] ⊕ rows[j][v] ) )
//! ```
//!
//! where `⊕` is **saturating** `u64` addition (so [`INFINITY`] absorbs: an
//! unreachable entry can never win a minimum against a finite candidate).
//! Concretely:
//!
//! * `k`-SSP label composition (Theorem 14, Lemma 9.4): `rows` are the
//!   `h`-hop distance rows of the skeleton nodes, `coeff_i` the quantized
//!   skeleton distances from source `i`'s (proxy) anchor, `offset_i` the
//!   source-to-proxy distance — `crate::kssp`;
//! * the `(k, ℓ)`-SP data level (Theorem 5, case 2) runs the same
//!   composition with the targets as sources — `crate::klsp` via
//!   `crate::kssp`;
//! * weighted skeleton APSP (Theorem 8 / Algorithm 4, Table 2): every node
//!   composes through its closest skeleton node, a [`Coeff::Unit`]
//!   coefficient row — `crate::apsp`.
//!
//! # Kernel layout
//!
//! [`compose`] evaluates the product in two phases:
//!
//! 1. **Anchor grouping.**  Output rows that share a coefficient row (`k`
//!    sources behind the same proxy anchor; all nodes of a Theorem 8 cluster)
//!    are grouped, and the inner reduction `A_g[v] = min_j (coeff_g[j] ⊕
//!    rows[j][v])` is evaluated **once per group** instead of once per output
//!    row.  Phase 2 only folds `A_g ⊕ offset_i` into each member's initial
//!    row, which is `O(n)` per row.
//! 2. **Blocked tiles, register-tiled skeleton loop.**  Within a group the
//!    columns are processed in cache-sized tiles of [`COLUMN_TILE`] entries
//!    (the accumulator tile stays in L1 while the skeleton rows stream), and
//!    the skeleton loop is register-tiled by [`ROW_TILE`]: one pass loads
//!    `ROW_TILE` row pointers plus their bases and performs a single
//!    load/store of the accumulator per column for all of them.
//! 3. **Finite-span skipping.**  `h`-hop rows are [`INFINITY`] outside the
//!    `h`-hop ball of their skeleton node; [`RowMatrix`] records the
//!    `(start, end)` range of finite entries per row once, and the kernel
//!    streams only the intersection of that span with the current tile.  On
//!    large-diameter graphs (paths, cycles, grids) this turns the dense
//!    `|S| · n` inner phase into work proportional to the total finite mass.
//!
//! # Saturation contract
//!
//! All additions saturate at `u64::MAX` (`== INFINITY`), so the kernel is
//! total: coefficients, offsets and row entries may all be `INFINITY` and an
//! absent term simply loses every `min`.  Because saturating addition of
//! non-negative integers is associative and commutative, and `min` commutes
//! with adding a constant, the blocked evaluation order is **bit-identical**
//! to the naive triple loop ([`compose_naive`]) — the property test
//! `tests/property_tests.rs::minplus_kernel_matches_naive_reference` pins
//! this, and the parallel fan-out over groups keeps output order
//! index-deterministic, so results do not depend on `RAYON_NUM_THREADS`.

use rayon::prelude::*;

use hybrid_graph::{Weight, INFINITY};

/// Columns per accumulator tile (`COLUMN_TILE · 8` bytes = 16 KiB — half a
/// typical L1d cache, leaving room for the streaming skeleton rows).
pub const COLUMN_TILE: usize = 2048;

/// Skeleton rows folded per accumulator pass (register tiling depth): enough
/// to amortize the accumulator load/store, small enough that the row
/// pointers, bases and bounds live in registers.
///
/// This is **fixed at 4** by the unrolled quad loop in the reduction (the
/// `c01`/`c23` pairing); it is exposed for documentation, not as a tuning
/// knob — a compile-time assertion ties the two together.
pub const ROW_TILE: usize = 4;
const _: () = assert!(ROW_TILE == 4, "the reduction quad loop is unrolled 4-wide");

/// The shared right-hand side of a composition: a `|S| × n` matrix of
/// distance rows together with the `(start, end)` span of finite entries of
/// every row.
///
/// Rows are typically `h`-hop-limited distance sweeps
/// ([`hybrid_graph::dijkstra::hop_limited_distances_with`]) from each
/// skeleton node, which are `INFINITY` outside the node's `h`-hop ball; the
/// spans let the kernel skip those runs wholesale.
#[derive(Debug, Clone, Default)]
pub struct RowMatrix {
    rows: Vec<Vec<Weight>>,
    /// Half-open `[start, end)` range of finite entries per row (`(0, 0)` for
    /// an all-`INFINITY` row).
    spans: Vec<(usize, usize)>,
    ncols: usize,
}

impl RowMatrix {
    /// Wraps `rows` (all of equal length), computing the finite span of each
    /// row once.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn new(rows: Vec<Vec<Weight>>) -> Self {
        let ncols = rows.first().map_or(0, Vec::len);
        let spans = rows
            .iter()
            .map(|row| {
                assert_eq!(row.len(), ncols, "ragged row matrix");
                let start = row.iter().position(|&d| d != INFINITY);
                match start {
                    None => (0, 0),
                    Some(s) => {
                        let e = row.iter().rposition(|&d| d != INFINITY).unwrap_or(s);
                        (s, e + 1)
                    }
                }
            })
            .collect();
        RowMatrix { rows, spans, ncols }
    }

    /// Number of rows `|S|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns `n`.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The `j`-th row.
    pub fn row(&self, j: usize) -> &[Weight] {
        &self.rows[j]
    }

    /// The finite `[start, end)` span of the `j`-th row.
    pub fn span(&self, j: usize) -> (usize, usize) {
        self.spans[j]
    }

    /// The underlying rows.
    pub fn rows(&self) -> &[Vec<Weight>] {
        &self.rows
    }

    /// Consumes the matrix, returning the rows.
    pub fn into_rows(self) -> Vec<Vec<Weight>> {
        self.rows
    }
}

/// A coefficient row against a [`RowMatrix`].
#[derive(Debug, Clone)]
pub enum Coeff {
    /// A dense coefficient row of length `|S|` (entries may be `INFINITY`,
    /// which drops the corresponding skeleton row from the reduction).
    Dense(Vec<Weight>),
    /// The unit coefficient row `e_j` (`0` at position `j`, `INFINITY`
    /// elsewhere): the reduction collapses to row `j` itself.  Used by the
    /// Theorem 8 APSP composition, where every node composes through exactly
    /// its closest skeleton node.
    Unit(usize),
}

/// One (group index, offset) assignment per output row; `None` leaves the
/// initial row untouched.
pub type Assignment = Option<(usize, Weight)>;

/// Element-wise saturating `(min, +)` fold kernels — the only code that
/// touches the accumulator inside [`compose`].
///
/// [`kernel::fold_min_sat`] and [`kernel::fold_min_sat_quad`] dispatch to an
/// explicit AVX2 implementation when the `simd` cargo feature is enabled and
/// the CPU supports it (checked once per call via
/// `is_x86_feature_detected!`); the scalar implementations are **always
/// compiled** and are the fallback everywhere else.  Saturating `u64`
/// addition and `u64` `min` are exact integer operations, so the vector and
/// scalar paths agree **bit for bit** on every input — pinned by the
/// workspace proptest `minplus_simd_kernel_matches_scalar` alongside the
/// existing blocked ≡ naive contract.
pub mod kernel {
    use hybrid_graph::Weight;

    #[inline(always)]
    fn sat(a: Weight, b: Weight) -> Weight {
        a.saturating_add(b)
    }

    /// `acc[v] = min(acc[v], row[v] ⊕ base)` over the common prefix of the
    /// two slices.
    #[inline]
    pub fn fold_min_sat(acc: &mut [Weight], row: &[Weight], base: Weight) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fold_min_sat(acc, row, base);
            }
            return;
        }
        fold_min_sat_scalar(acc, row, base);
    }

    /// Scalar reference for [`fold_min_sat`]; always compiled.
    #[inline]
    pub fn fold_min_sat_scalar(acc: &mut [Weight], row: &[Weight], base: Weight) {
        for (slot, &via) in acc.iter_mut().zip(row) {
            let c = sat(via, base);
            if c < *slot {
                *slot = c;
            }
        }
    }

    /// Register-tiled fold of four rows at once:
    /// `acc[v] = min(acc[v], min_j (rows[j][v] ⊕ bases[j]))` over the common
    /// prefix of all five slices.  One accumulator load/store serves all four
    /// rows ([`super::ROW_TILE`]).
    #[inline]
    pub fn fold_min_sat_quad(acc: &mut [Weight], rows: [&[Weight]; 4], bases: [Weight; 4]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fold_min_sat_quad(acc, rows, bases);
            }
            return;
        }
        fold_min_sat_quad_scalar(acc, rows, bases);
    }

    /// Scalar reference for [`fold_min_sat_quad`]; always compiled.
    #[inline]
    pub fn fold_min_sat_quad_scalar(acc: &mut [Weight], rows: [&[Weight]; 4], bases: [Weight; 4]) {
        let [r0, r1, r2, r3] = rows;
        let [b0, b1, b2, b3] = bases;
        let n = acc
            .len()
            .min(r0.len())
            .min(r1.len())
            .min(r2.len())
            .min(r3.len());
        for v in 0..n {
            let c01 = sat(r0[v], b0).min(sat(r1[v], b1));
            let c23 = sat(r2[v], b2).min(sat(r3[v], b3));
            let c = c01.min(c23);
            if c < acc[v] {
                acc[v] = c;
            }
        }
    }

    /// AVX2 lanes for the fold: 4 × `u64` per vector.  `u64` has no native
    /// unsigned compare or min below AVX-512, so both go through the usual
    /// sign-bit flip to signed `_mm256_cmpgt_epi64`; saturation detects
    /// wrap-around (`sum <ᵤ row`) the same way.  Every lane operation is
    /// exact, so the result equals the scalar fold bit for bit.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    mod avx2 {
        use core::arch::x86_64::*;

        use hybrid_graph::Weight;

        /// One vector step: `min_u(acc, row ⊕_sat base)`.
        ///
        /// # Safety
        /// The caller must have verified AVX2 support.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn min_sat(acc: __m256i, row: __m256i, base: __m256i, sign: __m256i) -> __m256i {
            let sum = _mm256_add_epi64(row, base);
            // Wrapped iff sum <u row ⇔ (row ^ sign) >s (sum ^ sign); the
            // comparison mask is all-ones per wrapped lane, so OR saturates
            // those lanes to u64::MAX.
            let wrapped =
                _mm256_cmpgt_epi64(_mm256_xor_si256(row, sign), _mm256_xor_si256(sum, sign));
            let sat = _mm256_or_si256(sum, wrapped);
            // min_u(acc, sat): where acc >u sat, take sat.
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(acc, sign), _mm256_xor_si256(sat, sign));
            _mm256_blendv_epi8(acc, sat, gt)
        }

        /// Vectorized [`super::fold_min_sat_scalar`].
        ///
        /// # Safety
        /// The caller must have verified AVX2 support.
        #[target_feature(enable = "avx2")]
        pub unsafe fn fold_min_sat(acc: &mut [Weight], row: &[Weight], base: Weight) {
            let n = acc.len().min(row.len());
            let sign = _mm256_set1_epi64x(i64::MIN);
            let vb = _mm256_set1_epi64x(base as i64);
            let mut v = 0usize;
            while v + 4 <= n {
                let pa = acc.as_mut_ptr().add(v).cast::<__m256i>();
                let va = _mm256_loadu_si256(pa.cast_const());
                let vr = _mm256_loadu_si256(row.as_ptr().add(v).cast::<__m256i>());
                _mm256_storeu_si256(pa, min_sat(va, vr, vb, sign));
                v += 4;
            }
            super::fold_min_sat_scalar(&mut acc[v..n], &row[v..n], base);
        }

        /// Vectorized [`super::fold_min_sat_quad_scalar`].
        ///
        /// # Safety
        /// The caller must have verified AVX2 support.
        #[target_feature(enable = "avx2")]
        pub unsafe fn fold_min_sat_quad(
            acc: &mut [Weight],
            rows: [&[Weight]; 4],
            bases: [Weight; 4],
        ) {
            let n = acc
                .len()
                .min(rows[0].len())
                .min(rows[1].len())
                .min(rows[2].len())
                .min(rows[3].len());
            let sign = _mm256_set1_epi64x(i64::MIN);
            let vb = [
                _mm256_set1_epi64x(bases[0] as i64),
                _mm256_set1_epi64x(bases[1] as i64),
                _mm256_set1_epi64x(bases[2] as i64),
                _mm256_set1_epi64x(bases[3] as i64),
            ];
            let mut v = 0usize;
            while v + 4 <= n {
                let pa = acc.as_mut_ptr().add(v).cast::<__m256i>();
                let mut va = _mm256_loadu_si256(pa.cast_const());
                for (row, base) in rows.iter().zip(&vb) {
                    let vr = _mm256_loadu_si256(row.as_ptr().add(v).cast::<__m256i>());
                    va = min_sat(va, vr, *base, sign);
                }
                _mm256_storeu_si256(pa, va);
                v += 4;
            }
            super::fold_min_sat_quad_scalar(
                &mut acc[v..n],
                [
                    &rows[0][v..n],
                    &rows[1][v..n],
                    &rows[2][v..n],
                    &rows[3][v..n],
                ],
                bases,
            );
        }
    }
}

/// The active slice of one skeleton row within the current reduction: its
/// base coefficient and finite span.
struct ActiveRow<'a> {
    row: &'a [Weight],
    base: Weight,
    lo: usize,
    hi: usize,
}

/// Phase 1 for one group: `acc[v] = min_j (coeff[j] ⊕ rows[j][v])`.
///
/// A [`Coeff::Unit`] group collapses to its row verbatim (base 0 inside the
/// finite span, `INFINITY` outside — exactly the stored row), so it is
/// returned borrowed; only dense groups allocate an accumulator.
fn reduce_group<'a>(rows: &'a RowMatrix, coeff: &Coeff) -> std::borrow::Cow<'a, [Weight]> {
    let n = rows.ncols();
    // Collect the active rows (finite coefficient, non-empty span) once.
    let actives: Vec<ActiveRow> = match coeff {
        Coeff::Unit(j) => {
            return std::borrow::Cow::Borrowed(rows.row(*j));
        }
        Coeff::Dense(c) => {
            assert_eq!(c.len(), rows.len(), "coefficient row length != |S|");
            c.iter()
                .enumerate()
                .filter(|&(_, &b)| b != INFINITY)
                .filter_map(|(j, &base)| {
                    let (lo, hi) = rows.span(j);
                    (lo < hi).then(|| ActiveRow {
                        row: rows.row(j),
                        base,
                        lo,
                        hi,
                    })
                })
                .collect()
        }
    };
    let mut acc = vec![INFINITY; n];
    let mut tile_lo = 0;
    while tile_lo < n {
        let tile_hi = (tile_lo + COLUMN_TILE).min(n);
        let mut chunks = actives.chunks_exact(ROW_TILE);
        for quad in chunks.by_ref() {
            let [a0, a1, a2, a3] = quad else {
                unreachable!()
            };
            // Joint register-tiled pass over the intersection of the four
            // spans; the parts covered by only some of the rows fall back to
            // the single-row loop.
            let lo = a0.lo.max(a1.lo).max(a2.lo).max(a3.lo).max(tile_lo);
            let hi = a0.hi.min(a1.hi).min(a2.hi).min(a3.hi).min(tile_hi);
            if lo < hi {
                for a in quad {
                    reduce_single(&mut acc, a, tile_lo, lo);
                    reduce_single(&mut acc, a, hi, tile_hi);
                }
                kernel::fold_min_sat_quad(
                    &mut acc[lo..hi],
                    [
                        &a0.row[lo..hi],
                        &a1.row[lo..hi],
                        &a2.row[lo..hi],
                        &a3.row[lo..hi],
                    ],
                    [a0.base, a1.base, a2.base, a3.base],
                );
            } else {
                for a in quad {
                    reduce_single(&mut acc, a, tile_lo, tile_hi);
                }
            }
        }
        for a in chunks.remainder() {
            reduce_single(&mut acc, a, tile_lo, tile_hi);
        }
        tile_lo = tile_hi;
    }
    std::borrow::Cow::Owned(acc)
}

/// Single-row reduction over `acc[lo..hi] ∩` the row's finite span.
#[inline]
fn reduce_single(acc: &mut [Weight], a: &ActiveRow, lo: usize, hi: usize) {
    let lo = lo.max(a.lo);
    let hi = hi.min(a.hi);
    if lo >= hi {
        return;
    }
    kernel::fold_min_sat(&mut acc[lo..hi], &a.row[lo..hi], a.base);
}

/// Blocked `(min, +)` composition (see the module docs for the layout).
///
/// Returns fresh output rows with the composition folded into the initial
/// rows: `out[i][v] = min(init[i][v], offset_i ⊕ min_j (coeff_{g(i)}[j] ⊕
/// rows[j][v]))` for every row with `assign[i] = Some((g(i), offset_i))`;
/// rows assigned `None` are copied through unchanged.
///
/// Coefficient rows in `coeffs` are shared: every output row naming group `g`
/// reuses the phase-1 reduction of `coeffs[g]`.  Results are bit-identical to
/// [`compose_naive`] and independent of the thread count.
///
/// # Panics
/// Panics if `assign.len() != init.len()`, a group index is out of range, a
/// dense coefficient row's length differs from `rows.len()`, or a composed
/// initial row's length differs from `rows.ncols()` (when `rows` is
/// non-empty).
pub fn compose(
    rows: &RowMatrix,
    coeffs: &[Coeff],
    assign: &[Assignment],
    init: &[&[Weight]],
) -> Vec<Vec<Weight>> {
    assert_eq!(assign.len(), init.len(), "one assignment per output row");
    // Phase 1: one reduction per *referenced* coefficient row, in parallel.
    let mut used = vec![false; coeffs.len()];
    for a in assign.iter().flatten() {
        used[a.0] = true;
    }
    let anchor_rows: Vec<Option<std::borrow::Cow<[Weight]>>> = (0..coeffs.len())
        .into_par_iter()
        .map(|g| used[g].then(|| reduce_group(rows, &coeffs[g])))
        .with_min_len(1)
        .collect();
    // Phase 2: fold each member's anchor row (plus offset) into its initial
    // row — O(n) per output row, parallel over rows, index-deterministic.
    (0..init.len())
        .into_par_iter()
        .map(|i| {
            let mut out = init[i].to_vec();
            let Some((g, offset)) = assign[i] else {
                return out;
            };
            let anchor = anchor_rows[g].as_deref().expect("used group reduced");
            if !rows.is_empty() {
                assert_eq!(out.len(), rows.ncols(), "initial row length != n");
            }
            kernel::fold_min_sat(&mut out, anchor, offset);
            out
        })
        .with_min_len(8)
        .collect()
}

/// Reference implementation of [`compose`]: the naive triple loop, kept
/// deliberately simple (no spans, no tiling, no grouping) as the equivalence
/// oracle for the property tests and as executable documentation of the
/// kernel's contract.
pub fn compose_naive(
    rows: &RowMatrix,
    coeffs: &[Coeff],
    assign: &[Assignment],
    init: &[&[Weight]],
) -> Vec<Vec<Weight>> {
    assert_eq!(assign.len(), init.len(), "one assignment per output row");
    let mut result: Vec<Vec<Weight>> = init.iter().map(|r| r.to_vec()).collect();
    for (i, out) in result.iter_mut().enumerate() {
        let Some((g, offset)) = assign[i] else {
            continue;
        };
        let dense;
        let coeff: &[Weight] = match &coeffs[g] {
            Coeff::Dense(c) => c,
            Coeff::Unit(j) => {
                let mut e = vec![INFINITY; rows.len()];
                e[*j] = 0;
                dense = e;
                &dense
            }
        };
        for (j, &base) in coeff.iter().enumerate() {
            let row = rows.row(j);
            for (o, &via) in out.iter_mut().zip(row) {
                let c = via.saturating_add(base).saturating_add(offset);
                if c < *o {
                    *o = c;
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<Weight>>) -> RowMatrix {
        RowMatrix::new(rows)
    }

    fn refs(init: &[Vec<Weight>]) -> Vec<&[Weight]> {
        init.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn spans_skip_infinity_runs() {
        let m = matrix(vec![
            vec![INFINITY, 3, INFINITY, 5, INFINITY],
            vec![INFINITY; 5],
            vec![1, 2, 3, 4, 5],
        ]);
        assert_eq!(m.span(0), (1, 4));
        assert_eq!(m.span(1), (0, 0));
        assert_eq!(m.span(2), (0, 5));
    }

    #[test]
    fn compose_matches_naive_on_small_instance() {
        let m = matrix(vec![
            vec![0, 2, 9, INFINITY],
            vec![2, 0, 1, 7],
            vec![INFINITY, 1, 0, 3],
        ]);
        let coeffs = vec![
            Coeff::Dense(vec![0, 2, INFINITY]),
            Coeff::Dense(vec![INFINITY, 1, 4]),
            Coeff::Unit(2),
        ];
        let assign: Vec<Assignment> = vec![
            Some((0, 0)),
            Some((1, 5)),
            Some((2, 1)),
            None,
            Some((0, INFINITY)),
        ];
        let init = vec![
            vec![1, INFINITY, INFINITY, INFINITY],
            vec![INFINITY; 4],
            vec![9, 9, 9, 9],
            vec![7, 7, 7, 7],
            vec![4, 4, 4, 4],
        ];
        let blocked = compose(&m, &coeffs, &assign, &refs(&init));
        let naive = compose_naive(&m, &coeffs, &assign, &refs(&init));
        assert_eq!(blocked, naive);
        // Spot checks: row 0 composes through coeff 0 with offset 0.
        assert_eq!(blocked[0], vec![0, 2, 3, 9]);
        // Row 3 passes through; row 4's INFINITY offset saturates every term.
        assert_eq!(blocked[3], vec![7, 7, 7, 7]);
        assert_eq!(blocked[4], vec![4, 4, 4, 4]);
    }

    #[test]
    fn register_tiling_covers_more_rows_than_the_tile() {
        // > ROW_TILE rows with staggered spans exercises the quad loop, the
        // head/tail single-row paths and the remainder loop together.
        let n = 40;
        let rows: Vec<Vec<Weight>> = (0..11u64)
            .map(|j| {
                (0..n)
                    .map(|v| {
                        let lo = (j as usize) * 2;
                        let hi = n - (j as usize);
                        if v >= lo && v < hi {
                            (v as Weight) + j
                        } else {
                            INFINITY
                        }
                    })
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let coeffs = vec![Coeff::Dense((0..11u64).map(|j| j % 3).collect())];
        let assign: Vec<Assignment> = vec![Some((0, 2))];
        let init = vec![vec![INFINITY; n]];
        assert_eq!(
            compose(&m, &coeffs, &assign, &refs(&init)),
            compose_naive(&m, &coeffs, &assign, &refs(&init))
        );
    }

    #[test]
    fn empty_matrix_and_empty_assignments() {
        let m = matrix(Vec::new());
        let init = vec![vec![1, 2], vec![3, 4]];
        let out = compose(&m, &[], &[None, None], &refs(&init));
        assert_eq!(out, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn saturation_never_underflows_the_min() {
        let m = matrix(vec![vec![Weight::MAX - 1, INFINITY]]);
        let coeffs = vec![Coeff::Dense(vec![Weight::MAX - 1])];
        let assign: Vec<Assignment> = vec![Some((0, Weight::MAX - 1))];
        let init = vec![vec![Weight::MAX - 1, Weight::MAX - 1]];
        let out = compose(&m, &coeffs, &assign, &refs(&init));
        // Every candidate saturates to INFINITY and loses against the init.
        assert_eq!(out, init);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        matrix(vec![vec![1, 2], vec![1]]);
    }

    /// Saturating-add boundary audit (ISSUE 9 satellite): `u64::MAX - 1`
    /// entries sitting exactly on the `COLUMN_TILE` seam must saturate into
    /// the `INFINITY` sentinel identically in the blocked, naive and kernel
    /// paths — a finite-but-huge candidate may never wrap around and win a
    /// minimum it should lose.
    #[test]
    fn saturation_boundary_at_column_tile_edges() {
        let n = COLUMN_TILE + 5;
        let mut row = vec![INFINITY; n];
        // Finite entries pinned to both sides of the tile seam and both ends
        // of the span (so the span covers the seam).
        for v in [0, COLUMN_TILE - 1, COLUMN_TILE, n - 1] {
            row[v] = Weight::MAX - 1;
        }
        row[1] = 7;
        let m = matrix(vec![row]);
        for base in [0, 1, Weight::MAX - 1] {
            for offset in [0, 1] {
                let coeffs = vec![Coeff::Dense(vec![base])];
                let assign: Vec<Assignment> = vec![Some((0, offset))];
                let init = vec![vec![Weight::MAX - 1; n]];
                let blocked = compose(&m, &coeffs, &assign, &refs(&init));
                let naive = compose_naive(&m, &coeffs, &assign, &refs(&init));
                assert_eq!(blocked, naive, "base={base} offset={offset}");
                // MAX-1 candidates saturate to INFINITY as soon as anything
                // is added and then lose against the MAX-1 initial row.
                assert_eq!(blocked[0][COLUMN_TILE - 1], Weight::MAX - 1);
                assert_eq!(blocked[0][COLUMN_TILE], Weight::MAX - 1);
            }
        }
    }

    /// The same boundary through the register-tiled quad loop: four rows
    /// whose joint span crosses the tile seam, all carrying `u64::MAX - 1`
    /// entries there.
    #[test]
    fn saturation_boundary_survives_the_quad_loop() {
        let n = COLUMN_TILE + 9;
        let rows: Vec<Vec<Weight>> = (0..4u64)
            .map(|j| {
                (0..n)
                    .map(|v| {
                        if (COLUMN_TILE - 2..=COLUMN_TILE + 2).contains(&v) {
                            Weight::MAX - 1
                        } else {
                            v as Weight + j
                        }
                    })
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let coeffs = vec![Coeff::Dense(vec![1, 0, Weight::MAX - 1, 2])];
        let assign: Vec<Assignment> = vec![Some((0, 1))];
        let init = vec![vec![Weight::MAX - 1; n]];
        let blocked = compose(&m, &coeffs, &assign, &refs(&init));
        let naive = compose_naive(&m, &coeffs, &assign, &refs(&init));
        assert_eq!(blocked, naive);
        // On the seam every candidate saturates; the initial row survives.
        assert_eq!(blocked[0][COLUMN_TILE], Weight::MAX - 1);
        // Off the seam the finite candidates win: min_j (v + j + coeff_j) + 1.
        assert_eq!(blocked[0][0], 2);
    }

    /// The dispatching kernels and their scalar references agree on the
    /// saturation boundary and on `INFINITY` runs (meaningful under
    /// `--features simd`, trivially true otherwise).
    #[test]
    fn kernel_dispatch_matches_scalar_on_boundaries() {
        let row: Vec<Weight> = vec![
            0,
            1,
            Weight::MAX - 1,
            INFINITY,
            INFINITY,
            Weight::MAX / 2,
            42,
            Weight::MAX - 2,
            3,
            INFINITY,
            7,
        ];
        for base in [0, 1, Weight::MAX / 2, Weight::MAX - 1, INFINITY] {
            let init: Vec<Weight> = row.iter().rev().copied().collect();
            let mut a = init.clone();
            let mut b = init.clone();
            kernel::fold_min_sat(&mut a, &row, base);
            kernel::fold_min_sat_scalar(&mut b, &row, base);
            assert_eq!(a, b, "fold_min_sat diverged at base {base}");

            let rows = [&row[..], &init[..], &row[..], &init[..]];
            let bases = [base, 0, Weight::MAX - 1, base];
            let mut a = init.clone();
            let mut b = init.clone();
            kernel::fold_min_sat_quad(&mut a, rows, bases);
            kernel::fold_min_sat_quad_scalar(&mut b, rows, bases);
            assert_eq!(a, b, "fold_min_sat_quad diverged at base {base}");
        }
    }
}
