//! Pluggable algorithm traits and the shootout registry.
//!
//! The sweep (and any future serving front-end) should not care *which*
//! dissemination or shortest-paths pipeline it is driving: every contender
//! implements [`DisseminationAlgorithm`] or [`SsspAlgorithm`] and registers
//! itself in [`dissemination_registry`] / [`sssp_registry`].  The bench crate
//! runs every registered implementation on the *same instance* against the
//! *same lower-bound witness* and emits the measured rounds side by side
//! (`results/sweep_scaling.json`); the differential conformance suite
//! (`crates/core/tests/conformance.rs`) cross-checks every implementation
//! pair on delivered token sets and distance-label stretch.
//!
//! | name              | paper                           | guarantee                      |
//! |-------------------|---------------------------------|--------------------------------|
//! | `theorem1`        | PODC'24 Theorem 1               | `Õ(NQ_k)` rounds, randomized   |
//! | `det-broadcast`   | `[CHL23]` arXiv:2304.06317      | deterministic token forwarding |
//! | `sqrt-k-baseline` | `[AHK+20]`                      | `Õ(√k)` existential baseline   |
//! | `theorem14`       | PODC'24 Theorem 14 (random)     | stretch `1+ε`, `Õ(√k/ε²)`      |
//! | `theorem14-proxy` | PODC'24 Theorem 14 (arbitrary)  | stretch `3(1+ε)`, `Õ(√(k/γ))`  |
//! | `schneider`       | `[Sch23]` arXiv:2306.05977      | stretch `1+ε`, `Θ(hop-diam)`   |

use std::fmt;

use hybrid_graph::NodeId;
use hybrid_sim::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::det_broadcast::det_token_forward_dissemination;
use crate::dissemination::{
    baseline_sqrt_k_dissemination, k_dissemination, DisseminationOutput, TokenPlacement,
};
use crate::kssp::{kssp, KsspOutput, KsspVariant};
use crate::nq::NqOracle;
use crate::schneider::schneider_kssp;

/// A `k`-dissemination contender: delivers every placed token to every node
/// and reports its round bill through the shared cost meter.
pub trait DisseminationAlgorithm: Send + Sync {
    /// Stable registry name (also the JSON column key and the `--algo` value).
    fn name(&self) -> &'static str;
    /// The paper the implementation reproduces.
    fn reference(&self) -> &'static str;
    /// Whether the schedule draws random bits.
    fn deterministic(&self) -> bool;
    /// Runs the pipeline on `net`, delivering `tokens` to every node.
    fn run(
        &self,
        net: &mut HybridNetwork,
        oracle: &NqOracle,
        tokens: &[TokenPlacement],
    ) -> DisseminationOutput;
}

/// A `k`-source shortest-paths contender: produces distance labels within its
/// stated stretch for every (source, node) pair.
pub trait SsspAlgorithm: Send + Sync {
    /// Stable registry name (also the JSON column key and the `--algo` value).
    fn name(&self) -> &'static str;
    /// The paper the implementation reproduces.
    fn reference(&self) -> &'static str;
    /// Worst-case stretch contract for accuracy `epsilon` (a particular run
    /// may report a tighter [`KsspOutput::stretch`]).
    fn stated_stretch(&self, epsilon: f64) -> f64;
    /// Runs the pipeline on `net` from `sources`; `seed` derives any random
    /// bits the implementation draws (deterministic impls ignore it).
    fn run(
        &self,
        net: &mut HybridNetwork,
        sources: &[NodeId],
        epsilon: f64,
        seed: u64,
    ) -> KsspOutput;
}

/// Theorem 1 — the paper's universally optimal `Õ(NQ_k)` dissemination.
pub struct Theorem1Dissemination;

impl DisseminationAlgorithm for Theorem1Dissemination {
    fn name(&self) -> &'static str {
        "theorem1"
    }
    fn reference(&self) -> &'static str {
        "PODC'24 Theorem 1"
    }
    fn deterministic(&self) -> bool {
        false
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        oracle: &NqOracle,
        tokens: &[TokenPlacement],
    ) -> DisseminationOutput {
        k_dissemination(net, oracle, tokens)
    }
}

/// `[CHL23]` — deterministic token-forwarding broadcasting (arXiv:2304.06317).
pub struct DetBroadcast;

impl DisseminationAlgorithm for DetBroadcast {
    fn name(&self) -> &'static str {
        "det-broadcast"
    }
    fn reference(&self) -> &'static str {
        "[CHL23] arXiv:2304.06317"
    }
    fn deterministic(&self) -> bool {
        true
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        oracle: &NqOracle,
        tokens: &[TokenPlacement],
    ) -> DisseminationOutput {
        det_token_forward_dissemination(net, oracle, tokens)
    }
}

/// `[AHK+20]` — the existentially optimal `Õ(√k)` baseline.
pub struct SqrtKBaseline;

impl DisseminationAlgorithm for SqrtKBaseline {
    fn name(&self) -> &'static str {
        "sqrt-k-baseline"
    }
    fn reference(&self) -> &'static str {
        "[AHK+20]"
    }
    fn deterministic(&self) -> bool {
        false
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        oracle: &NqOracle,
        tokens: &[TokenPlacement],
    ) -> DisseminationOutput {
        baseline_sqrt_k_dissemination(net, oracle, tokens)
    }
}

/// Theorem 14 (random-sources regime) — stretch `1+ε` via the sampled
/// skeleton with the sources forced into it.
pub struct Theorem14Kssp;

impl SsspAlgorithm for Theorem14Kssp {
    fn name(&self) -> &'static str {
        "theorem14"
    }
    fn reference(&self) -> &'static str {
        "PODC'24 Theorem 14"
    }
    fn stated_stretch(&self, epsilon: f64) -> f64 {
        1.0 + epsilon
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        sources: &[NodeId],
        epsilon: f64,
        seed: u64,
    ) -> KsspOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        kssp(net, sources, epsilon, KsspVariant::RandomSources, &mut rng)
    }
}

/// Theorem 14 (arbitrary-sources regime) — stretch `3(1+ε)` through proxy
/// sources on the skeleton.
pub struct Theorem14ProxyKssp;

impl SsspAlgorithm for Theorem14ProxyKssp {
    fn name(&self) -> &'static str {
        "theorem14-proxy"
    }
    fn reference(&self) -> &'static str {
        "PODC'24 Theorem 14 (arbitrary sources)"
    }
    fn stated_stretch(&self, epsilon: f64) -> f64 {
        3.0 * (1.0 + epsilon)
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        sources: &[NodeId],
        epsilon: f64,
        seed: u64,
    ) -> KsspOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        kssp(
            net,
            sources,
            epsilon,
            KsspVariant::ArbitrarySources,
            &mut rng,
        )
    }
}

/// `[Sch23]` — skeleton-free `h`-hop + global shortcut composition
/// (arXiv:2306.05977).
pub struct SchneiderSssp;

impl SsspAlgorithm for SchneiderSssp {
    fn name(&self) -> &'static str {
        "schneider"
    }
    fn reference(&self) -> &'static str {
        "[Sch23] arXiv:2306.05977"
    }
    fn stated_stretch(&self, epsilon: f64) -> f64 {
        1.0 + epsilon
    }
    fn run(
        &self,
        net: &mut HybridNetwork,
        sources: &[NodeId],
        epsilon: f64,
        _seed: u64,
    ) -> KsspOutput {
        schneider_kssp(net, sources, epsilon)
    }
}

/// Every registered dissemination contender, shootout order.
pub fn dissemination_registry() -> Vec<Box<dyn DisseminationAlgorithm>> {
    vec![
        Box::new(Theorem1Dissemination),
        Box::new(DetBroadcast),
        Box::new(SqrtKBaseline),
    ]
}

/// Every registered shortest-paths contender, shootout order.
pub fn sssp_registry() -> Vec<Box<dyn SsspAlgorithm>> {
    vec![
        Box::new(Theorem14Kssp),
        Box::new(Theorem14ProxyKssp),
        Box::new(SchneiderSssp),
    ]
}

/// All registry names, dissemination first (usage text, error messages).
pub fn registry_names() -> Vec<&'static str> {
    dissemination_registry()
        .iter()
        .map(|a| a.name())
        .chain(sssp_registry().iter().map(|a| a.name()))
        .collect()
}

/// Which problem a registry entry solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// `k`-dissemination contenders.
    Dissemination,
    /// `k`-source shortest-paths contenders.
    ShortestPaths,
}

/// Typed errors from registry selection — the CLI maps these to exit 2 +
/// usage instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A `--algo` value matched no registered implementation.
    UnknownAlgorithm {
        /// The unmatched name.
        name: String,
        /// Every valid name, for the error message.
        known: Vec<&'static str>,
    },
    /// The selection left no implementation in either registry.
    EmptyRegistry,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownAlgorithm { name, known } => write!(
                f,
                "unknown algorithm '{name}' (registered: {})",
                known.join(", ")
            ),
            RegistryError::EmptyRegistry => {
                write!(f, "algorithm selection is empty: no contender to run")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The contenders a shootout run will actually execute.
pub struct ShootoutSelection {
    /// Selected dissemination contenders (shootout order).
    pub dissemination: Vec<Box<dyn DisseminationAlgorithm>>,
    /// Selected shortest-paths contenders (shootout order).
    pub sssp: Vec<Box<dyn SsspAlgorithm>>,
}

/// Resolves an optional `--algo` filter against both registries.
///
/// `None` selects everything.  Each filter name must match a registered
/// implementation ([`RegistryError::UnknownAlgorithm`] otherwise), and the
/// overall selection must be non-empty ([`RegistryError::EmptyRegistry`]).
pub fn select_algorithms(filter: Option<&[String]>) -> Result<ShootoutSelection, RegistryError> {
    let mut dissemination = dissemination_registry();
    let mut sssp = sssp_registry();
    if let Some(names) = filter {
        for name in names {
            if !registry_names().contains(&name.as_str()) {
                return Err(RegistryError::UnknownAlgorithm {
                    name: name.clone(),
                    known: registry_names(),
                });
            }
        }
        dissemination.retain(|a| names.iter().any(|n| n == a.name()));
        sssp.retain(|a| names.iter().any(|n| n == a.name()));
    }
    if dissemination.is_empty() && sssp.is_empty() {
        return Err(RegistryError::EmptyRegistry);
    }
    Ok(ShootoutSelection {
        dissemination,
        sssp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissemination::place_tokens;
    use hybrid_graph::generators;
    use std::sync::Arc;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names = registry_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry name");
        assert_eq!(
            names,
            vec![
                "theorem1",
                "det-broadcast",
                "sqrt-k-baseline",
                "theorem14",
                "theorem14-proxy",
                "schneider"
            ]
        );
    }

    #[test]
    fn select_none_returns_full_registries() {
        let sel = select_algorithms(None).unwrap();
        assert_eq!(sel.dissemination.len(), 3);
        assert_eq!(sel.sssp.len(), 3);
    }

    #[test]
    fn select_unknown_name_is_typed_error() {
        let filter = vec!["theorem1".to_string(), "nope".to_string()];
        match select_algorithms(Some(&filter)) {
            Err(RegistryError::UnknownAlgorithm { name, known }) => {
                assert_eq!(name, "nope");
                assert!(known.contains(&"schneider"));
            }
            other => panic!(
                "expected UnknownAlgorithm, got {other:?}",
                other = other.err()
            ),
        }
    }

    #[test]
    fn select_empty_filter_is_typed_error() {
        let filter: Vec<String> = Vec::new();
        assert_eq!(
            select_algorithms(Some(&filter)).err(),
            Some(RegistryError::EmptyRegistry)
        );
    }

    #[test]
    fn select_partial_filter_keeps_one_side() {
        let filter = vec!["schneider".to_string()];
        let sel = select_algorithms(Some(&filter)).unwrap();
        assert!(sel.dissemination.is_empty());
        assert_eq!(sel.sssp.len(), 1);
        assert_eq!(sel.sssp[0].name(), "schneider");
    }

    #[test]
    fn every_dissemination_impl_delivers_the_same_tokens() {
        let g = generators::grid(&[8, 8]).unwrap();
        let tokens = place_tokens(&(0..64).collect::<Vec<_>>(), 24);
        let mut seen: Option<Vec<u64>> = None;
        for algo in dissemination_registry() {
            let arc = Arc::new(g.clone());
            let oracle = NqOracle::new(&arc);
            let mut net = HybridNetwork::hybrid0(arc);
            let out = algo.run(&mut net, &oracle, &tokens);
            assert!(out.rounds > 0, "{} charged no rounds", algo.name());
            match &seen {
                None => seen = Some(out.tokens),
                Some(prev) => assert_eq!(prev, &out.tokens, "{} diverged", algo.name()),
            }
        }
    }

    #[test]
    fn every_sssp_impl_meets_its_stated_stretch() {
        let g = Arc::new(generators::grid(&[7, 7]).unwrap());
        let sources = vec![0, 24, 48];
        for algo in sssp_registry() {
            let mut net = HybridNetwork::hybrid(Arc::clone(&g));
            let out = algo.run(&mut net, &sources, 0.5, 11);
            assert!(
                out.stretch <= algo.stated_stretch(0.5) + 1e-9,
                "{} reported stretch above its contract",
                algo.name()
            );
            out.verify_stretch(&g).unwrap();
        }
    }
}
