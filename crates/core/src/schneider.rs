//! Schneider-style shortest paths — the rival algorithm of *Towards
//! Universally Optimal Shortest Paths* (`[Sch23]`, arXiv:2306.05977),
//! reproduced as a competing [`crate::algorithm::SsspAlgorithm`]
//! implementation.
//!
//! # Shape
//!
//! Where Theorem 14 schedules Theorem 13 SSSP instances on a *sampled
//! skeleton* sized to the global budget (`x = √(k/γ)`), the `[Sch23]` baseline
//! reproduced here is **skeleton-free**: it composes truncated `h`-hop
//! knowledge with *global shortcuts* through a fixed deterministic landmark
//! set, and pays for the truncation depth directly:
//!
//! 1. **Landmarks** — `≈ √n` nodes chosen by a fixed id stride (no sampling,
//!    no randomness);
//! 2. **Iterative deepening** — every landmark and every source runs an
//!    `h`-hop-limited sweep over the local network, starting at
//!    `h₀ = max(2, ⌈n^{1/3}⌉)` and doubling until *every* sweep reports its
//!    Bellman–Ford fixpoint (each attempt costs `h` local rounds; the total
//!    is a geometric sum `≤ 4·h_final`).  This is the structural difference
//!    the shootout measures: the deepening bill is bounded by the *hop
//!    diameter*, so the baseline collapses on high-diameter families (path,
//!    cycle, barbell) where Theorem 14's skeleton pays only `Õ(√(k/γ))` —
//!    and ties on low-diameter families where one `h₀` sweep already
//!    converges (pinned by `crates/core/tests/rivals.rs`);
//! 3. **Global shortcut composition** — landmarks exchange their overlay
//!    rows over the global network (`⌈|L|/γ⌉` rounds), sources inject their
//!    entry distances (`⌈k/γ⌉` rounds), and every node composes
//!    `label(v) = min(d^h(s, v), min_L d^h(s, L) + d^h(L, v))`, quantized by
//!    the allowed `(1+ε)` error.
//!
//! Because the deepening loop runs until every row is at its fixpoint, the
//! composed labels are exact-then-quantized — genuine stretch `1+ε`, the same
//! substitution convention the repo uses for Theorem 13 (see DESIGN.md) —
//! which is what lets the differential conformance suite cross-check this
//! implementation against Theorem 14 bit for bit on the stretch contract.

use rayon::prelude::*;

use hybrid_graph::dijkstra::{hop_limited_distances_with, HopLimitedWorkspace};
use hybrid_graph::{NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

use crate::kssp::KsspOutput;
use crate::sssp::quantize_distance;

/// Number of landmarks used for `n` nodes: `⌈√n⌉`, matching the `[Sch23]`
/// overlay density (and the Theorem 14 skeleton size at `k = n`, `γ = 1`).
pub fn landmark_count(n: usize) -> usize {
    (n.max(1) as f64).sqrt().ceil() as usize
}

/// The fixed deterministic landmark set: ids `0, s, 2s, …` with stride
/// `s = ⌊n / ⌈√n⌉⌋` — no randomness anywhere.
pub fn landmarks(n: usize) -> Vec<NodeId> {
    let count = landmark_count(n);
    let stride = (n / count).max(1);
    (0..n).step_by(stride).map(|v| v as NodeId).collect()
}

/// Initial deepening depth `h₀ = max(2, ⌈n^{1/3}⌉)`.
pub fn initial_depth(n: usize) -> usize {
    ((n.max(1) as f64).powf(1.0 / 3.0).ceil() as usize).max(2)
}

/// `[Sch23]`-style `k`-source shortest paths: deterministic landmarks,
/// iterative-deepening `h`-hop sweeps, global shortcut composition.
/// Stretch `1+ε`; rounds dominated by the deepening bill `Θ(hop-diameter)`
/// on sparse families.
pub fn schneider_kssp(net: &mut HybridNetwork, sources: &[NodeId], epsilon: f64) -> KsspOutput {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let graph = net.graph_arc();
    let n = graph.n();
    let k = sources.len();
    let gamma = net.params().global_capacity_msgs.max(1) as u64;
    let before = net.rounds();

    if k == 0 {
        return KsspOutput {
            sources: Vec::new(),
            dist: Vec::new(),
            stretch: 1.0 + epsilon,
            epsilon,
            rounds: 0,
            skeleton_size: 0,
        };
    }

    let lm = landmarks(n);

    // Phase 1+2: iterative deepening until every sweep (landmark and source
    // alike) reaches its Bellman–Ford fixpoint.  Each attempt costs `h` local
    // rounds; re-sweeping from scratch is exactly how iterative deepening
    // pays, and the geometric schedule keeps the total within 4·h_final.
    let mut h = initial_depth(n);
    let (lm_rows, src_rows) = loop {
        net.charge_local("schneider/h-hop-sweep", h as u64);
        let sweep = |nodes: &[NodeId]| -> (Vec<Vec<Weight>>, bool) {
            let swept: Vec<(Vec<Weight>, bool)> = nodes
                .par_iter()
                .map_init(HopLimitedWorkspace::new, |ws, &s| {
                    let mut row = Vec::new();
                    let converged = hop_limited_distances_with(ws, &graph, s, h, &mut row);
                    (row, converged)
                })
                .with_min_len(1)
                .collect();
            let all = swept.iter().all(|&(_, c)| c);
            (swept.into_iter().map(|(row, _)| row).collect(), all)
        };
        let (l_rows, l_conv) = sweep(&lm);
        let (s_rows, s_conv) = sweep(sources);
        if (l_conv && s_conv) || h >= 2 * n {
            break (l_rows, s_rows);
        }
        h *= 2;
    };

    // Phase 3a: landmark overlay exchange — each landmark ships its |L|-entry
    // overlay row over the global network under the γ budget.
    net.charge_rounds(
        "schneider/landmark-overlay-exchange",
        (lm.len() as u64).div_ceil(gamma).max(1),
    );
    // Phase 3b: sources inject their landmark entry distances.
    net.charge_rounds(
        "schneider/source-entry-exchange",
        (k as u64).div_ceil(gamma).max(1),
    );
    // Coordination (deepening consensus + landmark id agreement).
    net.charge_rounds("schneider/coordination", net.log_n());

    // Phase 3c: shortcut composition, then (1+ε) quantization.  With every
    // sweep at its fixpoint the direct term dominates by the triangle
    // inequality; the composition is still evaluated in full — it is the
    // algorithm's data path, and the dominance is debug-asserted.
    let dist: Vec<Vec<Weight>> = src_rows
        .par_iter()
        .map(|row| {
            let entries: Vec<Weight> = lm.iter().map(|&l| row[l as usize]).collect();
            (0..n)
                .map(|v| {
                    let mut best = row[v];
                    for (j, &e) in entries.iter().enumerate() {
                        let lr = lm_rows[j][v];
                        if e != INFINITY && lr != INFINITY {
                            best = best.min(e.saturating_add(lr));
                        }
                    }
                    debug_assert_eq!(best, row[v], "converged direct row must dominate");
                    quantize_distance(best, epsilon)
                })
                .collect()
        })
        .with_min_len(1)
        .collect();

    KsspOutput {
        sources: sources.to_vec(),
        dist,
        stretch: 1.0 + epsilon,
        epsilon,
        rounds: net.rounds() - before,
        skeleton_size: lm.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use std::sync::Arc;

    #[test]
    fn landmark_set_is_deterministic_and_sized() {
        let l = landmarks(256);
        assert_eq!(l, landmarks(256));
        assert!(l.len() >= 16 && l.len() <= 32, "got {}", l.len());
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn labels_respect_stretch_on_weighted_grid() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = Arc::new(generators::weighted_grid(&[9, 9], 20, &mut rng).unwrap());
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let sources: Vec<NodeId> = vec![0, 17, 40, 80];
        let out = schneider_kssp(&mut net, &sources, 0.5);
        assert!((out.stretch - 1.5).abs() < 1e-9);
        assert_eq!(out.skeleton_size, landmarks(g.n()).len());
        out.verify_stretch(&g).unwrap();
    }

    #[test]
    fn deepening_bill_scales_with_hop_diameter() {
        let path = Arc::new(generators::path(128).unwrap());
        let grid = Arc::new(generators::grid(&[12, 11]).unwrap());
        let mut net_p = HybridNetwork::hybrid(Arc::clone(&path));
        let mut net_g = HybridNetwork::hybrid(Arc::clone(&grid));
        let out_p = schneider_kssp(&mut net_p, &[0, 63], 1.0);
        let out_g = schneider_kssp(&mut net_g, &[0, 63], 1.0);
        // Path: deepening must reach h ≥ 127; grid of ~same n converges at
        // h ≈ 21, so the path bill is several times larger.
        assert!(
            out_p.rounds > 2 * out_g.rounds,
            "path {} vs grid {}",
            out_p.rounds,
            out_g.rounds
        );
        out_p.verify_stretch(&path).unwrap();
        out_g.verify_stretch(&grid).unwrap();
    }

    #[test]
    fn empty_sources_is_noop() {
        let g = Arc::new(generators::cycle(16).unwrap());
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let out = schneider_kssp(&mut net, &[], 0.5);
        assert!(out.dist.is_empty());
        assert_eq!(out.rounds, 0);
    }
}
