//! Universally optimal all-pairs shortest paths (Section 6):
//!
//! * [`apsp_unweighted`] — Theorem 6: deterministic `(1+ε)`-approximate APSP
//!   for unweighted graphs in `Õ(NQ_n/ε²)` rounds (Algorithm 3);
//! * [`apsp_weighted_spanner`] — Theorem 7: deterministic
//!   `(1 + ε·log n)`-approximation by broadcasting a spanner, and
//!   [`apsp_weighted_log_over_loglog`] — Corollary 2.3 with
//!   `ε = 1/log log n`;
//! * [`apsp_weighted_skeleton`] — Theorem 8: randomized `(4α−1)`-approximation
//!   via a skeleton graph plus a spanner of the skeleton (Algorithm 4);
//! * [`apsp_sparse_exact`] — Corollary 2.2: on graphs with `Õ(n)` edges,
//!   broadcast the whole graph and solve everything locally and exactly;
//! * [`baseline_sqrt_n_apsp`] — the existentially optimal `Õ(√n)` comparison
//!   row of Table 2 (`[AHK+20]`, `[KS20]`, `[AG21a]`).
//!
//! Every function returns the full `n × n` label matrix so the test suite can
//! verify the promised stretch against exact Dijkstra.

use hybrid_graph::dijkstra::{
    apsp_exact, hop_limited_distances_with, DijkstraWorkspace, HopLimitedWorkspace,
};
use hybrid_graph::{Graph, NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;
use rand::Rng;
use rayon::prelude::*;

use crate::dissemination::{disseminate_with_radius, RadiusPolicy, TokenPlacement};
use crate::minplus;
use crate::nq::NqOracle;
use crate::prob::ln_n;
use crate::rows::DistanceRows;
use crate::skeleton::build_skeleton;
use crate::spanner::greedy_spanner;
use crate::sssp::{quantize_distance, sssp_round_cost};

/// Output of an APSP computation: the full label matrix plus metadata.
#[derive(Debug, Clone)]
pub struct ApspOutput {
    /// `dist[v][w]` is the label for the pair `(v, w)`.
    pub dist: Vec<Vec<Weight>>,
    /// Promised stretch of the labels.
    pub stretch: f64,
    /// Total rounds consumed.
    pub rounds: u64,
    /// Short name of the algorithm that produced the labels.
    pub algorithm: &'static str,
}

impl ApspOutput {
    /// Verifies all labels against exact distances and returns the maximum
    /// observed stretch.  Fails if a label underestimates or exceeds the
    /// promised stretch.
    ///
    /// Computes the exact distance matrix internally (in parallel, with
    /// automatic oracle selection).  Call [`ApspOutput::verify_stretch_against`]
    /// instead when several outputs are checked against the same graph, so
    /// the `n` exact single-source runs are paid once.
    pub fn verify_stretch(&self, graph: &Graph) -> Result<f64, String> {
        self.verify_stretch_against(&apsp_exact(graph))
    }

    /// Verifies all labels against a precomputed exact distance matrix (as
    /// returned by [`hybrid_graph::dijkstra::apsp_exact`]) and returns the
    /// maximum observed stretch.
    pub fn verify_stretch_against(&self, exact: &[Vec<Weight>]) -> Result<f64, String> {
        let rows: Vec<Result<f64, String>> = (0..self.dist.len())
            .into_par_iter()
            .map(|v| {
                let exact_row = &exact[v];
                let mut worst: f64 = 1.0;
                for (w, (&e, &a)) in exact_row.iter().zip(&self.dist[v]).enumerate() {
                    if e == 0 {
                        if a != 0 {
                            return Err(format!("({v},{w}): nonzero self label"));
                        }
                        continue;
                    }
                    if a == INFINITY || e == INFINITY {
                        return Err(format!("({v},{w}): infinite label on connected graph"));
                    }
                    if a < e {
                        return Err(format!("({v},{w}): label {a} underestimates {e}"));
                    }
                    let ratio = a as f64 / e as f64;
                    if ratio > self.stretch + 1e-9 {
                        return Err(format!(
                            "({v},{w}): stretch {ratio:.3} exceeds promised {}",
                            self.stretch
                        ));
                    }
                    worst = worst.max(ratio);
                }
                Ok(worst)
            })
            .with_min_len(8)
            .collect();
        let mut worst: f64 = 1.0;
        for row in rows {
            worst = worst.max(row?);
        }
        Ok(worst)
    }

    /// Verifies the labels only on the rows of a sampled source set, against
    /// exact [`DistanceRows`] — the `O(|S|·n)` scale-tier port of
    /// [`ApspOutput::verify_stretch_against`], for instances where the full
    /// `n × n` exact matrix is out of memory reach.
    pub fn verify_stretch_rows(&self, exact: &DistanceRows) -> Result<f64, String> {
        let mut worst: f64 = 1.0;
        for (i, &s) in exact.sources().iter().enumerate() {
            let approx_row = self
                .dist
                .get(s as usize)
                .ok_or_else(|| format!("source {s} outside the label matrix"))?;
            let exact_row = exact.row(i);
            for (w, (&e, &a)) in exact_row.iter().zip(approx_row).enumerate() {
                if e == 0 {
                    if a != 0 {
                        return Err(format!("({s},{w}): nonzero self label"));
                    }
                    continue;
                }
                if a == INFINITY || e == INFINITY {
                    return Err(format!("({s},{w}): infinite label on connected graph"));
                }
                if a < e {
                    return Err(format!("({s},{w}): label {a} underestimates {e}"));
                }
                let ratio = a as f64 / e as f64;
                if ratio > self.stretch + 1e-9 {
                    return Err(format!(
                        "({s},{w}): stretch {ratio:.3} exceeds promised {}",
                        self.stretch
                    ));
                }
                worst = worst.max(ratio);
            }
        }
        Ok(worst)
    }
}

/// Radius policy for the APSP pipelines: the universal algorithms broadcast
/// and cluster with the measured `NQ_k`, the existential baselines with the
/// worst-case `min(⌈√k⌉, D)` (the only bound available without inspecting the
/// topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApspRadiusPolicy {
    /// Use the measured neighborhood quality.
    NeighborhoodQuality,
    /// Use the worst-case `min(⌈√k⌉, D)` radius.
    WorstCaseSqrtK,
}

impl ApspRadiusPolicy {
    fn radius(self, oracle: &NqOracle, k: u64) -> u64 {
        match self {
            ApspRadiusPolicy::NeighborhoodQuality => oracle.nq(k.max(1)).max(1),
            ApspRadiusPolicy::WorstCaseSqrtK => ((k.max(1) as f64).sqrt().ceil() as u64)
                .max(1)
                .min(oracle.diameter().max(1)),
        }
    }
}

/// Broadcasts `count` abstract tokens with Theorem 1 and returns nothing but
/// the charged cost (helper shared by the APSP algorithms, which broadcast
/// identifiers, spanner edges, cluster-center distances, …).
fn broadcast_tokens_with_policy(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    count: usize,
    origin: NodeId,
    policy: ApspRadiusPolicy,
) {
    if count == 0 {
        return;
    }
    let tokens: Vec<TokenPlacement> = (0..count as u64).map(|i| (origin, i)).collect();
    let radius = policy.radius(oracle, count as u64);
    let _ = disseminate_with_radius(net, oracle, &tokens, radius, RadiusPolicy::Fixed(radius));
}

/// Broadcast with the universal (`NQ_k`) radius.
fn broadcast_tokens(net: &mut HybridNetwork, oracle: &NqOracle, count: usize, origin: NodeId) {
    broadcast_tokens_with_policy(
        net,
        oracle,
        count,
        origin,
        ApspRadiusPolicy::NeighborhoodQuality,
    );
}

/// Theorem 6 / Algorithm 3 — deterministic `(1+ε)`-approximate APSP for
/// unweighted graphs in `Õ(NQ_n/ε²)` rounds (`Hybrid0`).
pub fn apsp_unweighted(net: &mut HybridNetwork, oracle: &NqOracle, epsilon: f64) -> ApspOutput {
    apsp_unweighted_with_policy(net, oracle, epsilon, ApspRadiusPolicy::NeighborhoodQuality)
}

/// The existentially optimal comparison for Theorem 6: the **identical**
/// pipeline (Algorithm 3) run with the worst-case radius `min(⌈√n⌉, D)`
/// instead of `NQ_n` — i.e. the way an algorithm that cannot exploit the
/// topology behaves, costing `Õ(√n/ε²)` rounds on every graph.
pub fn baseline_unweighted_apsp_sqrt_n(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    epsilon: f64,
) -> ApspOutput {
    let mut out =
        apsp_unweighted_with_policy(net, oracle, epsilon, ApspRadiusPolicy::WorstCaseSqrtK);
    out.algorithm = "baseline-sqrt-n-unweighted-apsp";
    out
}

fn apsp_unweighted_with_policy(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    epsilon: f64,
    policy: ApspRadiusPolicy,
) -> ApspOutput {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(
        !net.graph().is_weighted(),
        "Theorem 6 applies to unweighted graphs"
    );
    let before = net.rounds();
    let graph = net.graph_arc();
    let n = graph.n();
    // The analysis yields stretch 1 + 3ε' + ε'^2 < 1 + 4ε' for internal ε';
    // run with ε' = ε/4 to deliver the promised 1 + ε.
    let eps_internal = epsilon / 4.0;

    // Step 1–2: broadcast identifiers, cluster with k = n.
    broadcast_tokens_with_policy(net, oracle, n, 0, policy);
    let radius = policy.radius(oracle, n as u64);
    let clustering = crate::cluster::cluster_with_radius(net, radius, n as u64);
    let leaders: Vec<NodeId> = clustering.clusters.iter().map(|c| c.leader).collect();

    // Step 3: (1+ε)-SSSP from every cluster leader (Theorem 13), |R| ≤ NQ_n
    // instances run sequentially.
    let t_sssp = sssp_round_cost(net, eps_internal);
    net.charge_rounds(
        "apsp-unweighted/sssp-from-leaders",
        t_sssp.saturating_mul(leaders.len() as u64),
    );
    // One BFS per leader (unweighted ⇒ hop = weighted distance), fanned out
    // over all cores; the raw rows double as the "hop distance to my leader"
    // table in Step 5, so no per-node BFS is ever run.
    let leader_hops: Vec<Vec<Weight>> = leaders
        .par_iter()
        .map_init(DijkstraWorkspace::new, |ws, &r| {
            ws.run_bfs(&graph, r);
            ws.dist().to_vec()
        })
        .with_min_len(1)
        .collect();
    let leader_dist: Vec<Vec<Weight>> = leader_hops
        .par_iter()
        .map(|row| {
            row.iter()
                .map(|&d| quantize_distance(d, eps_internal))
                .collect()
        })
        .with_min_len(8)
        .collect();

    // Step 4: every node learns its x-hop neighbourhood,
    // x = 4·NQ_n·⌈log n⌉ / ε'.
    let log_n = graph.log2_n() as u64;
    let x = (((4 * clustering.nq * log_n) as f64 / eps_internal).ceil() as u64).max(1);
    net.charge_local(
        "apsp-unweighted/learn-x-ball",
        x.min(oracle.diameter().max(1)),
    );

    // Step 5: every node broadcasts its closest cluster leader and the
    // distance to it (2n tokens).
    broadcast_tokens_with_policy(net, oracle, 2 * n, 0, policy);
    // Closest leader of node w is the leader of its cluster; its hop distance
    // is exact (learned over the local network within the cluster).
    let closest_leader: Vec<usize> = (0..n).map(|v| clustering.cluster_of[v]).collect();
    let dist_to_leader: Vec<Weight> = (0..n).map(|v| leader_hops[closest_leader[v]][v]).collect();

    // Step 6: compose labels (one bounded BFS per node, parallel, with a
    // per-worker workspace so the sweep allocates nothing per source).
    let dist: Vec<Vec<Weight>> = (0..n as NodeId)
        .into_par_iter()
        .map_init(DijkstraWorkspace::new, |ws, v| {
            ws.run_bfs_bounded(&graph, v, x);
            let ball = ws.dist();
            if ws.reached().len() == n {
                // The x-ball covers the whole graph (common: x has a 1/ε
                // factor) — the row is exactly the ball distances.
                return ball.to_vec();
            }
            (0..n)
                .map(|w| {
                    if ball[w] != INFINITY {
                        ball[w]
                    } else {
                        let cw = closest_leader[w];
                        leader_dist[cw][v as usize].saturating_add(dist_to_leader[w])
                    }
                })
                .collect()
        })
        .with_min_len(1)
        .collect();

    ApspOutput {
        dist,
        stretch: 1.0 + epsilon,
        rounds: net.rounds() - before,
        algorithm: "theorem6-unweighted-apsp",
    }
}

/// Theorem 7 — deterministic `(1 + ε·log n)`-approximate weighted APSP in
/// `Õ(2^{1/ε}·NQ_n)` rounds: build a `(2k−1)`-spanner for
/// `k = ⌈ε·log n / 2⌉`, broadcast it, answer locally.
pub fn apsp_weighted_spanner(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    epsilon: f64,
) -> ApspOutput {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let before = net.rounds();
    let graph = net.graph_arc();
    let log_n = graph.log2_n() as f64;
    let k = ((epsilon * log_n / 2.0).ceil() as u64).max(1);

    let spanner = greedy_spanner(Some(net), &graph, k);
    // Broadcast the m* spanner edges with Theorem 1.
    broadcast_tokens(net, oracle, spanner.m(), 0);

    // Every node answers locally from the spanner (parallel fan-out; the
    // spanner inherits the generators' small weights, so this takes the
    // bucket-queue path).
    let dist: Vec<Vec<Weight>> = apsp_exact(&spanner.graph);

    ApspOutput {
        dist,
        stretch: spanner.stretch as f64,
        rounds: net.rounds() - before,
        algorithm: "theorem7-spanner-apsp",
    }
}

/// Corollary 2.3 — the `O(log n / log log n)`-approximation obtained by
/// running Theorem 7 with `ε = 1/log log n`.
pub fn apsp_weighted_log_over_loglog(net: &mut HybridNetwork, oracle: &NqOracle) -> ApspOutput {
    let n = net.graph().n().max(4) as f64;
    let eps = 1.0 / n.ln().ln().max(1.0);
    let mut out = apsp_weighted_spanner(net, oracle, eps);
    out.algorithm = "corollary2.3-log-over-loglog-apsp";
    out
}

/// Theorem 8 / Algorithm 4 — randomized `(4α−1)`-approximate weighted APSP in
/// `Õ(n^{1/(3α+1)}·NQ_n^{2/(3+1/α)} + NQ_n)` rounds, via a skeleton graph and
/// a spanner of the skeleton.
pub fn apsp_weighted_skeleton(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    alpha: u64,
    rng: &mut impl Rng,
) -> ApspOutput {
    assert!(alpha >= 1, "alpha must be at least 1");
    let before = net.rounds();
    let graph = net.graph_arc();
    let n = graph.n();
    let nq_n = oracle.nq(n as u64).max(1) as f64;
    let alpha_f = alpha as f64;
    let t = ((n as f64).powf(1.0 / (3.0 * alpha_f + 1.0)) * nq_n.powf(2.0 / (3.0 + 1.0 / alpha_f)))
        .max(1.0);

    // Broadcast identifiers.
    broadcast_tokens(net, oracle, n, 0);

    // Skeleton with sampling probability 1/t, spanner of the skeleton.
    let skeleton = build_skeleton(net, t, &[], rng);
    let spanner = greedy_spanner(Some(net), skeleton.graph(), alpha);
    broadcast_tokens(net, oracle, spanner.m(), 0);

    // Every node learns its h-hop neighbourhood (h = ξ·t·ln n), finds its
    // closest skeleton node and broadcasts it together with the h-hop distance.
    let h = ((crate::skeleton::XI * t * ln_n(n)).ceil() as u64).max(1);
    net.charge_local(
        "apsp-skeleton/learn-h-ball",
        h.min(oracle.diameter().max(1)),
    );
    broadcast_tokens(net, oracle, 2 * n, 0);

    // Data level: one allocation-lean hop-limited sweep per node, parallel.
    let hop_from_node: Vec<Vec<Weight>> = (0..n as NodeId)
        .into_par_iter()
        .map_init(HopLimitedWorkspace::new, |ws, v| {
            let mut row = Vec::new();
            hop_limited_distances_with(ws, &graph, v, h as usize, &mut row);
            row
        })
        .with_min_len(1)
        .collect();
    // Closest skeleton node per node (by h-hop distance).
    let closest_skeleton: Vec<Option<(usize, Weight)>> = (0..n)
        .map(|v| {
            skeleton
                .nodes
                .iter()
                .enumerate()
                .map(|(j, &u)| (j, hop_from_node[v][u as usize]))
                .filter(|&(_, d)| d != INFINITY)
                .min_by_key(|&(_, d)| d)
        })
        .collect();
    // (2α−1)-approximate distances between skeleton nodes from the spanner.
    let spanner_dist: Vec<Vec<Weight>> = apsp_exact(&spanner.graph);

    // Label composition on the shared (min,+) kernel: node v composes
    // through its closest skeleton node vs (a unit coefficient row) with
    // offset d^h(v, vs), against precomposed rows
    // R[s][w] = spanner_dist(s, ws) ⊕ d^h(w, ws) — i.e.
    // dist[v][w] = min(d^h(v, w), dvs ⊕ spanner_dist(vs, ws) ⊕ dws),
    // exactly the Algorithm 4 label, with the |S|·n precompose replacing an
    // n² gather over the spanner matrix.
    let compose_rows: Vec<Vec<Weight>> = (0..skeleton.len())
        .into_par_iter()
        .map(|s| {
            (0..n)
                .map(|w| match closest_skeleton[w] {
                    Some((ws, dws)) => spanner_dist[s][ws].saturating_add(dws),
                    None => INFINITY,
                })
                .collect()
        })
        .with_min_len(8)
        .collect();
    let coeffs: Vec<minplus::Coeff> = (0..skeleton.len()).map(minplus::Coeff::Unit).collect();
    let assign: Vec<minplus::Assignment> = closest_skeleton.to_vec();
    let init: Vec<&[Weight]> = hop_from_node.iter().map(Vec::as_slice).collect();
    let dist = minplus::compose(
        &minplus::RowMatrix::new(compose_rows),
        &coeffs,
        &assign,
        &init,
    );

    ApspOutput {
        dist,
        stretch: (4 * alpha - 1) as f64,
        rounds: net.rounds() - before,
        algorithm: "theorem8-skeleton-apsp",
    }
}

/// Corollary 2.2 — on sparse graphs (`m ∈ Õ(n)`), broadcast the whole graph
/// with Theorem 1 and solve any graph problem (here: exact weighted APSP)
/// locally, in `Õ(NQ_n)` rounds.
pub fn apsp_sparse_exact(net: &mut HybridNetwork, oracle: &NqOracle) -> ApspOutput {
    let before = net.rounds();
    let graph = net.graph_arc();
    broadcast_tokens(net, oracle, graph.m(), 0);
    let dist: Vec<Vec<Weight>> = apsp_exact(&graph);
    ApspOutput {
        dist,
        stretch: 1.0,
        rounds: net.rounds() - before,
        algorithm: "corollary2.2-sparse-exact-apsp",
    }
}

/// The existentially optimal comparison row of Table 2: exact weighted APSP
/// in `Õ(√n)` rounds (`[AHK+20]`, `[KS20]`).  Computes exact labels and charges
/// the published bound (`√n·log n`).
pub fn baseline_sqrt_n_apsp(net: &mut HybridNetwork) -> ApspOutput {
    let graph = net.graph_arc();
    let dist = apsp_exact(&graph);
    baseline_sqrt_n_apsp_from_labels(net, dist)
}

/// [`baseline_sqrt_n_apsp`] with precomputed exact labels — the baseline's
/// labels are exact by definition, so a caller that already holds the exact
/// distance matrix (e.g. for stretch verification of the other rows) can
/// hand it over instead of paying the `n` single-source runs again.  The
/// charged round count is unchanged.
pub fn baseline_sqrt_n_apsp_from_labels(
    net: &mut HybridNetwork,
    dist: Vec<Vec<Weight>>,
) -> ApspOutput {
    let before = net.rounds();
    let n = net.graph().n();
    debug_assert_eq!(dist.len(), n, "labels must cover every node");
    let rounds = (((n.max(2) as f64).sqrt() * net.graph().log2_n() as f64).ceil() as u64).max(1);
    net.charge_rounds("apsp/baseline-sqrt-n", rounds);
    ApspOutput {
        dist,
        stretch: 1.0,
        rounds: net.rounds() - before,
        algorithm: "baseline-ks20-sqrt-n-apsp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(graph: Graph) -> (Arc<Graph>, NqOracle, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let net = HybridNetwork::hybrid0(Arc::clone(&g));
        (g, oracle, net)
    }

    #[test]
    fn unweighted_apsp_stretch_holds_on_grid() {
        let (g, oracle, mut net) = setup(generators::grid(&[7, 7]).unwrap());
        let out = apsp_unweighted(&mut net, &oracle, 0.5);
        let worst = out.verify_stretch(&g).unwrap();
        assert!(worst <= 1.5);
        assert!(out.rounds > 0);
    }

    #[test]
    fn unweighted_apsp_stretch_holds_on_tree_and_cycle() {
        for g in [
            generators::tree_balanced(2, 5).unwrap(),
            generators::cycle(40).unwrap(),
        ] {
            let (g, oracle, mut net) = setup(g);
            let out = apsp_unweighted(&mut net, &oracle, 0.8);
            out.verify_stretch(&g).unwrap();
        }
    }

    #[test]
    fn row_verification_agrees_with_the_full_matrix_check() {
        let (g, oracle, mut net) = setup(generators::grid(&[7, 7]).unwrap());
        let out = apsp_unweighted(&mut net, &oracle, 0.5);
        let full_worst = out.verify_stretch(&g).unwrap();
        let sources = [0u32, 13, 24, 48];
        let rows = DistanceRows::compute(&g, &sources);
        let row_worst = out.verify_stretch_rows(&rows).unwrap();
        // The sampled-row check is the same predicate restricted to |S| rows.
        assert!(row_worst <= full_worst + 1e-12);
        // A corrupted label on a sampled row is caught.
        let mut bad = out.clone();
        bad.dist[13][40] = 1;
        assert!(bad.verify_stretch_rows(&rows).is_err());
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn unweighted_apsp_rejects_weighted_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (_, oracle, mut net) = setup(generators::weighted_grid(&[4, 4], 5, &mut rng).unwrap());
        apsp_unweighted(&mut net, &oracle, 0.5);
    }

    #[test]
    fn spanner_apsp_stretch_holds_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (g, oracle, mut net) =
            setup(generators::weighted_erdos_renyi(48, 0.15, 12, &mut rng).unwrap());
        let out = apsp_weighted_spanner(&mut net, &oracle, 0.6);
        let worst = out.verify_stretch(&g).unwrap();
        assert!(worst <= out.stretch);
    }

    #[test]
    fn log_over_loglog_apsp_has_moderate_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (g, oracle, mut net) = setup(generators::weighted_grid(&[6, 6], 9, &mut rng).unwrap());
        let out = apsp_weighted_log_over_loglog(&mut net, &oracle);
        out.verify_stretch(&g).unwrap();
        // O(log n / log log n) for n = 36 is small; sanity-bound it.
        assert!(out.stretch <= 2.0 * (g.n() as f64).ln());
    }

    #[test]
    fn skeleton_apsp_stretch_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (g, oracle, mut net) = setup(generators::weighted_grid(&[7, 7], 6, &mut rng).unwrap());
        let out = apsp_weighted_skeleton(&mut net, &oracle, 1, &mut rng);
        let worst = out.verify_stretch(&g).unwrap();
        assert!(worst <= 3.0);
        assert_eq!(out.stretch, 3.0);
    }

    #[test]
    fn sparse_exact_apsp_is_exact() {
        let (g, oracle, mut net) = setup(generators::tree_balanced(3, 4).unwrap());
        let out = apsp_sparse_exact(&mut net, &oracle);
        let worst = out.verify_stretch(&g).unwrap();
        assert!((worst - 1.0).abs() < 1e-12);
    }

    #[test]
    fn universal_apsp_beats_structured_sqrt_n_baseline_on_grid() {
        let (g, oracle, mut net_u) = setup(generators::grid(&[12, 12]).unwrap());
        let uni = apsp_unweighted(&mut net_u, &oracle, 0.9);
        uni.verify_stretch(&g).unwrap();
        let (_, oracle_b, mut net_b) = setup(generators::grid(&[12, 12]).unwrap());
        let base = baseline_unweighted_apsp_sqrt_n(&mut net_b, &oracle_b, 0.9);
        base.verify_stretch(&g).unwrap();
        // Table 2 shape: Õ(NQ_n) vs Õ(√n) through the same machinery — the
        // universal radius is smaller, so the universal run is faster.
        assert!(
            uni.rounds < base.rounds,
            "universal {} not faster than structured baseline {}",
            uni.rounds,
            base.rounds
        );
    }

    #[test]
    fn literature_baseline_row_is_exact() {
        let (g, _, mut net_b) = setup(generators::grid(&[8, 8]).unwrap());
        let base = baseline_sqrt_n_apsp(&mut net_b);
        let worst = base.verify_stretch(&g).unwrap();
        assert!((worst - 1.0).abs() < 1e-12);
        assert!(base.rounds > 0);
    }
}
