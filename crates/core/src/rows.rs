//! Row-streamed distances for the scale tier.
//!
//! The small-`n` experiments verify against [`hybrid_graph::dijkstra::apsp_exact`],
//! which materialises the full `Θ(n²)` matrix — a 8 TB allocation at
//! `n = 10⁶`.  [`DistanceRows`] replaces the matrix with per-source rows over
//! an explicit (typically sampled) source set: one flat `|S| × n` buffer,
//! computed by parallel workspace-reusing Dijkstra runs, so the memory
//! footprint is `O(|S|·n)` and every row is still *exact*.
//!
//! The k-SSP fast path (Theorem 14, `k ≤ γ`) is per-source Dijkstra plus
//! `(1+ε)` quantization — precisely a [`DistanceRows::quantized`] away — so
//! the scale tier runs the genuine algorithm semantics on sampled sources
//! instead of a downscaled instance.

use hybrid_graph::dijkstra::DijkstraWorkspace;
use hybrid_graph::{Graph, NodeId, Weight, INFINITY};
use rayon::prelude::*;

use crate::sssp::quantize_distance;

/// Exact distances from a set of source nodes, stored as one flat
/// `|sources| × n` row buffer.
#[derive(Debug, Clone)]
pub struct DistanceRows {
    sources: Vec<NodeId>,
    n: usize,
    rows: Vec<Weight>,
}

impl DistanceRows {
    /// Runs one exact single-source computation per source (in parallel, with
    /// a reused [`DijkstraWorkspace`] per worker) and collects the rows.
    pub fn compute(graph: &Graph, sources: &[NodeId]) -> Self {
        let n = graph.n();
        let row_vecs: Vec<Vec<Weight>> = sources
            .par_iter()
            .map_init(DijkstraWorkspace::new, |ws, &s| {
                ws.run(graph, s);
                ws.dist().to_vec()
            })
            .with_min_len(1)
            .collect();
        let mut rows = Vec::with_capacity(sources.len() * n);
        for row in row_vecs {
            rows.extend(row);
        }
        DistanceRows {
            sources: sources.to_vec(),
            n,
            rows,
        }
    }

    /// Like [`DistanceRows::compute`], but also returns the shortest-path
    /// forests as one flat `|sources| × n` parent buffer (`NodeId::MAX` marks
    /// "no parent": the source itself and unreachable nodes).  The serving
    /// layer ([`crate::oracle`]) walks these chains to materialise witness
    /// paths whose edge weights telescope to exactly the reported distances.
    pub fn compute_with_parents(graph: &Graph, sources: &[NodeId]) -> (Self, Vec<NodeId>) {
        let n = graph.n();
        let pairs: Vec<(Vec<Weight>, Vec<NodeId>)> = sources
            .par_iter()
            .map_init(DijkstraWorkspace::new, |ws, &s| {
                ws.run(graph, s);
                let parents = ws
                    .parent()
                    .iter()
                    .map(|p| p.unwrap_or(NodeId::MAX))
                    .collect();
                (ws.dist().to_vec(), parents)
            })
            .with_min_len(1)
            .collect();
        let mut rows = Vec::with_capacity(sources.len() * n);
        let mut parents = Vec::with_capacity(sources.len() * n);
        for (row, par) in pairs {
            rows.extend(row);
            parents.extend(par);
        }
        (
            DistanceRows {
                sources: sources.to_vec(),
                n,
                rows,
            },
            parents,
        )
    }

    /// The source set, in row order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Number of nodes per row.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `i`-th source's distance row.
    pub fn row(&self, i: usize) -> &[Weight] {
        &self.rows[i * self.n..(i + 1) * self.n]
    }

    /// The row of source node `s`, if `s` is in the source set.
    pub fn row_for(&self, s: NodeId) -> Option<&[Weight]> {
        self.sources
            .iter()
            .position(|&v| v == s)
            .map(|i| self.row(i))
    }

    /// Bytes held by the row buffer and the source list — the quantity the
    /// scale tier reports as its distance-side memory footprint.
    pub fn memory_bytes(&self) -> u64 {
        (self.rows.len() * std::mem::size_of::<Weight>()
            + self.sources.len() * std::mem::size_of::<NodeId>()) as u64
    }

    /// `(1+ε)`-quantized copy of every row (the Theorem 14 fast-path label
    /// transformation, [`quantize_distance`] per entry).
    pub fn quantized(&self, epsilon: f64) -> DistanceRows {
        DistanceRows {
            sources: self.sources.clone(),
            n: self.n,
            rows: self
                .rows
                .iter()
                .map(|&d| quantize_distance(d, epsilon))
                .collect(),
        }
    }

    /// Verifies `exact ≤ label ≤ stretch · exact` row by row against an exact
    /// [`DistanceRows`] over the same source set, returning the maximum
    /// observed stretch — the `O(|S|·n)` port of
    /// [`crate::apsp::ApspOutput::verify_stretch_against`].
    pub fn verify_stretch_against(
        &self,
        exact: &DistanceRows,
        stretch: f64,
    ) -> Result<f64, String> {
        if self.sources != exact.sources || self.n != exact.n {
            return Err("row sets are not aligned".to_string());
        }
        let mut worst: f64 = 1.0;
        for (i, &s) in self.sources.iter().enumerate() {
            for (w, (&e, &a)) in exact.row(i).iter().zip(self.row(i)).enumerate() {
                if e == 0 {
                    if a != 0 {
                        return Err(format!("({s},{w}): nonzero self label"));
                    }
                    continue;
                }
                if a == INFINITY || e == INFINITY {
                    return Err(format!("({s},{w}): infinite label on connected graph"));
                }
                if a < e {
                    return Err(format!("({s},{w}): label {a} underestimates {e}"));
                }
                let ratio = a as f64 / e as f64;
                if ratio > stretch + 1e-9 {
                    return Err(format!(
                        "({s},{w}): stretch {ratio:.3} exceeds promised {stretch}"
                    ));
                }
                worst = worst.max(ratio);
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::dijkstra::apsp_exact;
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rows_match_the_full_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::weighted_grid(&[9, 11], 20, &mut rng).unwrap();
        let full = apsp_exact(&g);
        let sources = [0u32, 7, 42, 98];
        let rows = DistanceRows::compute(&g, &sources);
        assert_eq!(rows.n(), g.n());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows.row(i), &full[s as usize][..], "row of source {s}");
            assert_eq!(rows.row_for(s).unwrap(), rows.row(i));
        }
        assert!(rows.row_for(1).is_none());
    }

    #[test]
    fn quantized_rows_verify_within_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::weighted_grid(&[12, 12], 32, &mut rng).unwrap();
        let sources = [3u32, 50, 100];
        let exact = DistanceRows::compute(&g, &sources);
        let eps = 0.25;
        let approx = exact.quantized(eps);
        let worst = approx.verify_stretch_against(&exact, 1.0 + eps).unwrap();
        assert!(worst >= 1.0 && worst <= 1.0 + eps + 1e-9);
        // Tampering is caught.
        let mut bad = approx.clone();
        bad.rows[1] = 0;
        assert!(bad.verify_stretch_against(&exact, 1.0 + eps).is_err());
    }

    #[test]
    fn memory_is_rows_times_n_not_n_squared() {
        let g = generators::path(10_000).unwrap();
        let sources = [0u32, 5_000, 9_999];
        let rows = DistanceRows::compute(&g, &sources);
        let expected = (3 * 10_000 * 8 + 3 * 4) as u64;
        assert_eq!(rows.memory_bytes(), expected);
    }

    #[test]
    fn parent_chains_telescope_to_row_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::weighted_grid(&[7, 8], 16, &mut rng).unwrap();
        let sources = [0u32, 20, 55];
        let (rows, parents) = DistanceRows::compute_with_parents(&g, &sources);
        assert_eq!(rows.row(0), DistanceRows::compute(&g, &sources).row(0));
        assert_eq!(parents.len(), sources.len() * g.n());
        for (i, &s) in sources.iter().enumerate() {
            let row = rows.row(i);
            let par = &parents[i * g.n()..(i + 1) * g.n()];
            assert_eq!(par[s as usize], NodeId::MAX);
            for v in 0..g.n() as u32 {
                if v == s {
                    continue;
                }
                // Walk v -> s through the forest, summing edge weights.
                let (mut cur, mut total, mut hops) = (v, 0u64, 0usize);
                while cur != s {
                    let p = par[cur as usize];
                    assert_ne!(p, NodeId::MAX, "broken chain at {cur}");
                    let arc = g.arcs(p).iter().find(|a| a.to == cur).expect("tree edge");
                    total += arc.weight;
                    cur = p;
                    hops += 1;
                    assert!(hops <= g.n(), "cycle in parent chain");
                }
                assert_eq!(total, row[v as usize], "telescoped weight of {v}");
            }
        }
    }

    #[test]
    fn misaligned_row_sets_are_rejected() {
        let g = generators::path(50).unwrap();
        let a = DistanceRows::compute(&g, &[0, 10]);
        let b = DistanceRows::compute(&g, &[0, 11]);
        assert!(a.verify_stretch_against(&b, 1.0).is_err());
    }
}
