//! Deterministic token-forwarding broadcasting — the rival algorithm of the
//! deterministic universally-optimal broadcasting companion paper
//! (`[CHL23]`, arXiv:2304.06317), reproduced as a competing
//! [`crate::algorithm::DisseminationAlgorithm`] implementation.
//!
//! # Schedule
//!
//! The companion paper removes the randomized hashing / rank-matching tricks
//! of Theorem 1 and replaces them with a *deterministic token-forwarding
//! schedule*: tokens travel along a fixed overlay, each hop forwarding a
//! batch under the same `γ` budget, with no per-round random load balancing.
//! This module implements that schedule in its leader-funnelled form:
//!
//! 1. **Clustering** — the same deterministic `NQ_k`-radius clustering as
//!    Theorem 1 (Lemma 3.5; the greedy ruling set is deterministic, so this
//!    phase is shared verbatim);
//! 2. **Leader overlay** — the logarithmic-depth virtual tree over the
//!    cluster leaders (Lemma 4.6), plus one deterministic `hello` exchange
//!    between adjacent leaders instead of the randomized member
//!    rank-matching;
//! 3. **Gather** — every cluster funnels its tokens to its leader over the
//!    local network (`2·`weak-diameter rounds, mirroring the Lemma 4.1
//!    charge of the randomized pipeline);
//! 4. **Token forwarding** — leaders converge-cast their token sets up the
//!    tree and broadcast the union back down, *leader to leader*: a set of
//!    `T` tokens costs `⌈T/γ⌉` global rounds per hop because a single sender
//!    carries it, where Theorem 1 spreads the same payload over all cluster
//!    members.  Each forwarding hop also pays the `2·`weak-diameter
//!    *chain-traversal* bill (tokens cross the cluster locally to reach the
//!    forwarding leader) — the same per-level local charge as Theorem 1's
//!    re-balancing, so the two pipelines differ exactly in their global
//!    schedules.  This is exactly the price of determinism the shootout
//!    measures: on token-heavy clusters the funnel pays `Θ(T/γ)` where the
//!    randomized schedule pays `Θ(T/(γ·|C|))`, and when every per-level set
//!    fits into one `γ` budget the two schedules tie round for round
//!    (pinned by `crates/core/tests/rivals.rs`);
//! 5. **Flood** — each cluster floods the full set locally (weak-diameter
//!    rounds), as in Theorem 1.
//!
//! The delivered token set is identical to Theorem 1's — both compute the
//! union of all placed tokens — which is what the differential conformance
//! suite (`crates/core/tests/conformance.rs`) asserts for every registered
//! implementation pair.  No random bits are drawn anywhere in the pipeline.

use hybrid_sim::{GlobalMessage, HybridNetwork};

use crate::cluster::cluster_with_radius;
use crate::dissemination::{DisseminationOutput, RadiusPolicy, TokenPlacement};
use crate::nq::{compute_nq, NqOracle};
use crate::overlay::{basic_aggregation, VirtualTree};

/// Deterministic token-forwarding `k`-dissemination (`[CHL23]`): same
/// clustering and leader overlay as Theorem 1, but tokens are forwarded
/// leader-to-leader under a fixed deterministic schedule instead of being
/// load-balanced over cluster members with randomized rank matching.
pub fn det_token_forward_dissemination(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    tokens: &[TokenPlacement],
) -> DisseminationOutput {
    let n = net.graph().n();
    let k = tokens.len() as u64;

    // The NQ_k measurement happens before the reported-round window opens,
    // matching `k_dissemination` (whose `disseminate_with_radius` window also
    // excludes `compute_nq`) — the shootout compares like with like.
    let nq = compute_nq(net, oracle, k.max(1)).nq.max(1);
    let before = net.rounds();

    // Phase 0: count k with the basic aggregation primitive (Lemma 4.4) —
    // identical to the randomized pipeline.
    let counts: Vec<u64> = {
        let mut c = vec![0u64; n];
        for &(holder, _) in tokens {
            c[holder as usize] += 1;
        }
        c
    };
    let counted = basic_aggregation(net, &counts, |a, b| a + b);
    debug_assert_eq!(counted.value, k);
    if k == 0 {
        return DisseminationOutput {
            k,
            nq: oracle.nq(1),
            radius: nq,
            policy: RadiusPolicy::NeighborhoodQuality,
            rounds: net.rounds() - before,
            meter: net.meter().clone(),
            tokens: Vec::new(),
            max_tokens_per_node: 0,
        };
    }

    // Phase 1: the deterministic Lemma 3.5 clustering (shared with Theorem 1).
    let clustering = cluster_with_radius(net, nq, k);
    let leaders: Vec<_> = clustering.clusters.iter().map(|c| c.leader).collect();
    let tree = VirtualTree::build(net, &leaders);
    let pos_to_cluster: Vec<usize> = tree
        .participants
        .iter()
        .map(|leader| {
            clustering
                .clusters
                .iter()
                .position(|c| c.leader == *leader)
                .expect("leader has a cluster")
        })
        .collect();

    // Phase 2: deterministic leader hello — one message per tree edge per
    // direction (the deterministic substitute for randomized rank matching).
    let mut hellos: Vec<GlobalMessage> = Vec::new();
    for pos in 1..tree.len() {
        let parent_pos = tree.parent[pos].expect("non-root");
        let child = tree.participants[pos];
        let parent = tree.participants[parent_pos];
        hellos.push(GlobalMessage::new(child, parent));
        hellos.push(GlobalMessage::new(parent, child));
    }
    if !hellos.is_empty() {
        crate::deliver_global_checked(net, "det-broadcast/leader-hello", &hellos);
    }

    // Phase 3: gather — members hand their tokens to the cluster leader over
    // the local network (same 2·weak-diameter charge as the Lemma 4.1 load
    // balancing it replaces).
    let mut values: Vec<u64> = tokens.iter().map(|&(_, v)| v).collect();
    values.sort_unstable();
    values.dedup();
    let words = values.len().div_ceil(64);
    let popcnt = |set: &[u64]| -> u64 { set.iter().map(|w| u64::from(w.count_ones())).sum() };
    let mut known: Vec<Vec<u64>> = vec![vec![0u64; words]; clustering.len()];
    for &(holder, value) in tokens {
        let idx = values
            .binary_search(&value)
            .expect("value is in the universe");
        known[clustering.cluster_of[holder as usize]][idx / 64] |= 1u64 << (idx % 64);
    }
    net.charge_local(
        "det-broadcast/gather-to-leader",
        2 * clustering.weak_diameter_bound.max(1),
    );

    // Phase 4a: token forwarding up the leader tree, level by level.  The
    // child's *leader* carries its cluster's whole accumulated set — the
    // scheduler turns a T-token payload from one sender into ⌈T/γ⌉ rounds.
    let levels = tree.levels();
    let mut max_tokens_per_node = 0u64;
    let mut batch: Vec<GlobalMessage> = Vec::new();
    for level in levels.iter().rev() {
        batch.clear();
        let mut merges: Vec<(usize, usize)> = Vec::new();
        for &pos in level {
            let Some(parent_pos) = tree.parent[pos] else {
                continue;
            };
            let child_idx = pos_to_cluster[pos];
            let parent_idx = pos_to_cluster[parent_pos];
            let from = tree.participants[pos];
            let to = tree.participants[parent_pos];
            let payload = popcnt(&known[child_idx]);
            max_tokens_per_node = max_tokens_per_node.max(payload);
            for _ in 0..payload {
                batch.push(GlobalMessage::new(from, to));
            }
            merges.push((parent_idx, child_idx));
        }
        if !batch.is_empty() {
            // Tokens cross the cluster locally to reach the forwarding leader
            // (the chain-traversal step of the deterministic schedule) — the
            // same 2·weak-diameter bill Theorem 1 pays to re-balance.
            net.charge_local(
                "det-broadcast/chain-traversal",
                2 * clustering.weak_diameter_bound.max(1),
            );
            crate::deliver_global_checked(net, "det-broadcast/forward-up", &batch);
        }
        for (parent_idx, child_idx) in merges {
            let (dst, src) = if parent_idx < child_idx {
                let (a, b) = known.split_at_mut(child_idx);
                (&mut a[parent_idx], &b[0])
            } else {
                let (a, b) = known.split_at_mut(parent_idx);
                (&mut b[0], &a[child_idx])
            };
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= s;
            }
        }
    }
    let root_cluster = pos_to_cluster[tree.root()];
    debug_assert_eq!(
        popcnt(&known[root_cluster]),
        values.len() as u64,
        "root leader must have gathered every distinct token"
    );

    // Phase 4b: forward the full set back down, leader to leader.
    let full: Vec<u64> = known[root_cluster].clone();
    let total = values.len() as u64;
    max_tokens_per_node = max_tokens_per_node.max(total);
    for level in levels.iter() {
        batch.clear();
        for &pos in level {
            let Some(parent_pos) = tree.parent[pos] else {
                continue;
            };
            let from = tree.participants[parent_pos];
            let to = tree.participants[pos];
            for _ in 0..total {
                batch.push(GlobalMessage::new(from, to));
            }
            known[pos_to_cluster[pos]].copy_from_slice(&full);
        }
        if !batch.is_empty() {
            net.charge_local(
                "det-broadcast/chain-traversal",
                2 * clustering.weak_diameter_bound.max(1),
            );
            crate::deliver_global_checked(net, "det-broadcast/forward-down", &batch);
        }
    }

    // Phase 5: every cluster floods its (now complete) set locally.
    net.charge_local(
        "det-broadcast/intra-cluster-flood",
        clustering.weak_diameter_bound.max(1),
    );
    debug_assert!(known.iter().all(|s| popcnt(s) == values.len() as u64));

    DisseminationOutput {
        k,
        nq: oracle.nq(k),
        radius: nq,
        policy: RadiusPolicy::NeighborhoodQuality,
        rounds: net.rounds() - before,
        meter: net.meter().clone(),
        tokens: values,
        max_tokens_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissemination::{k_dissemination, place_tokens};
    use hybrid_graph::generators;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, NqOracle, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let net = HybridNetwork::hybrid0(Arc::clone(&g));
        (g, oracle, net)
    }

    #[test]
    fn delivers_every_token() {
        let (_, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let tokens = place_tokens(&(0..100).collect::<Vec<_>>(), 40);
        let out = det_token_forward_dissemination(&mut net, &oracle, &tokens);
        assert_eq!(out.k, 40);
        assert_eq!(out.tokens, (0..40).collect::<Vec<u64>>());
        assert!(out.rounds > 0);
    }

    #[test]
    fn matches_theorem1_token_sets() {
        let g = generators::grid(&[12, 12]).unwrap();
        let tokens = place_tokens(&(0..144).collect::<Vec<_>>(), 100);
        let (_, oracle, mut net_d) = setup(g.clone());
        let det = det_token_forward_dissemination(&mut net_d, &oracle, &tokens);
        let (_, oracle_u, mut net_u) = setup(g);
        let uni = k_dissemination(&mut net_u, &oracle_u, &tokens);
        assert_eq!(det.tokens, uni.tokens);
        assert_eq!(det.nq, uni.nq);
    }

    #[test]
    fn zero_tokens_is_cheap() {
        let (_, oracle, mut net) = setup(generators::cycle(24).unwrap());
        let out = det_token_forward_dissemination(&mut net, &oracle, &[]);
        assert_eq!(out.k, 0);
        assert!(out.tokens.is_empty());
        let log_n = 5u64;
        assert!(out.rounds <= 4 * log_n * log_n);
    }

    #[test]
    fn concentrated_tokens_are_funnelled() {
        let (_, oracle, mut net) = setup(generators::grid(&[8, 8]).unwrap());
        let tokens = place_tokens(&[0], 32);
        let out = det_token_forward_dissemination(&mut net, &oracle, &tokens);
        assert_eq!(out.tokens.len(), 32);
        // The funnel signature: some leader carried the full set.
        assert_eq!(out.max_tokens_per_node, 32);
    }

    #[test]
    fn leader_funnel_never_beats_theorem1_on_heavy_loads() {
        // The deterministic schedule pays ⌈T/γ⌉ per hop on a T-token set;
        // Theorem 1 spreads the same payload over all cluster members.
        let g = generators::grid(&[16, 16]).unwrap();
        let tokens = place_tokens(&(0..256).collect::<Vec<_>>(), 256);
        let (_, oracle, mut net_d) = setup(g.clone());
        let det = det_token_forward_dissemination(&mut net_d, &oracle, &tokens);
        let (_, oracle_u, mut net_u) = setup(g);
        let uni = k_dissemination(&mut net_u, &oracle_u, &tokens);
        assert!(
            det.rounds >= uni.rounds,
            "deterministic funnel ({}) beat Theorem 1 ({})",
            det.rounds,
            uni.rounds
        );
    }
}
