//! Query-serving distance oracle built on top of a completed sweep.
//!
//! The batch experiments ([`crate::apsp`], [`crate::kssp`], the scale tier's
//! [`crate::rows`]) answer "compute everything, then verify" workloads.  This
//! module adds the *serving* layer the paper's oracle framing implies
//! (Schneider's labeling view of Theorem 8 / Theorem 14): preprocess once,
//! then answer arbitrary point-to-point distance and path queries online.
//!
//! # Construction
//!
//! [`DistanceOracle::build`] samples `⌈√n⌉` **landmarks** (the same density
//! as the Definition 6.2 skeleton-node sampling) and runs one exact Dijkstra
//! per landmark through [`DistanceRows::compute_with_parents`] — the
//! "completed sweep" rows.  Every node `u` then stores a **routing label**:
//!
//! * its *anchor* `a(u)` — the closest landmark — and the exact offset
//!   `d(u, a(u))`;
//! * its strict *ball* `B(u) = { w : d(u, w) < d(u, a(u)) }`, with exact
//!   distances and in-ball parent chains.
//!
//! # Query contract (documented stretch)
//!
//! For a query `(u, v)` the oracle answers `d(u, v)` exactly whenever
//! `v ∈ B(u)` or `u ∈ B(v)` (in particular whenever either endpoint is a
//! landmark), and otherwise the better of the two via-anchor routes
//! `d(u, a(u)) + d(a(u), v)` / `d(v, a(v)) + d(a(v), u)`.  Every candidate is
//! the length of a real walk, so answers **never underestimate**; and when
//! `v ∉ B(u)` we have `d(u, a(u)) ≤ d(u, v)`, hence
//!
//! ```text
//! d(u,a(u)) + d(a(u),v) ≤ 2·d(u,a(u)) + d(u,v) ≤ 3·d(u,v)
//! ```
//!
//! — the classic stretch-[`ORACLE_STRETCH`] landmark bound.  Path queries
//! materialise the witness walk behind the reported value by splicing parent
//! chains (ball chains for exact hits, landmark-forest chains otherwise), so
//! the edge weights of a returned path always telescope to **exactly** the
//! reported distance.  Both guarantees are pinned by
//! `crates/core/tests/oracle_conformance.rs`.
//!
//! # Batched serving
//!
//! [`DistanceOracle::query_batch`] and
//! [`DistanceOracle::query_paths_batch`] split the query slice into
//! fixed-size chunks and fan the chunks out over the rayon pool, splicing the
//! per-chunk results back in index order — answers are bit-identical for any
//! pool width.  Path batches land in a [`PathBatch`] arena (one flat node
//! buffer plus offsets) instead of per-query `Vec`s.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hybrid_graph::{Graph, NodeId, Weight, INFINITY};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::rows::DistanceRows;

/// Worst-case multiplicative stretch of [`DistanceOracle`] answers on
/// connected graphs: answers `a` satisfy `d ≤ a ≤ ORACLE_STRETCH · d`.
pub const ORACLE_STRETCH: f64 = 3.0;

/// Construction parameters for [`DistanceOracle::build`].
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Number of landmarks to sample; `0` means the default `⌈√n⌉`.
    pub landmarks: usize,
    /// Seed for the deterministic landmark sample.
    pub seed: u64,
    /// Queries per parallel chunk in the batched entry points.
    pub query_chunk: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            landmarks: 0,
            seed: 0xD15C0,
            query_chunk: 1024,
        }
    }
}

/// Arena holding the result of [`DistanceOracle::query_paths_batch`]: one
/// distance per query plus all witness paths in a single flat node buffer.
#[derive(Debug, Clone)]
pub struct PathBatch {
    dists: Vec<Weight>,
    /// `offsets[i]..offsets[i+1]` delimits query `i`'s path in `nodes`.
    offsets: Vec<u32>,
    nodes: Vec<NodeId>,
}

impl PathBatch {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// `true` if the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// Reported distance of query `i`.
    pub fn dist(&self, i: usize) -> Weight {
        self.dists[i]
    }

    /// All reported distances, in query order.
    pub fn dists(&self) -> &[Weight] {
        &self.dists
    }

    /// Witness path of query `i` (`[u, ..., v]`; a single node for `u == v`;
    /// empty only for unreachable pairs).
    pub fn path(&self, i: usize) -> &[NodeId] {
        &self.nodes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Bytes held by the arena buffers.
    pub fn memory_bytes(&self) -> u64 {
        (self.dists.len() * std::mem::size_of::<Weight>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.nodes.len() * std::mem::size_of::<NodeId>()) as u64
    }
}

/// Landmark distance oracle with documented stretch [`ORACLE_STRETCH`]; see
/// the [module docs](self) for the construction and the query contract.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    n: usize,
    /// Sorted landmark set; row `i` of `rows` belongs to `landmarks[i]`.
    landmarks: Vec<NodeId>,
    /// Exact `|L| × n` distance rows from every landmark.
    rows: DistanceRows,
    /// Flat `|L| × n` shortest-path forests (`NodeId::MAX` = no parent).
    parents: Vec<NodeId>,
    /// Per node: index (into `landmarks`) of the closest landmark.
    anchor: Vec<u32>,
    /// Per node: exact distance to its anchor.
    anchor_dist: Vec<Weight>,
    /// `n + 1` offsets into the ball arenas.
    ball_start: Vec<u32>,
    /// Ball members, sorted by node id within each ball.
    ball_nodes: Vec<NodeId>,
    /// Exact distance to each ball member, aligned with `ball_nodes`.
    ball_dists: Vec<Weight>,
    /// In-ball Dijkstra parent of each member, aligned with `ball_nodes`.
    ball_parents: Vec<NodeId>,
    query_chunk: usize,
}

/// Reusable scratch for the per-node bounded Dijkstra in ball construction.
struct BallScratch {
    dist: Vec<Weight>,
    parent: Vec<NodeId>,
    touched: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
}

impl BallScratch {
    fn new(n: usize) -> Self {
        BallScratch {
            dist: vec![INFINITY; n],
            parent: vec![NodeId::MAX; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Dijkstra from `source`, truncated to the strict ball of `radius`:
    /// returns `(node, dist, parent)` for every `w` with
    /// `d(source, w) < radius`, sorted by node id.  All parent chains stay
    /// inside the ball (any node on a shortest path to `w` is strictly
    /// closer than `w`).
    fn strict_ball(
        &mut self,
        graph: &Graph,
        source: NodeId,
        radius: Weight,
    ) -> Vec<(NodeId, Weight, NodeId)> {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
            self.parent[v as usize] = NodeId::MAX;
        }
        self.touched.clear();
        self.heap.clear();
        let mut members = Vec::new();
        if radius == 0 {
            return members;
        }
        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            if d > self.dist[v as usize] {
                continue; // stale heap entry
            }
            if d >= radius {
                break; // every remaining entry is at least this far
            }
            members.push((v, d, self.parent[v as usize]));
            for a in graph.arcs(v) {
                let nd = d.saturating_add(a.weight);
                if nd < self.dist[a.to as usize] && nd < radius {
                    if self.dist[a.to as usize] == INFINITY {
                        self.touched.push(a.to);
                    }
                    self.dist[a.to as usize] = nd;
                    self.parent[a.to as usize] = v;
                    self.heap.push(Reverse((nd, a.to)));
                }
            }
        }
        members.sort_unstable_by_key(|&(v, _, _)| v);
        members
    }
}

impl DistanceOracle {
    /// Samples the landmark set deterministically from `config.seed` and
    /// delegates to [`DistanceOracle::build_with_landmarks`].
    pub fn build(graph: &Graph, config: OracleConfig) -> Result<Self, String> {
        let n = graph.n();
        if n == 0 {
            return Err("oracle over an empty graph".to_string());
        }
        let want = if config.landmarks == 0 {
            (n as f64).sqrt().ceil() as usize
        } else {
            config.landmarks
        }
        .clamp(1, n);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut all: Vec<NodeId> = (0..n as NodeId).collect();
        all.shuffle(&mut rng);
        all.truncate(want);
        Self::build_with_landmarks_chunked(graph, &all, config.query_chunk)
    }

    /// Builds the oracle from an explicit landmark set — the hook for reusing
    /// a source set whose rows a completed sweep / APSP run already chose
    /// (e.g. the skeleton-node sample of Definition 6.2).  Landmarks are
    /// deduplicated and sorted; at least one is required.
    pub fn build_with_landmarks(graph: &Graph, landmarks: &[NodeId]) -> Result<Self, String> {
        Self::build_with_landmarks_chunked(graph, landmarks, OracleConfig::default().query_chunk)
    }

    fn build_with_landmarks_chunked(
        graph: &Graph,
        landmarks: &[NodeId],
        query_chunk: usize,
    ) -> Result<Self, String> {
        let n = graph.n();
        let mut landmarks: Vec<NodeId> = landmarks.to_vec();
        landmarks.sort_unstable();
        landmarks.dedup();
        if landmarks.is_empty() {
            return Err("oracle needs at least one landmark".to_string());
        }
        if let Some(&bad) = landmarks.iter().find(|&&l| l as usize >= n) {
            return Err(format!("landmark {bad} out of range for n = {n}"));
        }

        // The completed sweep: one exact Dijkstra per landmark, rows + forest.
        let (rows, parents) = DistanceRows::compute_with_parents(graph, &landmarks);

        // Routing labels: closest landmark (smallest row index on ties) and
        // the exact offset to it.
        let mut anchor = vec![0u32; n];
        let mut anchor_dist = vec![INFINITY; n];
        for (i, _) in landmarks.iter().enumerate() {
            let row = rows.row(i);
            for (v, &d) in row.iter().enumerate() {
                if d < anchor_dist[v] {
                    anchor_dist[v] = d;
                    anchor[v] = i as u32;
                }
            }
        }

        // Strict balls, fanned out over the pool; chunk results are spliced
        // back in node order, so the arenas are pool-width independent.
        let balls: Vec<Vec<(NodeId, Weight, NodeId)>> = (0..n as NodeId)
            .into_par_iter()
            .map_init(
                || BallScratch::new(n),
                |scratch, u| scratch.strict_ball(graph, u, anchor_dist[u as usize]),
            )
            .with_min_len(64)
            .collect();
        let total: usize = balls.iter().map(Vec::len).sum();
        let mut ball_start = Vec::with_capacity(n + 1);
        let mut ball_nodes = Vec::with_capacity(total);
        let mut ball_dists = Vec::with_capacity(total);
        let mut ball_parents = Vec::with_capacity(total);
        ball_start.push(0u32);
        for ball in balls {
            for (w, d, p) in ball {
                ball_nodes.push(w);
                ball_dists.push(d);
                ball_parents.push(p);
            }
            ball_start.push(ball_nodes.len() as u32);
        }

        Ok(DistanceOracle {
            n,
            landmarks,
            rows,
            parents,
            anchor,
            anchor_dist,
            ball_start,
            ball_nodes,
            ball_dists,
            ball_parents,
            query_chunk: query_chunk.max(1),
        })
    }

    /// Number of nodes served.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sorted landmark set.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Bytes held by the oracle's label and arena buffers — the serving-side
    /// memory footprint.
    pub fn memory_bytes(&self) -> u64 {
        self.rows.memory_bytes()
            + (self.parents.len() * std::mem::size_of::<NodeId>()
                + self.anchor.len() * std::mem::size_of::<u32>()
                + self.anchor_dist.len() * std::mem::size_of::<Weight>()
                + self.ball_start.len() * std::mem::size_of::<u32>()
                + self.ball_nodes.len() * std::mem::size_of::<NodeId>()
                + self.ball_dists.len() * std::mem::size_of::<Weight>()
                + self.ball_parents.len() * std::mem::size_of::<NodeId>()) as u64
    }

    /// Position of `w` inside `u`'s ball arena, if `w ∈ B(u)`.
    fn ball_slot(&self, u: NodeId, w: NodeId) -> Option<usize> {
        let lo = self.ball_start[u as usize] as usize;
        let hi = self.ball_start[u as usize + 1] as usize;
        self.ball_nodes[lo..hi]
            .binary_search(&w)
            .ok()
            .map(|off| lo + off)
    }

    /// Distance from landmark `i` to `v`, straight from the sweep rows.
    #[inline]
    fn landmark_dist(&self, i: u32, v: NodeId) -> Weight {
        self.rows.row(i as usize)[v as usize]
    }

    /// Answers a single distance query under the module-level contract:
    /// exact when either endpoint lies in the other's ball, otherwise the
    /// better via-anchor route (never an underestimate, at most
    /// [`ORACLE_STRETCH`]` · d(u, v)` on connected graphs).
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        if let Some(slot) = self.ball_slot(u, v) {
            return self.ball_dists[slot];
        }
        if let Some(slot) = self.ball_slot(v, u) {
            return self.ball_dists[slot];
        }
        let via_u = self.anchor_dist[u as usize]
            .saturating_add(self.landmark_dist(self.anchor[u as usize], v));
        let via_v = self.anchor_dist[v as usize]
            .saturating_add(self.landmark_dist(self.anchor[v as usize], u));
        via_u.min(via_v)
    }

    /// Walks `w` back to the ball owner `u` through the in-ball parent
    /// chain, appending `w, ..., u` to `out` (reversed order).
    fn push_ball_chain_rev(&self, u: NodeId, mut w: NodeId, out: &mut Vec<NodeId>) {
        loop {
            out.push(w);
            if w == u {
                return;
            }
            let slot = self.ball_slot(u, w).expect("chain stays inside the ball");
            w = self.ball_parents[slot];
        }
    }

    /// Walks `w` up to landmark number `i` through the sweep forest,
    /// appending `w, ..., landmarks[i]` to `out` — the forward order of the
    /// path from `w` to the landmark.
    fn push_landmark_chain(&self, i: u32, mut w: NodeId, out: &mut Vec<NodeId>) {
        let row = &self.parents[i as usize * self.n..(i as usize + 1) * self.n];
        loop {
            out.push(w);
            let p = row[w as usize];
            if p == NodeId::MAX {
                return;
            }
            w = p;
        }
    }

    /// Answers a distance-plus-witness-path query.  The returned node list
    /// runs `u, ..., v`, every consecutive pair is an edge of the graph, and
    /// the edge weights sum to exactly the returned distance.  The path is
    /// empty only for unreachable pairs (`INFINITY`).
    pub fn query_path(&self, u: NodeId, v: NodeId) -> (Weight, Vec<NodeId>) {
        let mut nodes = Vec::new();
        let d = self.query_path_into(u, v, &mut nodes);
        (d, nodes)
    }

    /// Arena-friendly core of [`DistanceOracle::query_path`]: appends the
    /// witness path to `out` and returns the distance.
    fn query_path_into(&self, u: NodeId, v: NodeId, out: &mut Vec<NodeId>) -> Weight {
        if u == v {
            out.push(u);
            return 0;
        }
        if let Some(slot) = self.ball_slot(u, v) {
            let start = out.len();
            self.push_ball_chain_rev(u, v, out);
            out[start..].reverse();
            return self.ball_dists[slot];
        }
        if let Some(slot) = self.ball_slot(v, u) {
            // Chain u → v inside v's ball is already in forward order.
            self.push_ball_chain_rev(v, u, out);
            return self.ball_dists[slot];
        }
        let (au, av) = (self.anchor[u as usize], self.anchor[v as usize]);
        let via_u = self.anchor_dist[u as usize].saturating_add(self.landmark_dist(au, v));
        let via_v = self.anchor_dist[v as usize].saturating_add(self.landmark_dist(av, u));
        if via_u == INFINITY && via_v == INFINITY {
            return INFINITY;
        }
        // Tie-break towards the u-side route so the choice is deterministic.
        let (i, near, far, d) = if via_u <= via_v {
            (au, u, v, via_u)
        } else {
            (av, v, u, via_v)
        };
        // Walking up the forest from `near` visits `near, ..., a` — already
        // the forward order of the first segment.  The far-side walk visits
        // `far, ..., a`; drop its trailing duplicate anchor and reverse it in
        // place to get `a's child, ..., far`.
        let start = out.len();
        self.push_landmark_chain(i, near, out);
        let anchor_pos = out.len() - 1;
        self.push_landmark_chain(i, far, out);
        out.truncate(out.len() - 1); // the anchor was appended twice
        out[anchor_pos + 1..].reverse();
        if near != u {
            out[start..].reverse(); // route was built v → u; flip it
        }
        d
    }

    /// Answers a batch of distance queries with rayon fan-out over
    /// [`OracleConfig::query_chunk`]-sized chunks.  Output order matches the
    /// input and is bit-identical for every pool width.
    pub fn query_batch(&self, queries: &[(NodeId, NodeId)]) -> Vec<Weight> {
        let chunk = self.query_chunk;
        let nchunks = queries.len().div_ceil(chunk);
        let per: Vec<Vec<Weight>> = (0..nchunks)
            .into_par_iter()
            .map(|ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(queries.len());
                queries[lo..hi]
                    .iter()
                    .map(|&(u, v)| self.query(u, v))
                    .collect()
            })
            .with_min_len(1)
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for part in per {
            out.extend(part);
        }
        out
    }

    /// Answers a batch of path queries.  Each parallel chunk fills its own
    /// arena; the per-chunk arenas are spliced back in query order into one
    /// [`PathBatch`], so the result is bit-identical for every pool width.
    pub fn query_paths_batch(&self, queries: &[(NodeId, NodeId)]) -> PathBatch {
        let chunk = self.query_chunk;
        let nchunks = queries.len().div_ceil(chunk);
        let per: Vec<(Vec<Weight>, Vec<u32>, Vec<NodeId>)> = (0..nchunks)
            .into_par_iter()
            .map(|ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(queries.len());
                let mut dists = Vec::with_capacity(hi - lo);
                let mut ends = Vec::with_capacity(hi - lo);
                let mut nodes = Vec::new();
                for &(u, v) in &queries[lo..hi] {
                    dists.push(self.query_path_into(u, v, &mut nodes));
                    ends.push(nodes.len() as u32);
                }
                (dists, ends, nodes)
            })
            .with_min_len(1)
            .collect();
        let mut batch = PathBatch {
            dists: Vec::with_capacity(queries.len()),
            offsets: Vec::with_capacity(queries.len() + 1),
            nodes: Vec::new(),
        };
        batch.offsets.push(0);
        for (dists, ends, nodes) in per {
            let base = batch.nodes.len() as u32;
            batch.dists.extend(dists);
            batch.offsets.extend(ends.iter().map(|&e| base + e));
            batch.nodes.extend(nodes);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::dijkstra::apsp_exact;
    use hybrid_graph::generators;

    fn check_paths(g: &Graph, oracle: &DistanceOracle, exact: &[Vec<Weight>]) {
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                let (d, path) = oracle.query_path(u, v);
                assert_eq!(d, oracle.query(u, v), "({u},{v}): dist/path disagree");
                let e = exact[u as usize][v as usize];
                assert!(d >= e, "({u},{v}): {d} underestimates {e}");
                assert!(
                    d as f64 <= ORACLE_STRETCH * e as f64 + 1e-9,
                    "({u},{v}): {d} exceeds stretch bound over {e}"
                );
                assert_eq!(path.first(), Some(&u), "({u},{v}): path start");
                assert_eq!(path.last(), Some(&v), "({u},{v}): path end");
                let mut total = 0u64;
                for pair in path.windows(2) {
                    let arc = g
                        .arcs(pair[0])
                        .iter()
                        .find(|a| a.to == pair[1])
                        .unwrap_or_else(|| {
                            panic!("({u},{v}): {}-{} not an edge", pair[0], pair[1])
                        });
                    total += arc.weight;
                }
                assert_eq!(total, d, "({u},{v}): path weight vs reported distance");
            }
        }
    }

    #[test]
    fn exact_on_paths_through_landmark_balls() {
        let g = generators::path(17).unwrap();
        let oracle = DistanceOracle::build(&g, OracleConfig::default()).unwrap();
        let exact = apsp_exact(&g);
        check_paths(&g, &oracle, &exact);
    }

    #[test]
    fn weighted_grid_within_stretch_and_landmark_queries_exact() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let g = generators::weighted_grid(&[6, 7], 24, &mut rng).unwrap();
        let oracle = DistanceOracle::build(&g, OracleConfig::default()).unwrap();
        let exact = apsp_exact(&g);
        check_paths(&g, &oracle, &exact);
        // Either endpoint being a landmark forces an exact answer.
        for &l in oracle.landmarks() {
            for v in 0..g.n() as NodeId {
                assert_eq!(oracle.query(l, v), exact[l as usize][v as usize]);
                assert_eq!(oracle.query(v, l), exact[l as usize][v as usize]);
            }
        }
    }

    #[test]
    fn batches_agree_with_single_queries() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let g = generators::weighted_grid(&[5, 9], 12, &mut rng).unwrap();
        let oracle = DistanceOracle::build(
            &g,
            OracleConfig {
                query_chunk: 7,
                ..OracleConfig::default()
            },
        )
        .unwrap();
        let queries: Vec<(NodeId, NodeId)> = (0..200)
            .map(|_| {
                (
                    rng.gen_range(0..g.n() as NodeId),
                    rng.gen_range(0..g.n() as NodeId),
                )
            })
            .collect();
        let batch = oracle.query_batch(&queries);
        let paths = oracle.query_paths_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        assert_eq!(paths.len(), queries.len());
        for (i, &(u, v)) in queries.iter().enumerate() {
            assert_eq!(batch[i], oracle.query(u, v));
            let (d, path) = oracle.query_path(u, v);
            assert_eq!(paths.dist(i), d);
            assert_eq!(paths.path(i), path.as_slice());
        }
        assert!(paths.memory_bytes() > 0);
    }

    #[test]
    fn explicit_landmarks_and_degenerate_configs() {
        let g = generators::cycle(12).unwrap();
        // Every node a landmark → the oracle is exact everywhere.
        let all: Vec<NodeId> = (0..12).collect();
        let oracle = DistanceOracle::build_with_landmarks(&g, &all).unwrap();
        let exact = apsp_exact(&g);
        for u in 0..12u32 {
            for v in 0..12u32 {
                assert_eq!(oracle.query(u, v), exact[u as usize][v as usize]);
            }
        }
        assert!(DistanceOracle::build_with_landmarks(&g, &[]).is_err());
        assert!(DistanceOracle::build_with_landmarks(&g, &[99]).is_err());
        assert!(oracle.memory_bytes() > 0);
        assert_eq!(oracle.n(), 12);
    }
}
