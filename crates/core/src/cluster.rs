//! Ruling sets (Definition 3.4) and the `NQ_k`-clustering of Lemma 3.5.
//!
//! The clustering partitions `V` into clusters of weak diameter
//! `≤ 4·NQ_k·⌈log n⌉` and size `Θ(k/NQ_k)`, each with a leader.  It is the
//! backbone of the universal broadcast (Theorem 1), aggregation (Theorem 2),
//! the adaptive helper sets (Lemma 5.2) and the unweighted APSP algorithm
//! (Theorem 6).

use hybrid_graph::traversal::{bfs_bounded, multi_source_bfs};
use hybrid_graph::{Graph, NodeId};
use hybrid_sim::HybridNetwork;

use crate::nq::{compute_nq, NqOracle};

/// A cluster of the Lemma 3.5 partition.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cluster leader `r(C)` (the ruling-set node, or the minimum-id
    /// member for clusters created by splitting).
    pub leader: NodeId,
    /// All members of the cluster, including the leader.
    pub members: Vec<NodeId>,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true for valid clusterings).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The full partition produced by [`cluster_by_nq`].
#[derive(Debug, Clone)]
pub struct Clustering {
    /// The clusters.
    pub clusters: Vec<Cluster>,
    /// For every node, the index of its cluster in [`Clustering::clusters`].
    pub cluster_of: Vec<usize>,
    /// The `NQ_k` value the clustering was built for.
    pub nq: u64,
    /// The workload `k` the clustering was built for.
    pub k: u64,
    /// Upper bound on the weak diameter of every cluster.
    ///
    /// Lemma 3.5 guarantees `4·NQ_k·⌈log n⌉` using the `[KMW18]` ruling set;
    /// the greedy ruling set used here has domination radius `2·NQ_k`
    /// (strictly stronger), so the bound is `4·NQ_k`.
    pub weak_diameter_bound: u64,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (never true for valid clusterings).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing node `v`.
    pub fn cluster_of_node(&self, v: NodeId) -> &Cluster {
        &self.clusters[self.cluster_of[v as usize]]
    }

    /// Checks the Lemma 3.5 invariants on `graph`:
    /// * the clusters partition `V`;
    /// * every member is within [`Clustering::weak_diameter_bound`] hops of
    ///   its cluster leader (every member is within `2·NQ_k` hops of the
    ///   original ruler, so pairwise — and in particular to the leader of a
    ///   cluster produced by splitting — at most `4·NQ_k` hops).
    ///
    /// Returns an error message describing the first violated invariant.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let n = graph.n();
        let mut seen = vec![false; n];
        for (idx, c) in self.clusters.iter().enumerate() {
            if c.is_empty() {
                return Err(format!("cluster {idx} is empty"));
            }
            if !c.members.contains(&c.leader) {
                return Err(format!("cluster {idx} leader not a member"));
            }
            for &v in &c.members {
                if seen[v as usize] {
                    return Err(format!("node {v} appears in two clusters"));
                }
                seen[v as usize] = true;
                if self.cluster_of[v as usize] != idx {
                    return Err(format!("cluster_of[{v}] inconsistent"));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("some node belongs to no cluster".to_string());
        }
        let half_bound = self.weak_diameter_bound.max(1);
        for c in &self.clusters {
            let reach = bfs_bounded(graph, c.leader, half_bound);
            for &v in &c.members {
                if reach.dist[v as usize] > half_bound {
                    return Err(format!(
                        "node {v} is more than {half_bound} hops from leader {}",
                        c.leader
                    ));
                }
            }
        }
        Ok(())
    }

    /// Maximum cluster size.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(Cluster::len).max().unwrap_or(0)
    }

    /// Minimum cluster size.
    pub fn min_cluster_size(&self) -> usize {
        self.clusters.iter().map(Cluster::len).min().unwrap_or(0)
    }
}

/// Greedy `(α, α−1)`-ruling set (Definition 3.4): every pair of rulers is at
/// hop distance `≥ α` and every node has a ruler within `α − 1` hops.
///
/// Rulers are chosen in increasing id order, which makes the construction
/// deterministic (the distributed implementation of `[KMW18]` that the paper
/// uses achieves `(µ+1, µ⌈log n⌉)` in `O(µ log n)` CONGEST rounds; the greedy
/// set satisfies strictly stronger domination, and callers charge the same
/// `O(µ log n)` rounds — see DESIGN.md, substitutions table).
pub fn ruling_set(graph: &Graph, alpha: u64) -> Vec<NodeId> {
    assert!(alpha >= 1, "ruling-set spacing must be at least 1");
    let n = graph.n();
    let mut dominated = vec![false; n];
    let mut rulers = Vec::new();
    let mut ws = hybrid_graph::dijkstra::DijkstraWorkspace::with_capacity(n);
    for v in 0..n as NodeId {
        if dominated[v as usize] {
            continue;
        }
        rulers.push(v);
        // Mark everything within alpha - 1 hops as dominated (one bounded
        // BFS on the shared workspace — no per-ruler allocation).
        ws.run_bfs_bounded(graph, v, alpha - 1);
        for &u in ws.reached() {
            dominated[u as usize] = true;
        }
    }
    rulers
}

/// The Lemma 3.5 clustering: partitions `V` into clusters of weak diameter
/// `≤ 4·NQ_k·⌈log n⌉`, size `Θ(k/NQ_k)` (exact bounds `[k/NQ_k, 2k/NQ_k]`
/// whenever `NQ_k < D`), each with a leader.
///
/// Charges `Õ(NQ_k)` rounds on `net`: the distributed `NQ_k` computation
/// (Lemma 3.3), the ruling-set construction (`O(NQ_k log n)`), learning the
/// closest ruler (`2·NQ_k·⌈log n⌉` local rounds) and the intra-cluster flood
/// (`4·NQ_k·⌈log n⌉` local rounds).
pub fn cluster_by_nq(net: &mut HybridNetwork, oracle: &NqOracle, k: u64) -> Clustering {
    // Phase 1: compute NQ_k distributedly (Lemma 3.3).
    let nq = compute_nq(net, oracle, k.max(1)).nq.max(1);
    cluster_with_radius(net, nq, k)
}

/// The same clustering with an explicitly prescribed radius parameter
/// (instead of `NQ_k`).  This is how the *existentially optimal* baselines of
/// `[AHK+20]`/`[KS20]` arise: they run the identical machinery with the
/// worst-case radius `√k` (the only bound available without inspecting the
/// topology), whereas the universal algorithms use the measured `NQ_k`.
pub fn cluster_with_radius(net: &mut HybridNetwork, radius: u64, k: u64) -> Clustering {
    let graph = net.graph_arc();
    let n = graph.n();
    let k = k.max(1);
    let log_n = graph.log2_n() as u64;
    let nq = radius.max(1);

    // Phase 2: (2·r + 1, ·)-ruling set, charged O(r log n) rounds.
    let alpha = 2 * nq + 1;
    let rulers = ruling_set(&graph, alpha);
    net.charge_rounds("clustering/ruling-set", nq * log_n.max(1));

    // Phase 3: every node joins the cluster of its closest ruler
    // (ties to the smaller id), learned by exploring 2·NQ_k·⌈log n⌉ hops.
    let assignment = multi_source_bfs(&graph, &rulers);
    net.charge_local("clustering/find-ruler", 2 * nq);

    let mut ruler_index = vec![usize::MAX; n];
    for (i, &r) in rulers.iter().enumerate() {
        ruler_index[r as usize] = i;
    }
    let mut raw_clusters: Vec<Vec<NodeId>> = vec![Vec::new(); rulers.len()];
    for v in 0..n as NodeId {
        let ruler = assignment.closest[v as usize].expect("graph is connected");
        raw_clusters[ruler_index[ruler as usize]].push(v);
    }

    // Phase 4: flood within clusters so every member learns its cluster,
    // charged by the weak-diameter bound.
    net.charge_local("clustering/learn-cluster", 4 * nq);

    // Phase 5: split oversized clusters locally (no communication).
    let target_min = k.div_ceil(nq).max(1) as usize; // ceil(k / NQ_k)
    let target_max = 2 * target_min;
    let mut clusters = Vec::new();
    for (i, members) in raw_clusters.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        if members.len() <= target_max {
            clusters.push(Cluster {
                leader: rulers[i],
                members,
            });
            continue;
        }
        let chunks = (members.len() / target_min).max(1);
        let chunk_size = members.len().div_ceil(chunks);
        for chunk in members.chunks(chunk_size) {
            let leader = if chunk.contains(&rulers[i]) {
                rulers[i]
            } else {
                *chunk.iter().min().expect("non-empty chunk")
            };
            clusters.push(Cluster {
                leader,
                members: chunk.to_vec(),
            });
        }
    }

    let mut cluster_of = vec![usize::MAX; n];
    for (idx, c) in clusters.iter().enumerate() {
        for &v in &c.members {
            cluster_of[v as usize] = idx;
        }
    }

    Clustering {
        clusters,
        cluster_of,
        nq,
        k,
        weak_diameter_bound: 4 * nq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use hybrid_graph::traversal::bfs;
    use std::sync::Arc;

    fn make(graph: hybrid_graph::Graph, k: u64) -> (Clustering, u64, hybrid_graph::Graph) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let clustering = cluster_by_nq(&mut net, &oracle, k);
        let rounds = net.rounds();
        (
            clustering,
            rounds,
            Arc::try_unwrap(g).unwrap_or_else(|a| (*a).clone()),
        )
    }

    #[test]
    fn ruling_set_spacing_and_domination() {
        let g = generators::grid(&[8, 8]).unwrap();
        for alpha in [1u64, 2, 3, 5] {
            let rulers = ruling_set(&g, alpha);
            assert!(!rulers.is_empty());
            // Spacing: pairwise distance >= alpha.
            for (i, &a) in rulers.iter().enumerate() {
                let d = bfs(&g, a);
                for &b in rulers.iter().skip(i + 1) {
                    assert!(d.dist[b as usize] >= alpha, "alpha={alpha}");
                }
            }
            // Domination: every node within alpha - 1 of some ruler.
            let ms = multi_source_bfs(&g, &rulers);
            assert!(ms.dist.iter().all(|&d| d <= alpha.saturating_sub(1)));
        }
    }

    #[test]
    fn ruling_set_alpha_one_is_everyone() {
        let g = generators::path(7).unwrap();
        assert_eq!(ruling_set(&g, 1).len(), 7);
    }

    #[test]
    fn clustering_is_valid_partition_on_families() {
        for (g, k) in [
            (generators::path(64).unwrap(), 16u64),
            (generators::grid(&[10, 10]).unwrap(), 50),
            (generators::tree_balanced(2, 6).unwrap(), 32),
            (generators::cycle(60).unwrap(), 60),
        ] {
            let (clustering, _, g) = make(g, k);
            clustering.validate(&g).expect("valid clustering");
            assert_eq!(clustering.cluster_of.len(), g.n());
        }
    }

    #[test]
    fn clustering_cluster_sizes_near_k_over_nq() {
        let g = generators::grid(&[16, 16]).unwrap();
        let k = 128u64;
        let (clustering, _, g) = make(g, k);
        clustering.validate(&g).unwrap();
        let target_min = (k as usize).div_ceil(clustering.nq as usize);
        // Splitting guarantees the maximum; the minimum holds for clusters
        // around actual rulers whenever NQ_k < D (Lemma 3.5).
        assert!(clustering.max_cluster_size() <= 2 * target_min + target_min);
        assert!(clustering.min_cluster_size() >= 1);
        // At least one cluster must meet the lower bound.
        assert!(clustering.clusters.iter().any(|c| c.len() >= target_min));
    }

    #[test]
    fn clustering_rounds_are_near_nq() {
        let g = generators::grid(&[12, 12]).unwrap();
        let (clustering, rounds, g) = make(g, 72);
        let log_n = g.log2_n() as u64;
        assert!(rounds >= clustering.nq);
        assert!(
            rounds <= 20 * clustering.nq * log_n * log_n,
            "rounds {rounds} not Õ(NQ_k) for nq={}",
            clustering.nq
        );
    }

    #[test]
    fn clustering_single_node_graph() {
        let g = hybrid_graph::GraphBuilder::new(1).build().unwrap();
        let (clustering, _, g) = make(g, 5);
        assert_eq!(clustering.len(), 1);
        clustering.validate(&g).unwrap();
    }

    #[test]
    fn cluster_of_node_lookup() {
        let g = generators::cycle(30).unwrap();
        let (clustering, _, _) = make(g, 10);
        for v in 0..30u32 {
            assert!(clustering.cluster_of_node(v).members.contains(&v));
        }
    }

    #[test]
    fn validate_detects_corruption() {
        let g = generators::path(10).unwrap();
        let (mut clustering, _, g) = make(g, 4);
        clustering.validate(&g).unwrap();
        // Corrupt: drop a node from its cluster.
        let victim = clustering.clusters[0].members.pop().unwrap();
        let err = clustering.validate(&g).unwrap_err();
        assert!(err.contains("no cluster") || err.contains(&victim.to_string()));
    }
}
