//! Universally optimal `(k, ℓ)`-shortest paths (Theorem 5): every target
//! `t ∈ T` learns a `(1+ε)`-approximate distance to every source `s ∈ S`,
//! in `Õ(NQ_k)` rounds.
//!
//! The algorithm solves shortest paths *from the targets* (each target acts
//! as an SSSP source — Theorem 13 sequentially in case (1), the Theorem 14
//! `k`-SSP scheduler in case (2)), after which every **source** knows its
//! distance to every target; the situation is then "reversed" by delivering
//! one message per `(s, t)` pair with the `(k, ℓ)`-routing algorithm
//! (Theorem 3).
//!
//! **Data level.**  Case (2)'s ℓ-SSP step is the Theorem 14 label
//! composition with the targets as sources, so it runs on the shared blocked
//! `(min, +)` kernel ([`crate::minplus`]) through
//! [`crate::kssp::kssp`]; case (1) quantizes exact per-target labels
//! directly.  Either way the final assembly is a pure gather of the source
//! columns out of the target label rows — no further composition happens
//! here.

use rand::Rng;

use hybrid_graph::dijkstra::dijkstra;
use hybrid_graph::{NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

use crate::kssp::{kssp, KsspVariant};
use crate::nq::NqOracle;
use crate::routing::{kl_routing, RoutingScenario};
use crate::sssp::{quantize_distance, sssp_round_cost};

/// Which of the two Theorem 5 parameter regimes an instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KlspScenario {
    /// Arbitrary sources, targets sampled with probability `ℓ/n`, `ℓ ≤ NQ_k`.
    ArbitrarySourcesRandomTargets,
    /// Sources and targets both sampled, `ℓ ≤ NQ_k²`, `ℓ·k ≤ NQ_k·n`.
    RandomSourcesRandomTargets,
}

/// Output of a `(k, ℓ)`-SP computation.
#[derive(Debug, Clone)]
pub struct KlspOutput {
    /// The source set `S`.
    pub sources: Vec<NodeId>,
    /// The target set `T`.
    pub targets: Vec<NodeId>,
    /// `dist[ti][si]` is the label target `targets[ti]` learned for source
    /// `sources[si]`.
    pub dist: Vec<Vec<Weight>>,
    /// Promised stretch (`1 + ε`).
    pub stretch: f64,
    /// Total rounds consumed.
    pub rounds: u64,
    /// The graph's `NQ_k`.
    pub nq: u64,
}

impl KlspOutput {
    /// Verifies every learned label against exact distances.
    pub fn verify_stretch(&self, graph: &hybrid_graph::Graph) -> Result<f64, String> {
        let mut worst: f64 = 1.0;
        for (si, &s) in self.sources.iter().enumerate() {
            let exact = dijkstra(graph, s).dist;
            for (ti, &t) in self.targets.iter().enumerate() {
                let e = exact[t as usize];
                let a = self.dist[ti][si];
                if e == 0 {
                    if a != 0 {
                        return Err(format!("({s},{t}): nonzero self label"));
                    }
                    continue;
                }
                if a == INFINITY || e == INFINITY {
                    return Err(format!("({s},{t}): unreachable label on connected graph"));
                }
                if a < e {
                    return Err(format!("({s},{t}): label {a} underestimates {e}"));
                }
                let ratio = a as f64 / e as f64;
                if ratio > self.stretch + 1e-9 {
                    return Err(format!(
                        "({s},{t}): stretch {ratio} exceeds {}",
                        self.stretch
                    ));
                }
                worst = worst.max(ratio);
            }
        }
        Ok(worst)
    }
}

/// Theorem 5 — `(1+ε)`-approximate `(k, ℓ)`-SP in `Õ(NQ_k)` rounds w.h.p.
pub fn klsp(
    net: &mut HybridNetwork,
    oracle: &NqOracle,
    sources: &[NodeId],
    targets: &[NodeId],
    epsilon: f64,
    scenario: KlspScenario,
    rng: &mut impl Rng,
) -> KlspOutput {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let before = net.rounds();
    let graph = net.graph_arc();
    let k = sources.len();
    let l = targets.len();
    let nq = oracle.nq(k.max(1) as u64).max(1);

    if k == 0 || l == 0 {
        return KlspOutput {
            sources: sources.to_vec(),
            targets: targets.to_vec(),
            dist: vec![Vec::new(); l],
            stretch: 1.0 + epsilon,
            rounds: net.rounds() - before,
            nq,
        };
    }

    // Step 1: shortest paths *from the targets*.
    let target_labels: Vec<Vec<Weight>> = match scenario {
        KlspScenario::ArbitrarySourcesRandomTargets => {
            // ℓ ≤ NQ_k sequential Theorem 13 instances.
            let t_sssp = sssp_round_cost(net, epsilon);
            net.charge_rounds(
                "klsp/sequential-sssp-from-targets",
                t_sssp.saturating_mul(l as u64),
            );
            targets
                .iter()
                .map(|&t| {
                    dijkstra(&graph, t)
                        .dist
                        .into_iter()
                        .map(|d| quantize_distance(d, epsilon))
                        .collect()
                })
                .collect()
        }
        KlspScenario::RandomSourcesRandomTargets => {
            // ℓ-SSP via the Theorem 14 scheduler (targets as sources).
            let out = kssp(net, targets, epsilon, KsspVariant::RandomSources, rng);
            out.dist
        }
    };

    // Step 2: "reverse" the information with (k, ℓ)-routing (Theorem 3):
    // every source holds one distance label per target and the targets must
    // receive them.
    let routing_scenario = match scenario {
        KlspScenario::ArbitrarySourcesRandomTargets => {
            RoutingScenario::ArbitrarySourcesRandomTargets
        }
        KlspScenario::RandomSourcesRandomTargets => RoutingScenario::RandomSourcesRandomTargets,
    };
    let routing = kl_routing(net, oracle, sources, targets, routing_scenario, rng);
    debug_assert!(routing.is_complete(sources, targets));

    // Assemble what each target has learned.
    let dist: Vec<Vec<Weight>> = (0..l)
        .map(|ti| {
            (0..k)
                .map(|si| target_labels[ti][sources[si] as usize])
                .collect()
        })
        .collect();

    KlspOutput {
        sources: sources.to_vec(),
        targets: targets.to_vec(),
        dist,
        stretch: 1.0 + epsilon,
        rounds: net.rounds() - before,
        nq,
    }
}

/// The existential comparison row of Table 3: `(k, ℓ)`-SP by solving `k`-SSP
/// with the prior `Õ(√k)`-type machinery; exact labels, rounds
/// `Õ(n^{1/3} + √k)` (`[CHLP21a]`, `[KS20]`).
pub fn baseline_klsp(
    net: &mut HybridNetwork,
    sources: &[NodeId],
    targets: &[NodeId],
) -> KlspOutput {
    let before = net.rounds();
    let graph = net.graph_arc();
    let rounds = crate::kssp::baseline_chlp21_rounds(graph.n(), sources.len());
    net.charge_rounds("klsp/baseline-chlp21", rounds);
    let dist: Vec<Vec<Weight>> = targets
        .iter()
        .map(|&t| {
            let d = dijkstra(&graph, t).dist;
            sources.iter().map(|&s| d[s as usize]).collect()
        })
        .collect();
    KlspOutput {
        sources: sources.to_vec(),
        targets: targets.to_vec(),
        dist,
        stretch: 1.0,
        rounds: net.rounds() - before,
        nq: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::{sample_distinct, sample_with_probability};
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn setup(graph: hybrid_graph::Graph) -> (Arc<hybrid_graph::Graph>, NqOracle, HybridNetwork) {
        let g = Arc::new(graph);
        let oracle = NqOracle::new(&g);
        let net = HybridNetwork::hybrid(Arc::clone(&g));
        (g, oracle, net)
    }

    #[test]
    fn case1_arbitrary_sources_random_targets() {
        let (g, oracle, mut net) = setup(generators::grid(&[10, 10]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sources = sample_distinct(g.n(), 25, &mut rng);
        let nq = oracle.nq(25).max(1);
        let mut targets = sample_with_probability(g.n(), nq as f64 / g.n() as f64, &mut rng);
        if targets.is_empty() {
            targets.push(42);
        }
        let out = klsp(
            &mut net,
            &oracle,
            &sources,
            &targets,
            0.25,
            KlspScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        let worst = out.verify_stretch(&g).unwrap();
        assert!(worst <= 1.25);
        assert!(out.rounds > 0);
    }

    #[test]
    fn case2_random_sources_random_targets_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (g, oracle, mut net) = setup(generators::weighted_grid(&[9, 9], 7, &mut rng).unwrap());
        let sources = sample_with_probability(g.n(), 0.3, &mut rng);
        let targets = sample_with_probability(g.n(), 0.05, &mut rng);
        let targets = if targets.is_empty() {
            vec![10]
        } else {
            targets
        };
        let out = klsp(
            &mut net,
            &oracle,
            &sources,
            &targets,
            0.5,
            KlspScenario::RandomSourcesRandomTargets,
            &mut rng,
        );
        out.verify_stretch(&g).unwrap();
    }

    #[test]
    fn empty_source_or_target_sets() {
        let (_, oracle, mut net) = setup(generators::cycle(16).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = klsp(
            &mut net,
            &oracle,
            &[],
            &[3],
            0.5,
            KlspScenario::ArbitrarySourcesRandomTargets,
            &mut rng,
        );
        assert_eq!(out.dist.len(), 1);
        assert!(out.dist[0].is_empty());
    }

    #[test]
    fn baseline_is_exact() {
        let (g, _, mut net) = setup(generators::grid(&[8, 8]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sources = sample_distinct(g.n(), 12, &mut rng);
        let targets = sample_distinct(g.n(), 4, &mut rng);
        let out = baseline_klsp(&mut net, &sources, &targets);
        let worst = out.verify_stretch(&g).unwrap();
        assert!((worst - 1.0).abs() < 1e-12);
        assert!(out.rounds > 0);
    }
}
