//! Closed-form estimates of `NQ_k` on the special graph families the paper
//! analyses (Section 3.3, Theorems 15–17 and Appendix B), used by the
//! Appendix-B reproduction benchmark to compare measured values against the
//! paper's asymptotic predictions.

/// Asymptotic prediction for a family (a Θ(·) expression evaluated without
/// its hidden constant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NqPrediction {
    /// The value of the Θ-expression (constant factor 1).
    pub theta_value: f64,
    /// Human-readable form of the expression, e.g. `"min(√k, D)"`.
    pub formula: &'static str,
}

/// Theorem 15: on paths and cycles `NQ_k ∈ min{Θ(√k), D}`.
pub fn predict_path_like(k: u64, diameter: u64) -> NqPrediction {
    NqPrediction {
        theta_value: (k as f64).sqrt().min(diameter as f64),
        formula: "min(sqrt(k), D)",
    }
}

/// Theorem 16: on `d`-dimensional grids `NQ_k ∈ min{Θ(k^{1/(d+1)}), D}`.
pub fn predict_grid(k: u64, d: u32, diameter: u64) -> NqPrediction {
    assert!(d >= 1, "grid dimension must be at least 1");
    NqPrediction {
        theta_value: (k as f64).powf(1.0 / (d as f64 + 1.0)).min(diameter as f64),
        formula: "min(k^{1/(d+1)}, D)",
    }
}

/// Theorem 17: on graphs with polynomial growth `|B_r(v)| ∈ Ω(r^d)`,
/// `NQ_k ∈ min{O(k^{1/(d+1)}), D}` — same form as grids.
pub fn predict_polynomial_growth(k: u64, d: u32, diameter: u64) -> NqPrediction {
    predict_grid(k, d, diameter)
}

/// Fits an exponent `e` such that `values ≈ c · ks^e` by least squares in
/// log-log space; used by the Appendix-B bench to verify the exponents
/// `1/2` (paths) and `1/(d+1)` (grids).
///
/// Returns `None` if fewer than two usable points are supplied.
pub fn fit_exponent(ks: &[u64], values: &[u64]) -> Option<f64> {
    assert_eq!(ks.len(), values.len());
    let points: Vec<(f64, f64)> = ks
        .iter()
        .zip(values)
        .filter(|&(&k, &v)| k > 0 && v > 0)
        .map(|(&k, &v)| ((k as f64).ln(), (v as f64).ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nq::NqOracle;
    use hybrid_graph::{generators, properties};

    #[test]
    fn path_prediction_within_constant_factor() {
        let g = generators::path(600).unwrap();
        let d = properties::diameter(&g);
        let oracle = NqOracle::new(&g);
        for &k in &[16u64, 64, 256, 400] {
            let measured = oracle.nq(k) as f64;
            let predicted = predict_path_like(k, d).theta_value;
            assert!(
                measured >= predicted / 3.0,
                "k={k}: {measured} vs {predicted}"
            );
            assert!(
                measured <= predicted * 3.0,
                "k={k}: {measured} vs {predicted}"
            );
        }
    }

    #[test]
    fn grid_prediction_within_constant_factor() {
        let g = generators::grid(&[20, 20]).unwrap();
        let d = properties::diameter(&g);
        let oracle = NqOracle::new(&g);
        for &k in &[8u64, 64, 216, 400] {
            let measured = oracle.nq(k) as f64;
            let predicted = predict_grid(k, 2, d).theta_value;
            assert!(
                measured >= predicted / 4.0,
                "k={k}: {measured} vs {predicted}"
            );
            assert!(
                measured <= predicted * 4.0,
                "k={k}: {measured} vs {predicted}"
            );
        }
    }

    #[test]
    fn fitted_exponent_on_path_is_half() {
        let g = generators::path(2_000).unwrap();
        let oracle = NqOracle::new(&g);
        let ks: Vec<u64> = vec![16, 64, 256, 1024, 4096, 16384];
        let values: Vec<u64> = ks.iter().map(|&k| oracle.nq(k)).collect();
        let e = fit_exponent(&ks, &values).unwrap();
        assert!((e - 0.5).abs() < 0.1, "fitted exponent {e} not near 0.5");
    }

    #[test]
    fn fitted_exponent_on_2d_grid_is_one_third() {
        let g = generators::grid(&[40, 40]).unwrap();
        let oracle = NqOracle::new(&g);
        let ks: Vec<u64> = vec![27, 125, 343, 1000];
        let values: Vec<u64> = ks.iter().map(|&k| oracle.nq(k)).collect();
        let e = fit_exponent(&ks, &values).unwrap();
        assert!(
            (e - 1.0 / 3.0).abs() < 0.12,
            "fitted exponent {e} not near 1/3"
        );
    }

    #[test]
    fn fit_exponent_degenerate_inputs() {
        assert!(fit_exponent(&[], &[]).is_none());
        assert!(fit_exponent(&[5], &[2]).is_none());
        assert!(fit_exponent(&[5, 5], &[2, 2]).is_none());
        let e = fit_exponent(&[2, 4, 8, 16], &[2, 4, 8, 16]).unwrap();
        assert!((e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn polynomial_growth_matches_grid_formula() {
        let a = predict_grid(100, 3, 50);
        let b = predict_polynomial_growth(100, 3, 50);
        assert_eq!(a.theta_value, b.theta_value);
        assert_eq!(a.formula, b.formula);
    }
}
