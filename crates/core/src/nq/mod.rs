//! The **neighborhood quality** graph parameter `NQ_k` (paper Section 3).
//!
//! For a graph `G`, workload `k` and node `v`,
//!
//! ```text
//! NQ_k(v) = min ({ t : |B_t(v)| >= k / t } ∪ { D })      (Definition 3.1)
//! NQ_k(G) = max_v NQ_k(v)
//! ```
//!
//! `NQ_k` captures how quickly the `t`-hop neighbourhood of every node grows
//! relative to the workload `k`: within `t` rounds a node can combine local
//! communication (learning its `t`-ball) with `Θ(t·log n)` global messages per
//! ball member, so a ball of size `≥ k/t` suffices to move `Ω̃(k)` bits in
//! `O(t)` rounds.  The paper proves `√(Dk/3n) < NQ_k ≤ min(D, √k)`
//! (Lemma 3.6), the growth bound `NQ_{αk} ≤ 6√α·NQ_k` (Lemma 3.7) and closed
//! forms on paths/cycles/grids (Theorems 15–17, reproduced in [`families`]).
//!
//! [`NqOracle`] computes the parameter exactly (centralized); [`compute_nq`]
//! performs the distributed computation of Lemma 3.3, charging `Õ(NQ_k)`
//! rounds on a [`HybridNetwork`].

pub mod families;
pub mod sampled;

use hybrid_graph::balls::BallOracle;
use hybrid_graph::{Graph, NodeId};
use hybrid_sim::HybridNetwork;

pub use sampled::{NqEstimate, SampledNqOracle};

/// Common interface over the exact [`NqOracle`] and the scale tier's
/// [`SampledNqOracle`], covering exactly the queries the universal lower
/// bounds (Theorem 4, Lemma 7.2, Theorems 11/12) consume: the `NQ_k` value,
/// its witness node, and ball sizes around that witness.
///
/// The exact oracle answers for every node; the sampled oracle answers the
/// same queries over its sampled node set (its `nq`/`witness` are the sample
/// maximum — a guaranteed *lower* estimate of the population maximum, with
/// quantile coverage recorded by [`SampledNqOracle::nq_estimate`]).
pub trait NqSource {
    /// Number of nodes of the underlying graph.
    fn n(&self) -> usize;
    /// `NQ_k(G)` (exact) or its sample maximum (sampled).
    fn nq(&self, k: u64) -> u64;
    /// A node attaining [`NqSource::nq`].
    fn witness(&self, k: u64) -> NodeId;
    /// `|B_t(v)|` for any node the source has a profile for.
    fn ball_size(&self, v: NodeId, t: u64) -> usize;
}

impl NqSource for NqOracle {
    fn n(&self) -> usize {
        NqOracle::n(self)
    }
    fn nq(&self, k: u64) -> u64 {
        NqOracle::nq(self, k)
    }
    fn witness(&self, k: u64) -> NodeId {
        NqOracle::witness(self, k)
    }
    fn ball_size(&self, v: NodeId, t: u64) -> usize {
        NqOracle::ball_size(self, v, t)
    }
}

/// Exact, centralized oracle for `NQ_k(v)` and `NQ_k(G)` with cached ball
/// profiles, supporting repeated queries for different workloads `k`.
#[derive(Debug, Clone)]
pub struct NqOracle {
    balls: BallOracle,
    diameter: u64,
    n: usize,
}

impl NqOracle {
    /// Precomputes ball-size profiles for every node (up to the diameter).
    ///
    /// A single parallel BFS sweep serves double duty: each node's profile
    /// stops growing exactly at its eccentricity, so the diameter is read off
    /// the profile lengths instead of running a second `n`-BFS pass.
    pub fn new(graph: &Graph) -> Self {
        let balls = BallOracle::new(graph, u64::MAX);
        let diameter = balls.max_eccentricity();
        NqOracle {
            balls,
            diameter,
            n: graph.n(),
        }
    }

    /// Number of nodes of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Hop diameter `D` of the underlying graph.
    pub fn diameter(&self) -> u64 {
        self.diameter
    }

    /// `NQ_k(v)` — Definition 3.1.  For `k = 0` the answer is 1 (any radius
    /// works; the paper assumes `k > 0`).
    pub fn nq_of(&self, v: NodeId, k: u64) -> u64 {
        if k == 0 {
            return 1;
        }
        let d = self.diameter.max(1);
        for t in 1..=d {
            let ball = self.balls.ball_size(v, t) as u128;
            // |B_t(v)| >= k/t  <=>  |B_t(v)| * t >= k
            if ball * t as u128 >= k as u128 {
                return t;
            }
        }
        d
    }

    /// `NQ_k(G) = max_v NQ_k(v)`.
    pub fn nq(&self, k: u64) -> u64 {
        (0..self.n as NodeId)
            .map(|v| self.nq_of(v, k))
            .max()
            .unwrap_or(1)
    }

    /// A node maximizing `NQ_k(v)`; by Lemma 3.8 it satisfies
    /// `|B_r(v)| < k/r` for every `r < NQ_k`, which is the witness used by the
    /// universal lower bounds (Lemma 7.2).
    pub fn witness(&self, k: u64) -> NodeId {
        (0..self.n as NodeId)
            .max_by_key(|&v| self.nq_of(v, k))
            .unwrap_or(0)
    }

    /// `|B_t(v)|` from the cached profiles.
    pub fn ball_size(&self, v: NodeId, t: u64) -> usize {
        self.balls.ball_size(v, t)
    }
}

/// Result of the distributed `NQ_k` computation (Lemma 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NqComputation {
    /// The workload parameter `k` that was queried.
    pub k: u64,
    /// The computed `NQ_k(G)`.
    pub nq: u64,
    /// Rounds charged for the computation.
    pub rounds: u64,
}

/// Distributed computation of `NQ_k` in `Hybrid0` (Lemma 3.3): nodes explore
/// their neighbourhood to increasing depth `t = 1, 2, …`, after each step
/// aggregate `N_t = min_v |B_t(v)|` in `Õ(1)` rounds (Lemma 4.4) and stop at
/// the first `t` with `N_t ≥ k/t`.  Total cost `Õ(NQ_k)` rounds.
///
/// The returned value is exact (it matches [`NqOracle::nq`]); the exploration
/// and per-step aggregations are charged to the network's cost meter.
pub fn compute_nq(net: &mut HybridNetwork, oracle: &NqOracle, k: u64) -> NqComputation {
    let before = net.rounds();
    let d = oracle.diameter().max(1);
    let n = oracle.n();
    let k = k.max(1);
    let aggregation_rounds = net.polylog(1); // Lemma 4.4 basic aggregation
    let mut nq = d;
    for t in 1..=d {
        // One more round of local exploration.
        net.charge_local("nq/explore", 1);
        // Aggregate the global minimum ball size.
        net.charge_rounds("nq/aggregate-min", aggregation_rounds);
        let min_ball = (0..n as NodeId)
            .map(|v| oracle.ball_size(v, t))
            .min()
            .unwrap_or(0) as u128;
        if min_ball * t as u128 >= k as u128 {
            nq = t;
            break;
        }
    }
    NqComputation {
        k,
        nq,
        rounds: net.rounds() - before,
    }
}

/// Convenience: checks Lemma 3.6, `√(Dk/3n) < NQ_k ≤ min(D, √k)`, returning
/// the three quantities `(lower, nq, upper)` so tests and benches can assert
/// and report them.
///
/// Because radii are integers, the `√k` part of the upper bound is `⌈√k⌉`
/// (the paper works with real-valued radii in the proof of Lemma 3.6).
pub fn lemma_3_6_bounds(oracle: &NqOracle, k: u64) -> (f64, u64, f64) {
    let nq = oracle.nq(k);
    let d = oracle.diameter() as f64;
    let n = oracle.n() as f64;
    let k_f = k.max(1) as f64;
    let lower = (d * k_f / (3.0 * n)).sqrt();
    let upper = d.min(k_f.sqrt().ceil());
    (lower, nq, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;
    use std::sync::Arc;

    #[test]
    fn nq_on_path_is_sqrt_k() {
        let g = generators::path(400).unwrap();
        let oracle = NqOracle::new(&g);
        // On a path |B_t(v)| <= 2t+1, so NQ_k ~ sqrt(k/2)..sqrt(k).
        for &k in &[16u64, 64, 100, 256] {
            let nq = oracle.nq(k);
            let sqrt_k = (k as f64).sqrt();
            assert!(nq as f64 >= (sqrt_k / 2.0).floor(), "k={k}, nq={nq}");
            assert!(nq as f64 <= sqrt_k + 1.0, "k={k}, nq={nq}");
        }
    }

    #[test]
    fn nq_on_clique_is_one() {
        let g = generators::complete(64).unwrap();
        let oracle = NqOracle::new(&g);
        assert_eq!(oracle.nq(64), 1);
        assert_eq!(oracle.nq(1), 1);
        // Workload larger than n/1: still capped by diameter 1.
        assert_eq!(oracle.nq(10_000), 1);
    }

    #[test]
    fn nq_capped_by_diameter() {
        let g = generators::path(10).unwrap();
        let oracle = NqOracle::new(&g);
        // k = 1000 >> n^2: no radius satisfies the ball condition, so NQ = D.
        assert_eq!(oracle.nq(1_000_000), 9);
        assert_eq!(oracle.diameter(), 9);
    }

    #[test]
    fn nq_monotone_in_k() {
        let g = generators::grid(&[12, 12]).unwrap();
        let oracle = NqOracle::new(&g);
        let mut prev = 0;
        for k in [1u64, 4, 16, 64, 144, 400] {
            let nq = oracle.nq(k);
            assert!(nq >= prev, "NQ_k must be non-decreasing in k");
            prev = nq;
        }
    }

    #[test]
    fn nq_zero_k_is_one() {
        let g = generators::cycle(10).unwrap();
        let oracle = NqOracle::new(&g);
        assert_eq!(oracle.nq_of(0, 0), 1);
    }

    #[test]
    fn lemma_3_6_holds_on_families() {
        for g in [
            generators::path(100).unwrap(),
            generators::cycle(81).unwrap(),
            generators::grid(&[10, 10]).unwrap(),
            generators::tree_balanced(2, 6).unwrap(),
            generators::star(50).unwrap(),
        ] {
            let oracle = NqOracle::new(&g);
            for &k in &[1u64, 5, 25, 100, (g.n() as u64)] {
                let (lower, nq, upper) = lemma_3_6_bounds(&oracle, k);
                assert!((nq as f64) > lower, "lower bound violated: {lower} !< {nq}");
                assert!(
                    (nq as f64) <= upper + 1e-9,
                    "upper bound violated: {nq} !<= {upper}"
                );
            }
        }
    }

    #[test]
    fn lemma_3_7_growth_bound() {
        let g = generators::grid(&[15, 15]).unwrap();
        let oracle = NqOracle::new(&g);
        for &k in &[4u64, 16, 50] {
            for &alpha in &[2u64, 4, 9] {
                let lhs = oracle.nq(alpha * k);
                let rhs = 6.0 * (alpha as f64).sqrt() * oracle.nq(k) as f64;
                assert!(lhs as f64 <= rhs, "NQ_{{αk}}={lhs} > 6√α·NQ_k={rhs}");
            }
        }
    }

    #[test]
    fn witness_has_small_balls_below_nq() {
        let g = generators::caterpillar(40, 2).unwrap();
        let oracle = NqOracle::new(&g);
        let k = 64u64;
        let nq = oracle.nq(k);
        let w = oracle.witness(k);
        for r in 1..nq {
            let ball = oracle.ball_size(w, r) as u128;
            assert!(
                ball * (r as u128) < (k as u128),
                "Lemma 3.8 violated at r={r}"
            );
        }
    }

    #[test]
    fn distributed_computation_matches_oracle_and_charges_rounds() {
        let g = Arc::new(generators::grid(&[8, 8]).unwrap());
        let oracle = NqOracle::new(&g);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&g));
        let k = 32;
        let result = compute_nq(&mut net, &oracle, k);
        assert_eq!(result.nq, oracle.nq(k));
        assert!(result.rounds >= result.nq);
        // Õ(NQ_k): within a polylog factor of NQ_k.
        assert!(result.rounds <= result.nq * (net.polylog(1) + 1) + net.polylog(1));
    }
}
