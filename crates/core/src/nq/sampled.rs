//! Sampled `NQ_k` estimation for the scale tier.
//!
//! The exact [`NqOracle`](super::NqOracle) precomputes ball profiles for
//! *every* node up to the diameter — `Θ(n·D)` BFS work and, at `n = 10⁶`,
//! far past the sweep budget.  [`SampledNqOracle`] estimates `NQ_k(G) =
//! max_v NQ_k(v)` from a uniform node sample instead: each sampled node gets
//! an **exact, bounded** ball profile (its BFS stops at `t = NQ_{k_max}(v)`,
//! which Definition 3.1 makes a monotone stopping rule for every `k ≤
//! k_max`), so per-node values are exact and only the maximization is
//! sampled.
//!
//! The estimate is therefore a guaranteed *lower* bound on the population
//! maximum, with recorded quantile coverage: with sample size `s`, the
//! probability that the sample contains at least one node from the top `q`
//! fraction — i.e. that the estimate is at least the `(1−q)`-quantile of the
//! per-node `NQ_k` values — is `1 − (1−q)^s`, which [`NqEstimate`] reports as
//! its confidence.  Lower-bound witnesses built on this source are sound:
//! they are genuine witnesses of the sampled node, just possibly not the
//! global maximizer.

use hybrid_graph::{Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use super::NqSource;
use crate::prob::sample_distinct;

/// A sampled `NQ_k` estimate with its recorded sampling semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NqEstimate {
    /// Sample maximum of the exact per-node `NQ_k` values.
    pub estimate: u64,
    /// Number of sampled nodes.
    pub sample_size: usize,
    /// Top-quantile fraction `q` the confidence statement refers to.
    pub quantile: f64,
    /// `P[estimate ≥ (1−q)-quantile of NQ_k(v)] = 1 − (1−q)^s`.
    pub confidence: f64,
}

/// Bounded, exact ball profile of one sampled node.
#[derive(Debug, Clone)]
struct NodeProfile {
    node: NodeId,
    /// `balls[t-1] = |B_t(node)|` for `t = 1 ..= len`; the profile stops at
    /// the first `t` satisfying the Definition 3.1 condition for `k_max` (or
    /// at the eccentricity, whichever comes first).
    balls: Vec<usize>,
}

/// Sampled-source oracle for `NQ_k` over workloads `k ≤ k_max`.
#[derive(Debug, Clone)]
pub struct SampledNqOracle {
    n: usize,
    k_max: u64,
    quantile: f64,
    /// Sorted by node id (the sample is drawn sorted).
    profiles: Vec<NodeProfile>,
}

impl SampledNqOracle {
    /// Samples `sample_size` distinct nodes (seeded) and computes their exact
    /// bounded ball profiles in parallel.  `k_max` is clamped to `n` — the
    /// stopping rule `|B_t(v)|·t ≥ k` is then guaranteed to trigger no later
    /// than the node's eccentricity, so no profile needs the diameter.
    pub fn new(graph: &Graph, sample_size: usize, k_max: u64, quantile: f64, seed: u64) -> Self {
        let n = graph.n();
        let k_max = k_max.clamp(1, n as u64);
        assert!(
            (0.0..1.0).contains(&quantile) && quantile > 0.0,
            "quantile must be in (0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let nodes = sample_distinct(n, sample_size.clamp(1, n), &mut rng);
        let profiles: Vec<NodeProfile> = nodes
            .par_iter()
            .map_init(
                || (vec![false; n], Vec::new(), Vec::new(), Vec::new()),
                |(visited, touched, frontier, next), &v| {
                    let balls = bounded_profile(graph, v, k_max, visited, touched, frontier, next);
                    NodeProfile { node: v, balls }
                },
            )
            .with_min_len(1)
            .collect();
        SampledNqOracle {
            n,
            k_max,
            quantile,
            profiles,
        }
    }

    /// Largest workload this oracle was built for.
    pub fn k_max(&self) -> u64 {
        self.k_max
    }

    /// The sampled nodes, in ascending id order.
    pub fn sampled_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.profiles.iter().map(|p| p.node)
    }

    /// Bytes held by the stored ball profiles — the scale tier reports this
    /// as the witness-side memory footprint.
    pub fn memory_bytes(&self) -> u64 {
        self.profiles
            .iter()
            .map(|p| {
                (p.balls.len() * std::mem::size_of::<usize>() + std::mem::size_of::<NodeId>())
                    as u64
            })
            .sum()
    }

    /// Exact `NQ_k(v)` of a sampled node (Definition 3.1 over its profile).
    ///
    /// # Panics
    /// Panics if `v` was not sampled or `k > k_max`.
    pub fn nq_of(&self, v: NodeId, k: u64) -> u64 {
        let p = self.profile(v);
        Self::nq_from_profile(p, k.max(1), self.k_max)
    }

    fn nq_from_profile(p: &NodeProfile, k: u64, k_max: u64) -> u64 {
        assert!(
            k <= k_max,
            "workload {k} exceeds the profiled k_max {k_max}"
        );
        for (i, &ball) in p.balls.iter().enumerate() {
            let t = (i + 1) as u64;
            if ball as u128 * t as u128 >= k as u128 {
                return t;
            }
        }
        // Unreachable for k <= k_max by the stopping rule; the profile's last
        // entry is the safe answer if it ever trips.
        p.balls.len().max(1) as u64
    }

    /// The sampled estimate together with its recorded sampling semantics.
    pub fn nq_estimate(&self, k: u64) -> NqEstimate {
        let k = k.max(1);
        let estimate = self
            .profiles
            .iter()
            .map(|p| Self::nq_from_profile(p, k, self.k_max))
            .max()
            .unwrap_or(1);
        let s = self.profiles.len();
        NqEstimate {
            estimate,
            sample_size: s,
            quantile: self.quantile,
            confidence: 1.0 - (1.0 - self.quantile).powi(s as i32),
        }
    }

    fn profile(&self, v: NodeId) -> &NodeProfile {
        let i = self
            .profiles
            .binary_search_by_key(&v, |p| p.node)
            .unwrap_or_else(|_| panic!("node {v} is not in the sampled set"));
        &self.profiles[i]
    }
}

impl NqSource for SampledNqOracle {
    fn n(&self) -> usize {
        self.n
    }

    fn nq(&self, k: u64) -> u64 {
        self.nq_estimate(k).estimate
    }

    fn witness(&self, k: u64) -> NodeId {
        let k = k.max(1);
        self.profiles
            .iter()
            .max_by_key(|p| Self::nq_from_profile(p, k, self.k_max))
            .map(|p| p.node)
            .unwrap_or(0)
    }

    fn ball_size(&self, v: NodeId, t: u64) -> usize {
        let p = self.profile(v);
        if t == 0 {
            return 1;
        }
        let i = ((t as usize).min(p.balls.len())).saturating_sub(1);
        p.balls.get(i).copied().unwrap_or(1)
    }
}

/// Exact bounded ball profile: BFS from `v`, recording `|B_t(v)|` per depth,
/// stopping at the first `t` with `|B_t(v)|·t ≥ k_max` (or when the frontier
/// empties).  Buffers are reused across sources; only touched entries reset.
fn bounded_profile(
    graph: &Graph,
    v: NodeId,
    k_max: u64,
    visited: &mut [bool],
    touched: &mut Vec<NodeId>,
    frontier: &mut Vec<NodeId>,
    next: &mut Vec<NodeId>,
) -> Vec<usize> {
    frontier.clear();
    next.clear();
    visited[v as usize] = true;
    touched.push(v);
    frontier.push(v);
    let mut ball = 1usize;
    let mut balls = Vec::new();
    let mut t = 0u64;
    loop {
        t += 1;
        next.clear();
        for &u in frontier.iter() {
            for a in graph.arcs(u) {
                if !visited[a.to as usize] {
                    visited[a.to as usize] = true;
                    touched.push(a.to);
                    next.push(a.to);
                }
            }
        }
        ball += next.len();
        balls.push(ball);
        std::mem::swap(frontier, next);
        if ball as u128 * t as u128 >= k_max as u128 || frontier.is_empty() {
            break;
        }
    }
    for &u in touched.iter() {
        visited[u as usize] = false;
    }
    touched.clear();
    balls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nq::NqOracle;
    use hybrid_graph::generators;

    #[test]
    fn sampled_per_node_values_are_exact() {
        for g in [
            generators::path(300).unwrap(),
            generators::grid(&[17, 17]).unwrap(),
            generators::tree_with_n(2, 250).unwrap(),
        ] {
            let exact = NqOracle::new(&g);
            let k_max = g.n() as u64;
            let sampled = SampledNqOracle::new(&g, 24, k_max, 0.02, 7);
            for v in sampled.sampled_nodes().collect::<Vec<_>>() {
                for k in [1u64, 16, (g.n() / 2) as u64, g.n() as u64] {
                    assert_eq!(sampled.nq_of(v, k), exact.nq_of(v, k), "node {v}, k={k}");
                }
            }
        }
    }

    #[test]
    fn estimate_is_a_lower_bound_and_exact_at_full_sampling() {
        let g = generators::path(200).unwrap();
        let exact = NqOracle::new(&g);
        let k = 200u64;
        let sampled = SampledNqOracle::new(&g, 16, k, 0.02, 3);
        let est = sampled.nq_estimate(k);
        assert!(est.estimate <= exact.nq(k));
        assert_eq!(est.sample_size, 16);
        assert!((0.0..1.0).contains(&est.confidence) && est.confidence > 0.2);
        // Sampling every node recovers the exact maximum.
        let full = SampledNqOracle::new(&g, 200, k, 0.02, 3);
        assert_eq!(full.nq_estimate(k).estimate, exact.nq(k));
        assert_eq!(NqSource::nq(&full, k), exact.nq(k));
    }

    #[test]
    fn witness_ball_sizes_match_the_exact_oracle() {
        let g = generators::grid(&[20, 20]).unwrap();
        let exact = NqOracle::new(&g);
        let k = 400u64;
        let sampled = SampledNqOracle::new(&g, 32, k, 0.02, 11);
        let w = NqSource::witness(&sampled, k);
        let nq = NqSource::nq(&sampled, k);
        // Every radius a lower-bound construction can ask about (h < nq) is
        // inside the stored profile and matches the exact ball.
        for t in 1..nq {
            assert_eq!(
                NqSource::ball_size(&sampled, w, t),
                exact.ball_size(w, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let g = generators::grid(&[15, 15]).unwrap();
        let a = SampledNqOracle::new(&g, 12, 225, 0.02, 9);
        let b = SampledNqOracle::new(&g, 12, 225, 0.02, 9);
        assert_eq!(
            a.sampled_nodes().collect::<Vec<_>>(),
            b.sampled_nodes().collect::<Vec<_>>()
        );
        assert_eq!(a.nq_estimate(100), b.nq_estimate(100));
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "not in the sampled set")]
    fn unsampled_node_queries_panic() {
        let g = generators::path(100).unwrap();
        let sampled = SampledNqOracle::new(&g, 4, 100, 0.02, 1);
        let missing = (0..100u32)
            .find(|v| !sampled.sampled_nodes().any(|s| s == *v))
            .unwrap();
        sampled.nq_of(missing, 10);
    }
}
