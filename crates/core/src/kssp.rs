//! Existentially optimal `k`-source shortest paths (Theorem 14, Section 9):
//! scheduling `k` instances of the Theorem 13 SSSP algorithm on a skeleton
//! graph with the help of `[KS20]`-style helper sets (Lemma 9.3), matching the
//! `Ω̃(√(k/γ))` lower bound for every `k`.
//!
//! Three regimes, as in Theorem 14:
//!
//! * `k ≤ γ` arbitrary sources — enough global capacity to run all SSSP
//!   instances in parallel: `Õ(1/ε²)` rounds, stretch `1+ε`;
//! * random sources (sampled with probability `k/n`) — the sources can be
//!   made part of the skeleton, giving stretch `1+ε` in `Õ(√k/ε²)` rounds;
//! * `k` arbitrary sources — each source tags its closest skeleton node as a
//!   *proxy source*; composing through the proxy costs a factor 3:
//!   stretch `3(1+ε)` in `Õ(√(k/γ)/ε²)` rounds.
//!
//! The comparison row for Figure 1 (`Õ(n^{1/3} + √k)` of `[CHLP21a]`) is
//! provided by [`baseline_chlp21_rounds`].

use rand::Rng;
use rayon::prelude::*;

use hybrid_graph::dijkstra::{hop_limited_distances_with, DijkstraWorkspace, HopLimitedWorkspace};
use hybrid_graph::{NodeId, Weight, INFINITY};
use hybrid_sim::HybridNetwork;

use crate::helpers::ks20_helper_sets;
use crate::minplus::{self, Assignment, Coeff};
use crate::skeleton::{build_skeleton, SkeletonGraph};
use crate::sssp::{quantize_distance, sssp_round_cost};

/// Which of the Theorem 14 regimes an instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsspVariant {
    /// Sources sampled with probability `k/n` — stretch `1+ε`.
    RandomSources,
    /// Arbitrary sources — stretch `3(1+ε)` via proxy sources.
    ArbitrarySources,
}

/// Output of a k-SSP computation.
#[derive(Debug, Clone)]
pub struct KsspOutput {
    /// The source nodes, in the order of the rows of [`KsspOutput::dist`].
    pub sources: Vec<NodeId>,
    /// `dist[i][v]` is the distance label from `sources[i]` to node `v`.
    pub dist: Vec<Vec<Weight>>,
    /// Guaranteed stretch of the labels.
    pub stretch: f64,
    /// Accuracy parameter ε.
    pub epsilon: f64,
    /// Total rounds consumed.
    pub rounds: u64,
    /// The number of skeleton nodes used (0 when the `k ≤ γ` fast path ran).
    pub skeleton_size: usize,
}

impl KsspOutput {
    /// Verifies every label against exact distances (one exact single-source
    /// run per source, parallel with per-worker workspaces).
    pub fn verify_stretch(&self, graph: &hybrid_graph::Graph) -> Result<(), String> {
        let rows: Vec<Result<(), String>> = (0..self.sources.len())
            .into_par_iter()
            .map_init(DijkstraWorkspace::new, |ws, i| {
                let s = self.sources[i];
                ws.run(graph, s);
                let exact = ws.dist();
                for (v, (&e, &a)) in exact.iter().zip(&self.dist[i]).enumerate() {
                    if e == INFINITY || a == INFINITY {
                        if e != a {
                            return Err(format!("reachability mismatch source {s} node {v}"));
                        }
                        continue;
                    }
                    if a < e {
                        return Err(format!("source {s} node {v}: {a} underestimates {e}"));
                    }
                    if (a as f64) > self.stretch * (e as f64) + 1e-9 {
                        return Err(format!(
                            "source {s} node {v}: {a} exceeds stretch {} of {e}",
                            self.stretch
                        ));
                    }
                }
                Ok(())
            })
            .with_min_len(1)
            .collect();
        rows.into_iter().collect()
    }
}

/// Theorem 14 — `k`-SSP with accuracy `epsilon`.
///
/// Dispatches on the regime: the `k ≤ γ` fast path, the random-sources
/// skeleton path (stretch `1+ε`) or the arbitrary-sources proxy path
/// (stretch `3(1+ε)`).
pub fn kssp(
    net: &mut HybridNetwork,
    sources: &[NodeId],
    epsilon: f64,
    variant: KsspVariant,
    rng: &mut impl Rng,
) -> KsspOutput {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let graph = net.graph_arc();
    let k = sources.len();
    let gamma = net.params().global_capacity_msgs.max(1);
    let before = net.rounds();

    if k == 0 {
        return KsspOutput {
            sources: Vec::new(),
            dist: Vec::new(),
            stretch: 1.0 + epsilon,
            epsilon,
            rounds: 0,
            skeleton_size: 0,
        };
    }

    // Fast path (Theorem 14, third bullet): k ≤ γ arbitrary sources — run all
    // SSSP instances in parallel; each consumes Õ(1) global capacity.
    if k <= gamma {
        let t = sssp_round_cost(net, epsilon);
        net.charge_rounds("kssp/parallel-sssp (k <= gamma)", t);
        let dist = sources
            .par_iter()
            .map_init(DijkstraWorkspace::new, |ws, &s| {
                ws.run(&graph, s);
                ws.dist()
                    .iter()
                    .map(|&d| quantize_distance(d, epsilon))
                    .collect()
            })
            .with_min_len(1)
            .collect();
        return KsspOutput {
            sources: sources.to_vec(),
            dist,
            stretch: 1.0 + epsilon,
            epsilon,
            rounds: net.rounds() - before,
            skeleton_size: 0,
        };
    }

    // Skeleton with sampling probability sqrt(gamma / k).
    let x = ((k as f64) / (gamma as f64)).sqrt().max(1.0);
    let forced: Vec<NodeId> = match variant {
        KsspVariant::RandomSources => sources.to_vec(),
        KsspVariant::ArbitrarySources => Vec::new(),
    };
    let skeleton = build_skeleton(net, x, &forced, rng);

    // Helper sets for the skeleton nodes (Lemma 9.2) and the Lemma 9.3
    // scheduling cost: each helper simulates at most ⌈k/|H_u|⌉ SSSP instances;
    // one simulated round costs Õ(√(k/γ)) local (helper-to-helper transit)
    // plus ⌈load/γ⌉ global rounds.
    let helper_sets = ks20_helper_sets(net, &graph, &skeleton.nodes, x.ceil() as u64);
    let min_helpers = helper_sets.min_size().max(1);
    let load_per_helper = k.div_ceil(min_helpers) as u64;
    let t_sssp = sssp_round_cost(net, epsilon);
    let per_simulated_round = skeleton.h + load_per_helper.div_ceil(gamma as u64);
    net.charge_rounds(
        "kssp/schedule-sssp-on-skeleton (Lemma 9.3)",
        t_sssp.saturating_mul(per_simulated_round.max(1)),
    );

    // Data level: distances on the skeleton from each source's skeleton node,
    // quantized by (1+eps); then composition back to all of G.
    let dist = compute_labels(&graph, &skeleton, sources, epsilon, variant);

    // Post-processing: every node learns its h-hop neighbourhood to compose
    // labels (Lemma 9.4 / Theorem 14 proof), plus the broadcast of the
    // source-to-proxy distances (an instance of k-dissemination, charged at
    // its Õ(√(k/γ)) bound).
    net.charge_local("kssp/post-process-h-hop", skeleton.h);
    if matches!(variant, KsspVariant::ArbitrarySources) {
        net.charge_rounds(
            "kssp/broadcast-proxy-distances",
            ((k as f64 / gamma as f64).sqrt().ceil() as u64).max(1) * net.log_n(),
        );
    }

    let stretch = match variant {
        KsspVariant::RandomSources => 1.0 + epsilon,
        KsspVariant::ArbitrarySources => 3.0 * (1.0 + epsilon),
    };
    KsspOutput {
        sources: sources.to_vec(),
        dist,
        stretch,
        epsilon,
        rounds: net.rounds() - before,
        skeleton_size: skeleton.len(),
    }
}

/// Computes the distance labels of Lemma 9.4 / Theorem 14:
///
/// ```text
/// label[i][v] = min( d^h(sᵢ, v),
///                    offsetᵢ ⊕ min_j ( q(d_S(aᵢ, j)) ⊕ d^h(j, v) ) )
/// ```
///
/// where `aᵢ` is source `i`'s (proxy) anchor on the skeleton, `d_S` the
/// skeleton-graph distance, `q` the `(1+ε)` quantization, and the `d^h` rows
/// are the skeleton's stored `h`-hop sweeps ([`SkeletonGraph::rows`], paid
/// once at construction).  The composition runs on the shared blocked
/// `(min, +)` kernel ([`crate::minplus`]), with two exact fast paths:
///
/// * **Converged sweeps skip the metric closure** (Lemma 6.3): when every
///   skeleton sweep reached its Bellman–Ford fixpoint, the rows already hold
///   exact distances and the skeleton-SSSP step degenerates to reading them
///   back (the triangle inequality makes the direct edge optimal), so no
///   Dijkstra runs at all.
/// * **An exact initial row dominates the composition**: every composed
///   candidate is a sum of distance overestimates along a path through the
///   anchor, hence `≥ d(sᵢ, v)`.  A source whose own sweep converged keeps
///   its row verbatim and skips the kernel.  Both fast paths produce
///   bit-identical labels to the full composition.
fn compute_labels(
    graph: &hybrid_graph::Graph,
    skeleton: &SkeletonGraph,
    sources: &[NodeId],
    epsilon: f64,
    variant: KsspVariant,
) -> Vec<Vec<Weight>> {
    let h = skeleton.h as usize;
    let srows = &skeleton.rows;

    // Direct h-hop sweeps for the sources that are not skeleton nodes (a
    // skeleton source's sweep is already a stored row).  Parallel fan-out
    // with per-worker relaxation buffers; each sweep reports convergence.
    let direct: Vec<Option<(Vec<Weight>, bool)>> = sources
        .par_iter()
        .map_init(HopLimitedWorkspace::new, |ws, &s| {
            if skeleton.contains(s) {
                None
            } else {
                let mut row = Vec::new();
                let converged = hop_limited_distances_with(ws, graph, s, h, &mut row);
                Some((row, converged))
            }
        })
        .with_min_len(1)
        .collect();

    // Initial row per source: its own h-hop knowledge, and whether that row
    // is exact (the dominance fast path above).
    let init: Vec<&[Weight]> = (0..sources.len())
        .map(|i| match &direct[i] {
            Some((row, _)) => row.as_slice(),
            None => srows.row(skeleton.index_of[sources[i] as usize]),
        })
        .collect();
    let exact_init: Vec<bool> = (0..sources.len())
        .map(|i| match &direct[i] {
            Some((_, converged)) => *converged,
            None => skeleton.converged,
        })
        .collect();

    // For each source that still needs the composition: its skeleton node
    // (itself, or the proxy minimizing d^h(s, ·) over the skeleton).  Sources
    // on the exact-init fast path skip the O(|S|) proxy column gather — their
    // anchor would be discarded anyway.
    let source_anchor: Vec<Option<(usize, Weight)>> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if exact_init[i] {
                None
            } else if skeleton.contains(s) {
                Some((skeleton.index_of[s as usize], 0))
            } else {
                let mut best = (0usize, INFINITY);
                for j in 0..srows.len() {
                    let d = srows.row(j)[s as usize];
                    if d < best.1 {
                        best = (j, d);
                    }
                }
                Some(best)
            }
        })
        .collect();

    // Skeleton SSSP (Theorem 13 instances scheduled by Lemma 9.3), quantized
    // by the allowed error — one coefficient row per distinct anchor of the
    // non-shortcut sources.  With converged sweeps this is a read-back of the
    // stored rows; otherwise a dense Dijkstra over the skeleton metric
    // (identical distances to a run on the explicit skeleton graph, without
    // materializing its Θ(|S|²) edges).
    let mut anchors: Vec<usize> = source_anchor.iter().flatten().map(|&(a, _)| a).collect();
    anchors.sort_unstable();
    anchors.dedup();
    let coeffs: Vec<Coeff> = anchors
        .par_iter()
        .map(|&a| {
            let row: Vec<Weight> = if skeleton.converged {
                let exact = srows.row(a);
                skeleton
                    .nodes
                    .iter()
                    .map(|&u| quantize_distance(exact[u as usize], epsilon))
                    .collect()
            } else {
                skeleton
                    .sssp(a)
                    .into_iter()
                    .map(|d| quantize_distance(d, epsilon))
                    .collect()
            };
            Coeff::Dense(row)
        })
        .with_min_len(1)
        .collect();
    let group_of = |anchor: usize| anchors.binary_search(&anchor).expect("anchor registered");

    let assign: Vec<Assignment> = source_anchor
        .iter()
        .map(|entry| {
            let (anchor, anchor_offset) = (*entry)?;
            let offset = match variant {
                KsspVariant::ArbitrarySources => anchor_offset,
                KsspVariant::RandomSources => 0,
            };
            Some((group_of(anchor), offset))
        })
        .collect();
    minplus::compose(srows, &coeffs, &assign, &init)
}

/// The round bound of the prior state of the art for `k`-SSP
/// (`[CHLP21a]` / `[KS20]`): `Õ(n^{1/3} + √k)`, the gray reference curve of
/// Figure 1.  A single `log n` factor stands in for the `Õ(·)`.
pub fn baseline_chlp21_rounds(n: usize, k: usize) -> u64 {
    let n_f = n.max(2) as f64;
    let log_n = hybrid_sim::ModelParams::log_n(n) as f64;
    (((n_f.powf(1.0 / 3.0) + (k.max(1) as f64).sqrt()) * log_n).ceil() as u64).max(1)
}

/// The existential lower bound `Ω̃(√(k/γ))` for `k`-SSP (`[KS20]`, `[Sch23]`),
/// evaluated with constant 1 (the shaded region of Figure 1).
pub fn kssp_lower_bound_rounds(k: usize, gamma: usize) -> u64 {
    (((k.max(1) as f64) / (gamma.max(1) as f64)).sqrt().floor() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::{sample_distinct, sample_with_probability};
    use hybrid_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn fast_path_small_k_has_unit_stretch_bound() {
        let g = Arc::new(generators::grid(&[9, 9]).unwrap());
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let gamma = net.params().global_capacity_msgs;
        let sources = sample_distinct(g.n(), gamma.min(4), &mut rng);
        let out = kssp(
            &mut net,
            &sources,
            0.5,
            KsspVariant::ArbitrarySources,
            &mut rng,
        );
        assert_eq!(out.skeleton_size, 0);
        assert_eq!(out.stretch, 1.5);
        out.verify_stretch(&g).unwrap();
    }

    #[test]
    fn random_sources_skeleton_path_respects_stretch() {
        let g = Arc::new(generators::grid(&[12, 12]).unwrap());
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sources = {
            let mut s = sample_with_probability(g.n(), 0.2, &mut rng);
            if s.len() <= net.params().global_capacity_msgs {
                s = sample_distinct(g.n(), net.params().global_capacity_msgs + 5, &mut rng);
            }
            s
        };
        let out = kssp(
            &mut net,
            &sources,
            0.25,
            KsspVariant::RandomSources,
            &mut rng,
        );
        assert!(out.skeleton_size > 0);
        assert!((out.stretch - 1.25).abs() < 1e-9);
        out.verify_stretch(&g).unwrap();
    }

    #[test]
    fn arbitrary_sources_proxy_path_respects_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g0 = generators::weighted_grid(&[10, 10], 8, &mut rng).unwrap();
        let g = Arc::new(g0);
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        // Adversarially concentrated sources in one corner.
        let sources: Vec<NodeId> = (0..25).collect();
        let out = kssp(
            &mut net,
            &sources,
            0.5,
            KsspVariant::ArbitrarySources,
            &mut rng,
        );
        assert!(out.skeleton_size > 0);
        out.verify_stretch(&g).unwrap();
    }

    #[test]
    fn empty_sources_is_noop() {
        let g = Arc::new(generators::cycle(12).unwrap());
        let mut net = HybridNetwork::hybrid(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out = kssp(&mut net, &[], 0.5, KsspVariant::RandomSources, &mut rng);
        assert!(out.dist.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn rounds_scale_like_sqrt_k_over_gamma() {
        let g = Arc::new(generators::grid(&[16, 16]).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let small_k = sample_distinct(g.n(), 32, &mut rng);
        let large_k = sample_distinct(g.n(), 200, &mut rng);

        let mut net_small = HybridNetwork::hybrid(Arc::clone(&g));
        let out_small = kssp(
            &mut net_small,
            &small_k,
            1.0,
            KsspVariant::RandomSources,
            &mut rng,
        );
        let mut net_large = HybridNetwork::hybrid(Arc::clone(&g));
        let out_large = kssp(
            &mut net_large,
            &large_k,
            1.0,
            KsspVariant::RandomSources,
            &mut rng,
        );

        // √(200/γ) vs √(32/γ): a factor ≈ 2.5; allow generous slack but the
        // growth must be far below linear in k (factor 6.25).
        assert!(out_large.rounds > out_small.rounds / 2);
        assert!(
            out_large.rounds < out_small.rounds * 5,
            "rounds grew too fast: {} -> {}",
            out_small.rounds,
            out_large.rounds
        );
    }

    #[test]
    fn baseline_and_lower_bound_shapes() {
        // Baseline Õ(n^{1/3} + √k) dominated by n^{1/3} for small k and by √k
        // for large k; crossover near k = n^{2/3}.
        let n = 4096;
        assert!(baseline_chlp21_rounds(n, 1) >= 16);
        assert!(baseline_chlp21_rounds(n, n) > baseline_chlp21_rounds(n, 1));
        assert!(kssp_lower_bound_rounds(100, 10) == 3);
        assert!(kssp_lower_bound_rounds(1, 10) == 1);
    }
}
