//! The phase engine: a [`HybridNetwork`] wraps the local communication graph
//! and the model parameters, and charges algorithm phases to a [`CostMeter`].
//!
//! Algorithms in `hybrid-core` are written against this type.  A *local phase*
//! of radius `t` is charged `t` rounds (local bandwidth is unlimited, so after
//! `t` rounds a node knows exactly its `t`-ball — the data-level computation
//! is performed by the algorithm itself using the graph oracles).  A *global
//! phase* hands the full multiset of `O(log n)`-bit point-to-point messages to
//! the [`GlobalScheduler`], which plays them out round by round under the
//! per-node capacity `γ`.

use std::sync::Arc;

use hybrid_graph::Graph;

use crate::config::EngineConfig;
use crate::cost::CostMeter;
use crate::faults::FaultPlan;
use crate::params::ModelParams;
use crate::scheduler::{DeliveryReport, GlobalMessage, GlobalScheduler};

/// A simulated HYBRID network: graph + model parameters + cost meter.
///
/// The network owns a [`GlobalScheduler`] workspace, so repeated
/// [`HybridNetwork::deliver_global`] phases reuse one set of scheduling
/// buffers instead of allocating per batch.
///
/// An optional [`FaultPlan`] (installed through
/// [`EngineConfig::with_fault_plan`] and [`HybridNetwork::with_config`])
/// routes every global phase through the adversarial
/// [`GlobalScheduler::deliver_with_faults`] path, using the meter's running
/// round total as the fate coordinate so repeated phases draw fresh faults.
#[derive(Debug, Clone)]
pub struct HybridNetwork {
    graph: Arc<Graph>,
    params: ModelParams,
    meter: CostMeter,
    scheduler: GlobalScheduler,
    faults: Option<FaultPlan>,
}

impl HybridNetwork {
    /// Creates a network with explicit parameters.
    ///
    /// # Panics
    /// Panics if `params.n` does not match the number of nodes of `graph`.
    pub fn new(graph: Arc<Graph>, params: ModelParams) -> Self {
        assert_eq!(
            params.n,
            graph.n(),
            "model parameters are for {} nodes but the graph has {}",
            params.n,
            graph.n()
        );
        HybridNetwork {
            graph,
            params,
            meter: CostMeter::new(),
            scheduler: GlobalScheduler::new(),
            faults: None,
        }
    }

    /// Creates a network from a unified [`EngineConfig`]: model parameters
    /// and fault plan are taken from the config (the phase engine has no
    /// round cap or trace recorder — those knobs drive the message-passing
    /// engine and the networked runtime).
    ///
    /// # Panics
    /// Panics if `config.params().n` does not match the graph's node count.
    pub fn with_config(graph: Arc<Graph>, config: &EngineConfig) -> Self {
        let mut net = Self::new(graph, *config.params());
        net.faults = config.fault_plan().cloned();
        net
    }

    /// Installs a fault plan: every subsequent global phase plays against the
    /// adversary.  Passing a failure-free plan is equivalent to `None`.
    ///
    /// # Panics
    /// Panics if the plan was built for a different node count.
    #[deprecated(note = "pass the plan through `EngineConfig::with_fault_plan` and \
                         `HybridNetwork::with_config` instead")]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(
            plan.n(),
            self.params.n,
            "fault plan is for {} nodes but the network has {}",
            plan.n(),
            self.params.n
        );
        self.faults = if plan.is_failure_free() {
            None
        } else {
            Some(plan)
        };
    }

    /// Whether an active (non-failure-free) fault plan is installed.  Callers
    /// use this to assert zero drops on failure-free runs only.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// Standard `HYBRID` network over `graph`.
    pub fn hybrid(graph: Arc<Graph>) -> Self {
        let params = ModelParams::hybrid(graph.n());
        Self::new(graph, params)
    }

    /// `Hybrid0` network over `graph`.
    pub fn hybrid0(graph: Arc<Graph>) -> Self {
        let params = ModelParams::hybrid0(graph.n());
        Self::new(graph, params)
    }

    /// The underlying local communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the graph.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// `⌈log₂ n⌉` — the paper's `O(log n)` unit.
    pub fn log_n(&self) -> u64 {
        ModelParams::log_n(self.params.n) as u64
    }

    /// `⌈log₂ n⌉^power`, at least 1 — used to charge `Õ(1)` primitives with an
    /// explicit polylogarithmic round count.
    pub fn polylog(&self, power: u32) -> u64 {
        self.log_n().saturating_pow(power).max(1)
    }

    /// Total rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.meter.rounds()
    }

    /// Read access to the cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Consumes the network and returns the final meter.
    pub fn into_meter(self) -> CostMeter {
        self.meter
    }

    /// Charges a local phase of the given hop radius.
    ///
    /// # Panics
    /// Panics if the model has no local communication.
    pub fn charge_local(&mut self, label: impl Into<String>, radius_rounds: u64) {
        assert!(
            self.params.has_local(),
            "model has no local communication but a local phase was charged"
        );
        // Message volume estimate: every edge may carry a message in every
        // round of a flooding phase.
        let messages = radius_rounds.saturating_mul(self.graph.m() as u64);
        self.meter.record_local(label, radius_rounds, messages);
    }

    /// Charges a local phase with an explicit message count.
    pub fn charge_local_with_messages(
        &mut self,
        label: impl Into<String>,
        radius_rounds: u64,
        messages: u64,
    ) {
        assert!(self.params.has_local(), "model has no local communication");
        self.meter.record_local(label, radius_rounds, messages);
    }

    /// Delivers a batch of global messages through the capacity-constrained
    /// global network and charges the rounds the schedule took.  The
    /// network's scheduler workspace is reused across batches, so a
    /// steady-state phase allocates nothing here.
    pub fn deliver_global(
        &mut self,
        label: impl Into<String>,
        messages: &[GlobalMessage],
    ) -> DeliveryReport {
        let report = match &self.faults {
            Some(plan) => {
                // The meter's running total anchors this phase's fate
                // coordinates, so each phase faces fresh adversary decisions.
                let round_base = self.meter.rounds();
                self.scheduler
                    .deliver_with_faults(&self.params, messages, plan, round_base)
            }
            None => self.scheduler.deliver_with(&self.params, messages),
        };
        self.meter.record_global_faulty(
            label,
            report.rounds,
            report.messages,
            report.dropped,
            report.duplicated,
            report.delayed,
        );
        report
    }

    /// Charges a fixed number of rounds for a simulated oracle / framework
    /// whose internal communication is not scheduled explicitly (documented
    /// substitutions, see DESIGN.md).
    pub fn charge_rounds(&mut self, label: impl Into<String>, rounds: u64) {
        self.meter.record_charged(label, rounds);
    }

    /// Absorbs the cost of a sub-computation that produced its own meter.
    pub fn absorb(&mut self, sub: CostMeter) {
        self.meter.absorb(sub);
    }

    /// Absorbs the message cost of sub-computations that ran in parallel,
    /// charging only `rounds_charged` rounds (the slowest of them).
    pub fn absorb_parallel(&mut self, sub: CostMeter, rounds_charged: u64) {
        self.meter.absorb_parallel(sub, rounds_charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;

    fn net(n: usize) -> HybridNetwork {
        HybridNetwork::hybrid(Arc::new(generators::cycle(n).unwrap()))
    }

    #[test]
    fn constructors_and_accessors() {
        let g = Arc::new(generators::path(100).unwrap());
        let net = HybridNetwork::hybrid(Arc::clone(&g));
        assert_eq!(net.graph().n(), 100);
        assert_eq!(net.log_n(), 7);
        assert_eq!(net.polylog(2), 49);
        assert!(net.params().ids_globally_known());
        let net0 = HybridNetwork::hybrid0(g);
        assert!(!net0.params().ids_globally_known());
    }

    #[test]
    #[should_panic(expected = "model parameters are for")]
    fn mismatched_params_panic() {
        let g = Arc::new(generators::path(10).unwrap());
        HybridNetwork::new(g, ModelParams::hybrid(11));
    }

    #[test]
    fn local_phase_charges_radius() {
        let mut net = net(50);
        net.charge_local("learn-ball", 7);
        assert_eq!(net.rounds(), 7);
        assert_eq!(net.meter().local_messages(), 7 * 50);
    }

    #[test]
    fn global_phase_charges_schedule() {
        let mut net = net(64);
        let gamma = net.params().global_capacity_msgs as u64;
        // Node 0 sends 4*gamma messages to distinct targets: 4 rounds.
        let msgs: Vec<_> = (1..=4 * gamma as u32)
            .map(|t| GlobalMessage::new(0, t))
            .collect();
        let report = net.deliver_global("pump", &msgs);
        assert_eq!(report.rounds, 4);
        assert_eq!(net.rounds(), 4);
        assert_eq!(net.meter().global_messages(), 4 * gamma);
    }

    #[test]
    fn charged_and_absorbed_phases() {
        let mut net = net(16);
        net.charge_rounds("oracle", 9);
        let mut sub = CostMeter::new();
        sub.record_global("sub", 3, 12);
        net.absorb(sub.clone());
        net.absorb_parallel(sub, 3);
        assert_eq!(net.rounds(), 15);
        assert_eq!(net.meter().global_messages(), 24);
    }

    #[test]
    fn fault_plan_routes_global_phases_through_the_adversary() {
        use crate::faults::{FaultPlan, FaultSpec};
        let msgs: Vec<_> = (1..32u32).map(|s| GlobalMessage::new(s, 0)).collect();
        let graph = Arc::new(generators::cycle(64).unwrap());
        let params = ModelParams::hybrid(64);

        let mut clean = net(64);
        let clean_report = clean.deliver_global("pump", &msgs);
        assert!(!clean.has_faults());
        assert_eq!(clean_report.dropped, 0);
        assert_eq!(clean.meter().dropped(), 0);

        let config = EngineConfig::new(params).with_fault_plan(FaultPlan::new(
            FaultSpec::drop_only(0.5),
            77,
            64,
        ));
        let mut faulty = HybridNetwork::with_config(Arc::clone(&graph), &config);
        assert!(faulty.has_faults());
        let report = faulty.deliver_global("pump", &msgs);
        assert_eq!(report.messages, msgs.len() as u64);
        assert!(report.dropped > 0);
        assert!(report.rounds >= clean_report.rounds);
        // The per-phase fault accounting lands in the meter (satellite: the
        // CostMeter exposes dropped/duplicated/delayed).
        assert_eq!(faulty.meter().dropped(), report.dropped);
        assert_eq!(faulty.meter().trace()[0].dropped, report.dropped);

        // A failure-free plan normalizes away at config build time.
        let noop_config =
            EngineConfig::new(params).with_fault_plan(FaultPlan::new(FaultSpec::none(), 77, 64));
        let noop = HybridNetwork::with_config(graph, &noop_config);
        assert!(!noop.has_faults());
    }

    /// The deprecated setter keeps working (and panicking) until removal.
    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "fault plan is for")]
    fn deprecated_set_fault_plan_still_validates() {
        use crate::faults::{FaultPlan, FaultSpec};
        let mut n = net(16);
        n.set_fault_plan(FaultPlan::new(FaultSpec::drop_only(0.1), 0, 8));
    }

    #[test]
    #[should_panic(expected = "no local communication")]
    fn local_phase_on_ncc_panics() {
        let g = Arc::new(generators::cycle(8).unwrap());
        let mut net = HybridNetwork::new(g, ModelParams::ncc(8));
        net.charge_local("flood", 1);
    }
}
