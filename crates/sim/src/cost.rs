//! Round and message accounting shared by both simulation styles.

use serde::{Deserialize, Serialize};

/// Which communication mode a phase used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Local communication along graph edges (unlimited bandwidth).
    Local,
    /// Global (NCC-style) communication under per-node capacity.
    Global,
    /// Purely local computation / bookkeeping charged a fixed number of rounds
    /// (e.g. simulating an oracle whose round cost is known).
    Charged,
}

/// One entry of the execution trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Human-readable label (e.g. `"clustering/ruling-set"`).
    pub label: String,
    /// Communication mode.
    pub kind: PhaseKind,
    /// Rounds consumed by the phase.
    pub rounds: u64,
    /// Messages sent during the phase (`O(log n)`-bit units for global
    /// phases; edge-message count for local phases).
    pub messages: u64,
}

/// Accumulates the cost of an algorithm execution: total rounds, message
/// counters and a per-phase trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostMeter {
    rounds: u64,
    local_messages: u64,
    global_messages: u64,
    trace: Vec<PhaseRecord>,
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total local messages (edge-messages) sent.
    pub fn local_messages(&self) -> u64 {
        self.local_messages
    }

    /// Total global messages (`O(log n)`-bit units) sent.
    pub fn global_messages(&self) -> u64 {
        self.global_messages
    }

    /// The per-phase trace.
    pub fn trace(&self) -> &[PhaseRecord] {
        &self.trace
    }

    /// Records a local phase of `rounds` rounds and `messages` edge-messages.
    pub fn record_local(&mut self, label: impl Into<String>, rounds: u64, messages: u64) {
        self.rounds += rounds;
        self.local_messages += messages;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Local,
            rounds,
            messages,
        });
    }

    /// Records a global phase of `rounds` rounds and `messages` global messages.
    pub fn record_global(&mut self, label: impl Into<String>, rounds: u64, messages: u64) {
        self.rounds += rounds;
        self.global_messages += messages;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Global,
            rounds,
            messages,
        });
    }

    /// Records a charged phase (a simulated oracle / framework with a known
    /// round cost but no explicitly scheduled messages).
    pub fn record_charged(&mut self, label: impl Into<String>, rounds: u64) {
        self.rounds += rounds;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Charged,
            rounds,
            messages: 0,
        });
    }

    /// Merges another meter into this one (concatenating traces), e.g. when an
    /// algorithm invokes a sub-algorithm that produced its own meter.
    pub fn absorb(&mut self, other: CostMeter) {
        self.rounds += other.rounds;
        self.local_messages += other.local_messages;
        self.global_messages += other.global_messages;
        self.trace.extend(other.trace);
    }

    /// Merges another meter but counts its rounds only up to `cap` — used when
    /// sub-algorithms run *in parallel* and the caller charges the maximum.
    pub fn absorb_parallel(&mut self, other: CostMeter, rounds_charged: u64) {
        self.rounds += rounds_charged;
        self.local_messages += other.local_messages;
        self.global_messages += other.global_messages;
        self.trace.push(PhaseRecord {
            label: format!("parallel-group({} phases)", other.trace.len()),
            kind: PhaseKind::Charged,
            rounds: rounds_charged,
            messages: 0,
        });
    }

    /// Sum of rounds of all phases whose label contains `needle` — handy in
    /// tests to assert which stage dominates.
    pub fn rounds_for(&self, needle: &str) -> u64 {
        self.trace
            .iter()
            .filter(|p| p.label.contains(needle))
            .map(|p| p.rounds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut m = CostMeter::new();
        m.record_local("flood", 5, 100);
        m.record_global("route", 3, 42);
        m.record_charged("oracle", 7);
        assert_eq!(m.rounds(), 15);
        assert_eq!(m.local_messages(), 100);
        assert_eq!(m.global_messages(), 42);
        assert_eq!(m.trace().len(), 3);
        assert_eq!(m.rounds_for("flood"), 5);
        assert_eq!(m.rounds_for("route"), 3);
        assert_eq!(m.rounds_for("oracle"), 7);
    }

    #[test]
    fn absorb_adds_everything() {
        let mut a = CostMeter::new();
        a.record_local("x", 2, 10);
        let mut b = CostMeter::new();
        b.record_global("y", 4, 20);
        a.absorb(b);
        assert_eq!(a.rounds(), 6);
        assert_eq!(a.global_messages(), 20);
        assert_eq!(a.trace().len(), 2);
    }

    #[test]
    fn absorb_parallel_caps_rounds() {
        let mut a = CostMeter::new();
        let mut b = CostMeter::new();
        b.record_global("sub1", 10, 5);
        b.record_global("sub2", 10, 5);
        a.absorb_parallel(b, 10);
        assert_eq!(a.rounds(), 10);
        assert_eq!(a.global_messages(), 10);
    }

    #[test]
    fn default_is_zero() {
        let m = CostMeter::default();
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.local_messages(), 0);
        assert_eq!(m.global_messages(), 0);
        assert!(m.trace().is_empty());
    }
}
