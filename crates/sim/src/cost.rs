//! Round and message accounting shared by both simulation styles.

use serde::{Deserialize, Serialize};

/// Which communication mode a phase used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Local communication along graph edges (unlimited bandwidth).
    Local,
    /// Global (NCC-style) communication under per-node capacity.
    Global,
    /// Purely local computation / bookkeeping charged a fixed number of rounds
    /// (e.g. simulating an oracle whose round cost is known).
    Charged,
}

/// One entry of the execution trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Human-readable label (e.g. `"clustering/ruling-set"`).
    pub label: String,
    /// Communication mode.
    pub kind: PhaseKind,
    /// Rounds consumed by the phase.
    pub rounds: u64,
    /// Messages sent during the phase (`O(log n)`-bit units for global
    /// phases; edge-message count for local phases).
    pub messages: u64,
    /// Delivery attempts dropped during the phase — γ receive-cap overflow or
    /// injected message loss (zero in failure-free runs by construction).
    pub dropped: u64,
    /// Extra message copies delivered by fault-injected duplication.
    pub duplicated: u64,
    /// Delivery attempts held back by fault-injected delay.
    pub delayed: u64,
}

/// Accumulates the cost of an algorithm execution: total rounds, message
/// counters and a per-phase trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostMeter {
    rounds: u64,
    local_messages: u64,
    global_messages: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    trace: Vec<PhaseRecord>,
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total local messages (edge-messages) sent.
    pub fn local_messages(&self) -> u64 {
        self.local_messages
    }

    /// Total global messages (`O(log n)`-bit units) sent.
    pub fn global_messages(&self) -> u64 {
        self.global_messages
    }

    /// Total delivery attempts dropped (γ receive-cap overflow plus injected
    /// message loss).  Zero in failure-free runs.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total extra message copies delivered by injected duplication.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Total delivery attempts held back by injected delay.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// The per-phase trace.
    pub fn trace(&self) -> &[PhaseRecord] {
        &self.trace
    }

    /// Records a local phase of `rounds` rounds and `messages` edge-messages.
    pub fn record_local(&mut self, label: impl Into<String>, rounds: u64, messages: u64) {
        self.rounds += rounds;
        self.local_messages += messages;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Local,
            rounds,
            messages,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        });
    }

    /// Records a global phase of `rounds` rounds and `messages` global messages.
    pub fn record_global(&mut self, label: impl Into<String>, rounds: u64, messages: u64) {
        self.record_global_faulty(label, rounds, messages, 0, 0, 0);
    }

    /// Records a global phase together with its fault accounting: delivery
    /// attempts `dropped` (overflow or injected loss), extra copies
    /// `duplicated`, and attempts `delayed`.
    pub fn record_global_faulty(
        &mut self,
        label: impl Into<String>,
        rounds: u64,
        messages: u64,
        dropped: u64,
        duplicated: u64,
        delayed: u64,
    ) {
        self.rounds += rounds;
        self.global_messages += messages;
        self.dropped += dropped;
        self.duplicated += duplicated;
        self.delayed += delayed;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Global,
            rounds,
            messages,
            dropped,
            duplicated,
            delayed,
        });
    }

    /// Records a charged phase (a simulated oracle / framework with a known
    /// round cost but no explicitly scheduled messages).
    pub fn record_charged(&mut self, label: impl Into<String>, rounds: u64) {
        self.rounds += rounds;
        self.trace.push(PhaseRecord {
            label: label.into(),
            kind: PhaseKind::Charged,
            rounds,
            messages: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        });
    }

    /// Merges another meter into this one (concatenating traces), e.g. when an
    /// algorithm invokes a sub-algorithm that produced its own meter.
    pub fn absorb(&mut self, other: CostMeter) {
        self.rounds += other.rounds;
        self.local_messages += other.local_messages;
        self.global_messages += other.global_messages;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.trace.extend(other.trace);
    }

    /// Merges another meter but counts its rounds only up to `cap` — used when
    /// sub-algorithms run *in parallel* and the caller charges the maximum.
    pub fn absorb_parallel(&mut self, other: CostMeter, rounds_charged: u64) {
        self.rounds += rounds_charged;
        self.local_messages += other.local_messages;
        self.global_messages += other.global_messages;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.trace.push(PhaseRecord {
            label: format!("parallel-group({} phases)", other.trace.len()),
            kind: PhaseKind::Charged,
            rounds: rounds_charged,
            messages: 0,
            dropped: other.dropped,
            duplicated: other.duplicated,
            delayed: other.delayed,
        });
    }

    /// Sum of rounds of all phases whose label contains `needle` — handy in
    /// tests to assert which stage dominates.
    pub fn rounds_for(&self, needle: &str) -> u64 {
        self.trace
            .iter()
            .filter(|p| p.label.contains(needle))
            .map(|p| p.rounds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut m = CostMeter::new();
        m.record_local("flood", 5, 100);
        m.record_global("route", 3, 42);
        m.record_charged("oracle", 7);
        assert_eq!(m.rounds(), 15);
        assert_eq!(m.local_messages(), 100);
        assert_eq!(m.global_messages(), 42);
        assert_eq!(m.trace().len(), 3);
        assert_eq!(m.rounds_for("flood"), 5);
        assert_eq!(m.rounds_for("route"), 3);
        assert_eq!(m.rounds_for("oracle"), 7);
    }

    #[test]
    fn absorb_adds_everything() {
        let mut a = CostMeter::new();
        a.record_local("x", 2, 10);
        let mut b = CostMeter::new();
        b.record_global("y", 4, 20);
        a.absorb(b);
        assert_eq!(a.rounds(), 6);
        assert_eq!(a.global_messages(), 20);
        assert_eq!(a.trace().len(), 2);
    }

    #[test]
    fn absorb_parallel_caps_rounds() {
        let mut a = CostMeter::new();
        let mut b = CostMeter::new();
        b.record_global("sub1", 10, 5);
        b.record_global("sub2", 10, 5);
        a.absorb_parallel(b, 10);
        assert_eq!(a.rounds(), 10);
        assert_eq!(a.global_messages(), 10);
    }

    #[test]
    fn fault_counters_accumulate_and_absorb() {
        let mut a = CostMeter::new();
        a.record_global_faulty("lossy", 6, 30, 4, 2, 1);
        assert_eq!(a.dropped(), 4);
        assert_eq!(a.duplicated(), 2);
        assert_eq!(a.delayed(), 1);
        let rec = &a.trace()[0];
        assert_eq!((rec.dropped, rec.duplicated, rec.delayed), (4, 2, 1));

        let mut b = CostMeter::new();
        b.record_global_faulty("lossier", 2, 10, 3, 0, 5);
        a.absorb(b.clone());
        assert_eq!((a.dropped(), a.duplicated(), a.delayed()), (7, 2, 6));

        let mut c = CostMeter::new();
        c.absorb_parallel(b, 2);
        assert_eq!((c.dropped(), c.duplicated(), c.delayed()), (3, 0, 5));
    }

    #[test]
    fn failure_free_records_report_zero_fault_counters() {
        let mut m = CostMeter::new();
        m.record_local("flood", 5, 100);
        m.record_global("route", 3, 42);
        m.record_charged("oracle", 7);
        assert_eq!(m.dropped(), 0);
        assert_eq!(m.duplicated(), 0);
        assert_eq!(m.delayed(), 0);
        assert!(m
            .trace()
            .iter()
            .all(|p| p.dropped == 0 && p.duplicated == 0 && p.delayed == 0));
    }

    #[test]
    fn default_is_zero() {
        let m = CostMeter::default();
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.local_messages(), 0);
        assert_eq!(m.global_messages(), 0);
        assert!(m.trace().is_empty());
    }
}
