//! # hybrid-sim
//!
//! A round-synchronous simulator of the **HYBRID** model of distributed
//! computing (Augustine, Hinnenthal, Kuhn, Scheideler, Schneider — SODA 2020),
//! as used by the PODC 2024 paper *"Universally Optimal Information
//! Dissemination and Shortest Paths in the HYBRID Distributed Model"*.
//!
//! The HYBRID model combines two communication modes (paper Section 1.3):
//!
//! * **Unlimited local communication** — in every round, adjacent nodes of the
//!   local communication graph `G` may exchange messages of arbitrary size
//!   (the `LOCAL` model).
//! * **Limited global communication** — every node may send and receive at
//!   most `γ = O(log n)` messages of `O(log n)` bits per round, addressed to
//!   arbitrary nodes whose identifier it knows (the node-capacitated clique,
//!   `NCC`).
//!
//! Two complementary simulation styles are provided:
//!
//! 1. the **phase engine** ([`HybridNetwork`]): algorithms are decomposed into
//!    *local phases* (charged by their hop radius, since `t` rounds of local
//!    communication let every node learn exactly its `t`-ball) and *global
//!    phases* (explicit point-to-point message multisets that the
//!    [`scheduler::GlobalScheduler`] delivers round by round under the
//!    per-node send/receive caps, queuing any excess).  This is what the
//!    universal algorithms of `hybrid-core` run on;
//! 2. a true per-node synchronous **message-passing engine** ([`engine`])
//!    where every node runs a [`engine::NodeProgram`] with its own mailboxes —
//!    used for the simpler primitives (flooding, BFS, token gossip) and for
//!    validating the phase engine against a fully explicit execution.
//!
//! Both styles feed a common [`cost::CostMeter`] so that every algorithm in
//! the repository reports rounds, message counts and a per-phase trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod engine;
pub mod envelope;
pub mod faults;
pub mod network;
pub mod params;
pub mod programs;
pub mod scheduler;

pub use config::{EngineConfig, EngineError};
pub use cost::{CostMeter, PhaseKind, PhaseRecord};
pub use envelope::{Body, Envelope, RoundTrace, TraceEntry};
pub use faults::{Fate, FaultPlan, FaultSpec};
pub use network::HybridNetwork;
pub use params::{IdSpace, LocalBandwidth, ModelParams};
pub use scheduler::{DeliveryReport, GlobalMessage, GlobalScheduler};
