//! The transport contract between node programs and engines.
//!
//! The in-process [`Executor`](crate::engine::Executor) moves program
//! messages by value — no serialization anywhere on that path.  The
//! networked runtime (`hybrid-node` / `hybrid-driver`) moves the *same*
//! messages as length-framed JSON envelopes `{src, dst, round, body}` over
//! sockets.  [`Body`] is the bound that makes one program type work
//! unmodified in both worlds: any `Clone + Serialize + DeserializeOwned`
//! message type qualifies automatically, so in-process programs pay nothing
//! and networked programs get a wire format for free.
//!
//! [`RoundTrace`]/[`TraceEntry`] are the conformance contract: both engines
//! can record, per sending round, the exact ordered list of delivered
//! messages (payloads rendered as canonical compact JSON).  Two runs are
//! considered equivalent iff their traces are bit-identical — the networked
//! conformance tests diff these against the in-process engine.

use hybrid_graph::NodeId;

use serde::{DeError, Deserialize, DeserializeOwned, Serialize, Value};

/// Bound on program message types making them transportable.
///
/// Blanket-implemented: any `Clone + Serialize + DeserializeOwned` type is a
/// `Body`.  The in-process engine never serializes (zero-copy fast path);
/// the networked runtime converts bodies to and from JSON [`Value`] trees at
/// the process boundary.
pub trait Body: Clone + Serialize + DeserializeOwned {}

impl<T: Clone + Serialize + DeserializeOwned> Body for T {}

/// A routed message as it crosses a process boundary: sender, receiver, the
/// round it was sent in, and the payload.
///
/// Serializes as the wire object `{"src": …, "dst": …, "round": …,
/// "body": …}`.  The serde impls are hand-written because the vendored
/// derive macro does not handle generic types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<B> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Round in which the message was sent (init pass = round 0).
    pub round: u64,
    /// Program payload.
    pub body: B,
}

impl<B: Serialize> Serialize for Envelope<B> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("src".to_string(), self.src.to_value()),
            ("dst".to_string(), self.dst.to_value()),
            ("round".to_string(), self.round.to_value()),
            ("body".to_string(), self.body.to_value()),
        ])
    }
}

impl<'de, B: Deserialize<'de>> Deserialize<'de> for Envelope<B> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| DeError(format!("missing field `{key}` in envelope")))
        };
        Ok(Envelope {
            src: NodeId::deserialize(field("src")?)?,
            dst: NodeId::deserialize(field("dst")?)?,
            round: u64::deserialize(field("round")?)?,
            body: B::deserialize(field("body")?)?,
        })
    }
}

/// One delivered message in a [`RoundTrace`]: the payload is rendered as
/// compact JSON so traces from different transports compare bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload as canonical compact JSON.
    pub body: String,
}

/// The delivered messages of one round, in the engine's deterministic
/// delivery order (destination-major, then staging sequence).
///
/// `round` is the *sending* round: the init pass is round 0, and the
/// messages recorded under round `r` are the ones programs see at the start
/// of round `r + 1`.  Messages dropped by the γ receive cap are not traced —
/// only what was actually delivered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Sending round of every message below.
    pub round: u64,
    /// Delivered local messages.
    pub local: Vec<TraceEntry>,
    /// Delivered global messages (after the γ receive cap).
    pub global: Vec<TraceEntry>,
}

/// Renders a message body as canonical compact JSON — the single payload
/// rendering used by both engines' traces and the wire format.
pub fn body_json<M: Serialize>(body: &M) -> String {
    serde_json::to_string(body).expect("stand-in serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_json() {
        let env = Envelope {
            src: 3,
            dst: 7,
            round: 12,
            body: vec![1u64, u64::MAX],
        };
        let text = serde_json::to_string(&env).unwrap();
        assert_eq!(
            text,
            "{\"src\":3,\"dst\":7,\"round\":12,\"body\":[1,18446744073709551615]}"
        );
        let back: Envelope<Vec<u64>> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn envelope_missing_field_is_a_typed_error() {
        let bad = serde_json::from_str::<Envelope<u64>>("{\"src\":1,\"dst\":2,\"round\":0}");
        assert!(bad.is_err());
    }

    #[test]
    fn trace_types_round_trip() {
        let trace = RoundTrace {
            round: 4,
            local: vec![TraceEntry {
                src: 0,
                dst: 1,
                body: body_json(&vec![9u64]),
            }],
            global: vec![],
        };
        let text = serde_json::to_string(&trace).unwrap();
        let back: RoundTrace = serde_json::from_str(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.local[0].body, "[9]");
    }
}
