//! Round-by-round scheduling of global (NCC-style) messages under per-node
//! send and receive caps.
//!
//! The HYBRID model requires every node to be the *sender* of at most `γ`
//! messages and the *receiver* of at most `γ` messages per round (paper
//! Section 1.3).  The scheduler takes the complete multiset of point-to-point
//! messages an algorithm phase wants to deliver and plays it out round by
//! round: in each round every sender may inject up to `γ` of its queued
//! messages, but a message is only delivered if its receiver still has
//! residual receive capacity in that round; otherwise the sender retries it in
//! a later round.  This reproduces the congestion behaviour that the paper's
//! load-balancing machinery (helper sets, intermediate nodes, cluster trees)
//! is designed to avoid, so badly balanced communication patterns genuinely
//! cost more rounds in the simulator.
//!
//! # Guarantees
//!
//! For every message multiset the greedy schedule played by
//! [`GlobalScheduler::deliver_with`] satisfies
//!
//! * **Receive-cap invariant** — no node ever receives more than `γ` messages
//!   in a single round (`DeliveryReport::max_received_in_a_round ≤ γ`).
//! * **Progress / termination** — at least one message is delivered per round:
//!   a message is only deferred when its receiver's budget is exhausted, and
//!   budgets are only consumed by deliveries, so a fully idle round is
//!   impossible while messages remain.
//! * **Near-optimality** — the schedule finishes within
//!   `2 · lower_bound_rounds + 1` rounds.  Sketch: fix the last delivered
//!   message `m` from `s` to `r`.  In every earlier round either `s` spent its
//!   full send budget `γ` (at most `⌈load(s)/γ⌉ ≤ LB` such rounds, since each
//!   consumes `γ` of `s`'s queue), or `s` scanned its *entire* queue — so `m`
//!   itself was considered and deferred, which means `r` received exactly `γ`
//!   messages that round (at most `⌊load(r)/γ⌋ ≤ LB` such rounds).  Hence `m`
//!   is delivered by round `2·LB + 1`.  The full-queue scan is what makes the
//!   argument go through: an earlier implementation stopped scanning after a
//!   window of `γ` deferrals, and a queue head full of messages to a hot
//!   receiver could idle a sender for `Θ(LB)` extra rounds (head-of-line
//!   blocking) even though deliverable messages to idle receivers sat right
//!   behind the window.
//! * **Determinism** — the schedule is a pure function of `(params, messages)`:
//!   senders are scanned in a deterministically rotated order and the
//!   scheduler itself is sequential, so round counts are bit-identical for
//!   every thread count of the surrounding experiment sweep.
//!
//! # Representation
//!
//! One batch is bucketed into a single flat arena grouped by sender via a
//! counting sort (no per-sender `VecDeque`s), and each sender's bucket is
//! compressed into receiver-sorted `(receiver, count)` runs; the pending
//! queue is the live sub-range `[seg_lo, seg_hi)` of those runs.  A round
//! scans the live runs with two cursors: deferred runs are compacted in
//! place behind the read cursor, and when the send budget runs out mid-queue
//! the (small) deferred block is slid up against the unscanned suffix.  A
//! round therefore costs `O(distinct receivers scanned)`, not `O(pending
//! messages)` — a convergecast-style batch (every sender pointing a long
//! queue at one hot receiver) schedules in one run entry per sender per
//! round.  All buffers live in the [`GlobalScheduler`] value and are reused
//! across batches; once warmed up, repeated
//! [`GlobalScheduler::deliver_with`] calls allocate nothing.
//!
//! Within one sender's batch, messages are delivered grouped by receiver
//! (ascending receiver id) rather than in submission order; the delivered
//! *multiset*, the round count guarantees and the per-round caps are
//! unaffected (the scheduler models congestion, not FIFO channels).

use serde::{Deserialize, Serialize};

use crate::params::ModelParams;

/// A single global message of `O(log n)` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalMessage {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
}

impl GlobalMessage {
    /// Convenience constructor.
    pub fn new(from: u32, to: u32) -> Self {
        GlobalMessage { from, to }
    }
}

/// Outcome of delivering one batch of global messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Rounds needed to deliver every message.
    pub rounds: u64,
    /// Number of messages delivered.
    pub messages: u64,
    /// Maximum number of messages any single node had to send.
    pub max_send_load: u64,
    /// Maximum number of messages any single node had to receive.
    pub max_recv_load: u64,
    /// The largest number of messages any node received in any single round —
    /// by construction this never exceeds the model's `γ`.
    pub max_received_in_a_round: u64,
    /// Delivery attempts dropped by fault injection (each is retried in a
    /// later wave, so the batch still completes).  Always zero on the
    /// fault-free [`GlobalScheduler::deliver_with`] path.
    pub dropped: u64,
    /// Extra message copies delivered by fault-injected duplication (each
    /// consumes send/receive capacity like a real message).
    pub duplicated: u64,
    /// Delivery attempts held back by fault-injected delay.
    pub delayed: u64,
}

impl DeliveryReport {
    /// An empty report (no messages, zero rounds).
    pub fn empty() -> Self {
        DeliveryReport {
            rounds: 0,
            messages: 0,
            max_send_load: 0,
            max_recv_load: 0,
            max_received_in_a_round: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        }
    }
}

/// Scheduler for batches of global messages.
///
/// The value is a reusable workspace: every buffer the schedule needs lives
/// here and survives across [`GlobalScheduler::deliver_with`] calls, so a
/// long-lived scheduler (e.g. the one owned by
/// [`crate::network::HybridNetwork`]) reaches a steady state in which a batch
/// allocates nothing.  The stateless [`GlobalScheduler::deliver`] associated
/// function is a convenience wrapper that spins up a fresh workspace.
#[derive(Debug, Default, Clone)]
pub struct GlobalScheduler {
    /// Scratch arena for the counting sort: receiver ids grouped by sender.
    scratch: Vec<u32>,
    /// The pending queues as receiver-sorted `(receiver, count)` runs,
    /// grouped by sender — a hot receiver is one run, however many messages.
    runs: Vec<(u32, u32)>,
    /// Scratch-bucket boundaries: sender `s` owns
    /// `scratch[offsets[s]..offsets[s+1]]` during bucketing.
    offsets: Vec<u32>,
    /// Live-range start per sender in `runs` (advances as runs drain).
    seg_lo: Vec<u32>,
    /// Live-range end per sender in `runs` (shrinks when a full scan
    /// compacts in place).
    seg_hi: Vec<u32>,
    send_load: Vec<u64>,
    recv_load: Vec<u64>,
    recv_budget: Vec<u64>,
    recv_dirty: Vec<u32>,
    active: Vec<u32>,
    next_active: Vec<u32>,
}

impl GlobalScheduler {
    /// Creates an empty scheduler workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plays the message multiset through the global network of `params` with
    /// a one-shot workspace.  Prefer a long-lived scheduler and
    /// [`GlobalScheduler::deliver_with`] on hot paths.
    ///
    /// # Panics
    /// Panics if the model has no global capacity (`γ = 0`) but messages were
    /// supplied, or if a message references a node outside `0..n`.
    pub fn deliver(params: &ModelParams, messages: &[GlobalMessage]) -> DeliveryReport {
        GlobalScheduler::new().deliver_with(params, messages)
    }

    /// Plays the message multiset through the global network of `params`,
    /// returning how many rounds it took.  Reuses this workspace's buffers:
    /// repeated calls on batches of similar shape allocate nothing.
    ///
    /// # Panics
    /// Panics if the model has no global capacity (`γ = 0`) but messages were
    /// supplied, or if a message references a node outside `0..n`.
    pub fn deliver_with(
        &mut self,
        params: &ModelParams,
        messages: &[GlobalMessage],
    ) -> DeliveryReport {
        self.run(params, messages, None)
    }

    /// Like [`GlobalScheduler::deliver_with`], but additionally appends every
    /// delivery to `trace` as `(round, message)` in delivery order — used by
    /// the property tests to check the per-round receive-cap invariant and
    /// the delivered multiset against a reference scheduler.
    pub fn deliver_with_trace(
        &mut self,
        params: &ModelParams,
        messages: &[GlobalMessage],
        trace: &mut Vec<(u64, GlobalMessage)>,
    ) -> DeliveryReport {
        self.run(params, messages, Some(trace))
    }

    fn run(
        &mut self,
        params: &ModelParams,
        messages: &[GlobalMessage],
        mut trace: Option<&mut Vec<(u64, GlobalMessage)>>,
    ) -> DeliveryReport {
        if messages.is_empty() {
            return DeliveryReport::empty();
        }
        assert!(
            params.global_capacity_msgs > 0,
            "model has no global communication but {} global messages were scheduled",
            messages.len()
        );
        assert!(
            messages.len() <= u32::MAX as usize,
            "batch of {} messages exceeds the scheduler's u32 index space",
            messages.len()
        );
        let n = params.n;
        let gamma = params.global_capacity_msgs as u64;

        // --- Bucket the batch by sender (one counting sort). ---
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        self.send_load.clear();
        self.send_load.resize(n, 0);
        self.recv_load.clear();
        self.recv_load.resize(n, 0);
        self.recv_budget.clear();
        self.recv_budget.resize(n, 0);
        self.recv_dirty.clear();
        for m in messages {
            assert!((m.from as usize) < n, "sender {} out of range", m.from);
            assert!((m.to as usize) < n, "receiver {} out of range", m.to);
            self.offsets[m.from as usize + 1] += 1;
            self.send_load[m.from as usize] += 1;
            self.recv_load[m.to as usize] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        // Reverse placement pass into the scratch arena: the cursor starts at
        // each bucket's end and walks backward, reusing `seg_lo` as cursor.
        self.seg_lo.clear();
        self.seg_lo.extend_from_slice(&self.offsets[1..]);
        self.scratch.clear();
        self.scratch.resize(messages.len(), 0);
        for m in messages.iter().rev() {
            let s = m.from as usize;
            self.seg_lo[s] -= 1;
            self.scratch[self.seg_lo[s] as usize] = m.to;
        }
        // --- Compress each bucket into receiver-sorted (to, count) runs. ---
        // A hot receiver then costs one run entry per round instead of one
        // queue entry per message: a convergecast-style batch (many senders,
        // each with a large all-to-one queue) schedules in O(senders) work
        // per round rather than O(pending messages) per round.
        self.runs.clear();
        self.seg_hi.clear();
        for s in 0..n {
            let (lo, hi) = (self.offsets[s] as usize, self.offsets[s + 1] as usize);
            self.seg_lo[s] = self.runs.len() as u32;
            self.scratch[lo..hi].sort_unstable();
            let mut i = lo;
            while i < hi {
                let to = self.scratch[i];
                let mut count = 1usize;
                while i + count < hi && self.scratch[i + count] == to {
                    count += 1;
                }
                self.runs.push((to, count as u32));
                i += count;
            }
            self.seg_hi.push(self.runs.len() as u32);
        }
        let max_send_load = self.send_load.iter().copied().max().unwrap_or(0);
        let max_recv_load = self.recv_load.iter().copied().max().unwrap_or(0);

        self.active.clear();
        self.active
            .extend((0..n as u32).filter(|&v| self.seg_lo[v as usize] < self.seg_hi[v as usize]));
        self.next_active.clear();

        let mut remaining = messages.len() as u64;
        let mut rounds = 0u64;
        let mut max_received_in_a_round = 0u64;

        while remaining > 0 {
            rounds += 1;
            // Reset the receive budgets touched last round.
            for &v in &self.recv_dirty {
                self.recv_budget[v as usize] = 0;
            }
            self.recv_dirty.clear();
            self.next_active.clear();

            for idx in 0..self.active.len() {
                let sender = self.active[idx] as usize;
                let lo = self.seg_lo[sender] as usize;
                let hi = self.seg_hi[sender] as usize;
                // Scan the live runs until the send budget is spent or the
                // queue is exhausted, compacting deferred / partially sent
                // runs in place behind the read cursor (`w <= r` always, so
                // this never clobbers an unscanned run).
                let mut r = lo;
                let mut w = lo;
                let mut sent = 0u64;
                while r < hi && sent < gamma {
                    let (to, count) = self.runs[r];
                    r += 1;
                    let to_usize = to as usize;
                    let residual = gamma - self.recv_budget[to_usize];
                    // How many of this run fit this round: limited by the
                    // receiver's residual budget and the sender's own budget.
                    let k = (count as u64).min(residual).min(gamma - sent);
                    if k > 0 {
                        if self.recv_budget[to_usize] == 0 {
                            self.recv_dirty.push(to);
                        }
                        self.recv_budget[to_usize] += k;
                        max_received_in_a_round =
                            max_received_in_a_round.max(self.recv_budget[to_usize]);
                        sent += k;
                        remaining -= k;
                        if let Some(t) = trace.as_deref_mut() {
                            for _ in 0..k {
                                t.push((rounds, GlobalMessage::new(sender as u32, to)));
                            }
                        }
                    }
                    if (k as u32) < count {
                        // Receiver saturated (or send budget spent): keep the
                        // remainder of the run for a later round, but keep
                        // scanning — deliverable runs further back must not
                        // be blocked by this one.
                        self.runs[w] = (to, count - k as u32);
                        w += 1;
                    }
                }
                let deferred = w - lo;
                if r < hi {
                    // Send budget spent mid-queue: slide the (small) deferred
                    // block up against the unscanned suffix so the live range
                    // stays contiguous.  Costs O(deferred), not O(suffix).
                    if deferred > 0 {
                        self.runs.copy_within(lo..w, r - deferred);
                    }
                    self.seg_lo[sender] = (r - deferred) as u32;
                    self.next_active.push(sender as u32);
                } else {
                    // Full scan: the live range is exactly the deferred block.
                    self.seg_lo[sender] = lo as u32;
                    self.seg_hi[sender] = w as u32;
                    if deferred > 0 {
                        self.next_active.push(sender as u32);
                    }
                }
            }
            // Rotate the sender order so that no sender is systematically
            // favoured when competing for a saturated receiver.
            if !self.next_active.is_empty() {
                let shift = rounds as usize % self.next_active.len();
                self.next_active.rotate_left(shift);
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }

        DeliveryReport {
            rounds,
            messages: messages.len() as u64,
            max_send_load,
            max_recv_load,
            max_received_in_a_round,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        }
    }

    /// Plays the message multiset against an active adversary: each delivery
    /// attempt draws a [`Fate`](crate::faults::Fate) from `plan`, and dropped
    /// or crash-blocked attempts are retried in later waves until everything
    /// is delivered.  `round_base` is the absolute round at which this batch
    /// starts (typically the owning meter's round total), so that fate and
    /// crash decisions line up with the per-node engine's round numbering.
    ///
    /// The batch is played as a sequence of *waves*.  Each wave draws one
    /// fate per pending message at the wave's starting round: surviving
    /// messages (plus duplicated extra copies) are handed to the fault-free
    /// scheduler and obey all its cap guarantees; dropped messages and
    /// messages whose endpoint is crashed are re-queued for the next wave;
    /// delayed messages are held back and re-enter a later wave.  A wave with
    /// nothing sendable still costs one (idle) round — that is how crash
    /// downtime and delay holds convert into measured rounds.
    ///
    /// The returned report accumulates rounds/messages across waves (so
    /// `messages` counts every delivered copy, including retries and
    /// duplicates — the message-overhead numerator of the fault sweep) and
    /// maximises the load/cap statistics.
    ///
    /// # Panics
    /// Panics like [`GlobalScheduler::deliver_with`], and additionally if the
    /// adversary prevents convergence for 100 000 consecutive waves (only
    /// possible with `drop_prob` at or near 1, or a node that effectively
    /// never restarts).
    pub fn deliver_with_faults(
        &mut self,
        params: &ModelParams,
        messages: &[GlobalMessage],
        plan: &crate::faults::FaultPlan,
        round_base: u64,
    ) -> DeliveryReport {
        use crate::faults::Fate;

        if plan.is_failure_free() {
            return self.deliver_with(params, messages);
        }
        if messages.is_empty() {
            return DeliveryReport::empty();
        }
        let mut report = DeliveryReport::empty();
        let mut wave: Vec<GlobalMessage> = messages.to_vec();
        let mut next_wave: Vec<GlobalMessage> = Vec::new();
        let mut held: Vec<(u64, GlobalMessage)> = Vec::new();
        let mut sendable: Vec<GlobalMessage> = Vec::new();
        let mut waves = 0u64;
        while !wave.is_empty() || !held.is_empty() {
            waves += 1;
            assert!(
                waves <= 100_000,
                "fault-injected delivery did not converge after {waves} waves \
                 (drop rate too close to 1, or a crashed node never restarts?)"
            );
            // Release every held message whose delay has elapsed (held stores
            // the batch-relative round at which the message re-enters play).
            let now = report.rounds;
            let mut i = 0;
            while i < held.len() {
                if held[i].0 <= now {
                    wave.push(held.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            // The absolute round this wave starts at — the coordinate fates
            // and crash checks are drawn against.
            let abs_round = round_base + report.rounds + 1;
            sendable.clear();
            next_wave.clear();
            for (idx, m) in wave.drain(..).enumerate() {
                if plan.is_down(m.from, abs_round) || plan.is_down(m.to, abs_round) {
                    // A crashed endpoint blocks the attempt outright; retry
                    // once the node has restarted.
                    next_wave.push(m);
                    continue;
                }
                match plan.fate(abs_round, m.from, m.to, idx as u64) {
                    Fate::Deliver => sendable.push(m),
                    Fate::Drop => {
                        report.dropped += 1;
                        next_wave.push(m);
                    }
                    Fate::Duplicate => {
                        report.duplicated += 1;
                        sendable.push(m);
                        sendable.push(m);
                    }
                    Fate::Delay(d) => {
                        report.delayed += 1;
                        held.push((now + d, m));
                    }
                }
            }
            std::mem::swap(&mut wave, &mut next_wave);
            if sendable.is_empty() {
                // Nothing survived this wave: the round is spent waiting for
                // restarts / releases, exactly one round of wall-clock.
                report.rounds += 1;
                continue;
            }
            let sub = self.deliver_with(params, &sendable);
            report.rounds += sub.rounds;
            report.messages += sub.messages;
            report.max_send_load = report.max_send_load.max(sub.max_send_load);
            report.max_recv_load = report.max_recv_load.max(sub.max_recv_load);
            report.max_received_in_a_round = report
                .max_received_in_a_round
                .max(sub.max_received_in_a_round);
        }
        report
    }

    /// Lower bound on the rounds any schedule needs for this multiset:
    /// `⌈max(max_send_load, max_recv_load) / γ⌉`.  Useful for tests asserting
    /// that the scheduler is not wildly suboptimal; [`GlobalScheduler`]
    /// guarantees at most `2 ·` this bound `+ 1` rounds.
    ///
    /// # Panics
    /// Panics (with the same message as [`GlobalScheduler::deliver`]) if the
    /// model has no global capacity but messages were supplied.
    pub fn lower_bound_rounds(params: &ModelParams, messages: &[GlobalMessage]) -> u64 {
        if messages.is_empty() {
            return 0;
        }
        assert!(
            params.global_capacity_msgs > 0,
            "model has no global communication but {} global messages were scheduled",
            messages.len()
        );
        let n = params.n;
        let gamma = params.global_capacity_msgs as u64;
        let mut send_load = vec![0u64; n];
        let mut recv_load = vec![0u64; n];
        for m in messages {
            send_load[m.from as usize] += 1;
            recv_load[m.to as usize] += 1;
        }
        let worst = send_load
            .iter()
            .chain(recv_load.iter())
            .copied()
            .max()
            .unwrap_or(0);
        worst.div_ceil(gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, gamma: usize) -> ModelParams {
        ModelParams::hybrid_with_global_capacity(n, gamma)
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let r = GlobalScheduler::deliver(&params(10, 3), &[]);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn single_message_one_round() {
        let r = GlobalScheduler::deliver(&params(4, 2), &[GlobalMessage::new(0, 3)]);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.messages, 1);
        assert_eq!(r.max_received_in_a_round, 1);
    }

    #[test]
    fn sender_bottleneck() {
        // One node sends 10 messages to 10 distinct receivers with gamma = 2:
        // needs exactly 5 rounds.
        let msgs: Vec<_> = (1..=10).map(|t| GlobalMessage::new(0, t)).collect();
        let p = params(12, 2);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, 5);
        assert_eq!(r.max_send_load, 10);
        assert!(r.max_received_in_a_round <= 2);
        assert_eq!(GlobalScheduler::lower_bound_rounds(&p, &msgs), 5);
    }

    #[test]
    fn receiver_bottleneck() {
        // 10 distinct senders each send one message to node 0 with gamma = 2:
        // needs exactly 5 rounds because node 0 can only receive 2 per round.
        let msgs: Vec<_> = (1..=10).map(|s| GlobalMessage::new(s, 0)).collect();
        let p = params(12, 2);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, 5);
        assert_eq!(r.max_recv_load, 10);
        assert!(r.max_received_in_a_round <= 2);
    }

    #[test]
    fn receive_cap_never_exceeded() {
        // All-to-one and one-to-all mixed, gamma = 3.
        let mut msgs = Vec::new();
        for s in 1..20u32 {
            msgs.push(GlobalMessage::new(s, 0));
            msgs.push(GlobalMessage::new(0, s));
        }
        let p = params(20, 3);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert!(r.max_received_in_a_round <= 3);
        assert!(r.rounds >= GlobalScheduler::lower_bound_rounds(&p, &msgs));
        // The greedy schedule is within twice the bound (plus a round).
        assert!(r.rounds <= 2 * GlobalScheduler::lower_bound_rounds(&p, &msgs) + 1);
    }

    #[test]
    fn balanced_all_to_all_is_one_round() {
        // n senders each send gamma messages to distinct receivers arranged so
        // every receiver also gets exactly gamma: one round suffices, and the
        // greedy schedule achieves it.
        let n = 16usize;
        let gamma = 4usize;
        let mut msgs = Vec::new();
        for s in 0..n as u32 {
            for j in 1..=gamma as u32 {
                msgs.push(GlobalMessage::new(s, (s + j) % n as u32));
            }
        }
        let p = params(n, gamma);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, 1, "perfectly balanced batch must take 1 round");
        assert_eq!(r.max_received_in_a_round, gamma as u64);
    }

    /// The head-of-line-blocking regression pin: a sender whose queue starts
    /// with `γ` messages to a receiver that other senders keep saturated, with
    /// deliverable messages to idle receivers right behind them, must not sit
    /// idle — the earlier deferral-window implementation did exactly that and
    /// needed ~`2·LB` rounds on these instances; the full-budget scan needs
    /// `LB + O(1)`.
    #[test]
    fn saturated_queue_head_does_not_idle_the_sender() {
        for (gamma, t) in [(1usize, 12u64), (2, 12), (4, 10), (3, 30)] {
            let g = gamma as u64;
            let m = (g * (t - 1)) as usize; // idle-receiver tail of the queue
            let hot = 0u32;
            let comp_base = 1u32;
            let n_comp = (g * t) as usize; // competitors: one message each
            let idle_base = comp_base + n_comp as u32;
            let s = idle_base + m as u32; // highest id: scans after competitors
            let n = s as usize + 1;
            let mut msgs = Vec::new();
            for _ in 0..gamma {
                msgs.push(GlobalMessage::new(s, hot));
            }
            for i in 0..m {
                msgs.push(GlobalMessage::new(s, idle_base + i as u32));
            }
            for c in 0..n_comp {
                msgs.push(GlobalMessage::new(comp_base + c as u32, hot));
            }
            let p = params(n, gamma);
            let r = GlobalScheduler::deliver(&p, &msgs);
            let lb = GlobalScheduler::lower_bound_rounds(&p, &msgs);
            assert!(r.max_received_in_a_round <= g);
            assert!(
                r.rounds <= 2 * lb + 2,
                "gamma={gamma}: {} rounds vs 2·{lb}+2",
                r.rounds
            );
            // The sharp assertion the deferral-window scheduler fails (it
            // needed 24/22/17/44 rounds on these four instances): the
            // sender's idle-receiver messages flow while the hot head waits.
            assert!(
                r.rounds <= lb + 2,
                "gamma={gamma}: head-of-line blocking: {} rounds vs LB {lb}",
                r.rounds
            );
        }
    }

    #[test]
    fn convergecast_shape_is_optimal_and_cheap() {
        // 100 senders each hold 100 messages to one receiver, gamma = 1: the
        // receive cap forces exactly load/gamma rounds, and the run-compressed
        // queues make each blocked round cost O(senders), not O(pending
        // messages) — the flat per-message scan was quadratic here.
        let senders = 100u32;
        let per = 100usize;
        let n = senders as usize + 1;
        let mut msgs = Vec::new();
        for s in 1..=senders {
            for _ in 0..per {
                msgs.push(GlobalMessage::new(s, 0));
            }
        }
        let p = params(n, 1);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, senders as u64 * per as u64);
        assert_eq!(r.rounds, GlobalScheduler::lower_bound_rounds(&p, &msgs));
        assert_eq!(r.max_received_in_a_round, 1);
    }

    #[test]
    fn workspace_reuse_matches_one_shot_and_stops_allocating() {
        let p = params(64, 3);
        let mut sched = GlobalScheduler::new();
        // A skewed batch: a hot receiver, a hot sender, and uniform traffic.
        let mut msgs = Vec::new();
        for i in 0..200u32 {
            msgs.push(GlobalMessage::new(i % 64, (i * 7) % 64));
            msgs.push(GlobalMessage::new(i % 5, 63));
            msgs.push(GlobalMessage::new(0, i % 64));
        }
        let warm = sched.deliver_with(&p, &msgs);
        let caps = (
            sched.scratch.capacity(),
            sched.runs.capacity(),
            sched.offsets.capacity(),
            sched.seg_lo.capacity(),
            sched.seg_hi.capacity(),
            sched.send_load.capacity(),
            sched.recv_load.capacity(),
            sched.recv_budget.capacity(),
            sched.recv_dirty.capacity(),
            sched.active.capacity(),
            sched.next_active.capacity(),
        );
        for _ in 0..5 {
            let again = sched.deliver_with(&p, &msgs);
            assert_eq!(again.rounds, warm.rounds);
            assert_eq!(again.max_received_in_a_round, warm.max_received_in_a_round);
        }
        let caps_after = (
            sched.scratch.capacity(),
            sched.runs.capacity(),
            sched.offsets.capacity(),
            sched.seg_lo.capacity(),
            sched.seg_hi.capacity(),
            sched.send_load.capacity(),
            sched.recv_load.capacity(),
            sched.recv_budget.capacity(),
            sched.recv_dirty.capacity(),
            sched.active.capacity(),
            sched.next_active.capacity(),
        );
        assert_eq!(
            caps, caps_after,
            "repeated deliveries must not grow any workspace buffer"
        );
        // And the reused workspace computes the same schedule as a fresh one.
        let fresh = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(fresh.rounds, warm.rounds);
        assert_eq!(fresh.messages, warm.messages);
    }

    #[test]
    fn trace_is_complete_and_respects_cap() {
        let p = params(16, 2);
        let mut msgs = Vec::new();
        for s in 0..16u32 {
            for t in 0..4u32 {
                msgs.push(GlobalMessage::new(s, (s + t) % 16));
            }
        }
        let mut trace = Vec::new();
        let r = GlobalScheduler::new().deliver_with_trace(&p, &msgs, &mut trace);
        assert_eq!(trace.len(), msgs.len());
        assert!(trace
            .iter()
            .all(|&(round, _)| round >= 1 && round <= r.rounds));
        // Delivered multiset == input multiset.
        let mut delivered: Vec<GlobalMessage> = trace.iter().map(|&(_, m)| m).collect();
        let mut input = msgs.clone();
        delivered.sort_unstable();
        input.sort_unstable();
        assert_eq!(delivered, input);
        // Per-round receive counts never exceed gamma.
        let mut per_round_recv = std::collections::HashMap::new();
        for &(round, m) in &trace {
            *per_round_recv.entry((round, m.to)).or_insert(0u64) += 1;
        }
        assert!(per_round_recv.values().all(|&c| c <= 2));
    }

    #[test]
    #[should_panic(expected = "no global communication")]
    fn zero_gamma_with_messages_panics() {
        let p = ModelParams::local_only(4);
        GlobalScheduler::deliver(&p, &[GlobalMessage::new(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "no global communication")]
    fn zero_gamma_lower_bound_panics_cleanly() {
        // Regression: this used to reach `worst.div_ceil(0)` and die with a
        // divide-by-zero panic instead of the scheduler's assertion message.
        let p = ModelParams::local_only(4);
        GlobalScheduler::lower_bound_rounds(&p, &[GlobalMessage::new(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_receiver_panics() {
        GlobalScheduler::deliver(&params(4, 2), &[GlobalMessage::new(0, 9)]);
    }

    #[test]
    fn zero_fault_plan_matches_fault_free_path() {
        use crate::faults::{FaultPlan, FaultSpec};
        let p = params(16, 2);
        let msgs: Vec<_> = (0..16u32)
            .flat_map(|s| (0..3u32).map(move |t| GlobalMessage::new(s, (s + t + 1) % 16)))
            .collect();
        let plan = FaultPlan::new(FaultSpec::none(), 5, 16);
        let clean = GlobalScheduler::new().deliver_with(&p, &msgs);
        let faulty = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 0);
        assert_eq!(clean.rounds, faulty.rounds);
        assert_eq!(clean.messages, faulty.messages);
        assert_eq!(
            (faulty.dropped, faulty.duplicated, faulty.delayed),
            (0, 0, 0)
        );
    }

    #[test]
    fn drops_cost_rounds_but_everything_is_delivered() {
        use crate::faults::{FaultPlan, FaultSpec};
        let p = params(16, 2);
        let msgs: Vec<_> = (1..16u32).map(|s| GlobalMessage::new(s, 0)).collect();
        let plan = FaultPlan::new(FaultSpec::drop_only(0.5), 11, 16);
        let clean = GlobalScheduler::new().deliver_with(&p, &msgs);
        let faulty = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 0);
        // Retries may not inflate the delivered count (drops never deliver),
        // but they must show up in the fault accounting and the round count.
        assert_eq!(faulty.messages, msgs.len() as u64);
        assert!(faulty.dropped > 0, "a 50% drop rate must drop something");
        assert!(
            faulty.rounds >= clean.rounds,
            "faults cannot make delivery faster"
        );
        assert!(faulty.max_received_in_a_round <= 2);
    }

    #[test]
    fn duplicates_inflate_delivered_copies() {
        use crate::faults::{FaultPlan, FaultSpec};
        let p = params(16, 4);
        let msgs: Vec<_> = (0..15u32).map(|s| GlobalMessage::new(s, s + 1)).collect();
        let spec = FaultSpec {
            duplicate_prob: 0.5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 17, 16);
        let r = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 0);
        assert!(r.duplicated > 0);
        assert_eq!(
            r.messages,
            msgs.len() as u64 + r.duplicated,
            "each duplication delivers exactly one extra copy"
        );
    }

    #[test]
    fn crashed_receiver_defers_delivery_until_restart() {
        use crate::faults::{FaultPlan, FaultSpec};
        let p = params(8, 2);
        // horizon = 1 pins every crash to round 1, so the single message is
        // guaranteed to find its endpoints down on the first attempt.
        let spec = FaultSpec {
            crash_prob: 1.0,
            crash_down_rounds: 5,
            crash_horizon_rounds: 1,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 3, 8);
        let msgs = [GlobalMessage::new(0, 1)];
        let r = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 0);
        assert_eq!(r.messages, 1, "the message is delivered after the restart");
        assert!(
            r.rounds > 1,
            "a crashed endpoint must cost waiting rounds, took {}",
            r.rounds
        );
        assert!(r.rounds <= plan.quiescent_after() + 1);
    }

    #[test]
    fn faulty_delivery_is_deterministic_in_round_base() {
        use crate::faults::{FaultPlan, FaultSpec};
        let p = params(16, 2);
        let msgs: Vec<_> = (1..16u32).map(|s| GlobalMessage::new(s, s % 4)).collect();
        let spec = FaultSpec {
            drop_prob: 0.3,
            delay_prob: 0.2,
            max_delay_rounds: 3,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 23, 16);
        let a = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 7);
        let b = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 7);
        let c = GlobalScheduler::new().deliver_with_faults(&p, &msgs, &plan, 8);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            (a.dropped, a.duplicated, a.delayed),
            (b.dropped, b.duplicated, b.delayed)
        );
        // A different starting round addresses different fate coordinates.
        assert!(
            a.rounds != c.rounds || a.dropped != c.dropped || a.delayed != c.delayed,
            "shifting round_base should reshuffle fates"
        );
    }
}
