//! Round-by-round scheduling of global (NCC-style) messages under per-node
//! send and receive caps.
//!
//! The HYBRID model requires every node to be the *sender* of at most `γ`
//! messages and the *receiver* of at most `γ` messages per round (paper
//! Section 1.3).  The scheduler takes the complete multiset of point-to-point
//! messages an algorithm phase wants to deliver and plays it out round by
//! round: in each round every sender may inject up to `γ` of its queued
//! messages, but a message is only delivered if its receiver still has
//! residual receive capacity in that round; otherwise the sender retries it in
//! a later round.  This reproduces the congestion behaviour that the paper's
//! load-balancing machinery (helper sets, intermediate nodes, cluster trees)
//! is designed to avoid, so badly balanced communication patterns genuinely
//! cost more rounds in the simulator.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::params::ModelParams;

/// A single global message of `O(log n)` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalMessage {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
}

impl GlobalMessage {
    /// Convenience constructor.
    pub fn new(from: u32, to: u32) -> Self {
        GlobalMessage { from, to }
    }
}

/// Outcome of delivering one batch of global messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Rounds needed to deliver every message.
    pub rounds: u64,
    /// Number of messages delivered.
    pub messages: u64,
    /// Maximum number of messages any single node had to send.
    pub max_send_load: u64,
    /// Maximum number of messages any single node had to receive.
    pub max_recv_load: u64,
    /// The largest number of messages any node received in any single round —
    /// by construction this never exceeds the model's `γ`.
    pub max_received_in_a_round: u64,
}

impl DeliveryReport {
    /// An empty report (no messages, zero rounds).
    pub fn empty() -> Self {
        DeliveryReport {
            rounds: 0,
            messages: 0,
            max_send_load: 0,
            max_recv_load: 0,
            max_received_in_a_round: 0,
        }
    }
}

/// Scheduler for one batch of global messages.
#[derive(Debug, Default, Clone)]
pub struct GlobalScheduler;

impl GlobalScheduler {
    /// Plays the message multiset through the global network of `params`,
    /// returning how many rounds it took.
    ///
    /// # Panics
    /// Panics if the model has no global capacity (`γ = 0`) but messages were
    /// supplied, or if a message references a node outside `0..n`.
    pub fn deliver(params: &ModelParams, messages: &[GlobalMessage]) -> DeliveryReport {
        if messages.is_empty() {
            return DeliveryReport::empty();
        }
        assert!(
            params.global_capacity_msgs > 0,
            "model has no global communication but {} global messages were scheduled",
            messages.len()
        );
        let n = params.n;
        let gamma = params.global_capacity_msgs as u64;

        // Per-sender FIFO queues.
        let mut queues: Vec<VecDeque<u32>> = vec![VecDeque::new(); n];
        let mut send_load = vec![0u64; n];
        let mut recv_load = vec![0u64; n];
        for m in messages {
            assert!((m.from as usize) < n, "sender {} out of range", m.from);
            assert!((m.to as usize) < n, "receiver {} out of range", m.to);
            queues[m.from as usize].push_back(m.to);
            send_load[m.from as usize] += 1;
            recv_load[m.to as usize] += 1;
        }
        let max_send_load = send_load.iter().copied().max().unwrap_or(0);
        let max_recv_load = recv_load.iter().copied().max().unwrap_or(0);

        let mut active: Vec<u32> = (0..n as u32)
            .filter(|&v| !queues[v as usize].is_empty())
            .collect();
        let mut remaining = messages.len() as u64;
        let mut rounds = 0u64;
        let mut max_received_in_a_round = 0u64;
        let mut recv_budget = vec![0u64; n];
        let mut recv_dirty: Vec<u32> = Vec::new();

        while remaining > 0 {
            rounds += 1;
            // Reset the receive budgets touched last round.
            for &v in &recv_dirty {
                recv_budget[v as usize] = 0;
            }
            recv_dirty.clear();

            let mut next_active: Vec<u32> = Vec::with_capacity(active.len());
            for &sender in &active {
                let q = &mut queues[sender as usize];
                let mut sent = 0u64;
                let mut deferred: Vec<u32> = Vec::new();
                while sent < gamma {
                    let Some(to) = q.pop_front() else { break };
                    if recv_budget[to as usize] < gamma {
                        recv_budget[to as usize] += 1;
                        if recv_budget[to as usize] == 1 {
                            recv_dirty.push(to);
                        }
                        max_received_in_a_round =
                            max_received_in_a_round.max(recv_budget[to as usize]);
                        sent += 1;
                        remaining -= 1;
                    } else {
                        // Receiver saturated this round: retry later.
                        deferred.push(to);
                        // Avoid scanning the whole queue for the same saturated
                        // receiver over and over: stop after a window of
                        // deferrals proportional to gamma.
                        if deferred.len() as u64 >= gamma {
                            break;
                        }
                    }
                }
                // Deferred messages go back to the *front* so ordering is
                // roughly preserved.
                for &to in deferred.iter().rev() {
                    q.push_front(to);
                }
                if !q.is_empty() {
                    next_active.push(sender);
                }
            }
            // Rotate the sender order so that no sender is systematically
            // favoured when competing for a saturated receiver.
            if !next_active.is_empty() {
                let shift = rounds as usize % next_active.len();
                next_active.rotate_left(shift);
            }
            active = next_active;
        }

        DeliveryReport {
            rounds,
            messages: messages.len() as u64,
            max_send_load,
            max_recv_load,
            max_received_in_a_round,
        }
    }

    /// Lower bound on the rounds any schedule needs for this multiset:
    /// `⌈max(max_send_load, max_recv_load) / γ⌉`.  Useful for tests asserting
    /// that the scheduler is not wildly suboptimal.
    pub fn lower_bound_rounds(params: &ModelParams, messages: &[GlobalMessage]) -> u64 {
        if messages.is_empty() {
            return 0;
        }
        let n = params.n;
        let gamma = params.global_capacity_msgs as u64;
        let mut send_load = vec![0u64; n];
        let mut recv_load = vec![0u64; n];
        for m in messages {
            send_load[m.from as usize] += 1;
            recv_load[m.to as usize] += 1;
        }
        let worst = send_load
            .iter()
            .chain(recv_load.iter())
            .copied()
            .max()
            .unwrap_or(0);
        worst.div_ceil(gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, gamma: usize) -> ModelParams {
        ModelParams::hybrid_with_global_capacity(n, gamma)
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let r = GlobalScheduler::deliver(&params(10, 3), &[]);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn single_message_one_round() {
        let r = GlobalScheduler::deliver(&params(4, 2), &[GlobalMessage::new(0, 3)]);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.messages, 1);
        assert_eq!(r.max_received_in_a_round, 1);
    }

    #[test]
    fn sender_bottleneck() {
        // One node sends 10 messages to 10 distinct receivers with gamma = 2:
        // needs exactly 5 rounds.
        let msgs: Vec<_> = (1..=10).map(|t| GlobalMessage::new(0, t)).collect();
        let p = params(12, 2);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, 5);
        assert_eq!(r.max_send_load, 10);
        assert!(r.max_received_in_a_round <= 2);
        assert_eq!(GlobalScheduler::lower_bound_rounds(&p, &msgs), 5);
    }

    #[test]
    fn receiver_bottleneck() {
        // 10 distinct senders each send one message to node 0 with gamma = 2:
        // needs exactly 5 rounds because node 0 can only receive 2 per round.
        let msgs: Vec<_> = (1..=10).map(|s| GlobalMessage::new(s, 0)).collect();
        let p = params(12, 2);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert_eq!(r.rounds, 5);
        assert_eq!(r.max_recv_load, 10);
        assert!(r.max_received_in_a_round <= 2);
    }

    #[test]
    fn receive_cap_never_exceeded() {
        // All-to-one and one-to-all mixed, gamma = 3.
        let mut msgs = Vec::new();
        for s in 1..20u32 {
            msgs.push(GlobalMessage::new(s, 0));
            msgs.push(GlobalMessage::new(0, s));
        }
        let p = params(20, 3);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert!(r.max_received_in_a_round <= 3);
        assert!(r.rounds >= GlobalScheduler::lower_bound_rounds(&p, &msgs));
        // The greedy schedule should be within a small factor of the bound.
        assert!(r.rounds <= 3 * GlobalScheduler::lower_bound_rounds(&p, &msgs) + 2);
    }

    #[test]
    fn balanced_all_to_all_is_fast() {
        // n senders each send gamma messages to distinct receivers arranged so
        // every receiver also gets exactly gamma: one round suffices... but our
        // greedy scheduler may need a couple extra; assert it is close.
        let n = 16usize;
        let gamma = 4usize;
        let mut msgs = Vec::new();
        for s in 0..n as u32 {
            for j in 1..=gamma as u32 {
                msgs.push(GlobalMessage::new(s, (s + j) % n as u32));
            }
        }
        let p = params(n, gamma);
        let r = GlobalScheduler::deliver(&p, &msgs);
        assert!(
            r.rounds <= 3,
            "expected near-optimal schedule, got {}",
            r.rounds
        );
    }

    #[test]
    #[should_panic(expected = "no global communication")]
    fn zero_gamma_with_messages_panics() {
        let p = ModelParams::local_only(4);
        GlobalScheduler::deliver(&p, &[GlobalMessage::new(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_receiver_panics() {
        GlobalScheduler::deliver(&params(4, 2), &[GlobalMessage::new(0, 9)]);
    }
}
