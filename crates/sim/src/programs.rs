//! Library of ready-made [`NodeProgram`]s: flooding, BFS layering and a
//! token-gossip dissemination baseline.
//!
//! These serve three purposes: they are genuinely useful primitives, they act
//! as executable documentation of the engine API, and they provide an
//! *independent* execution path against which the phase-engine algorithms of
//! `hybrid-core` are cross-validated in the integration tests.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hybrid_graph::NodeId;

use crate::engine::{NodeCtx, NodeProgram};

/// Flooding (Definition 4.2 of the paper): every node repeatedly forwards all
/// information it knows to all neighbours; after `t` rounds every node knows
/// everything initially held within its `t`-ball.
#[derive(Debug, Clone)]
pub struct FloodProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    new_since_last_send: bool,
    quiescent: bool,
    rounds_budget: u64,
}

impl FloodProgram {
    /// Creates a flooding node holding `initial` tokens, flooding for at most
    /// `rounds_budget` rounds.
    pub fn new(initial: impl IntoIterator<Item = u64>, rounds_budget: u64) -> Self {
        FloodProgram {
            known: initial.into_iter().collect(),
            new_since_last_send: true,
            quiescent: false,
            rounds_budget,
        }
    }
}

impl NodeProgram for FloodProgram {
    type Msg = Vec<u64>;

    fn init(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>) {
        if !self.known.is_empty() {
            ctx.broadcast_local(self.known.iter().copied().collect());
        }
        self.new_since_last_send = false;
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>, round: u64) {
        let mut learned_something = false;
        for (_, tokens) in ctx.local_inbox().to_vec() {
            for t in tokens {
                if self.known.insert(t) {
                    self.new_since_last_send = true;
                    learned_something = true;
                }
            }
        }
        self.quiescent = !learned_something;
        if round < self.rounds_budget && self.new_since_last_send {
            ctx.broadcast_local(self.known.iter().copied().collect());
            self.new_since_last_send = false;
        }
    }

    fn done(&self) -> bool {
        self.quiescent
    }
}

/// Distributed BFS: the source announces distance 0; every node adopts
/// `1 + min(neighbour distances)` the first time it hears one.  The computed
/// value equals the hop distance after `ecc(source)` rounds.
#[derive(Debug, Clone)]
pub struct BfsProgram {
    id: NodeId,
    source: NodeId,
    /// Hop distance from the source (`None` until reached).
    pub dist: Option<u64>,
    announced: bool,
}

impl BfsProgram {
    /// Creates the program for node `id` with the given BFS `source`.
    pub fn new(id: NodeId, source: NodeId) -> Self {
        BfsProgram {
            id,
            source,
            dist: if id == source { Some(0) } else { None },
            announced: false,
        }
    }
}

impl NodeProgram for BfsProgram {
    type Msg = u64;

    fn init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        if self.id == self.source {
            ctx.broadcast_local(0);
            self.announced = true;
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, u64>, _round: u64) {
        let incoming_min = ctx.local_inbox().iter().map(|&(_, d)| d).min();
        if let Some(d) = incoming_min {
            if self.dist.is_none_or(|cur| d + 1 < cur) {
                self.dist = Some(d + 1);
                self.announced = false;
            }
        }
        if let Some(d) = self.dist {
            if !self.announced {
                ctx.broadcast_local(d);
                self.announced = true;
            }
        }
    }

    fn done(&self) -> bool {
        self.dist.is_some() && self.announced
    }
}

/// A token-gossip dissemination baseline: every node pushes uniformly random
/// known tokens to uniformly random nodes over the global network (`γ` per
/// round) *and* floods everything it knows over the local network.  This is a
/// natural "unstructured" approach to `k`-dissemination; the structured
/// algorithms of the paper (and of `hybrid-core`) beat it, which the
/// integration tests demonstrate.
#[derive(Debug)]
pub struct TokenGossipProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    n: usize,
    target_tokens: usize,
    rng: StdRng,
    changed: bool,
}

impl TokenGossipProgram {
    /// Creates a gossip node holding `initial` tokens, in a network of `n`
    /// nodes, gossiping until it knows `target_tokens` tokens.
    pub fn new(
        node: NodeId,
        n: usize,
        initial: impl IntoIterator<Item = u64>,
        target_tokens: usize,
        seed: u64,
    ) -> Self {
        TokenGossipProgram {
            known: initial.into_iter().collect(),
            n,
            target_tokens,
            rng: StdRng::seed_from_u64(seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            changed: true,
        }
    }
}

impl NodeProgram for TokenGossipProgram {
    type Msg = Vec<u64>;

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>, _round: u64) {
        for (_, tokens) in ctx
            .local_inbox()
            .iter()
            .chain(ctx.global_inbox().iter())
            .cloned()
            .collect::<Vec<_>>()
        {
            for t in tokens {
                if self.known.insert(t) {
                    self.changed = true;
                }
            }
        }
        if self.known.is_empty() {
            return;
        }
        // Local: share everything with neighbours whenever something changed.
        if self.changed {
            ctx.broadcast_local(self.known.iter().copied().collect());
            self.changed = false;
        }
        // Global: push one random known token to each of up to γ random nodes.
        let tokens: Vec<u64> = self.known.iter().copied().collect();
        let budget = ctx.global_budget_left();
        for _ in 0..budget {
            let token = tokens[self.rng.gen_range(0..tokens.len())];
            let target = self.rng.gen_range(0..self.n) as NodeId;
            if target != ctx.node() {
                ctx.send_global(target, vec![token]);
            }
        }
    }

    fn done(&self) -> bool {
        self.known.len() >= self.target_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use crate::params::ModelParams;
    use hybrid_graph::{generators, properties};

    #[test]
    fn flooding_learns_everything_within_diameter() {
        let g = generators::grid(&[5, 5]).unwrap();
        let d = properties::diameter(&g);
        let mut exec = Executor::new(&g, ModelParams::hybrid(25), |v| {
            FloodProgram::new([v as u64], d + 1)
        });
        let report = exec.run(2 * d + 2);
        assert!(report.completed);
        assert!(report.rounds <= d + 1);
        for p in exec.programs() {
            assert_eq!(p.known.len(), 25);
        }
    }

    #[test]
    fn flooding_partial_budget_learns_ball_only() {
        let g = generators::path(10).unwrap();
        let budget = 3;
        let mut exec = Executor::new(&g, ModelParams::hybrid(10), |v| {
            FloodProgram::new([v as u64], budget)
        });
        exec.run_until(budget, |_| false);
        // Node 0 should know exactly tokens 0..=3 (its 3-ball on the path).
        let known: Vec<u64> = exec.programs()[0].known.iter().copied().collect();
        assert_eq!(known, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_program_matches_centralized_bfs() {
        let g = generators::tree_balanced(3, 3).unwrap();
        let source = 0;
        let mut exec = Executor::new(&g, ModelParams::hybrid(g.n()), |v| {
            BfsProgram::new(v, source)
        });
        let report = exec.run(100);
        assert!(report.completed);
        let reference = hybrid_graph::traversal::bfs(&g, source);
        for (v, p) in exec.programs().iter().enumerate() {
            assert_eq!(p.dist, Some(reference.dist[v]));
        }
    }

    #[test]
    fn gossip_disseminates_small_k() {
        let g = generators::cycle(30).unwrap();
        let k = 5usize;
        let mut exec = Executor::new(&g, ModelParams::hybrid(30), |v| {
            let initial: Vec<u64> = if (v as usize) < k {
                vec![v as u64]
            } else {
                vec![]
            };
            TokenGossipProgram::new(v, 30, initial, k, 7)
        });
        let report = exec.run(500);
        assert!(report.completed, "gossip did not finish in 500 rounds");
        for p in exec.programs() {
            assert_eq!(p.known.len(), k);
        }
    }
}
