//! Library of ready-made [`NodeProgram`]s: flooding, BFS layering, a
//! token-gossip dissemination baseline, and fault-tolerant ack/retry flooding.
//!
//! These serve three purposes: they are genuinely useful primitives, they act
//! as executable documentation of the engine API, and they provide an
//! *independent* execution path against which the phase-engine algorithms of
//! `hybrid-core` are cross-validated in the integration tests.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hybrid_graph::NodeId;

use crate::engine::{NodeCtx, NodeProgram};

/// Flooding (Definition 4.2 of the paper): every node repeatedly forwards all
/// information it knows to all neighbours; after `t` rounds every node knows
/// everything initially held within its `t`-ball.
#[derive(Debug, Clone)]
pub struct FloodProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    new_since_last_send: bool,
    quiescent: bool,
    rounds_budget: u64,
}

impl FloodProgram {
    /// Creates a flooding node holding `initial` tokens, flooding for at most
    /// `rounds_budget` rounds.
    pub fn new(initial: impl IntoIterator<Item = u64>, rounds_budget: u64) -> Self {
        FloodProgram {
            known: initial.into_iter().collect(),
            new_since_last_send: true,
            quiescent: false,
            rounds_budget,
        }
    }
}

impl NodeProgram for FloodProgram {
    type Msg = Vec<u64>;

    fn init(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>) {
        if !self.known.is_empty() {
            ctx.broadcast_local(self.known.iter().copied().collect());
        }
        self.new_since_last_send = false;
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>, round: u64) {
        let mut learned_something = false;
        for (_, tokens) in ctx.local_inbox().to_vec() {
            for t in tokens {
                if self.known.insert(t) {
                    self.new_since_last_send = true;
                    learned_something = true;
                }
            }
        }
        self.quiescent = !learned_something;
        if round < self.rounds_budget && self.new_since_last_send {
            ctx.broadcast_local(self.known.iter().copied().collect());
            self.new_since_last_send = false;
        }
    }

    fn done(&self) -> bool {
        self.quiescent
    }
}

/// Distributed BFS: the source announces distance 0; every node adopts
/// `1 + min(neighbour distances)` the first time it hears one.  The computed
/// value equals the hop distance after `ecc(source)` rounds.
#[derive(Debug, Clone)]
pub struct BfsProgram {
    id: NodeId,
    source: NodeId,
    /// Hop distance from the source (`None` until reached).
    pub dist: Option<u64>,
    announced: bool,
}

impl BfsProgram {
    /// Creates the program for node `id` with the given BFS `source`.
    pub fn new(id: NodeId, source: NodeId) -> Self {
        BfsProgram {
            id,
            source,
            dist: if id == source { Some(0) } else { None },
            announced: false,
        }
    }
}

impl NodeProgram for BfsProgram {
    type Msg = u64;

    fn init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        if self.id == self.source {
            ctx.broadcast_local(0);
            self.announced = true;
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, u64>, _round: u64) {
        let incoming_min = ctx.local_inbox().iter().map(|&(_, d)| d).min();
        if let Some(d) = incoming_min {
            if self.dist.is_none_or(|cur| d + 1 < cur) {
                self.dist = Some(d + 1);
                self.announced = false;
            }
        }
        if let Some(d) = self.dist {
            if !self.announced {
                ctx.broadcast_local(d);
                self.announced = true;
            }
        }
    }

    fn done(&self) -> bool {
        self.dist.is_some() && self.announced
    }
}

/// A token-gossip dissemination baseline: every node pushes uniformly random
/// known tokens to uniformly random nodes over the global network (`γ` per
/// round) *and* floods everything it knows over the local network.  This is a
/// natural "unstructured" approach to `k`-dissemination; the structured
/// algorithms of the paper (and of `hybrid-core`) beat it, which the
/// integration tests demonstrate.
#[derive(Debug)]
pub struct TokenGossipProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    n: usize,
    target_tokens: usize,
    rng: StdRng,
    changed: bool,
}

impl TokenGossipProgram {
    /// Creates a gossip node holding `initial` tokens, in a network of `n`
    /// nodes, gossiping until it knows `target_tokens` tokens.
    pub fn new(
        node: NodeId,
        n: usize,
        initial: impl IntoIterator<Item = u64>,
        target_tokens: usize,
        seed: u64,
    ) -> Self {
        TokenGossipProgram {
            known: initial.into_iter().collect(),
            n,
            target_tokens,
            rng: StdRng::seed_from_u64(seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            changed: true,
        }
    }
}

impl NodeProgram for TokenGossipProgram {
    type Msg = Vec<u64>;

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Vec<u64>>, _round: u64) {
        for (_, tokens) in ctx
            .local_inbox()
            .iter()
            .chain(ctx.global_inbox().iter())
            .cloned()
            .collect::<Vec<_>>()
        {
            for t in tokens {
                if self.known.insert(t) {
                    self.changed = true;
                }
            }
        }
        if self.known.is_empty() {
            return;
        }
        // Local: share everything with neighbours whenever something changed.
        if self.changed {
            ctx.broadcast_local(self.known.iter().copied().collect());
            self.changed = false;
        }
        // Global: push one random known token to each of up to γ random nodes.
        let tokens: Vec<u64> = self.known.iter().copied().collect();
        let budget = ctx.global_budget_left();
        for _ in 0..budget {
            let token = tokens[self.rng.gen_range(0..tokens.len())];
            let target = self.rng.gen_range(0..self.n) as NodeId;
            if target != ctx.node() {
                ctx.send_global(target, vec![token]);
            }
        }
    }

    fn done(&self) -> bool {
        self.known.len() >= self.target_tokens
    }
}

/// Deterministic token forwarding — the per-node execution of the `[CHL23]`
/// (arXiv:2304.06317) broadcasting discipline on the local network: every
/// round, each node forwards to each neighbour the *smallest* known token it
/// has not yet sent to that neighbour — one token per edge per round, no
/// random bits anywhere.
///
/// This is the engine-level counterpart of the phase-level
/// `det-broadcast` pipeline in `hybrid-core`: the phase algorithm charges the
/// schedule wholesale, this program actually executes it message by message,
/// giving the integration tests an independent execution path to
/// cross-validate against.  On a path with all `k` tokens at one end the
/// one-token-per-edge discipline pipelines perfectly: the far end learns
/// token `i` at round `(n-1) + i`.
#[derive(Debug, Clone)]
pub struct DetForwardProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    /// Per-neighbour set of tokens already forwarded to that neighbour.
    sent: BTreeMap<NodeId, BTreeSet<u64>>,
    target_tokens: usize,
}

impl DetForwardProgram {
    /// Creates a forwarding node holding `initial` tokens, finished once it
    /// knows `target_tokens` tokens and owes no neighbour a forward.
    pub fn new(initial: impl IntoIterator<Item = u64>, target_tokens: usize) -> Self {
        DetForwardProgram {
            known: initial.into_iter().collect(),
            sent: BTreeMap::new(),
            target_tokens,
        }
    }

    fn forward_round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let nbs: Vec<NodeId> = ctx.neighbors().to_vec();
        for nb in nbs {
            let sent = self.sent.entry(nb).or_default();
            if let Some(&t) = self.known.iter().find(|t| !sent.contains(t)) {
                sent.insert(t);
                ctx.send_local(nb, t);
            }
        }
    }
}

impl NodeProgram for DetForwardProgram {
    type Msg = u64;

    fn init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.forward_round(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, u64>, _round: u64) {
        for (_, t) in ctx.local_inbox().to_vec() {
            self.known.insert(t);
        }
        self.forward_round(ctx);
    }

    fn done(&self) -> bool {
        self.known.len() >= self.target_tokens
            && self
                .sent
                .values()
                .all(|s| s.len() >= self.known.len().min(self.target_tokens))
    }
}

/// Message alphabet of [`AckFloodProgram`].
///
/// Serializes externally tagged (`{"Tokens": [...]}` / `{"Ack": [...]}`), so
/// the program runs unmodified on the networked `hybrid-node` runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AckFloodMsg {
    /// A batch of tokens the sender believes the receiver is missing.
    Tokens(Vec<u64>),
    /// Acknowledgement: the sender has received these tokens.
    Ack(Vec<u64>),
}

/// Fault-tolerant flooding with per-neighbour acknowledgements — the
/// unacked-cache + periodic-retransmit pattern of fault-tolerant broadcast.
///
/// Every node keeps, per neighbour, the set of tokens that neighbour has not
/// yet acknowledged.  Tokens are (re)transmitted to a neighbour whenever its
/// cache gains a token and every `retry_interval` rounds while the cache is
/// non-empty; every received token batch is acknowledged, and an ack removes
/// the tokens from the sender's cache for that neighbour.
///
/// # Completion guarantee
///
/// Under any [`FaultPlan`](crate::faults::FaultPlan) with per-attempt drop
/// rate `p < 1` whose residual graph is connected (crashes restart, the
/// partition window closes), dissemination completes: each retransmission of
/// a missing token across an edge is a fresh delivery attempt that succeeds
/// with probability at least `1 − p`, a token is only removed from a cache
/// when the neighbour provably received it (acks are not needed for progress
/// — a lost ack merely causes a harmless re-send of known tokens), and
/// retransmissions recur every `retry_interval` rounds forever.  So every
/// token crosses every edge of the residual graph eventually, with
/// probability 1.  The naive [`FloodProgram`] has no such guarantee: it sends
/// each batch once and goes quiescent, so a single dropped frontier message
/// stalls it permanently — the adversarial tests below pin both behaviours.
#[derive(Debug, Clone)]
pub struct AckFloodProgram {
    /// Tokens this node currently knows.
    pub known: BTreeSet<u64>,
    target_tokens: usize,
    retry_interval: u64,
    /// Per-neighbour cache of tokens not yet acknowledged by that neighbour.
    unacked: BTreeMap<NodeId, BTreeSet<u64>>,
    /// Neighbours whose cache gained tokens this round (sent immediately).
    fresh: BTreeSet<NodeId>,
}

impl AckFloodProgram {
    /// Creates an ack/retry flooding node holding `initial` tokens, finished
    /// once it knows `target_tokens` tokens, retransmitting unacknowledged
    /// tokens every `retry_interval` rounds (clamped to at least 1).
    pub fn new(
        initial: impl IntoIterator<Item = u64>,
        target_tokens: usize,
        retry_interval: u64,
    ) -> Self {
        AckFloodProgram {
            known: initial.into_iter().collect(),
            target_tokens,
            retry_interval: retry_interval.max(1),
            unacked: BTreeMap::new(),
            fresh: BTreeSet::new(),
        }
    }

    /// Total tokens sitting in unacknowledged caches (diagnostic).
    pub fn pending(&self) -> usize {
        self.unacked.values().map(|c| c.len()).sum()
    }
}

impl NodeProgram for AckFloodProgram {
    type Msg = AckFloodMsg;

    fn init(&mut self, ctx: &mut NodeCtx<'_, AckFloodMsg>) {
        if self.known.is_empty() {
            return;
        }
        let nbs: Vec<NodeId> = ctx.neighbors().to_vec();
        for nb in nbs {
            self.unacked.insert(nb, self.known.clone());
            ctx.send_local(
                nb,
                AckFloodMsg::Tokens(self.known.iter().copied().collect()),
            );
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, AckFloodMsg>, round: u64) {
        let inbox: Vec<(NodeId, AckFloodMsg)> = ctx.local_inbox().to_vec();
        let nbs: Vec<NodeId> = ctx.neighbors().to_vec();
        let mut acks: Vec<(NodeId, Vec<u64>)> = Vec::new();
        for (from, msg) in inbox {
            match msg {
                AckFloodMsg::Tokens(ts) => {
                    // Acknowledge everything received, known or not: the
                    // sender keeps retrying until the ack gets through.
                    acks.push((from, ts.clone()));
                    for t in ts {
                        if self.known.insert(t) {
                            for &nb in &nbs {
                                if nb != from && self.unacked.entry(nb).or_default().insert(t) {
                                    self.fresh.insert(nb);
                                }
                            }
                        }
                    }
                }
                AckFloodMsg::Ack(ts) => {
                    if let Some(cache) = self.unacked.get_mut(&from) {
                        for t in ts {
                            cache.remove(&t);
                        }
                    }
                }
            }
        }
        for (to, ts) in acks {
            ctx.send_local(to, AckFloodMsg::Ack(ts));
        }
        let retry_round = round.is_multiple_of(self.retry_interval);
        for &nb in &nbs {
            let Some(cache) = self.unacked.get(&nb) else {
                continue;
            };
            if cache.is_empty() || !(retry_round || self.fresh.contains(&nb)) {
                continue;
            }
            ctx.send_local(nb, AckFloodMsg::Tokens(cache.iter().copied().collect()));
        }
        self.fresh.clear();
    }

    fn done(&self) -> bool {
        self.known.len() >= self.target_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Executor;
    use crate::params::ModelParams;
    use hybrid_graph::{generators, properties};

    #[test]
    fn flooding_learns_everything_within_diameter() {
        let g = generators::grid(&[5, 5]).unwrap();
        let d = properties::diameter(&g);
        let config = EngineConfig::new(ModelParams::hybrid(25)).with_max_rounds(2 * d + 2);
        let mut exec = Executor::with_config(&g, config, |v| FloodProgram::new([v as u64], d + 1));
        let report = exec.run().unwrap();
        assert!(report.completed);
        assert!(report.rounds <= d + 1);
        for p in exec.programs() {
            assert_eq!(p.known.len(), 25);
        }
    }

    #[test]
    fn flooding_partial_budget_learns_ball_only() {
        let g = generators::path(10).unwrap();
        let budget = 3;
        let mut exec = Executor::new(&g, ModelParams::hybrid(10), |v| {
            FloodProgram::new([v as u64], budget)
        });
        exec.run_capped(budget, |_| false);
        // Node 0 should know exactly tokens 0..=3 (its 3-ball on the path).
        let known: Vec<u64> = exec.programs()[0].known.iter().copied().collect();
        assert_eq!(known, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_program_matches_centralized_bfs() {
        let g = generators::tree_balanced(3, 3).unwrap();
        let source = 0;
        let mut exec = Executor::new(&g, ModelParams::hybrid(g.n()), |v| {
            BfsProgram::new(v, source)
        });
        let report = exec.run().unwrap();
        assert!(report.completed);
        let reference = hybrid_graph::traversal::bfs(&g, source);
        for (v, p) in exec.programs().iter().enumerate() {
            assert_eq!(p.dist, Some(reference.dist[v]));
        }
    }

    use crate::faults::{FaultPlan, FaultSpec};

    #[test]
    fn ack_flood_matches_plain_flooding_when_failure_free() {
        let g = generators::grid(&[5, 5]).unwrap();
        let d = properties::diameter(&g);
        let config = EngineConfig::new(ModelParams::hybrid(25)).with_max_rounds(4 * d + 4);
        let mut exec =
            Executor::with_config(&g, config, |v| AckFloodProgram::new([v as u64], 25, 2));
        let report = exec.run().unwrap();
        assert!(report.completed);
        // One extra round versus plain flooding is the ack round-trip slack.
        assert!(report.rounds <= d + 2, "took {} rounds", report.rounds);
        for p in exec.programs() {
            assert_eq!(p.known.len(), 25);
        }
    }

    /// The adversarial pair pinning the tentpole guarantee: under a heavy
    /// drop rate the naive send-once flooding stalls with most of the graph
    /// never learning the tokens, while the ack/retry program completes on
    /// the same graph under the same fault plan (same seed).
    #[test]
    fn naive_flood_stalls_where_ack_flood_completes() {
        let n = 16usize;
        let k = 4usize;
        let g = generators::path(n).unwrap();
        let params = ModelParams::hybrid(n);
        let plan = FaultPlan::new(FaultSpec::drop_only(0.6), 0xBAD, n);
        let tokens: Vec<u64> = (0..k as u64).collect();

        // Naive: floods once per new batch, no retries.  A single dropped
        // frontier message permanently stalls the wave on a path.
        let naive_config = EngineConfig::new(params).with_fault_plan(plan.clone());
        let mut naive = Executor::with_config(&g, naive_config, |v| {
            let initial = if v == 0 { tokens.clone() } else { vec![] };
            FloodProgram::new(initial, 5_000)
        });
        naive.run_capped(5_000, |ps| ps.iter().all(|p| p.known.len() >= k));
        let naive_informed = naive
            .programs()
            .iter()
            .filter(|p| p.known.len() >= k)
            .count();
        assert!(
            naive_informed < n,
            "naive flooding should stall under a 60% drop rate \
             ({naive_informed}/{n} informed — pick a different seed if this ever flips)"
        );

        // Ack/retry: same graph, same adversary, same seed — completes.
        let ack_config = EngineConfig::new(params)
            .with_fault_plan(plan)
            .with_max_rounds(5_000);
        let mut ack = Executor::with_config(&g, ack_config, |v| {
            let initial = if v == 0 { tokens.clone() } else { vec![] };
            AckFloodProgram::new(initial, k, 2)
        });
        let report = ack.run().expect("ack/retry dissemination must complete");
        assert!(report.completed, "ack/retry dissemination must complete");
        assert!(report.injected_drops > 0, "the adversary was active");
        for p in ack.programs() {
            assert_eq!(p.known.len(), k);
        }
    }

    /// The completion guarantee across the drop-rate range: any `p < 1` on a
    /// connected residual graph — exercised at 30%, 60% and 90% loss.
    #[test]
    fn ack_flood_completes_under_any_drop_rate_below_one() {
        for (drop, budget) in [(0.3, 2_000u64), (0.6, 4_000), (0.9, 20_000)] {
            let n = 12usize;
            let g = generators::cycle(n).unwrap();
            let config = EngineConfig::new(ModelParams::hybrid(n))
                .with_fault_plan(FaultPlan::new(FaultSpec::drop_only(drop), 42, n))
                .with_max_rounds(budget);
            let mut exec = Executor::with_config(&g, config, |v| {
                let initial = if v == 0 { vec![7u64] } else { vec![] };
                AckFloodProgram::new(initial, 1, 2)
            });
            let report = exec.run();
            assert!(
                report.is_ok(),
                "drop rate {drop}: not everyone informed after {budget} rounds"
            );
        }
    }

    /// The full adversary: drops, duplicates, delays, crash-restarts and a
    /// transient partition together — the residual graph is connected, so the
    /// ack/retry program still completes.
    #[test]
    fn ack_flood_survives_the_combined_adversary() {
        let n = 18usize;
        let g = generators::cycle(n).unwrap();
        let spec = FaultSpec {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay_prob: 0.1,
            max_delay_rounds: 3,
            crash_prob: 0.4,
            crash_down_rounds: 6,
            crash_horizon_rounds: 12,
            partition_start: 4,
            partition_rounds: 8,
        };
        let config = EngineConfig::new(ModelParams::hybrid(n))
            .with_fault_plan(FaultPlan::new(spec, 4, n))
            .with_max_rounds(10_000);
        let mut exec = Executor::with_config(&g, config, |v| {
            let initial = if v == 0 { vec![1u64, 2, 3] } else { vec![] };
            AckFloodProgram::new(initial, 3, 2)
        });
        let report = exec.run().expect("combined adversary defeated ack/retry");
        assert!(report.completed, "combined adversary defeated ack/retry");
        for p in exec.programs() {
            assert_eq!(p.known.len(), 3);
        }
    }

    #[test]
    fn det_forward_pipelines_one_token_per_edge_on_the_path() {
        let n = 12usize;
        let k = 4usize;
        let g = generators::path(n).unwrap();
        let tokens: Vec<u64> = (0..k as u64).collect();
        let config = EngineConfig::new(ModelParams::hybrid(n)).with_max_rounds(10 * (n + k) as u64);
        let mut exec = Executor::with_config(&g, config, |v| {
            DetForwardProgram::new(if v == 0 { tokens.clone() } else { vec![] }, k)
        });
        let report = exec.run().unwrap();
        assert!(report.completed);
        for p in exec.programs() {
            assert_eq!(p.known.len(), k);
        }
        // Perfect pipelining: token i reaches the far end at round (n-1)+i,
        // so everyone is informed by round (n-1)+(k-1) (+1 slack for the
        // final owed forwards in done()).
        assert!(
            report.rounds <= (n + k) as u64 + 1,
            "pipelining broke: took {} rounds",
            report.rounds
        );
        assert!(report.rounds >= (n - 1) as u64);
    }

    #[test]
    fn det_forward_is_deterministic_and_matches_flooding_sets() {
        let g = generators::grid(&[6, 5]).unwrap();
        let k = 7usize;
        let run = || {
            let mut exec = Executor::new(&g, ModelParams::hybrid(30), |v| {
                let initial: Vec<u64> = if (v as usize) < k {
                    vec![v as u64]
                } else {
                    vec![]
                };
                DetForwardProgram::new(initial, k)
            });
            let report = exec.run_capped(5_000, |ps| ps.iter().all(|p| p.done()));
            assert!(report.completed);
            let sets: Vec<Vec<u64>> = exec
                .programs()
                .iter()
                .map(|p| p.known.iter().copied().collect())
                .collect();
            (report.rounds, sets)
        };
        let (rounds_a, sets_a) = run();
        let (rounds_b, sets_b) = run();
        assert_eq!(rounds_a, rounds_b, "replay diverged");
        assert_eq!(sets_a, sets_b);
        let expected: Vec<u64> = (0..k as u64).collect();
        for set in &sets_a {
            assert_eq!(set, &expected);
        }
    }

    #[test]
    fn gossip_disseminates_small_k() {
        let g = generators::cycle(30).unwrap();
        let k = 5usize;
        let mut exec = Executor::new(&g, ModelParams::hybrid(30), |v| {
            let initial: Vec<u64> = if (v as usize) < k {
                vec![v as u64]
            } else {
                vec![]
            };
            TokenGossipProgram::new(v, 30, initial, k, 7)
        });
        let report = exec.run_capped(500, |ps| ps.iter().all(|p| p.done()));
        assert!(report.completed, "gossip did not finish in 500 rounds");
        for p in exec.programs() {
            assert_eq!(p.known.len(), k);
        }
    }
}
