//! A true per-node synchronous message-passing engine.
//!
//! Every node of the local communication graph runs its own [`NodeProgram`]
//! instance.  In each round the executor
//!
//! 1. hands every node the local and global messages addressed to it in the
//!    previous round,
//! 2. lets it perform arbitrary local computation and enqueue outgoing
//!    messages (local messages only to neighbours; global messages to any
//!    known node, subject to the per-round send cap `γ`),
//! 3. enforces the per-round global *receive* cap `γ`: excess messages are
//!    dropped (the paper's "adversary drops messages" reading, Section 1.3)
//!    and counted, so tests can assert that well-designed algorithms never
//!    exceed the bound.
//!
//! # Mailbox engine
//!
//! Delivery is backed by **double-buffered, index-sorted flat arenas**
//! (`Arena`): while a round runs, outgoing messages accumulate in a single
//! flat staging vector tagged `(destination, sequence)`; at the round
//! boundary the staging vector is sorted by that key (unstable sort — the
//! sequence number makes the key unique, so the order is deterministic and
//! identical to the old stable per-node queues) and drained into the arena,
//! whose per-destination offsets turn next round's inbox delivery into pure
//! slice slicing.  No per-node `Vec` is rebuilt and no message is cloned
//! anywhere in the cycle; all buffers are reused round over round, so a
//! steady-state round allocates nothing.
//!
//! This engine is used for the simpler primitives (flooding, BFS, token
//! gossip) and to validate the phase engine against a fully explicit
//! execution; the heavy universal algorithms use the phase engine in
//! [`crate::network`].

use hybrid_graph::{Graph, NodeId};

use crate::config::{EngineConfig, EngineError};
use crate::envelope::{body_json, Body, RoundTrace, TraceEntry};
use crate::faults::{Fate, FaultPlan};
use crate::params::ModelParams;

/// Per-round interface a node program uses to read its mailboxes and send
/// messages.
pub struct NodeCtx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    local_inbox: &'a [(NodeId, M)],
    global_inbox: &'a [(NodeId, M)],
    local_outbox: &'a mut Vec<(NodeId, M)>,
    global_outbox: &'a mut Vec<(NodeId, M)>,
    gamma: usize,
    global_send_overflow: u64,
}

impl<'a, M: Clone> NodeCtx<'a, M> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Neighbours in the local communication graph.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Local messages received this round as `(sender, message)` pairs.
    pub fn local_inbox(&self) -> &[(NodeId, M)] {
        self.local_inbox
    }

    /// Global messages received this round as `(sender, message)` pairs.
    pub fn global_inbox(&self) -> &[(NodeId, M)] {
        self.global_inbox
    }

    /// Sends a message over the local edge to `to`.
    ///
    /// # Panics
    /// Panics if `to` is not a neighbour — local communication only exists
    /// along edges of `G`.
    pub fn send_local(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(&to),
            "node {} tried to send a local message to non-neighbor {}",
            self.node,
            to
        );
        self.local_outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbour over the local network.
    pub fn broadcast_local(&mut self, msg: M) {
        for &nb in self.neighbors {
            self.local_outbox.push((nb, msg.clone()));
        }
    }

    /// Sends a global message to an arbitrary node.  Returns `false` (and does
    /// not send) if this node has already used its `γ` global sends this round.
    pub fn send_global(&mut self, to: NodeId, msg: M) -> bool {
        if self.global_outbox.len() >= self.gamma {
            self.global_send_overflow += 1;
            return false;
        }
        self.global_outbox.push((to, msg));
        true
    }

    /// Remaining global send budget this round.
    pub fn global_budget_left(&self) -> usize {
        self.gamma.saturating_sub(self.global_outbox.len())
    }
}

/// A per-node synchronous program.
///
/// The message type is bound by [`Body`], so the same program runs on the
/// in-process engine (messages moved by value, never serialized) and on the
/// networked `hybrid-node` runtime (messages framed as JSON envelopes at the
/// process boundary) without modification.
pub trait NodeProgram {
    /// Message type exchanged by the program (same for local and global mode).
    type Msg: Body;

    /// Called once before the first round (round 0), e.g. to seed initial
    /// messages.
    fn init(&mut self, _ctx: &mut NodeCtx<'_, Self::Msg>) {}

    /// Called once per round with the messages received at the beginning of
    /// the round.
    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, round: u64);

    /// Whether this node considers itself finished (it will still receive
    /// messages and may be woken up again).
    fn done(&self) -> bool;
}

/// Summary of an engine execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Local messages delivered.
    pub local_messages: u64,
    /// Global messages delivered.
    pub global_messages: u64,
    /// Global messages dropped because a receiver exceeded its per-round cap.
    pub dropped_global: u64,
    /// Global sends refused because a sender exceeded its per-round cap.
    pub refused_sends: u64,
    /// Messages destroyed by fault injection: drop fates, crashed receivers
    /// and partition-severed local edges (zero without a fault plan).
    pub injected_drops: u64,
    /// Extra message copies delivered by fault-injected duplication.
    pub injected_duplicates: u64,
    /// Messages held back by fault-injected delay (each is delivered later).
    pub injected_delays: u64,
    /// Whether the run ended because every program reported `done()`
    /// (otherwise the round limit was hit).
    pub completed: bool,
}

/// One staged message: `(destination, sequence, sender, payload)`.  The
/// sequence number is the global arrival index within the round, making the
/// `(destination, sequence)` sort key unique — an unstable sort therefore
/// yields exactly the stable per-destination sender order the engine's
/// semantics promise.
type Staged<M> = (NodeId, u32, NodeId, M);

/// An index-sorted flat mailbox arena: all messages of a round, grouped by
/// destination, plus per-destination offsets.  Buffers persist across rounds.
struct Arena<M> {
    data: Vec<(NodeId, M)>,
    offsets: Vec<u32>,
}

impl<M> Arena<M> {
    fn new(n: usize) -> Self {
        Arena {
            data: Vec::new(),
            offsets: vec![0; n + 1],
        }
    }

    /// Inbox slice of node `v`.
    #[inline]
    fn inbox(&self, v: usize) -> &[(NodeId, M)] {
        &self.data[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Sorts `stage` by `(destination, sequence)` and drains it into the
    /// arena.  With `receive_cap = Some(γ)`, only the first `γ` messages per
    /// destination (in sender order) are delivered; the rest are counted as
    /// dropped.  Returns `(delivered, dropped)`.
    fn fill_from(&mut self, stage: &mut Vec<Staged<M>>, receive_cap: Option<usize>) -> (u64, u64) {
        let n = self.offsets.len() - 1;
        stage.sort_unstable_by_key(|&(to, seq, _, _)| (to, seq));
        self.data.clear();
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut cur_dest = 0usize;
        let mut in_dest = 0usize;
        self.offsets[0] = 0;
        for (to, _, from, msg) in stage.drain(..) {
            let to = to as usize;
            // Fail fast on out-of-range destinations (the pre-arena engine
            // panicked at routing time; keep that program-bug diagnosis
            // instead of silently losing the message).
            assert!(
                to < n,
                "message addressed to out-of-range node {to} (n = {n})"
            );
            while cur_dest < to {
                self.offsets[cur_dest + 1] = self.data.len() as u32;
                cur_dest += 1;
                in_dest = 0;
            }
            if receive_cap.is_some_and(|cap| in_dest >= cap) {
                dropped += 1;
            } else {
                self.data.push((from, msg));
                in_dest += 1;
                delivered += 1;
            }
        }
        while cur_dest < n {
            self.offsets[cur_dest + 1] = self.data.len() as u32;
            cur_dest += 1;
        }
        (delivered, dropped)
    }
}

/// Synchronous executor running one [`NodeProgram`] per node.
///
/// Configuration — model parameters, fault plan, round cap, trace recording
/// — comes from one [`EngineConfig`] ([`Executor::with_config`]), the same
/// builder the phase engine and the networked driver accept.
///
/// With a fault plan installed ([`EngineConfig::with_fault_plan`]) the round
/// boundary applies the adversary to every staged message: a crashed node
/// executes no program steps and receives nothing while down (its state
/// survives — the crash-*restart* model), a partition-severed local edge
/// carries nothing, and surviving messages draw a drop / duplicate / delay
/// fate from the plan's hash stream.  The fate coordinate is the *sending*
/// round, so the engine and the phase engine address the same adversary.
pub struct Executor<'g, P: NodeProgram> {
    graph: &'g Graph,
    config: EngineConfig,
    programs: Vec<P>,
    neighbor_lists: Vec<Vec<NodeId>>,
    trace: Vec<RoundTrace>,
}

impl<'g, P: NodeProgram> Executor<'g, P> {
    /// Creates an executor with one program per node (programs are produced by
    /// the factory, which receives the node id) and default configuration.
    pub fn new(graph: &'g Graph, params: ModelParams, factory: impl FnMut(NodeId) -> P) -> Self {
        Self::with_config(graph, EngineConfig::new(params), factory)
    }

    /// Creates an executor from a full [`EngineConfig`].
    ///
    /// # Panics
    /// Panics if `config.params().n` does not match the graph's node count.
    pub fn with_config(
        graph: &'g Graph,
        config: EngineConfig,
        factory: impl FnMut(NodeId) -> P,
    ) -> Self {
        assert_eq!(config.params().n, graph.n());
        let programs: Vec<P> = graph.nodes().map(factory).collect();
        let neighbor_lists: Vec<Vec<NodeId>> = graph
            .nodes()
            .map(|v| graph.neighbors(v).collect())
            .collect();
        Executor {
            graph,
            config,
            programs,
            neighbor_lists,
            trace: Vec::new(),
        }
    }

    /// Installs a fault plan; a failure-free plan is equivalent to none.
    ///
    /// # Panics
    /// Panics if the plan was built for a different node count.
    #[deprecated(note = "pass the plan through `EngineConfig::with_fault_plan` instead")]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.config = self.config.clone().with_fault_plan(plan);
    }

    /// Read access to the per-node programs (e.g. to extract results).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The per-round delivered-message trace of the last run, emptied out.
    /// Non-empty only when the configuration enables trace recording.
    pub fn take_trace(&mut self) -> Vec<RoundTrace> {
        std::mem::take(&mut self.trace)
    }

    /// Runs until every program reports `done()`.
    ///
    /// # Errors
    /// [`EngineError::RoundLimitExceeded`] (carrying the partial report) if
    /// the configured round cap is exhausted first — truncation is a typed
    /// error, never a silently capped report.
    pub fn run(&mut self) -> Result<RunReport, EngineError> {
        self.run_until(|programs| programs.iter().all(|p| p.done()))
    }

    /// Runs until `stop(programs)` holds (checked after every round).
    ///
    /// # Errors
    /// [`EngineError::RoundLimitExceeded`] if the configured round cap is
    /// exhausted before the stop condition holds.
    pub fn run_until(&mut self, stop: impl Fn(&[P]) -> bool) -> Result<RunReport, EngineError> {
        let limit = self.config.max_rounds();
        let report = self.run_capped(limit, stop);
        if report.completed {
            Ok(report)
        } else {
            Err(EngineError::RoundLimitExceeded { limit, report })
        }
    }

    /// Runs a deliberately bounded window: at most `max_rounds` rounds,
    /// stopping early iff `stop(programs)` holds.  Unlike [`Executor::run`],
    /// hitting the bound is *not* an error — the report's `completed` flag
    /// records whether the stop condition was reached.  Use this when the
    /// window itself is the experiment (partial flooding, fixed-horizon
    /// sweeps); use `run`/`run_until` when termination is expected.
    pub fn run_capped(&mut self, max_rounds: u64, stop: impl Fn(&[P]) -> bool) -> RunReport {
        let n = self.graph.n();
        let gamma = self.config.params().global_capacity_msgs;
        let local_enabled = self.config.params().has_local();
        let record_trace = self.config.record_trace();
        self.trace.clear();

        // Double-buffered flat mailboxes: the arenas hold the messages being
        // *read* this round, the staging vectors collect the messages being
        // *written*; `fill_from` turns staging into next round's arenas.
        let mut local_arena: Arena<P::Msg> = Arena::new(n);
        let mut global_arena: Arena<P::Msg> = Arena::new(n);
        let mut local_stage: Vec<Staged<P::Msg>> = Vec::new();
        let mut global_stage: Vec<Staged<P::Msg>> = Vec::new();
        // Per-node outboxes, drained into staging after every node and reused.
        let mut local_out: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut global_out: Vec<(NodeId, P::Msg)> = Vec::new();

        // Fault-injection state: messages held back by delay fates, keyed by
        // the sending round at which they re-enter staging.  Cloning the plan
        // up front keeps the borrow checker away from the program loop.
        let faults = self.config.fault_plan().cloned();
        let mut held_local: Vec<(u64, NodeId, NodeId, P::Msg)> = Vec::new();
        let mut held_global: Vec<(u64, NodeId, NodeId, P::Msg)> = Vec::new();
        let mut fault_scratch: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();

        let mut report = RunReport {
            rounds: 0,
            local_messages: 0,
            global_messages: 0,
            dropped_global: 0,
            refused_sends: 0,
            injected_drops: 0,
            injected_duplicates: 0,
            injected_delays: 0,
            completed: false,
        };

        // Init pass (round 0): no inboxes yet.
        for v in 0..n {
            let mut ctx = NodeCtx {
                node: v as NodeId,
                neighbors: &self.neighbor_lists[v],
                local_inbox: &[],
                global_inbox: &[],
                local_outbox: &mut local_out,
                global_outbox: &mut global_out,
                gamma,
                global_send_overflow: 0,
            };
            self.programs[v].init(&mut ctx);
            report.refused_sends += ctx.global_send_overflow;
            Self::stage_outboxes(
                v as NodeId,
                local_enabled,
                &mut local_out,
                &mut global_out,
                &mut local_stage,
                &mut global_stage,
            );
        }
        if let Some(plan) = &faults {
            Self::apply_faults(
                plan,
                0,
                true,
                &mut local_stage,
                &mut held_local,
                &mut fault_scratch,
                &mut report,
            );
            Self::apply_faults(
                plan,
                0,
                false,
                &mut global_stage,
                &mut held_global,
                &mut fault_scratch,
                &mut report,
            );
        }
        let (delivered, _) = local_arena.fill_from(&mut local_stage, None);
        report.local_messages += delivered;
        let (delivered, dropped) = global_arena.fill_from(&mut global_stage, Some(gamma));
        report.global_messages += delivered;
        report.dropped_global += dropped;
        if record_trace {
            self.trace
                .push(Self::trace_round(0, &local_arena, &global_arena, n));
        }

        if stop(&self.programs) {
            report.completed = true;
            return report;
        }

        for round in 1..=max_rounds {
            report.rounds = round;
            for v in 0..n {
                // A crashed node executes nothing while down; its inboxes are
                // discarded unread (apply_faults already dropped anything
                // addressed to a down receiver, so nothing is silently lost).
                if faults
                    .as_ref()
                    .is_some_and(|p| p.is_down(v as NodeId, round))
                {
                    continue;
                }
                let mut ctx = NodeCtx {
                    node: v as NodeId,
                    neighbors: &self.neighbor_lists[v],
                    local_inbox: local_arena.inbox(v),
                    global_inbox: global_arena.inbox(v),
                    local_outbox: &mut local_out,
                    global_outbox: &mut global_out,
                    gamma,
                    global_send_overflow: 0,
                };
                self.programs[v].on_round(&mut ctx, round);
                report.refused_sends += ctx.global_send_overflow;
                Self::stage_outboxes(
                    v as NodeId,
                    local_enabled,
                    &mut local_out,
                    &mut global_out,
                    &mut local_stage,
                    &mut global_stage,
                );
            }
            if let Some(plan) = &faults {
                Self::apply_faults(
                    plan,
                    round,
                    true,
                    &mut local_stage,
                    &mut held_local,
                    &mut fault_scratch,
                    &mut report,
                );
                Self::apply_faults(
                    plan,
                    round,
                    false,
                    &mut global_stage,
                    &mut held_global,
                    &mut fault_scratch,
                    &mut report,
                );
            }
            let (delivered, _) = local_arena.fill_from(&mut local_stage, None);
            report.local_messages += delivered;
            let (delivered, dropped) = global_arena.fill_from(&mut global_stage, Some(gamma));
            report.global_messages += delivered;
            report.dropped_global += dropped;
            if record_trace {
                self.trace
                    .push(Self::trace_round(round, &local_arena, &global_arena, n));
            }

            if stop(&self.programs) {
                report.completed = true;
                return report;
            }
        }
        report
    }

    /// Snapshots one round's delivered messages from the filled arenas, in
    /// the arenas' deterministic order (destination-major, then staging
    /// sequence) — the order the conformance contract pins.
    fn trace_round(
        round: u64,
        local: &Arena<P::Msg>,
        global: &Arena<P::Msg>,
        n: usize,
    ) -> RoundTrace {
        let collect = |arena: &Arena<P::Msg>| {
            let mut entries = Vec::with_capacity(arena.data.len());
            for v in 0..n {
                for (src, msg) in arena.inbox(v) {
                    entries.push(TraceEntry {
                        src: *src,
                        dst: v as NodeId,
                        body: body_json(msg),
                    });
                }
            }
            entries
        };
        RoundTrace {
            round,
            local: collect(local),
            global: collect(global),
        }
    }

    /// Applies the fault plan to one staging buffer at the end of sending
    /// round `round`: first releases the held (delayed) messages whose time
    /// has come back into the stage, then draws one fate per staged message.
    /// Messages crossing a severed partition edge (`is_local` only) or
    /// addressed to a receiver that is down at the delivery round `round + 1`
    /// are destroyed and counted as injected drops — the sender's program is
    /// responsible for retrying (that is the ack/retry contract).  Sequence
    /// numbers are reassigned densely afterwards so the arena sort key stays
    /// unique; the surviving relative order is unchanged and deterministic.
    fn apply_faults(
        plan: &FaultPlan,
        round: u64,
        is_local: bool,
        stage: &mut Vec<Staged<P::Msg>>,
        held: &mut Vec<(u64, NodeId, NodeId, P::Msg)>,
        scratch: &mut Vec<(NodeId, NodeId, P::Msg)>,
        report: &mut RunReport,
    ) {
        let mut i = 0;
        while i < held.len() {
            if held[i].0 <= round {
                let (_, to, from, msg) = held.swap_remove(i);
                let seq = stage.len() as u32;
                stage.push((to, seq, from, msg));
            } else {
                i += 1;
            }
        }
        scratch.clear();
        for (idx, (to, _, from, msg)) in stage.drain(..).enumerate() {
            if is_local && plan.cuts_local_edge(from, to, round) {
                report.injected_drops += 1;
                continue;
            }
            if plan.is_down(to, round + 1) {
                report.injected_drops += 1;
                continue;
            }
            // The top idx bit separates the local and global fate streams so
            // the two mailbox planes never draw correlated decisions.
            let idx = idx as u64 | if is_local { 0 } else { 1 << 63 };
            match plan.fate(round, from, to, idx) {
                Fate::Deliver => scratch.push((to, from, msg)),
                Fate::Drop => report.injected_drops += 1,
                Fate::Duplicate => {
                    report.injected_duplicates += 1;
                    scratch.push((to, from, msg.clone()));
                    scratch.push((to, from, msg));
                }
                Fate::Delay(d) => {
                    report.injected_delays += 1;
                    held.push((round + d, to, from, msg));
                }
            }
        }
        for (seq, (to, from, msg)) in scratch.drain(..).enumerate() {
            stage.push((to, seq as u32, from, msg));
        }
    }

    /// Drains a node's outboxes into the round staging buffers.
    fn stage_outboxes(
        sender: NodeId,
        local_enabled: bool,
        local_out: &mut Vec<(NodeId, P::Msg)>,
        global_out: &mut Vec<(NodeId, P::Msg)>,
        local_stage: &mut Vec<Staged<P::Msg>>,
        global_stage: &mut Vec<Staged<P::Msg>>,
    ) {
        if !local_out.is_empty() {
            assert!(
                local_enabled,
                "node {sender} sent local messages but the model has no local mode"
            );
        }
        for (to, msg) in local_out.drain(..) {
            let seq = local_stage.len() as u32;
            local_stage.push((to, seq, sender, msg));
        }
        for (to, msg) in global_out.drain(..) {
            let seq = global_stage.len() as u32;
            global_stage.push((to, seq, sender, msg));
        }
    }
}

/// The outgoing messages of one program step, in send order.
///
/// The γ *send* cap has already been enforced by the runner (refusals are
/// counted); the γ *receive* cap is the router's job — the in-process
/// executor applies it in `Arena::fill_from`, the networked driver applies
/// the identical rule when it routes envelopes between node processes.
#[derive(Debug, Clone)]
pub struct StepOutput<M> {
    /// Local messages as `(destination, payload)` — destinations are always
    /// neighbours (enforced by [`NodeCtx::send_local`]).
    pub local: Vec<(NodeId, M)>,
    /// Global messages as `(destination, payload)`, at most γ of them.
    pub global: Vec<(NodeId, M)>,
    /// Global sends refused by the γ send cap this step.
    pub refused: u64,
}

/// Drives a single node's [`NodeProgram`] outside the in-process executor.
///
/// This is the building block of the networked `hybrid-node` runtime: one
/// process holds one `NodeRunner` and exchanges inboxes/outboxes with the
/// driver over the wire.  The runner constructs the exact same [`NodeCtx`]
/// the executor does, so program-facing semantics — neighbour checks, the γ
/// send cap, budget accounting — are identical by construction, not by
/// reimplementation.
pub struct NodeRunner<P: NodeProgram> {
    node: NodeId,
    neighbors: Vec<NodeId>,
    gamma: usize,
    local_enabled: bool,
    program: P,
}

impl<P: NodeProgram> NodeRunner<P> {
    /// Creates a runner for `node` with its local-graph neighbourhood.
    pub fn new(node: NodeId, neighbors: Vec<NodeId>, params: &ModelParams, program: P) -> Self {
        NodeRunner {
            node,
            neighbors,
            gamma: params.global_capacity_msgs,
            local_enabled: params.has_local(),
            program,
        }
    }

    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Runs the program's init pass (round 0) with empty inboxes.
    pub fn init(&mut self) -> StepOutput<P::Msg> {
        self.drive(None, &[], &[])
    }

    /// Runs one program round with the given inboxes.
    pub fn step(
        &mut self,
        round: u64,
        local_inbox: &[(NodeId, P::Msg)],
        global_inbox: &[(NodeId, P::Msg)],
    ) -> StepOutput<P::Msg> {
        self.drive(Some(round), local_inbox, global_inbox)
    }

    fn drive(
        &mut self,
        round: Option<u64>,
        local_inbox: &[(NodeId, P::Msg)],
        global_inbox: &[(NodeId, P::Msg)],
    ) -> StepOutput<P::Msg> {
        let mut local_out: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut global_out: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut ctx = NodeCtx {
            node: self.node,
            neighbors: &self.neighbors,
            local_inbox,
            global_inbox,
            local_outbox: &mut local_out,
            global_outbox: &mut global_out,
            gamma: self.gamma,
            global_send_overflow: 0,
        };
        match round {
            None => self.program.init(&mut ctx),
            Some(r) => self.program.on_round(&mut ctx, r),
        }
        let refused = ctx.global_send_overflow;
        assert!(
            local_out.is_empty() || self.local_enabled,
            "node {} sent local messages but the model has no local mode",
            self.node
        );
        StepOutput {
            local: local_out,
            global: global_out,
            refused,
        }
    }

    /// Whether the program reports itself finished.
    pub fn done(&self) -> bool {
        self.program.done()
    }

    /// Read access to the program (e.g. to extract final state).
    pub fn program(&self) -> &P {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;

    /// A trivial program: node 0 starts a wave; every node forwards the wave
    /// to its neighbours once; done when it has seen the wave.
    struct Wave {
        id: NodeId,
        seen: bool,
        forwarded: bool,
    }

    impl NodeProgram for Wave {
        type Msg = ();

        fn init(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if self.id == 0 {
                self.seen = true;
                self.forwarded = true;
                ctx.broadcast_local(());
            }
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, _round: u64) {
            if !ctx.local_inbox().is_empty() {
                self.seen = true;
            }
            if self.seen && !self.forwarded {
                self.forwarded = true;
                ctx.broadcast_local(());
            }
        }

        fn done(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn wave_reaches_everyone_in_diameter_rounds() {
        let g = generators::path(10).unwrap();
        let params = ModelParams::hybrid(10);
        let mut exec = Executor::new(&g, params, |id| Wave {
            id,
            seen: false,
            forwarded: false,
        });
        let report = exec.run().expect("wave completes well under the cap");
        assert!(report.completed);
        assert_eq!(report.rounds, 9);
        assert!(exec.programs().iter().all(|p| p.seen));
        assert_eq!(report.dropped_global, 0);
    }

    /// Program where everyone sends a global message to node 0 in round 1;
    /// with small gamma most messages are dropped — the engine must count them.
    struct Spam {
        id: NodeId,
        received: usize,
    }

    impl NodeProgram for Spam {
        type Msg = u32;

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, u32>, round: u64) {
            if round == 1 && self.id != 0 {
                ctx.send_global(0, self.id);
            }
            self.received += ctx.global_inbox().len();
        }

        fn done(&self) -> bool {
            false
        }
    }

    #[test]
    fn receive_cap_drops_excess() {
        let g = generators::star(20).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(20, 4);
        let mut exec = Executor::new(&g, params, |id| Spam { id, received: 0 });
        let report = exec.run_capped(3, |_| false);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.global_messages, 4);
        assert_eq!(report.dropped_global, 15);
        assert_eq!(exec.programs()[0].received, 4);
    }

    /// Sender-side cap: a node trying to send more than gamma global messages
    /// in one round has the excess refused.
    struct Blaster {
        id: NodeId,
        refused: bool,
    }

    impl NodeProgram for Blaster {
        type Msg = ();

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, round: u64) {
            if round == 1 && self.id == 0 {
                for t in 1..10u32 {
                    if !ctx.send_global(t, ()) {
                        self.refused = true;
                    }
                }
                assert_eq!(ctx.global_budget_left(), 0);
            }
        }

        fn done(&self) -> bool {
            true
        }
    }

    #[test]
    fn send_cap_refuses_excess() {
        let g = generators::cycle(10).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(10, 3);
        let mut exec = Executor::new(&g, params, |id| Blaster { id, refused: false });
        let report = exec.run_capped(1, |_| false);
        assert_eq!(report.global_messages, 3);
        assert_eq!(report.refused_sends, 6);
        assert!(exec.programs()[0].refused);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn local_send_to_non_neighbor_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, _round: u64) {
                if ctx.node() == 0 {
                    ctx.send_local(5, ());
                }
            }
            fn done(&self) -> bool {
                false
            }
        }
        let g = generators::path(10).unwrap();
        let mut exec = Executor::new(&g, ModelParams::hybrid(10), |_| Bad);
        exec.run_capped(1, |_| false);
    }

    /// Reference executor reproducing the pre-arena ("seed") mailbox
    /// semantics literally: per-node `Vec` inboxes rebuilt every round,
    /// senders routed in node order, receive cap applied in arrival order.
    /// The regression tests below prove the arena engine delivers the exact
    /// same per-round messages.
    fn run_reference<P: NodeProgram>(
        graph: &Graph,
        params: ModelParams,
        mut factory: impl FnMut(NodeId) -> P,
        max_rounds: u64,
    ) -> (Vec<P>, RunReport) {
        let n = graph.n();
        let gamma = params.global_capacity_msgs;
        let local_enabled = params.has_local();
        let mut programs: Vec<P> = graph.nodes().map(&mut factory).collect();
        let neighbor_lists: Vec<Vec<NodeId>> = graph
            .nodes()
            .map(|v| graph.neighbors(v).collect())
            .collect();

        let mut report = RunReport {
            rounds: 0,
            local_messages: 0,
            global_messages: 0,
            dropped_global: 0,
            refused_sends: 0,
            injected_drops: 0,
            injected_duplicates: 0,
            injected_delays: 0,
            completed: false,
        };
        let mut local_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut global_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];

        let route = |sender: NodeId,
                     local_outbox: Vec<(NodeId, P::Msg)>,
                     global_outbox: Vec<(NodeId, P::Msg)>,
                     out_local: &mut Vec<Vec<(NodeId, P::Msg)>>,
                     out_global: &mut Vec<Vec<(NodeId, P::Msg)>>,
                     out_counts: &mut Vec<usize>,
                     report: &mut RunReport| {
            assert!(local_outbox.is_empty() || local_enabled);
            for (to, msg) in local_outbox {
                out_local[to as usize].push((sender, msg));
                report.local_messages += 1;
            }
            for (to, msg) in global_outbox {
                if out_counts[to as usize] < gamma {
                    out_counts[to as usize] += 1;
                    out_global[to as usize].push((sender, msg));
                    report.global_messages += 1;
                } else {
                    report.dropped_global += 1;
                }
            }
        };

        for round in 0..=max_rounds {
            let mut out_local: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut out_global: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut out_counts: Vec<usize> = vec![0; n];
            for v in 0..n {
                let mut local_outbox = Vec::new();
                let mut global_outbox = Vec::new();
                let mut ctx = NodeCtx {
                    node: v as NodeId,
                    neighbors: &neighbor_lists[v],
                    local_inbox: &local_inboxes[v],
                    global_inbox: &global_inboxes[v],
                    local_outbox: &mut local_outbox,
                    global_outbox: &mut global_outbox,
                    gamma,
                    global_send_overflow: 0,
                };
                if round == 0 {
                    programs[v].init(&mut ctx);
                } else {
                    programs[v].on_round(&mut ctx, round);
                }
                report.refused_sends += ctx.global_send_overflow;
                route(
                    v as NodeId,
                    local_outbox,
                    global_outbox,
                    &mut out_local,
                    &mut out_global,
                    &mut out_counts,
                    &mut report,
                );
            }
            if round > 0 {
                report.rounds = round;
            }
            local_inboxes = out_local;
            global_inboxes = out_global;
        }
        (programs, report)
    }

    /// `(round, local inbox, global inbox)` as received by one node.
    type InboxLogEntry = (u64, Vec<(NodeId, u64)>, Vec<(NodeId, u64)>);

    /// A deterministic chaos program: every node records every inbox it ever
    /// sees and sends a pseudo-random pattern of local and global messages
    /// derived only from `(node, round)` — so the arena engine and the
    /// reference engine face the identical workload.
    #[derive(Clone)]
    struct Chaos {
        id: NodeId,
        n: u32,
        log: Vec<InboxLogEntry>,
    }

    fn mix(a: u64, b: u64) -> u64 {
        let mut z = a
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b.wrapping_mul(0xD134_2543_DE82_EF95));
        z ^= z >> 29;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 32)
    }

    impl NodeProgram for Chaos {
        type Msg = u64;

        fn init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            self.on_round(ctx, 0);
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, u64>, round: u64) {
            self.log.push((
                round,
                ctx.local_inbox().to_vec(),
                ctx.global_inbox().to_vec(),
            ));
            let h = mix(self.id as u64, round);
            // A bursty local pattern: some nodes broadcast, some stay silent.
            if h.is_multiple_of(3) {
                ctx.broadcast_local(h);
            }
            if h % 5 == 1 {
                if let Some(&nb) = ctx.neighbors().first() {
                    ctx.send_local(nb, h ^ 0xAB);
                }
            }
            // Global fan-in that intentionally overloads a few hot receivers
            // so the receive cap and the send cap both trigger.
            let sends = (h % 7) as u32;
            for i in 0..sends {
                let target = mix(h, i as u64) as u32 % self.n;
                ctx.send_global(target % 4, target as u64);
                ctx.send_global(target, i as u64);
            }
        }

        fn done(&self) -> bool {
            false
        }
    }

    #[test]
    fn arena_engine_matches_reference_per_round_messages() {
        for (graph, gamma) in [
            (generators::grid(&[6, 5]).unwrap(), 3),
            (generators::star(24).unwrap(), 2),
            (generators::cycle(17).unwrap(), 5),
            (generators::tree_balanced(3, 3).unwrap(), 4),
        ] {
            let n = graph.n();
            let params = ModelParams::hybrid_with_global_capacity(n, gamma);
            let factory = |id: NodeId| Chaos {
                id,
                n: n as u32,
                log: Vec::new(),
            };
            let mut exec = Executor::new(&graph, params, factory);
            let report = exec.run_capped(12, |_| false);
            let (ref_programs, ref_report) = run_reference(&graph, params, factory, 12);
            assert_eq!(report, ref_report, "reports diverge on n={n} gamma={gamma}");
            for (p, r) in exec.programs().iter().zip(&ref_programs) {
                // The exact per-round inbox sequences must match — not just
                // the multisets: the engine's delivery order is part of its
                // deterministic contract.
                assert_eq!(p.log, r.log, "node {} inbox history diverged", p.id);
            }
        }
    }

    #[test]
    fn arena_engine_matches_reference_multisets_under_heavy_load() {
        let graph = generators::complete(12).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(12, 2);
        let factory = |id: NodeId| Chaos {
            id,
            n: 12,
            log: Vec::new(),
        };
        let mut exec = Executor::new(&graph, params, factory);
        exec.run_capped(8, |_| false);
        let (ref_programs, _) = run_reference(&graph, params, factory, 8);
        for (p, r) in exec.programs().iter().zip(&ref_programs) {
            for ((ra, la, ga), (rb, lb, gb)) in p.log.iter().zip(&r.log) {
                assert_eq!(ra, rb);
                let mut la = la.clone();
                let mut lb = lb.clone();
                la.sort_unstable();
                lb.sort_unstable();
                assert_eq!(la, lb, "local multiset diverged at round {ra}");
                let mut ga = ga.clone();
                let mut gb = gb.clone();
                ga.sort_unstable();
                gb.sort_unstable();
                assert_eq!(ga, gb, "global multiset diverged at round {ra}");
            }
        }
    }

    #[test]
    fn failure_free_fault_plan_changes_nothing() {
        use crate::faults::{FaultPlan, FaultSpec};
        let graph = generators::grid(&[6, 5]).unwrap();
        let n = graph.n();
        let params = ModelParams::hybrid_with_global_capacity(n, 3);
        let factory = |id: NodeId| Chaos {
            id,
            n: n as u32,
            log: Vec::new(),
        };
        let mut plain = Executor::new(&graph, params, factory);
        let plain_report = plain.run_capped(10, |_| false);
        let config =
            EngineConfig::new(params).with_fault_plan(FaultPlan::new(FaultSpec::none(), 9, n));
        let mut with_plan = Executor::with_config(&graph, config, factory);
        let plan_report = with_plan.run_capped(10, |_| false);
        assert_eq!(plain_report, plan_report);
        assert_eq!(plan_report.injected_drops, 0);
        for (p, r) in plain.programs().iter().zip(with_plan.programs()) {
            assert_eq!(p.log, r.log);
        }
    }

    #[test]
    fn injected_drops_are_counted_and_deterministic() {
        use crate::faults::{FaultPlan, FaultSpec};
        let graph = generators::cycle(20).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(20, 4);
        let factory = |id: NodeId| Chaos {
            id,
            n: 20,
            log: Vec::new(),
        };
        let spec = FaultSpec {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay_prob: 0.1,
            max_delay_rounds: 2,
            ..FaultSpec::none()
        };
        let run = |seed: u64| {
            let config = EngineConfig::new(params).with_fault_plan(FaultPlan::new(spec, seed, 20));
            let mut exec = Executor::with_config(&graph, config, factory);
            let report = exec.run_capped(12, |_| false);
            let logs: Vec<_> = exec.programs().iter().map(|p| p.log.clone()).collect();
            (report, logs)
        };
        let (ra, la) = run(5);
        let (rb, lb) = run(5);
        let (rc, _) = run(6);
        assert_eq!(ra, rb, "same seed must reproduce the identical run");
        assert_eq!(la, lb, "same seed must reproduce identical inbox traces");
        assert!(ra.injected_drops > 0);
        assert!(ra.injected_delays > 0);
        assert_ne!(
            (
                ra.injected_drops,
                ra.injected_duplicates,
                ra.injected_delays
            ),
            (
                rc.injected_drops,
                rc.injected_duplicates,
                rc.injected_delays
            ),
            "a different seed should draw a different fault schedule"
        );
    }

    #[test]
    fn crashed_nodes_sleep_and_keep_their_state() {
        use crate::faults::{FaultPlan, FaultSpec};
        /// A persistent flooder: once a node has the pulse it rebroadcasts it
        /// every round — so crashed receivers recover the pulse after they
        /// restart (unlike `Wave`, which forwards exactly once and would
        /// permanently lose anything addressed to a sleeping node).
        struct Pulse {
            id: NodeId,
            seen: bool,
        }
        impl NodeProgram for Pulse {
            type Msg = ();
            fn init(&mut self, _ctx: &mut NodeCtx<'_, ()>) {
                self.seen = self.id == 0;
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, _round: u64) {
                if !ctx.local_inbox().is_empty() {
                    self.seen = true;
                }
                if self.seen {
                    ctx.broadcast_local(());
                }
            }
            fn done(&self) -> bool {
                self.seen
            }
        }

        let g = generators::path(10).unwrap();
        let params = ModelParams::hybrid(10);
        // Horizon 1 pins every crash to round 1: the whole path sleeps for
        // rounds 1..=4, state survives, and the pulse spreads after restart.
        let spec = FaultSpec {
            crash_prob: 1.0,
            crash_down_rounds: 4,
            crash_horizon_rounds: 1,
            ..FaultSpec::none()
        };
        let config = EngineConfig::new(params)
            .with_fault_plan(FaultPlan::new(spec, 1, 10))
            .with_max_rounds(100);
        let mut exec = Executor::with_config(&g, config, |id| Pulse { id, seen: false });
        let report = exec.run().expect("the pulse completes after the restarts");
        assert!(report.completed, "the pulse completes after the restarts");
        assert!(
            report.rounds > 9,
            "sleeping through the crash window must cost rounds (took {})",
            report.rounds
        );
        assert!(exec.programs().iter().all(|p| p.seen));
    }

    #[test]
    fn arena_groups_by_destination_with_cap() {
        let mut arena: Arena<u64> = Arena::new(4);
        let mut stage: Vec<Staged<u64>> = vec![
            (2, 0, 9, 20),
            (0, 1, 9, 1),
            (2, 2, 8, 21),
            (0, 3, 7, 2),
            (2, 4, 7, 22),
        ];
        let (delivered, dropped) = arena.fill_from(&mut stage, Some(2));
        assert_eq!((delivered, dropped), (4, 1));
        assert!(stage.is_empty());
        assert_eq!(arena.inbox(0), &[(9, 1), (7, 2)]);
        assert_eq!(arena.inbox(1), &[]);
        assert_eq!(arena.inbox(2), &[(9, 20), (8, 21)]);
        assert_eq!(arena.inbox(3), &[]);
    }

    #[test]
    fn exhausting_the_round_cap_is_a_typed_error() {
        // Spam never reports done, so any cap is exhausted.
        let g = generators::star(8).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(8, 2);
        let config = EngineConfig::new(params).with_max_rounds(5);
        let mut exec = Executor::with_config(&g, config, |id| Spam { id, received: 0 });
        let err = exec.run().expect_err("spam never completes");
        let EngineError::RoundLimitExceeded { limit, report } = err;
        assert_eq!(limit, 5);
        assert_eq!(report.rounds, 5);
        assert!(!report.completed);
        // The partial report still carries the full accounting.
        assert_eq!(report.global_messages, 2);
        assert_eq!(report.dropped_global, 5);
    }

    #[test]
    fn trace_records_delivery_order_bit_for_bit() {
        let g = generators::path(3).unwrap();
        let params = ModelParams::hybrid(3);
        let config = EngineConfig::new(params).with_trace(true);
        let mut exec = Executor::with_config(&g, config, |id| Wave {
            id,
            seen: false,
            forwarded: false,
        });
        let report = exec.run().unwrap();
        assert_eq!(report.rounds, 2);
        let trace = exec.take_trace();
        // Sending rounds 0, 1, 2: node 0 broadcasts at init, node 1 forwards
        // in round 1, node 2 forwards in round 2 (delivered, read by nobody
        // new).  `Wave`'s message type is `()`, rendered as JSON `null`.
        let nil = || "null".to_string();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].round, 0);
        assert_eq!(
            trace[0].local,
            vec![TraceEntry {
                src: 0,
                dst: 1,
                body: nil()
            }]
        );
        assert_eq!(trace[1].round, 1);
        assert_eq!(
            trace[1].local,
            vec![
                TraceEntry {
                    src: 1,
                    dst: 0,
                    body: nil()
                },
                TraceEntry {
                    src: 1,
                    dst: 2,
                    body: nil()
                }
            ]
        );
        assert_eq!(trace[2].round, 2);
        assert!(trace.iter().all(|r| r.global.is_empty()));
        // take_trace drains.
        assert!(exec.take_trace().is_empty());
    }

    /// Drives `Wave` on a path through [`NodeRunner`]s with hand-rolled
    /// routing — the networked driver's control flow in miniature — and
    /// checks the outcome matches the in-process executor exactly.
    #[test]
    fn node_runners_replicate_the_executor() {
        let g = generators::path(6).unwrap();
        let params = ModelParams::hybrid(6);
        let n = g.n();

        let mut runners: Vec<NodeRunner<Wave>> = g
            .nodes()
            .map(|v| {
                NodeRunner::new(
                    v,
                    g.neighbors(v).collect(),
                    &params,
                    Wave {
                        id: v,
                        seen: false,
                        forwarded: false,
                    },
                )
            })
            .collect();

        // Round 0 (init), then lock-step rounds with node-id-order routing.
        let mut inboxes: Vec<Vec<(NodeId, ())>> = vec![Vec::new(); n];
        for runner in &mut runners {
            let out = runner.init();
            assert_eq!(out.refused, 0);
            for (to, msg) in out.local {
                inboxes[to as usize].push((runner.node(), msg));
            }
        }
        let mut rounds = 0u64;
        while !runners.iter().all(|r| r.done()) {
            rounds += 1;
            let mut next: Vec<Vec<(NodeId, ())>> = vec![Vec::new(); n];
            for (v, runner) in runners.iter_mut().enumerate() {
                let out = runner.step(rounds, &inboxes[v], &[]);
                for (to, msg) in out.local {
                    next[to as usize].push((runner.node(), msg));
                }
            }
            inboxes = next;
            assert!(rounds < 100, "runaway");
        }

        let mut exec = Executor::new(&g, params, |id| Wave {
            id,
            seen: false,
            forwarded: false,
        });
        let report = exec.run().unwrap();
        assert_eq!(rounds, report.rounds);
        for (runner, p) in runners.iter().zip(exec.programs()) {
            assert_eq!(runner.program().seen, p.seen);
        }
    }

    #[test]
    fn node_runner_enforces_the_send_cap() {
        let params = ModelParams::hybrid_with_global_capacity(10, 3);
        let mut runner = NodeRunner::new(
            0,
            vec![1],
            &params,
            Blaster {
                id: 0,
                refused: false,
            },
        );
        runner.init();
        let out = runner.step(1, &[], &[]);
        assert_eq!(out.global.len(), 3);
        assert_eq!(out.refused, 6);
        assert!(runner.program().refused);
    }

    /// The deprecated setter keeps working until removal.
    #[test]
    #[allow(deprecated)]
    fn deprecated_set_fault_plan_is_equivalent_to_config() {
        use crate::faults::{FaultPlan, FaultSpec};
        let graph = generators::cycle(12).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(12, 3);
        let factory = |id: NodeId| Chaos {
            id,
            n: 12,
            log: Vec::new(),
        };
        let plan = FaultPlan::new(FaultSpec::drop_only(0.4), 11, 12);

        let mut old_style = Executor::new(&graph, params, factory);
        old_style.set_fault_plan(plan.clone());
        let old_report = old_style.run_capped(10, |_| false);

        let config = EngineConfig::new(params).with_fault_plan(plan);
        let mut new_style = Executor::with_config(&graph, config, factory);
        let new_report = new_style.run_capped(10, |_| false);

        assert_eq!(old_report, new_report);
        for (a, b) in old_style.programs().iter().zip(new_style.programs()) {
            assert_eq!(a.log, b.log);
        }
    }
}
